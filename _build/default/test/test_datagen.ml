(* Tests for the synthetic data generation: determinism, schema shape,
   distribution ordering (W < U < V in risky tuples), the Figure 6 suite,
   ownership graphs and synthetic hierarchies. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen

let spec ?(tuples = 800) ?(qi = 4) ?(seed = 42) dist =
  {
    D.Generator.name = "t";
    tuples;
    qi_count = qi;
    distribution = dist;
    seed;
  }

let test_generate_shape () =
  let md = D.Generator.generate (spec D.Generator.W) in
  Alcotest.(check int) "cardinality" 800 (S.Microdata.cardinal md);
  Alcotest.(check (list string)) "quasi-identifiers"
    [ "qi_1"; "qi_2"; "qi_3"; "qi_4" ]
    (S.Microdata.quasi_identifiers md);
  Alcotest.(check bool) "weight present" true
    (S.Microdata.weight_position md <> None);
  (* Weights are at least 1. *)
  for i = 0 to 99 do
    Alcotest.(check bool) "weight >= 1" true (S.Microdata.weight_of md i >= 1.0)
  done

let test_generate_deterministic () =
  let a = D.Generator.generate (spec D.Generator.U) in
  let b = D.Generator.generate (spec D.Generator.U) in
  let ta = R.Relation.to_list (S.Microdata.relation a) in
  let tb = R.Relation.to_list (S.Microdata.relation b) in
  Alcotest.(check bool) "same tuples" true (List.for_all2 R.Tuple.equal ta tb)

let test_generate_seed_sensitivity () =
  let a = D.Generator.generate (spec ~seed:1 D.Generator.U) in
  let b = D.Generator.generate (spec ~seed:2 D.Generator.U) in
  let ta = R.Relation.to_list (S.Microdata.relation a) in
  let tb = R.Relation.to_list (S.Microdata.relation b) in
  Alcotest.(check bool) "different data" false (List.for_all2 R.Tuple.equal ta tb)

let risky_count md =
  let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  List.length (S.Risk.risky report ~threshold:0.5)

let test_distribution_risk_ordering () =
  (* The paper's premise (Figure 7a): anonymizing W needs few labelled
     nulls, U more, V the most. Risky-tuple counts order W < U; V has
     fewer-but-deeper risky tuples (its outliers need several
     suppressions), so the ordering shows in the nulls. *)
  let nulls dist =
    let md = D.Generator.generate (spec ~tuples:2000 dist) in
    (S.Cycle.run md).S.Cycle.nulls_injected
  in
  let w_risky = risky_count (D.Generator.generate (spec ~tuples:2000 D.Generator.W)) in
  let u_risky = risky_count (D.Generator.generate (spec ~tuples:2000 D.Generator.U)) in
  Alcotest.(check bool)
    (Printf.sprintf "W risky (%d) < U risky (%d)" w_risky u_risky)
    true (w_risky < u_risky);
  let w = nulls D.Generator.W and u = nulls D.Generator.U and v = nulls D.Generator.V in
  Alcotest.(check bool) (Printf.sprintf "W nulls (%d) < U nulls (%d)" w u) true (w < u);
  Alcotest.(check bool) (Printf.sprintf "U nulls (%d) < V nulls (%d)" u v) true (u < v);
  (* At the paper's full 25k size W has ~10 risky tuples; at this reduced
     scale we only require a modest fraction. *)
  Alcotest.(check bool) "W risky share modest" true
    (float_of_int w_risky /. 2000.0 < 0.15)

let test_weight_reflects_rarity () =
  (* Tuples in singleton combinations must have lower average weight than
     tuples in large groups: weights estimate population frequency. *)
  let md = D.Generator.generate (spec ~tuples:2000 D.Generator.U) in
  let stats = S.Risk.group_stats md in
  let rare = ref [] and common = ref [] in
  Array.iteri
    (fun i f ->
      let w = S.Microdata.weight_of md i in
      if f = 1 then rare := w :: !rare
      else if f >= 5 then common := w :: !common)
    stats.R.Algebra.Group_stats.freq;
  if !rare <> [] && !common <> [] then begin
    let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
    Alcotest.(check bool) "rare combos weigh less" true (mean !rare < mean !common)
  end

let test_figure6_suite () =
  Alcotest.(check int) "twelve datasets" 12 (List.length D.Suite.figure6);
  let entry = Option.get (D.Suite.find "R25A4W") in
  Alcotest.(check int) "tuples" 25_000 entry.D.Suite.tuples;
  Alcotest.(check int) "attrs" 4 entry.D.Suite.attrs;
  let md = D.Suite.load ~scale:0.01 "R25A4W" in
  Alcotest.(check int) "scaled" 250 (S.Microdata.cardinal md);
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (D.Suite.load "NOPE");
       false
     with Not_found -> true)

let test_figure6_table_renders () =
  let text = Format.asprintf "%a" D.Suite.pp_table () in
  Alcotest.(check bool) "contains R100A4U" true
    (Astring_contains.contains text "R100A4U")

let test_ownership_generation () =
  let md = D.Generator.generate (spec ~tuples:200 D.Generator.W) in
  let rng = Vadasa_stats.Rng.create ~seed:5 in
  let edges = D.Ownership_gen.generate rng md ~id_attr:"id" ~edges:50 () in
  Alcotest.(check int) "requested edges" 50 (List.length edges);
  List.iter
    (fun o ->
      Alcotest.(check bool) "share in (0,1]" true
        (o.S.Business.share > 0.0 && o.S.Business.share <= 1.0);
      Alcotest.(check bool) "no self-ownership" false
        (String.equal o.S.Business.owner o.S.Business.owned))
    edges;
  let inferred = D.Ownership_gen.inferred_relationships edges in
  Alcotest.(check bool) "closure at least as large as majority edges" true
    (inferred >= List.length (List.filter (fun o -> o.S.Business.share > 0.5) edges))

let test_ownership_scaling () =
  let md = D.Generator.generate (spec ~tuples:500 D.Generator.W) in
  let gen n =
    let rng = Vadasa_stats.Rng.create ~seed:9 in
    D.Ownership_gen.generate rng md ~id_attr:"id" ~edges:n ()
  in
  let r100 = D.Ownership_gen.inferred_relationships (gen 100) in
  let r300 = D.Ownership_gen.inferred_relationships (gen 300) in
  Alcotest.(check bool) "more edges, more relationships" true (r300 > r100)

let test_synthetic_hierarchy () =
  let md = D.Generator.generate (spec ~tuples:300 D.Generator.W) in
  let h = D.Generator.synthetic_hierarchy md in
  List.iter
    (fun attr ->
      Alcotest.(check bool) ("height of " ^ attr) true
        (S.Hierarchy.height h ~attr >= 1))
    (S.Microdata.quasi_identifiers md);
  (* Every distinct value must roll up somewhere. *)
  let rel = S.Microdata.relation md in
  let pos =
    R.Schema.index_of (S.Microdata.schema md) "qi_1"
  in
  R.Relation.iter
    (fun t ->
      Alcotest.(check bool) "value has parent" true
        (S.Hierarchy.parent h t.(pos) <> None))
    rel

let test_synthetic_hierarchy_recoding_works () =
  let md = S.Microdata.copy (D.Generator.generate (spec ~tuples:400 D.Generator.V)) in
  let h = D.Generator.synthetic_hierarchy md in
  let config =
    { S.Cycle.default_config with S.Cycle.method_ = S.Cycle.Recode_then_suppress h }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "recoding used" true (outcome.S.Cycle.recoded_cells > 0)

let test_figure1_consistency () =
  let md = D.Ig_survey.figure1 () in
  Alcotest.(check int) "20 tuples" 20 (S.Microdata.cardinal md);
  Alcotest.(check int) "9 attributes" 9 (R.Schema.arity (S.Microdata.schema md))

let test_figure5_consistency () =
  let md = D.Ig_survey.figure5 () in
  Alcotest.(check int) "7 tuples" 7 (S.Microdata.cardinal md)

let prop_generation_weight_positive =
  QCheck2.Test.make ~name:"every generated weight is >= 1" ~count:20
    QCheck2.Gen.(
      pair (int_range 10 200) (oneofl [ D.Generator.W; D.Generator.U; D.Generator.V ]))
    (fun (n, dist) ->
      let md = D.Generator.generate (spec ~tuples:n dist) in
      let ok = ref true in
      for i = 0 to S.Microdata.cardinal md - 1 do
        if S.Microdata.weight_of md i < 1.0 then ok := false
      done;
      !ok)

let prop_unique_ids =
  QCheck2.Test.make ~name:"generated identifiers are unique" ~count:10
    QCheck2.Gen.(int_range 10 300)
    (fun n ->
      let md = D.Generator.generate (spec ~tuples:n D.Generator.U) in
      let ids = R.Relation.column (S.Microdata.relation md) "id" in
      let seen = Hashtbl.create n in
      Array.iter (fun v -> Hashtbl.replace seen (Value.to_string v) ()) ids;
      Hashtbl.length seen = n)

let () =
  Alcotest.run "datagen"
    [
      ( "generator",
        [
          Alcotest.test_case "shape" `Quick test_generate_shape;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generate_seed_sensitivity;
          Alcotest.test_case "distribution risk ordering" `Slow
            test_distribution_risk_ordering;
          Alcotest.test_case "weights reflect rarity" `Slow test_weight_reflects_rarity;
        ] );
      ( "suite",
        [
          Alcotest.test_case "figure 6" `Quick test_figure6_suite;
          Alcotest.test_case "table rendering" `Quick test_figure6_table_renders;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "generation" `Quick test_ownership_generation;
          Alcotest.test_case "scaling" `Quick test_ownership_scaling;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "synthetic hierarchy" `Quick test_synthetic_hierarchy;
          Alcotest.test_case "recoding with synthetic hierarchy" `Slow
            test_synthetic_hierarchy_recoding_works;
        ] );
      ( "paper data",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1_consistency;
          Alcotest.test_case "figure 5" `Quick test_figure5_consistency;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_generation_weight_positive; prop_unique_ids ] );
    ]
