(* Tests for the statistics substrate: RNG determinism, special functions,
   distribution moments, risk estimators, descriptive statistics. *)

module S = Vadasa_stats

let rng () = S.Rng.create ~seed:42

let test_rng_deterministic () =
  let a = S.Rng.create ~seed:7 and b = S.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (S.Rng.next_int64 a) (S.Rng.next_int64 b)
  done

let test_rng_float_range () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = S.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_rng_int_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = S.Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_rng_split_independent () =
  let parent = rng () in
  let child = S.Rng.split parent in
  let a = S.Rng.next_int64 child and b = S.Rng.next_int64 parent in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_uniformity () =
  let r = rng () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = S.Rng.int r 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (abs_float (frac -. 0.1) < 0.01))
    counts

let test_weighted_index () =
  let r = rng () in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = S.Rng.weighted_index r [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "heaviest dominates" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  let frac = float_of_int counts.(2) /. 30_000.0 in
  Alcotest.(check bool) "~0.7 mass" true (abs_float (frac -. 0.7) < 0.03)

let test_log_gamma () =
  (* Γ(n) = (n-1)! *)
  Alcotest.(check (float 1e-9)) "Γ(1)" 0.0 (S.Special.log_gamma 1.0);
  Alcotest.(check (float 1e-9)) "Γ(5)=24" (log 24.0) (S.Special.log_gamma 5.0);
  Alcotest.(check (float 1e-6)) "Γ(0.5)=√π"
    (log (sqrt Float.pi))
    (S.Special.log_gamma 0.5)

let test_log_factorial_choose () =
  Alcotest.(check (float 1e-9)) "10!" (log 3628800.0) (S.Special.log_factorial 10);
  Alcotest.(check (float 1e-9)) "C(5,2)=10" (log 10.0) (S.Special.log_choose 5 2);
  Alcotest.(check (float 0.0)) "C(5,9) impossible" neg_infinity
    (S.Special.log_choose 5 9)

let test_erf_normal_cdf () =
  Alcotest.(check (float 1e-6)) "erf(0)" 0.0 (S.Special.erf 0.0);
  Alcotest.(check (float 1e-3)) "Φ(0)=0.5" 0.5
    (S.Special.normal_cdf ~mean:0.0 ~std:1.0 0.0);
  Alcotest.(check (float 1e-3)) "Φ(1.96)≈0.975" 0.975
    (S.Special.normal_cdf ~mean:0.0 ~std:1.0 1.96)

let sample_mean n f =
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_poisson_mean () =
  let r = rng () in
  let m = sample_mean 20_000 (fun () -> float_of_int (S.Distribution.poisson r ~mean:4.0)) in
  Alcotest.(check bool) "mean ≈ 4" true (abs_float (m -. 4.0) < 0.1)

let test_gamma_mean () =
  let r = rng () in
  let m = sample_mean 20_000 (fun () -> S.Distribution.gamma r ~shape:3.0 ~scale:2.0) in
  Alcotest.(check bool) "mean ≈ 6" true (abs_float (m -. 6.0) < 0.15)

let test_negative_binomial_mean () =
  let r = rng () in
  (* mean = r(1-p)/p = 5 * 0.5 / 0.5 = 5 *)
  let m =
    sample_mean 20_000 (fun () ->
        float_of_int (S.Distribution.negative_binomial r ~r:5.0 ~p:0.5))
  in
  Alcotest.(check bool) "mean ≈ 5" true (abs_float (m -. 5.0) < 0.2)

let test_neg_binomial_pmf_sums () =
  let total = ref 0.0 in
  for k = 0 to 200 do
    total := !total +. exp (S.Distribution.neg_binomial_log_pmf ~r:3.0 ~p:0.4 k)
  done;
  Alcotest.(check (float 1e-6)) "pmf sums to 1" 1.0 !total

let test_binomial_bounds () =
  let r = rng () in
  for _ = 1 to 500 do
    let x = S.Distribution.binomial r ~n:20 ~p:0.3 in
    Alcotest.(check bool) "0<=x<=n" true (x >= 0 && x <= 20)
  done

let test_dirichlet_simplex () =
  let r = rng () in
  let v = S.Distribution.dirichlet r ~alpha:[| 1.0; 2.0; 3.0 |] in
  let total = Array.fold_left ( +. ) 0.0 v in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
  Array.iter (fun x -> Alcotest.(check bool) "non-negative" true (x >= 0.0)) v

let test_zipf_weights () =
  let w = S.Distribution.zipf_weights ~n:4 ~s:1.0 in
  Alcotest.(check (float 1e-9)) "first" 1.0 w.(0);
  Alcotest.(check (float 1e-9)) "fourth" 0.25 w.(3)

(* --- estimators --------------------------------------------------------- *)

let test_naive_risk () =
  Alcotest.(check (float 1e-9)) "f/w" 0.01
    (S.Estimator.naive ~freq:1 ~weight_sum:100.0);
  Alcotest.(check (float 1e-9)) "degenerate" 1.0
    (S.Estimator.naive ~freq:3 ~weight_sum:2.0);
  Alcotest.(check (float 1e-9)) "zero freq" 0.0
    (S.Estimator.naive ~freq:0 ~weight_sum:10.0)

let test_benedetti_franconi_bounds () =
  (* The BF estimator is a posterior mean of 1/F, so it must stay within
     (0, 1] and decrease with the weight sum. *)
  let r1 = S.Estimator.benedetti_franconi ~freq:1 ~weight_sum:10.0 in
  let r2 = S.Estimator.benedetti_franconi ~freq:1 ~weight_sum:100.0 in
  Alcotest.(check bool) "bounded" true (r1 > 0.0 && r1 <= 1.0);
  Alcotest.(check bool) "monotone in weight" true (r2 < r1)

let test_benedetti_franconi_unique_riskier () =
  let unique = S.Estimator.benedetti_franconi ~freq:1 ~weight_sum:50.0 in
  let doubleton = S.Estimator.benedetti_franconi ~freq:2 ~weight_sum:50.0 in
  Alcotest.(check bool) "f=1 riskier than f=2" true (unique > doubleton)

let test_monte_carlo_close_to_bf () =
  let r = rng () in
  let mc =
    S.Estimator.monte_carlo r ~samples:20_000 ~freq:1 ~weight_sum:20.0
  in
  let bf = S.Estimator.benedetti_franconi ~freq:1 ~weight_sum:20.0 in
  Alcotest.(check bool) "within tolerance" true (abs_float (mc -. bf) < 0.02)

let test_cluster_risk () =
  Alcotest.(check (float 1e-9)) "independent union" 0.75
    (S.Estimator.cluster_risk [| 0.5; 0.5 |]);
  Alcotest.(check (float 1e-9)) "single" 0.3 (S.Estimator.cluster_risk [| 0.3 |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (S.Estimator.cluster_risk [||])

(* --- descriptive -------------------------------------------------------- *)

let test_descriptive () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (S.Descriptive.mean xs);
  Alcotest.(check (float 1e-9)) "median" 2.5 (S.Descriptive.median xs);
  Alcotest.(check (float 1e-9)) "variance" (5.0 /. 3.0) (S.Descriptive.variance xs);
  let lo, hi = S.Descriptive.min_max xs in
  Alcotest.(check (float 0.0)) "min" 1.0 lo;
  Alcotest.(check (float 0.0)) "max" 4.0 hi;
  Alcotest.(check (float 1e-9)) "q0" 1.0 (S.Descriptive.quantile xs 0.0);
  Alcotest.(check (float 1e-9)) "q1" 4.0 (S.Descriptive.quantile xs 1.0)

let test_histogram () =
  let xs = [| 0.0; 0.1; 0.9; 1.0 |] in
  let h = S.Descriptive.histogram ~bins:2 xs in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "all points" 4 (c0 + c1)

let prop_quantile_monotone =
  QCheck2.Test.make ~name:"quantiles are monotone in q" ~count:100
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 50) (float_bound_inclusive 100.0))
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      S.Descriptive.quantile xs lo <= S.Descriptive.quantile xs hi +. 1e-9)

let prop_naive_risk_bounded =
  QCheck2.Test.make ~name:"naive risk stays in [0,1]" ~count:200
    QCheck2.Gen.(pair (int_range 0 50) (float_range 0.1 1000.0))
    (fun (freq, weight_sum) ->
      let r = S.Estimator.naive ~freq ~weight_sum in
      r >= 0.0 && r <= 1.0)

let prop_bf_risk_bounded =
  QCheck2.Test.make ~name:"Benedetti-Franconi risk stays in [0,1]" ~count:200
    QCheck2.Gen.(pair (int_range 1 50) (float_range 0.1 1000.0))
    (fun (freq, weight_sum) ->
      let r = S.Estimator.benedetti_franconi ~freq ~weight_sum in
      r >= 0.0 && r <= 1.0)

let () =
  Alcotest.run "stats"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "weighted index" `Slow test_weighted_index;
        ] );
      ( "special",
        [
          Alcotest.test_case "log gamma" `Quick test_log_gamma;
          Alcotest.test_case "factorial and choose" `Quick test_log_factorial_choose;
          Alcotest.test_case "erf / normal cdf" `Quick test_erf_normal_cdf;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "gamma mean" `Slow test_gamma_mean;
          Alcotest.test_case "negative binomial mean" `Slow
            test_negative_binomial_mean;
          Alcotest.test_case "negative binomial pmf" `Quick
            test_neg_binomial_pmf_sums;
          Alcotest.test_case "binomial bounds" `Quick test_binomial_bounds;
          Alcotest.test_case "dirichlet simplex" `Quick test_dirichlet_simplex;
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
        ] );
      ( "estimators",
        [
          Alcotest.test_case "naive risk" `Quick test_naive_risk;
          Alcotest.test_case "BF bounds" `Quick test_benedetti_franconi_bounds;
          Alcotest.test_case "BF unique riskier" `Quick
            test_benedetti_franconi_unique_riskier;
          Alcotest.test_case "monte carlo vs BF" `Slow test_monte_carlo_close_to_bf;
          Alcotest.test_case "cluster risk" `Quick test_cluster_risk;
        ] );
      ( "descriptive",
        [
          Alcotest.test_case "summary stats" `Quick test_descriptive;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_quantile_monotone; prop_naive_risk_bounded; prop_bf_risk_bounded ] );
    ]
