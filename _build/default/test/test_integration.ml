(* End-to-end integration tests: the full Vada-SA pipeline across modules,
   including CSV round-trips, the dictionary-driven flow, the reasoned
   path against the native path on the same data, and the attack loop. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module L = Vadasa_linkage

(* generate -> CSV -> reload -> categorize -> risk -> anonymize -> verify *)
let test_pipeline_via_csv () =
  let md =
    D.Generator.generate
      {
        D.Generator.name = "pipe";
        tuples = 400;
        qi_count = 4;
        distribution = D.Generator.U;
        seed = 77;
      }
  in
  (* Round-trip the relation through CSV, as a user would. *)
  let csv = R.Csv.write_string (S.Microdata.relation md) in
  let reloaded = R.Csv.read_string ~name:"pipe" csv in
  Alcotest.(check int) "tuples survive" 400 (R.Relation.cardinal reloaded);
  (* Categorize from attribute names alone. *)
  let md' =
    match S.Categorize.categorize_microdata reloaded with
    | Ok md' -> md'
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "QIs recovered"
    (S.Microdata.quasi_identifiers md)
    (S.Microdata.quasi_identifiers md');
  (* The reloaded data carries the same risk profile. *)
  let orig = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  let redo = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md' in
  Alcotest.(check (array (float 1e-9))) "same risks" orig.S.Risk.risk
    redo.S.Risk.risk;
  (* Anonymize and verify through a second CSV round-trip. *)
  let outcome = S.Cycle.run md' in
  let shipped =
    R.Csv.read_string ~name:"pipe"
      (R.Csv.write_string (S.Microdata.relation outcome.S.Cycle.anonymized))
  in
  let md'' = S.Microdata.with_relation md' shipped in
  let final = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md'' in
  Alcotest.(check int) "still 2-anonymous after round-trip" 0
    (List.length (S.Risk.risky final ~threshold:0.5))

(* dictionary-driven flow: register, read categories back, build microdata *)
let test_dictionary_driven_flow () =
  let raw = S.Microdata.relation (D.Ig_survey.figure1 ()) in
  let dict = S.Dictionary.create () in
  S.Dictionary.register dict (R.Relation.schema raw);
  Alcotest.(check int) "all uncategorized" 9
    (List.length (S.Dictionary.uncategorized dict));
  (* An expert (here: Algorithm 1) fills the dictionary. *)
  let result, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (R.Relation.schema raw)
  in
  List.iter
    (fun a ->
      S.Dictionary.set_category dict ~microdb:"ig_survey" ~attr:a.S.Categorize.attr
        a.S.Categorize.category)
    result.S.Categorize.assigned;
  Alcotest.(check int) "none left" 0
    (List.length (S.Dictionary.uncategorized dict));
  match S.Dictionary.categories_for dict (R.Relation.schema raw) with
  | None -> Alcotest.fail "expected full assignment"
  | Some cats ->
    let md = S.Microdata.make raw cats in
    Alcotest.(check bool) "weight recognized" true
      (S.Microdata.weight_position md <> None)

(* native and reasoned paths agree after an anonymization round *)
let test_paths_agree_on_anonymized_data () =
  let md = S.Microdata.copy (D.Ig_survey.figure5 ()) in
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"sector");
  ignore (S.Suppression.suppress ids md ~tuple:5 ~attr:"area");
  (* Both paths must agree on the data containing labelled nulls. Note the
     engine groups nulls by =⊥ through the collection-level comparison in
     the k-anonymity program only via exact QSet equality, so we compare
     the native estimate under the *standard* semantics, which is what the
     declarative grouping implements. *)
  let native =
    (S.Risk.estimate ~semantics:R.Null_semantics.Standard
       (S.Risk.K_anonymity { k = 2 })
       md)
      .S.Risk.risk
  in
  let reasoned =
    S.Vadalog_bridge.risk_via_engine (S.Risk.K_anonymity { k = 2 }) md
  in
  Alcotest.(check (array (float 1e-9))) "paths agree" native reasoned

(* the full attack loop on a recoded (not suppressed) dataset *)
let test_attack_after_recoding () =
  let md =
    D.Generator.generate
      {
        D.Generator.name = "rec";
        tuples = 300;
        qi_count = 3;
        distribution = D.Generator.V;
        seed = 5;
      }
  in
  let rng = Vadasa_stats.Rng.create ~seed:9 in
  let oracle = L.Oracle.from_microdata rng md () in
  let before = L.Attack.run oracle md in
  let hierarchy = D.Generator.synthetic_hierarchy md in
  let config =
    { S.Cycle.default_config with S.Cycle.method_ = S.Cycle.Recode_then_suppress hierarchy }
  in
  let outcome = S.Cycle.run ~config md in
  let after = L.Attack.run oracle outcome.S.Cycle.anonymized in
  (* Recoding changes values to parents the oracle does not contain, so
     blocking yields nothing for recoded tuples: hits cannot grow. *)
  Alcotest.(check bool) "hits do not grow" true
    (after.L.Attack.exact_hits <= before.L.Attack.exact_hits)

(* enhanced cycle end-to-end with the engine-validated closure *)
let test_enhanced_cycle_cross_checked () =
  let md = D.Suite.load ~scale:0.01 "R25A4U" in
  let rng = Vadasa_stats.Rng.create ~seed:23 in
  let ownerships = D.Ownership_gen.generate rng md ~id_attr:"id" ~edges:30 () in
  (* The clusters the cycle will use are exactly the engine's. *)
  let native_pairs = S.Business.control_closure ownerships in
  let engine_pairs = S.Business.control_closure_via_engine ownerships in
  Alcotest.(check (list (pair string string))) "closures agree" native_pairs
    engine_pairs;
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.risk_transform =
        Some (S.Business.risk_transform ~id_attr:"id" ~ownerships);
    }
  in
  let outcome = S.Cycle.run ~config md in
  (* After convergence, no cluster may contain a tuple over threshold. *)
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let report =
    S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) outcome.S.Cycle.anonymized
  in
  let transform = S.Business.risk_transform ~id_attr:"id" ~ownerships in
  let propagated = transform outcome.S.Cycle.anonymized report.S.Risk.risk in
  Array.iter
    (fun r -> Alcotest.(check bool) "cluster-safe" true (r <= 0.5))
    propagated

(* quickstart-equivalent scenario as a test: figure 1 to exchanged view *)
let test_quickstart_scenario () =
  let md = D.Ig_survey.figure1 () in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure = S.Risk.Re_identification;
      threshold = 0.02;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Alcotest.(check bool) "converged" true outcome.S.Cycle.converged;
  let exported = S.Microdata.drop_identifiers outcome.S.Cycle.anonymized in
  Alcotest.(check bool) "no id column" false
    (R.Schema.mem (R.Relation.schema exported) "id");
  Alcotest.(check int) "all twenty rows ship" 20 (R.Relation.cardinal exported);
  (* The narrative names every anonymized attribute. *)
  let narrative = S.Explain.trace md outcome in
  List.iter
    (fun a ->
      Alcotest.(check bool) "action explained" true
        (Astring_contains.contains narrative a.S.Cycle.attr))
    outcome.S.Cycle.trace

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "CSV round-trip pipeline" `Quick test_pipeline_via_csv;
          Alcotest.test_case "dictionary-driven flow" `Quick
            test_dictionary_driven_flow;
          Alcotest.test_case "quickstart scenario" `Quick test_quickstart_scenario;
        ] );
      ( "cross-path",
        [
          Alcotest.test_case "paths agree with nulls" `Quick
            test_paths_agree_on_anonymized_data;
          Alcotest.test_case "enhanced cycle cross-checked" `Quick
            test_enhanced_cycle_cross_checked;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "attack after recoding" `Quick test_attack_after_recoding;
        ] );
    ]
