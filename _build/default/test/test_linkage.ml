(* Tests for the record-linkage attack substrate: oracle construction,
   blocking (with null wildcards), matching, and the before/after-
   anonymization attack experiment. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module L = Vadasa_linkage

let small_md ?(tuples = 300) ?(dist = D.Generator.U) ?(seed = 21) () =
  D.Generator.generate
    { D.Generator.name = "atk"; tuples; qi_count = 4; distribution = dist; seed }

let oracle_of md =
  let rng = Vadasa_stats.Rng.create ~seed:3 in
  L.Oracle.from_microdata rng md ()

let test_oracle_construction () =
  let md = small_md () in
  let oracle = oracle_of md in
  Alcotest.(check bool) "oracle at least as big as microdata" true
    (L.Oracle.cardinal oracle >= S.Microdata.cardinal md);
  (* The true respondent's oracle row carries the tuple's QI values. *)
  for i = 0 to 20 do
    let identity = L.Oracle.true_identity oracle i in
    Alcotest.(check bool) "identity shaped" true
      (String.length identity > 0 && String.sub identity 0 7 = "person_")
  done

let test_blocking_exact () =
  let md = small_md () in
  let oracle = oracle_of md in
  let blocking = L.Blocking.build oracle in
  (* Every microdata tuple's cohort contains at least its own respondent. *)
  for i = 0 to S.Microdata.cardinal md - 1 do
    let cohort = L.Blocking.candidates blocking (S.Microdata.qi_projection md i) in
    Alcotest.(check bool) "non-empty cohort" true (cohort <> []);
    let identities = List.map (L.Oracle.identity_of_row oracle) cohort in
    Alcotest.(check bool) "true respondent in cohort" true
      (List.mem (L.Oracle.true_identity oracle i) identities)
  done

let test_blocking_null_wildcard () =
  let md = S.Microdata.copy (small_md ()) in
  let oracle = oracle_of md in
  let blocking = L.Blocking.build oracle in
  let before = L.Blocking.block_size blocking (S.Microdata.qi_projection md 0) in
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"qi_1");
  let after = L.Blocking.block_size blocking (S.Microdata.qi_projection md 0) in
  Alcotest.(check bool) "wildcard grows the cohort" true (after >= before);
  (* Suppressing everything matches the whole oracle. *)
  List.iter
    (fun attr -> ignore (S.Suppression.suppress ids md ~tuple:0 ~attr))
    (S.Microdata.quasi_identifiers md);
  Alcotest.(check int) "all-null matches everything" (L.Oracle.cardinal oracle)
    (L.Blocking.block_size blocking (S.Microdata.qi_projection md 0))

let test_matching_score () =
  let a = [| Value.Str "x"; Value.Str "y"; Value.Null 1 |] in
  let b = [| Value.Str "x"; Value.Str "z"; Value.Str "w" |] in
  Alcotest.(check int) "one agreement" 1 (L.Matching.score a b);
  Alcotest.(check int) "null never confirms" 2
    (L.Matching.score [| Value.Str "x"; Value.Str "z"; Value.Null 1 |] b)

let test_attack_baseline_hits () =
  (* On raw unbalanced microdata, many cohorts are small; the attacker
     scores real hits. *)
  let md = small_md () in
  let oracle = oracle_of md in
  let result = L.Attack.run oracle md in
  Alcotest.(check int) "attempted all" 300 result.L.Attack.attempted;
  Alcotest.(check bool) "some exact hits" true (result.L.Attack.exact_hits > 0);
  Alcotest.(check bool) "expected hits positive" true
    (result.L.Attack.expected_hits > 0.0)

let test_attack_defeated_by_anonymization () =
  (* The paper's validation story: after the anonymization cycle, blocking
     cohorts grow and the attack's expected score drops. *)
  let md = small_md () in
  let oracle = oracle_of md in
  let before = L.Attack.run oracle md in
  let outcome = S.Cycle.run md in
  let after = L.Attack.run oracle outcome.S.Cycle.anonymized in
  Alcotest.(check bool)
    (Printf.sprintf "expected hits drop (%.1f -> %.1f)"
       before.L.Attack.expected_hits after.L.Attack.expected_hits)
    true
    (after.L.Attack.expected_hits < before.L.Attack.expected_hits);
  Alcotest.(check bool) "cohorts grow" true
    (after.L.Attack.mean_block > before.L.Attack.mean_block);
  Alcotest.(check bool) "fewer singleton cohorts" true
    (after.L.Attack.singleton_blocks <= before.L.Attack.singleton_blocks)

let test_attack_fs_matcher () =
  let md = small_md ~tuples:150 () in
  let oracle = oracle_of md in
  let agreement = L.Attack.run oracle md in
  let fs = L.Attack.run ~matcher:`Fellegi_sunter oracle md in
  (* Blocking statistics are matcher-independent. *)
  Alcotest.(check (float 1e-9)) "same cohorts" agreement.L.Attack.mean_block
    fs.L.Attack.mean_block;
  Alcotest.(check bool) "fs attack lands hits" true (fs.L.Attack.exact_hits > 0)

let test_attack_success_rate_bounds () =
  let md = small_md ~tuples:100 () in
  let oracle = oracle_of md in
  let result = L.Attack.run oracle md in
  let rate = L.Attack.success_rate result in
  Alcotest.(check bool) "rate in [0,1]" true (rate >= 0.0 && rate <= 1.0)

let test_attack_rendering () =
  let md = small_md ~tuples:50 () in
  let oracle = oracle_of md in
  let text = Format.asprintf "%a" L.Attack.pp (L.Attack.run oracle md) in
  Alcotest.(check bool) "mentions cohort" true
    (Astring_contains.contains text "cohort")

(* --- Fellegi-Sunter probabilistic matching -------------------------------- *)

let test_fs_weights_favor_rare_attributes () =
  let md = small_md () in
  let oracle = oracle_of md in
  let fs = L.Fellegi_sunter.estimate oracle in
  let width = List.length (S.Microdata.quasi_identifiers md) in
  for j = 0 to width - 1 do
    Alcotest.(check bool) "agreement positive" true
      (L.Fellegi_sunter.agreement_weight fs j > 0.0);
    Alcotest.(check bool) "disagreement negative" true
      (L.Fellegi_sunter.disagreement_weight fs j < 0.0)
  done;
  (* A Zipf-skewed column (many repeats -> high u) must weigh less than a
     near-unique column would; compare the extreme: a synthetic oracle
     where attribute agreement is near-certain. *)
  let full_agree = L.Fellegi_sunter.score fs (S.Microdata.qi_projection md 0)
      (S.Microdata.qi_projection md 0) in
  Alcotest.(check bool) "self-score positive" true (full_agree > 0.0)

let test_fs_null_contributes_nothing () =
  let md = S.Microdata.copy (small_md ()) in
  let oracle = oracle_of md in
  let fs = L.Fellegi_sunter.estimate oracle in
  let target = S.Microdata.qi_projection md 3 in
  let candidate = L.Oracle.qi_values oracle 0 in
  let base = L.Fellegi_sunter.score fs target candidate in
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:3 ~attr:"qi_1");
  let nulled = S.Microdata.qi_projection md 3 in
  let after = L.Fellegi_sunter.score fs nulled candidate in
  (* Removing one attribute's evidence moves the score toward zero by that
     attribute's weight, never past the remaining evidence. *)
  Alcotest.(check bool) "score changed by one attribute's weight" true
    (abs_float (after -. base) > 0.0)

let test_fs_classify () =
  let md = small_md () in
  let oracle = oracle_of md in
  let fs = L.Fellegi_sunter.estimate oracle in
  Alcotest.(check bool) "match above upper" true
    (L.Fellegi_sunter.classify fs ~upper:5.0 ~lower:0.0 9.9
    = L.Fellegi_sunter.Match);
  Alcotest.(check bool) "non-match below lower" true
    (L.Fellegi_sunter.classify fs ~upper:5.0 ~lower:0.0 (-3.0)
    = L.Fellegi_sunter.Non_match);
  Alcotest.(check bool) "possible in between" true
    (L.Fellegi_sunter.classify fs ~upper:5.0 ~lower:0.0 2.0
    = L.Fellegi_sunter.Possible)

let test_fs_best_guess_finds_respondent () =
  (* With exact QI values and FS ranking, the true respondent must be
     among the top-scored candidates of its own cohort. *)
  let md = small_md ~tuples:100 () in
  let oracle = oracle_of md in
  let fs = L.Fellegi_sunter.estimate oracle in
  let blocking = L.Blocking.build oracle in
  let rng = Vadasa_stats.Rng.create ~seed:13 in
  let hits = ref 0 in
  for i = 0 to 99 do
    let target = S.Microdata.qi_projection md i in
    let cohort = L.Blocking.candidates blocking target in
    match L.Fellegi_sunter.best_guess rng fs oracle target cohort with
    | Some guess ->
      if String.equal guess.L.Matching.identity (L.Oracle.true_identity oracle i)
      then incr hits
    | None -> ()
  done;
  Alcotest.(check bool) "some exact hits" true (!hits > 0)

let prop_expected_hits_bounded_by_attempted =
  QCheck2.Test.make ~name:"expected hits never exceed attempted tuples" ~count:10
    QCheck2.Gen.(int_range 20 150)
    (fun n ->
      let md = small_md ~tuples:n () in
      let oracle = oracle_of md in
      let r = L.Attack.run oracle md in
      r.L.Attack.expected_hits <= float_of_int r.L.Attack.attempted +. 1e-9)

let prop_blocking_monotone_under_suppression =
  QCheck2.Test.make
    ~name:"suppressing any attribute never shrinks a blocking cohort" ~count:10
    QCheck2.Gen.(pair (int_range 20 100) (int_bound 3))
    (fun (n, attr_idx) ->
      let md = S.Microdata.copy (small_md ~tuples:n ()) in
      let oracle = oracle_of md in
      let blocking = L.Blocking.build oracle in
      let tuple = n / 2 in
      let before = L.Blocking.block_size blocking (S.Microdata.qi_projection md tuple) in
      let attr = List.nth (S.Microdata.quasi_identifiers md) attr_idx in
      let ids = Vadasa_base.Ids.create () in
      ignore (S.Suppression.suppress ids md ~tuple ~attr);
      let after = L.Blocking.block_size blocking (S.Microdata.qi_projection md tuple) in
      after >= before)

let () =
  Alcotest.run "linkage"
    [
      ( "oracle",
        [ Alcotest.test_case "construction" `Quick test_oracle_construction ] );
      ( "blocking",
        [
          Alcotest.test_case "exact" `Quick test_blocking_exact;
          Alcotest.test_case "null wildcard" `Quick test_blocking_null_wildcard;
        ] );
      ("matching", [ Alcotest.test_case "score" `Quick test_matching_score ]);
      ( "fellegi-sunter",
        [
          Alcotest.test_case "weights" `Quick test_fs_weights_favor_rare_attributes;
          Alcotest.test_case "null evidence" `Quick test_fs_null_contributes_nothing;
          Alcotest.test_case "classification" `Quick test_fs_classify;
          Alcotest.test_case "best guess" `Quick test_fs_best_guess_finds_respondent;
        ] );
      ( "attack",
        [
          Alcotest.test_case "baseline hits" `Quick test_attack_baseline_hits;
          Alcotest.test_case "defeated by anonymization" `Slow
            test_attack_defeated_by_anonymization;
          Alcotest.test_case "success rate bounds" `Quick
            test_attack_success_rate_bounds;
          Alcotest.test_case "Fellegi-Sunter matcher" `Quick test_attack_fs_matcher;
          Alcotest.test_case "rendering" `Quick test_attack_rendering;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_expected_hits_bounded_by_attempted;
            prop_blocking_monotone_under_suppression;
          ] );
    ]
