test/test_linkage.mli:
