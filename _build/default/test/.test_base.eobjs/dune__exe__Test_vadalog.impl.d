test/test_vadalog.ml: Alcotest Array Format Hashtbl List QCheck2 QCheck_alcotest Vadasa_base Vadasa_vadalog
