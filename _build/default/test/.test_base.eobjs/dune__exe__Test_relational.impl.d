test/test_relational.ml: Alcotest Array Char Hashtbl List QCheck2 QCheck_alcotest String Vadasa_base Vadasa_relational
