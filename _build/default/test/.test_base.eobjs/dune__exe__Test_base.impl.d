test/test_base.ml: Alcotest List Option QCheck2 QCheck_alcotest String Vadasa_base
