test/test_datagen.ml: Alcotest Array Astring_contains Format Hashtbl List Option Printf QCheck2 QCheck_alcotest String Vadasa_base Vadasa_datagen Vadasa_relational Vadasa_sdc Vadasa_stats
