test/test_sdc.ml: Alcotest Array Astring_contains Float Format List Option Printf QCheck2 QCheck_alcotest String Vadasa_base Vadasa_datagen Vadasa_relational Vadasa_sdc Vadasa_stats Vadasa_vadalog
