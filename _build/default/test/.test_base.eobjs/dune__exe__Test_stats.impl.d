test/test_stats.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Vadasa_stats
