test/test_vadalog.mli:
