(* Tests for the base value model: ordering, maybe-match equality,
   collections, literals, id generation. *)

module Value = Vadasa_base.Value
module Ids = Vadasa_base.Ids

let value = Alcotest.testable Value.pp Value.equal

let test_compare_total_order () =
  let vs =
    [
      Value.Int 1; Value.Float 1.5; Value.Str "a"; Value.Bool true;
      Value.Null 1; Value.pair (Value.Str "k") (Value.Int 1);
      Value.coll [ Value.Int 1 ];
    ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          Alcotest.(check bool) "antisymmetry" true (compare c1 0 = compare 0 c2))
        vs)
    vs

let test_null_standard_equality () =
  Alcotest.(check bool) "same label" true (Value.equal (Value.Null 3) (Value.Null 3));
  Alcotest.(check bool) "different label" false
    (Value.equal (Value.Null 3) (Value.Null 4));
  Alcotest.(check bool) "null vs const" false
    (Value.equal (Value.Null 3) (Value.Str "x"))

let test_maybe_match () =
  Alcotest.(check bool) "null matches const" true
    (Value.equal_maybe (Value.Null 1) (Value.Str "x"));
  Alcotest.(check bool) "null matches other null" true
    (Value.equal_maybe (Value.Null 1) (Value.Null 2));
  Alcotest.(check bool) "consts still strict" false
    (Value.equal_maybe (Value.Str "x") (Value.Str "y"));
  Alcotest.(check bool) "pairs recurse" true
    (Value.equal_maybe
       (Value.pair (Value.Str "a") (Value.Null 1))
       (Value.pair (Value.Str "a") (Value.Int 7)))

let test_coll_canonical () =
  let c1 = Value.coll [ Value.Int 2; Value.Int 1; Value.Int 2 ] in
  let c2 = Value.coll [ Value.Int 1; Value.Int 2 ] in
  Alcotest.check value "sorted, deduped" c2 c1

let test_coll_ops () =
  let c =
    Value.coll
      [
        Value.pair (Value.Str "area") (Value.Str "north");
        Value.pair (Value.Str "sector") (Value.Str "tex");
      ]
  in
  Alcotest.check value "assoc" (Value.Str "north")
    (Option.get (Value.coll_assoc c (Value.Str "area")));
  Alcotest.(check bool) "assoc missing" true
    (Value.coll_assoc c (Value.Str "zzz") = None);
  let filtered = Value.coll_filter_keys c (Value.coll [ Value.Str "area" ]) in
  Alcotest.(check int) "filter" 1 (List.length (Value.coll_elements filtered));
  let removed = Value.coll_remove_key c (Value.Str "area") in
  Alcotest.(check bool) "remove" true
    (Value.coll_assoc removed (Value.Str "area") = None);
  Alcotest.(check bool) "mem" true
    (Value.coll_mem c (Value.pair (Value.Str "area") (Value.Str "north")))

let test_of_literal () =
  Alcotest.check value "int" (Value.Int 42) (Value.of_literal "42");
  Alcotest.check value "float" (Value.Float 1.5) (Value.of_literal "1.5");
  Alcotest.check value "bool" (Value.Bool true) (Value.of_literal "true");
  Alcotest.check value "null" (Value.Null 7) (Value.of_literal "#7");
  Alcotest.check value "string" (Value.Str "North") (Value.of_literal "North");
  Alcotest.check value "hash not null" (Value.Str "#x") (Value.of_literal "#x")

let test_literal_roundtrip () =
  List.iter
    (fun v -> Alcotest.check value "roundtrip" v (Value.of_literal (Value.to_string v)))
    [ Value.Int 3; Value.Float 2.5; Value.Str "hello"; Value.Bool false; Value.Null 9 ]

let test_as_float () =
  Alcotest.(check (option (float 0.0))) "int" (Some 3.0) (Value.as_float (Value.Int 3));
  Alcotest.(check (option (float 0.0))) "str" None (Value.as_float (Value.Str "3"))

let test_ids () =
  let g = Ids.create () in
  let a = Ids.fresh_null g and b = Ids.fresh_null g in
  Alcotest.(check bool) "distinct" false (Value.equal a b);
  Alcotest.(check int) "count" 2 (Ids.count g);
  let s = Ids.fresh_symbol g ~prefix:"z" in
  Alcotest.(check bool) "prefixed" true (String.length s > 1 && s.[0] = 'z')

let prop_coll_union_commutes =
  QCheck2.Test.make ~name:"collection union is commutative and idempotent"
    ~count:100
    QCheck2.Gen.(pair (list (int_bound 20)) (list (int_bound 20)))
    (fun (xs, ys) ->
      let cx = Value.coll (List.map Value.int xs) in
      let cy = Value.coll (List.map Value.int ys) in
      Value.equal (Value.coll_union cx cy) (Value.coll_union cy cx)
      && Value.equal (Value.coll_union cx cx) cx)

let prop_compare_transitive =
  QCheck2.Test.make ~name:"value order is transitive on scalars" ~count:200
    QCheck2.Gen.(
      triple (int_range (-5) 5) (int_range (-5) 5) (int_range (-5) 5))
    (fun (a, b, c) ->
      let v x = if x mod 2 = 0 then Value.Int x else Value.Str (string_of_int x) in
      let a, b, c = (v a, v b, v c) in
      if Value.compare a b <= 0 && Value.compare b c <= 0 then
        Value.compare a c <= 0
      else true)

(* --- string similarity (Algorithm 1's ∼ relation) ------------------------ *)

module Strsim = Vadasa_base.Strsim

let test_normalize () =
  Alcotest.(check string) "separators" "export to de"
    (Strsim.normalize "Export_To-DE");
  Alcotest.(check string) "collapse" "a b" (Strsim.normalize "  a  __  b ")

let test_levenshtein () =
  Alcotest.(check int) "identical" 0 (Strsim.levenshtein "abc" "abc");
  Alcotest.(check int) "kitten/sitting" 3 (Strsim.levenshtein "kitten" "sitting");
  Alcotest.(check int) "empty" 3 (Strsim.levenshtein "" "abc")

let test_similarity_cases () =
  Alcotest.(check (float 1e-9)) "exact after normalize" 1.0
    (Strsim.similarity "Export Revenue" "export_revenue");
  Alcotest.(check bool) "suffix variant scores high" true
    (Strsim.similarity "sector" "sector_code" >= 0.55);
  Alcotest.(check bool) "unrelated scores low" true
    (Strsim.similarity "weight" "area" < 0.4);
  (* Symmetry. *)
  Alcotest.(check (float 1e-9)) "symmetric"
    (Strsim.similarity "zip_code" "postal code")
    (Strsim.similarity "postal code" "zip_code")

let prop_similarity_bounded =
  QCheck2.Test.make ~name:"similarity stays in [0,1] and is reflexive" ~count:100
    QCheck2.Gen.(pair string_printable string_printable)
    (fun (a, b) ->
      let s = Strsim.similarity a b in
      s >= 0.0 && s <= 1.0 && Strsim.similarity a a = 1.0)

let () =
  Alcotest.run "base"
    [
      ( "value",
        [
          Alcotest.test_case "total order" `Quick test_compare_total_order;
          Alcotest.test_case "null equality" `Quick test_null_standard_equality;
          Alcotest.test_case "maybe-match" `Quick test_maybe_match;
          Alcotest.test_case "collection canonical form" `Quick test_coll_canonical;
          Alcotest.test_case "collection operations" `Quick test_coll_ops;
          Alcotest.test_case "literal parsing" `Quick test_of_literal;
          Alcotest.test_case "literal roundtrip" `Quick test_literal_roundtrip;
          Alcotest.test_case "numeric view" `Quick test_as_float;
        ] );
      ("ids", [ Alcotest.test_case "fresh nulls" `Quick test_ids ]);
      ( "strsim",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
          Alcotest.test_case "similarity cases" `Quick test_similarity_cases;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_coll_union_commutes;
            prop_compare_transitive;
            prop_similarity_bounded;
          ] );
    ]
