(** Attribute categorization — Algorithm 1 of the paper.

    A recursive application of experience: an attribute sufficiently
    similar to an attribute of the {e experience base} borrows its known
    category (Rule 2), and, when feedback is enabled, the conclusion is fed
    back into the experience base to aid later decisions (Rule 3). Each
    attribute gets one category (the EGD of Rule 4): when two candidates
    with different categories score within a small margin, the assignment
    is flagged as a {e conflict} for human inspection rather than silently
    resolved. Attributes matching nothing stay {e unresolved} — these are
    Rule 1's existentially categorized attributes awaiting an expert.

    Two execution paths: {!run} is native; {!program} emits the equivalent
    Vadalog rules (using the [similarity] builtin) so the categorization
    can be executed — and explained — by the reasoning engine. *)

type assignment = {
  attr : string;
  category : Microdata.category;
  matched : string;  (** experience-base attribute that lent the category *)
  score : float;
}

type conflict = {
  conflict_attr : string;
  candidates : (Microdata.category * string * float) list;
      (** near-tied candidates with differing categories, best first *)
}

type result = {
  assigned : assignment list;
  unresolved : string list;
  conflicts : conflict list;
}

type experience = (string * Microdata.category) list

val builtin_experience : experience
(** A seed experience base with common financial/statistical attribute
    names (identifiers, geography, sector, size classes, weights, …). *)

val run :
  ?similarity:Similarity.func ->
  ?threshold:float ->
  ?conflict_margin:float ->
  ?feedback:bool ->
  experience:experience ->
  Vadasa_relational.Schema.t ->
  result * experience
(** Categorize every attribute of a schema. [threshold] (default 0.55) is
    the minimum similarity to borrow a category; [conflict_margin] (default
    0.05) the score gap under which differing categories conflict;
    [feedback] (default true) enables Rule 3. Returns the result and the
    (possibly grown) experience base. *)

val categorize_microdata :
  ?similarity:Similarity.func ->
  ?threshold:float ->
  ?experience:experience ->
  ?overrides:(string * Microdata.category) list ->
  Vadasa_relational.Relation.t ->
  (Microdata.t, string) Result.t
(** End-to-end: categorize a relation's attributes and build the
    {!Microdata.t}. [overrides] are expert decisions taking precedence.
    Fails listing the unresolved attributes if any remain. *)

val program : threshold:float -> string
(** Vadalog source of Algorithm 1 (Rules 2–4) against [att/3] and
    [exp_base/2] facts, deriving [cat/3] and [conflict/4]. *)

val run_via_engine :
  ?threshold:float ->
  experience:experience ->
  Vadasa_relational.Schema.t ->
  (string * Microdata.category) list
(** Execute {!program} on the engine and decode the derived categories
    (used to cross-check the native path and for explainability demos). *)
