module Strsim = Vadasa_base.Strsim

type func = string -> string -> float

let exact a b =
  if String.equal (Strsim.normalize a) (Strsim.normalize b) then 1.0 else 0.0

let edit = Strsim.edit_similarity
let token = Strsim.jaccard_tokens
let default = Strsim.similarity

let best_matches f name base =
  base
  |> List.map (fun (candidate, payload) -> (payload, candidate, f name candidate))
  |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
