(** Statistical disclosure risk estimation — the [#risk] plug-in point of
    the anonymization cycle (paper, Section 4.2).

    All measures instantiate the same scheme ρ_q̂ = 1/λ(σ_{q=q̂} M): an
    aggregate λ over the tuples sharing a quasi-identifier combination,
    turned into a per-tuple risk in [\[0, 1\]]. The polymorphic {!measure}
    selects the λ:

    - {!Re_identification}: λ = Σ W over the combination's tuples
      (Algorithm 3);
    - {!K_anonymity}: risky iff the combination's frequency < k
      (Algorithm 4);
    - {!Individual}: Benedetti–Franconi-style estimation of E[1/F | f]
      (Algorithm 5), with the estimator variants of
      {!Vadasa_stats.Estimator};
    - {!Suda}: risky iff some minimal sample unique is smaller than a
      threshold (Algorithm 6, see {!Risk_suda}). *)

type estimator =
  | Naive  (** f/Σw, the paper's λ = ΣW_t/f *)
  | Benedetti_franconi  (** closed-form posterior mean *)
  | Monte_carlo of { samples : int; seed : int }
      (** sampling from the negative-binomial posterior — the "off-the-shelf
          statistical library" plug-in whose cost dominates Figure 7e *)

type measure =
  | Re_identification
  | K_anonymity of { k : int }
  | Individual of estimator
  | Suda of { max_msu_size : int; threshold_size : int }
  | Custom of {
      name : string;
      score : freq:int -> weight_sum:float -> float;
    }
      (** user-delegated measure (paper desideratum vii): any risk-weight
          function λ over the combination's frequency and weight sum, i.e.
          an instance of ρ_q̂ = 1/λ(σ_{q=q̂} M); must land in [0,1] *)

type report = {
  measure : measure;
  risk : float array;  (** per tuple, in [\[0,1\]] *)
  freq : int array;  (** sample frequency of each tuple's combination *)
  weight_sum : float array;  (** estimated population frequency *)
}

val group_stats :
  ?semantics:Vadasa_relational.Null_semantics.t ->
  Microdata.t ->
  Vadasa_relational.Algebra.Group_stats.t
(** Frequency and weight sum of every tuple's quasi-identifier combination;
    default semantics is [Maybe_match] so anonymized tuples are credited. *)

val estimate :
  ?semantics:Vadasa_relational.Null_semantics.t ->
  measure ->
  Microdata.t ->
  report

val risky : report -> threshold:float -> int list
(** Tuple positions whose risk strictly exceeds the threshold, ascending. *)

val global_risk : report -> float
(** Expected number of re-identifications (sum of per-tuple risks). *)

val measure_to_string : measure -> string

val pp_report :
  ?limit:int -> Format.formatter -> Microdata.t * report -> unit
(** Human-readable top-risk table (explainability surface). *)
