module Value = Vadasa_base.Value
module Relational = Vadasa_relational
module Tuple = Relational.Tuple
module Relation = Relational.Relation

type tuple_msus = {
  msus : int array list;
  min_size : int option;
}

(* All subsets of {0..m-1} of size 1..max_size, ascending by size, each as
   a sorted position array paired with its bitmask. *)
let subsets m max_size =
  let out = ref [] in
  let rec extend subset last size =
    if size > 0 then
      for next = last + 1 to m - 1 do
        let subset' = next :: subset in
        out := List.rev subset' :: !out;
        extend subset' next (size - 1)
      done
  in
  extend [] (-1) max_size;
  let all = List.map Array.of_list !out in
  List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) all

let mask_of positions =
  Array.fold_left (fun acc p -> acc lor (1 lsl p)) 0 positions

(* Frequency table of the projections onto [positions] of all tuples. *)
let freq_table projections positions =
  let table = Hashtbl.create (Array.length projections) in
  Array.iter
    (fun proj ->
      let key = Tuple.key (Tuple.project proj positions) in
      let current = try Hashtbl.find table key with Not_found -> 0 in
      Hashtbl.replace table key (current + 1))
    projections;
  table

let find_msus ?(max_size = 3) md =
  let rel = Microdata.relation md in
  let qi = Microdata.qi_positions md in
  let m = Array.length qi in
  let n = Relation.cardinal rel in
  let max_size = min max_size m in
  let projections =
    Array.init n (fun i -> Tuple.project (Relation.get rel i) qi)
  in
  let subset_list = subsets m max_size in
  let tables = Hashtbl.create (List.length subset_list) in
  List.iter
    (fun positions ->
      Hashtbl.replace tables (mask_of positions)
        (positions, freq_table projections positions))
    subset_list;
  (* Frequency of tuple [i] for subset [mask], restricted to the tuple's
     non-null positions (maybe-match handling of suppressed values). *)
  let non_null_mask = Array.map (fun _ -> 0) projections in
  Array.iteri
    (fun i proj ->
      let mask = ref 0 in
      Array.iteri
        (fun p v -> if not (Value.is_null v) then mask := !mask lor (1 lsl p))
        proj;
      non_null_mask.(i) <- !mask)
    projections;
  let freq_of i mask =
    let effective = mask land non_null_mask.(i) in
    if effective = 0 then n
    else
      let positions, table = Hashtbl.find tables effective in
      let key = Tuple.key (Tuple.project projections.(i) positions) in
      (try Hashtbl.find table key with Not_found -> 0)
  in
  Array.init n (fun i ->
      let found = ref [] in
      let found_masks = ref [] in
      List.iter
        (fun positions ->
          let mask = mask_of positions in
          (* Minimality pruning: a superset of a found MSU is unique but
             not minimal — skip without touching the tables. *)
          let dominated =
            List.exists (fun m' -> m' land mask = m') !found_masks
          in
          if (not dominated) && freq_of i mask = 1 then begin
            found := positions :: !found;
            found_masks := mask :: !found_masks
          end)
        subset_list;
      let msus = List.rev !found in
      let min_size =
        List.fold_left
          (fun acc s ->
            match acc with
            | None -> Some (Array.length s)
            | Some best -> Some (min best (Array.length s)))
          None msus
      in
      { msus; min_size })

let estimate ~max_msu_size ~threshold_size md =
  let per_tuple = find_msus ~max_size:max_msu_size md in
  Array.map
    (fun { min_size; _ } ->
      match min_size with
      | Some s when s < threshold_size -> 1.0
      | Some _ | None -> 0.0)
    per_tuple

let dis_scores ?(max_size = 3) md =
  let m = Array.length (Microdata.qi_positions md) in
  let per_tuple = find_msus ~max_size md in
  let denom = float_of_int (1 lsl (max 1 m - 1)) in
  Array.map
    (fun { msus; _ } ->
      let raw =
        List.fold_left
          (fun acc s -> acc +. float_of_int (1 lsl (m - Array.length s)))
          0.0 msus
      in
      Float.min 1.0 (raw /. denom))
    per_tuple
