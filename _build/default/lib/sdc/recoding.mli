(** Global recoding (paper, Algorithm 8): decrease the granularity of
    quasi-identifier values by climbing a domain hierarchy.

    "Global" because the same coarsening is applied to the whole microdata
    DB: when Milano rolls up to North, every Milano becomes North, so the
    recoded values stay comparable across tuples and statistical utility
    degrades uniformly rather than per cell. *)

type step = {
  recoded_attr : string;
  from_value : Vadasa_base.Value.t;
  to_value : Vadasa_base.Value.t;
  cells_changed : int;
}

val recode_value :
  Hierarchy.t -> Microdata.t -> attr:string -> Vadasa_base.Value.t ->
  step option
(** Roll the given value of a quasi-identifier up one hierarchy level,
    rewriting {e every} tuple holding it. [None] when the hierarchy has no
    parent for the value. *)

val recode_tuple :
  Hierarchy.t -> Microdata.t -> tuple:int -> attr:string -> step option
(** Convenience: recode (globally) the value the given tuple currently
    holds for [attr]. This is how the anonymization cycle invokes recoding
    on a risky tuple. *)

val recode_attr_fully :
  Hierarchy.t -> Microdata.t -> attr:string -> step list
(** Roll {e all} distinct values of the attribute up one level (classic
    full-domain generalization). *)

val program : string
(** Vadalog source of Algorithm 8 against [tuple/2], [anonymize/2] and the
    hierarchy facts ([type_of/2], [sub_type_of/2], [inst_of/2], [is_a/2]),
    deriving the recoded [tuple_r/2]. *)
