module Value = Vadasa_base.Value
module Tuple = Vadasa_relational.Tuple

let qi_binding md tuple =
  let attrs = Microdata.quasi_identifiers md in
  let proj = Microdata.qi_projection md tuple in
  String.concat ", "
    (List.mapi
       (fun i attr -> attr ^ "=" ^ Value.to_string (Tuple.get proj i))
       attrs)

let action md (a : Cycle.action) =
  let what =
    match a.Cycle.kind with
    | Cycle.Suppressed v ->
      Printf.sprintf "suppressed %s (value %s replaced by a labelled null)"
        a.Cycle.attr (Value.to_string v)
    | Cycle.Recoded (f, t) ->
      Printf.sprintf "recoded %s from %s to %s (hierarchy roll-up)"
        a.Cycle.attr (Value.to_string f) (Value.to_string t)
  in
  Printf.sprintf
    "round %d: tuple %d %s because its combination {%s} had frequency %d and \
     risk %.4f"
    a.Cycle.round a.Cycle.tuple what (qi_binding md a.Cycle.tuple)
    a.Cycle.freq_before a.Cycle.risk_before

let trace md (o : Cycle.outcome) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "anonymization of %s: %d rounds, %d initially risky tuples, %d nulls, \
        %d recodings, information loss %.3f, %s\n"
       (Microdata.name md) o.Cycle.rounds o.Cycle.risky_initial
       o.Cycle.nulls_injected o.Cycle.recoded_cells o.Cycle.info_loss
       (if o.Cycle.converged then "converged" else "stopped short"));
  List.iter
    (fun a ->
      Buffer.add_string buf (action md a);
      Buffer.add_char buf '\n')
    o.Cycle.trace;
  (match o.Cycle.unresolved with
  | [] -> ()
  | tuples ->
    Buffer.add_string buf
      (Printf.sprintf
         "unresolved tuples (no anonymization move left): %s\n"
         (String.concat ", " (List.map string_of_int tuples))));
  Buffer.contents buf

let tuple_risk md report ~tuple =
  Printf.sprintf
    "tuple %d: risk %.4f under %s; its quasi-identifier combination {%s} is \
     shared by %d sample tuple(s) representing an estimated %.1f population \
     unit(s)"
    tuple
    report.Risk.risk.(tuple)
    (Risk.measure_to_string report.Risk.measure)
    (qi_binding md tuple) report.Risk.freq.(tuple)
    report.Risk.weight_sum.(tuple)

let summary md report ~threshold =
  let risky = Risk.risky report ~threshold in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "%s: %d tuples, measure %s, threshold %.2f\nglobal risk (expected \
        re-identifications): %.3f\nrisky tuples: %d\n"
       (Microdata.name md) (Microdata.cardinal md)
       (Risk.measure_to_string report.Risk.measure)
       threshold (Risk.global_risk report) (List.length risky));
  List.iteri
    (fun rank tuple ->
      if rank < 10 then begin
        Buffer.add_string buf (tuple_risk md report ~tuple);
        Buffer.add_char buf '\n'
      end)
    risky;
  Buffer.contents buf
