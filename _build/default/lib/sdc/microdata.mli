(** Microdata DBs: a relation whose attributes are categorized as direct
    identifiers, quasi-identifiers, non-identifying attributes or the
    sampling weight (paper, Section 2.1, schema M(i, q, a, W)). *)

module Relational = Vadasa_relational

type category =
  | Identifier  (** a single value discloses the respondent (SSN, fiscal code) *)
  | Quasi_identifier  (** combinations disclose (area, sector, size, …) *)
  | Non_identifying  (** never disclose, alone or combined *)
  | Weight  (** the sampling weight W *)

val category_to_string : category -> string

val category_of_string : string -> category option

type t

val make :
  Relational.Relation.t -> (string * category) list -> t
(** Pairs every attribute of the relation's schema with a category. Raises
    [Invalid_argument] when an attribute is missing a category, a category
    names an unknown attribute, or more than one attribute is the
    [Weight]. *)

val relation : t -> Relational.Relation.t

val schema : t -> Relational.Schema.t

val name : t -> string

val cardinal : t -> int

val category_of : t -> string -> category

val categories : t -> (string * category) list
(** In schema order. *)

val quasi_identifiers : t -> string list

val qi_positions : t -> int array

val identifier_positions : t -> int array

val weight_position : t -> int option

val weight_of : t -> int -> float
(** Sampling weight of the tuple at a position; [1.0] when the microdata DB
    has no weight attribute or the value is not numeric. *)

val with_relation : t -> Relational.Relation.t -> t
(** Same categorization over another relation with an equal schema. *)

val copy : t -> t
(** Deep copy (fresh relation, fresh tuples). *)

val drop_identifiers : t -> Relational.Relation.t
(** The exchanged view: direct identifiers removed (they must never be
    disclosed), all other attributes kept. *)

val qi_projection : t -> int -> Relational.Tuple.t
(** Quasi-identifier values of the tuple at a position. *)

val pp : Format.formatter -> t -> unit
