lib/sdc/similarity.ml: Float List String Vadasa_base
