lib/sdc/info_loss.ml: Array Hashtbl Hierarchy List Microdata Vadasa_base Vadasa_relational
