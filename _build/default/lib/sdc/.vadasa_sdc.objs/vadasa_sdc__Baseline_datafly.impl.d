lib/sdc/baseline_datafly.ml: Array Float Hashtbl Hierarchy List Microdata Recoding Suppression Vadasa_base Vadasa_relational
