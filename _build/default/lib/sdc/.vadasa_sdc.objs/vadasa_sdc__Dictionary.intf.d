lib/sdc/dictionary.mli: Format Microdata Vadasa_base Vadasa_relational
