lib/sdc/vadalog_bridge.mli: Business Microdata Risk Vadasa_base
