lib/sdc/categorize.mli: Microdata Result Similarity Vadasa_relational
