lib/sdc/hierarchy.mli: Format Vadasa_base
