lib/sdc/hierarchy.ml: Array Format Hashtbl List String Vadasa_base
