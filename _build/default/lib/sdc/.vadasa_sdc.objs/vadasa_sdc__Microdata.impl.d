lib/sdc/microdata.ml: Array Format Hashtbl List Vadasa_base Vadasa_relational
