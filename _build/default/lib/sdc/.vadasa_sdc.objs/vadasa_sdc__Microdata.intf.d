lib/sdc/microdata.mli: Format Vadasa_relational
