lib/sdc/recoding.mli: Hierarchy Microdata Vadasa_base
