lib/sdc/explain.mli: Cycle Microdata Risk
