lib/sdc/similarity.mli:
