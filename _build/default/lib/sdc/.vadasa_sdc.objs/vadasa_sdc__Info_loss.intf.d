lib/sdc/info_loss.mli: Hierarchy Microdata
