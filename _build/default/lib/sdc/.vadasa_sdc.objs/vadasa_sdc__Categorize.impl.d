lib/sdc/categorize.ml: Array List Microdata Option Printf Similarity String Vadasa_base Vadasa_relational Vadasa_vadalog
