lib/sdc/heuristics.mli: Microdata
