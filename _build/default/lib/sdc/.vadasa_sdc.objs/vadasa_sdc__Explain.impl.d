lib/sdc/explain.ml: Array Buffer Cycle List Microdata Printf Risk String Vadasa_base Vadasa_relational
