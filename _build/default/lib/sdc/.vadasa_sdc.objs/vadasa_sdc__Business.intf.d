lib/sdc/business.mli: Microdata
