lib/sdc/heuristics.ml: Array Float Hashtbl List Microdata String Vadasa_base Vadasa_relational
