lib/sdc/risk.ml: Array Float Format List Microdata Printf Risk_suda Vadasa_relational Vadasa_stats
