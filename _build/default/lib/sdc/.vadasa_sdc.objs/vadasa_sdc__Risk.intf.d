lib/sdc/risk.mli: Format Microdata Vadasa_relational
