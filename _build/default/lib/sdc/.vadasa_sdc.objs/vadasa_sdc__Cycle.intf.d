lib/sdc/cycle.mli: Format Heuristics Hierarchy Microdata Risk Vadasa_base Vadasa_relational
