lib/sdc/business.ml: Array Float Hashtbl List Microdata String Vadasa_base Vadasa_relational Vadasa_vadalog
