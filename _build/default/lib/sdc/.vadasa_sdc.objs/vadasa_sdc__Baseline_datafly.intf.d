lib/sdc/baseline_datafly.mli: Hierarchy Microdata
