lib/sdc/risk_suda.mli: Microdata
