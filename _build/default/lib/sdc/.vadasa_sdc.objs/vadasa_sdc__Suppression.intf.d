lib/sdc/suppression.mli: Microdata Vadasa_base
