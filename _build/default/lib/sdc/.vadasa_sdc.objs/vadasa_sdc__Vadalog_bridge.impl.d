lib/sdc/vadalog_bridge.ml: Array Business Float Heuristics List Microdata Option Risk Suppression Vadasa_base Vadasa_relational Vadasa_vadalog
