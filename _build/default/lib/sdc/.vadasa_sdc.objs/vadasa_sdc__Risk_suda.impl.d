lib/sdc/risk_suda.ml: Array Float Hashtbl Int List Microdata Vadasa_base Vadasa_relational
