lib/sdc/dictionary.ml: Array Format Hashtbl List Microdata Printf String Vadasa_base Vadasa_relational
