lib/sdc/cycle.ml: Array Format Hashtbl Heuristics Hierarchy Info_loss List Logs Microdata Recoding Risk Suppression Vadasa_base Vadasa_relational
