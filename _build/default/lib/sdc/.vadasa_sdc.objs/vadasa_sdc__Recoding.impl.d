lib/sdc/recoding.ml: Hashtbl Hierarchy Microdata Vadasa_base Vadasa_relational
