lib/sdc/suppression.ml: List Microdata Vadasa_base Vadasa_relational
