module Value = Vadasa_base.Value
module V = Vadasa_vadalog

type ownership = {
  owner : string;
  owned : string;
  share : float;
}

(* Duplicate (owner, owned) stakes are normalized to the largest share,
   matching the engine's per-contributor monotonic-aggregation semantics. *)
let normalize ownerships =
  let best = Hashtbl.create 64 in
  List.iter
    (fun o ->
      match Hashtbl.find_opt best (o.owner, o.owned) with
      | Some s when s >= o.share -> ()
      | _ -> Hashtbl.replace best (o.owner, o.owned) o.share)
    ownerships;
  Hashtbl.fold
    (fun (owner, owned) share acc -> { owner; owned; share } :: acc)
    best []

(* Native fixpoint mirroring the two Vadalog rules: direct majority, then
   joint majority through already-controlled companies. *)
let control_closure ownerships =
  let ownerships = normalize ownerships in
  let direct = Hashtbl.create 64 in
  List.iter
    (fun o ->
      if o.share > 0.5 then Hashtbl.replace direct (o.owner, o.owned) ())
    ownerships;
  let controls = Hashtbl.copy direct in
  let owners_of = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let existing = try Hashtbl.find owners_of o.owned with Not_found -> [] in
      Hashtbl.replace owners_of o.owned ((o.owner, o.share) :: existing))
    ownerships;
  let controllers () =
    List.sort_uniq String.compare
      (Hashtbl.fold (fun (x, _) () acc -> x :: acc) controls [])
  in
  let companies =
    List.sort_uniq String.compare
      (List.concat_map (fun o -> [ o.owner; o.owned ]) ownerships)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            if (not (Hashtbl.mem controls (x, y))) && not (String.equal x y)
            then begin
              (* Joint ownership of y by x itself plus companies controlled
                 by x. *)
              let owners = try Hashtbl.find owners_of y with Not_found -> [] in
              let joint =
                List.fold_left
                  (fun acc (z, w) ->
                    if String.equal z x || Hashtbl.mem controls (x, z) then
                      acc +. w
                    else acc)
                  0.0 owners
              in
              if joint > 0.5 then begin
                Hashtbl.replace controls (x, y) ();
                changed := true
              end
            end)
          companies)
      (controllers ())
  done;
  List.sort compare (Hashtbl.fold (fun pair () acc -> pair :: acc) controls [])

(* Union-find over entity names. *)
let clusters pairs =
  let parent = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None ->
      Hashtbl.add parent x x;
      x
    | Some p when String.equal p x -> x
    | Some p ->
      let root = find p in
      Hashtbl.replace parent x root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then Hashtbl.replace parent ra rb
  in
  List.iter (fun (a, b) -> union a b) pairs;
  let members = Hashtbl.create 64 in
  Hashtbl.iter
    (fun x _ ->
      let root = find x in
      let existing = try Hashtbl.find members root with Not_found -> [] in
      Hashtbl.replace members root (x :: existing))
    parent;
  Hashtbl.fold
    (fun _ group acc ->
      if List.length group > 1 then List.sort String.compare group :: acc
      else acc)
    members []
  |> List.sort compare

let propagate ~entity_of ~clusters risks =
  let cluster_of = Hashtbl.create 64 in
  List.iteri
    (fun ci group -> List.iter (fun e -> Hashtbl.replace cluster_of e ci) group)
    clusters;
  let n = Array.length risks in
  (* Combined risk per cluster: 1 - prod(1 - rho) over member tuples. *)
  let survive = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    match entity_of i with
    | None -> ()
    | Some e ->
      (match Hashtbl.find_opt cluster_of e with
      | None -> ()
      | Some ci ->
        let s = try Hashtbl.find survive ci with Not_found -> 1.0 in
        Hashtbl.replace survive ci (s *. (1.0 -. Float.min 1.0 risks.(i))))
  done;
  Array.mapi
    (fun i r ->
      match entity_of i with
      | None -> r
      | Some e ->
        (match Hashtbl.find_opt cluster_of e with
        | None -> r
        | Some ci ->
          let combined = 1.0 -. Hashtbl.find survive ci in
          Float.max r combined))
    risks

let risk_transform ~id_attr ~ownerships =
  let pairs = control_closure ownerships in
  let groups = clusters pairs in
  fun md risks ->
    let rel = Microdata.relation md in
    let pos = Vadasa_relational.Schema.index_of (Microdata.schema md) id_attr in
    let entity_of i =
      Some (Value.to_string (Vadasa_relational.Relation.get rel i).(pos))
    in
    propagate ~entity_of ~clusters:groups risks

let program =
  {|
% Company control (paper, Section 4.4): direct majority ownership, or
% joint majority through already-controlled companies.
@label("direct_control").
rel(X, Y) :- own(X, Y, W), W > 0.5.
@label("joint_control").
rel(X, Y) :- rel(X, Z), own(Z, Y, W), X != Y, msum(W, <Z>) > 0.5.
% A company contributes its own direct holdings to its joint totals.
@label("self").
rel(X, X) :- own(X, Y, W).
@output("rel").
|}

let control_closure_via_engine ownerships =
  let parsed = V.Parser.parse program in
  let facts =
    List.map
      (fun o ->
        ("own", [| Value.Str o.owner; Value.Str o.owned; Value.Float o.share |]))
      ownerships
  in
  let engine = V.Engine.create (V.Program.union parsed (V.Program.make ~facts [])) in
  V.Engine.run engine;
  V.Engine.facts engine "rel"
  |> List.filter_map (fun fact ->
         match fact with
         | [| Value.Str x; Value.Str y |] when not (String.equal x y) ->
           Some (x, y)
         | _ -> None)
  |> List.sort_uniq compare
