(** Information-loss metrics — the statistical-preservation side of the
    trade-off (paper, Figure 7b).

    The paper's headline metric weighs the injected nulls against the
    maximum number of values that could theoretically have been removed:
    the quasi-identifier cells of the risky tuples. *)

val suppression_loss :
  nulls_injected:int -> risky_tuples:int -> qi_count:int -> float
(** [nulls / (risky_tuples × qi_count)], 0 when nothing was risky. This is
    Figure 7b's "loss of information". *)

val cell_suppression_rate : Microdata.t -> float
(** Fraction of quasi-identifier cells currently holding labelled nulls. *)

val generalization_loss : Hierarchy.t -> Microdata.t -> float
(** Average normalized hierarchy level of the quasi-identifier values:
    0 when everything sits at the finest level, 1 when every value reached
    its coarsest ancestor. Attributes without a hierarchy contribute 0. *)

val distinct_combination_ratio : Microdata.t -> Microdata.t -> float
(** [distinct QI combinations after / before] — a utility proxy: global
    recoding collapses combinations, suppression (with nulls counted as
    fresh symbols) does not reduce it below the suppressed share. *)
