module Value = Vadasa_base.Value
module Relation = Vadasa_relational.Relation
module Tuple = Vadasa_relational.Tuple

let suppression_loss ~nulls_injected ~risky_tuples ~qi_count =
  if risky_tuples <= 0 || qi_count <= 0 then 0.0
  else float_of_int nulls_injected /. float_of_int (risky_tuples * qi_count)

let cell_suppression_rate md =
  let rel = Microdata.relation md in
  let qi = Microdata.qi_positions md in
  let n = Relation.cardinal rel in
  if n = 0 || Array.length qi = 0 then 0.0
  else begin
    let nulls = ref 0 in
    Relation.iter
      (fun t ->
        Array.iter (fun p -> if Value.is_null t.(p) then incr nulls) qi)
      rel;
    float_of_int !nulls /. float_of_int (n * Array.length qi)
  end

let generalization_loss hierarchy md =
  let rel = Microdata.relation md in
  let schema = Microdata.schema md in
  let n = Relation.cardinal rel in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    let cells = ref 0 in
    List.iter
      (fun attr ->
        let h = Hierarchy.height hierarchy ~attr in
        let pos = Vadasa_relational.Schema.index_of schema attr in
        Relation.iter
          (fun t ->
            incr cells;
            if h > 0 then begin
              let v = Tuple.get t pos in
              if not (Value.is_null v) then
                total :=
                  !total
                  +. (float_of_int (Hierarchy.level_of_value hierarchy v)
                     /. float_of_int h)
            end)
          rel)
      (Microdata.quasi_identifiers md);
    if !cells = 0 then 0.0 else !total /. float_of_int !cells
  end

let distinct_combinations md =
  let rel = Microdata.relation md in
  let qi = Microdata.qi_positions md in
  let seen = Hashtbl.create 256 in
  Relation.iter
    (fun t -> Hashtbl.replace seen (Tuple.key (Tuple.project t qi)) ())
    rel;
  Hashtbl.length seen

let distinct_combination_ratio before after =
  let b = distinct_combinations before in
  if b = 0 then 1.0
  else float_of_int (distinct_combinations after) /. float_of_int b
