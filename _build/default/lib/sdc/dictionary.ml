module Value = Vadasa_base.Value
module Schema = Vadasa_relational.Schema

type entry = {
  microdb : string;
  attr : string;
  description : string;
  category : Microdata.category option;
}

type t = {
  mutable entries : entry list;  (* reverse registration order *)
  index : (string * string, entry) Hashtbl.t;
}

let create () = { entries = []; index = Hashtbl.create 32 }

let add t entry =
  let key = (entry.microdb, entry.attr) in
  if Hashtbl.mem t.index key then
    invalid_arg
      (Printf.sprintf "Dictionary: %s.%s already registered" entry.microdb
         entry.attr);
  Hashtbl.add t.index key entry;
  t.entries <- entry :: t.entries

let register t schema =
  let microdb = Schema.name schema in
  Array.iter
    (fun a ->
      add t
        {
          microdb;
          attr = a.Schema.attr_name;
          description = a.Schema.attr_description;
          category = None;
        })
    (Schema.attributes schema)

let replace t entry =
  let key = (entry.microdb, entry.attr) in
  Hashtbl.replace t.index key entry;
  t.entries <-
    List.map
      (fun e ->
        if String.equal e.microdb entry.microdb && String.equal e.attr entry.attr
        then entry
        else e)
      t.entries

let set_category t ~microdb ~attr category =
  match Hashtbl.find_opt t.index (microdb, attr) with
  | None ->
    invalid_arg (Printf.sprintf "Dictionary: %s.%s not registered" microdb attr)
  | Some entry -> replace t { entry with category = Some category }

let register_microdata t md =
  register t (Microdata.schema md);
  List.iter
    (fun (attr, cat) -> set_category t ~microdb:(Microdata.name md) ~attr cat)
    (Microdata.categories md)

let category t ~microdb ~attr =
  match Hashtbl.find_opt t.index (microdb, attr) with
  | None -> None
  | Some entry -> entry.category

let entries t = List.rev t.entries

let microdbs t =
  List.sort_uniq String.compare (List.map (fun e -> e.microdb) t.entries)

let attributes t ~microdb =
  List.filter (fun e -> String.equal e.microdb microdb) (entries t)

let uncategorized t = List.filter (fun e -> e.category = None) (entries t)

let to_facts t =
  let db_facts =
    List.map (fun name -> ("microdb", [| Value.Str name |])) (microdbs t)
  in
  let att_facts =
    List.map
      (fun e ->
        ("att", [| Value.Str e.microdb; Value.Str e.attr; Value.Str e.description |]))
      (entries t)
  in
  let cat_facts =
    List.filter_map
      (fun e ->
        match e.category with
        | None -> None
        | Some cat ->
          Some
            ( "cat",
              [|
                Value.Str e.microdb;
                Value.Str e.attr;
                Value.Str (Microdata.category_to_string cat);
              |] ))
      (entries t)
  in
  db_facts @ att_facts @ cat_facts

let categories_for t schema =
  let microdb = Schema.name schema in
  let rec collect acc = function
    | [] -> Some (List.rev acc)
    | attr :: rest ->
      (match category t ~microdb ~attr with
      | Some cat -> collect ((attr, cat) :: acc) rest
      | None -> None)
  in
  collect [] (Schema.attribute_names schema)

let pp ppf t =
  List.iter
    (fun name ->
      Format.fprintf ppf "microdata DB %s@." name;
      List.iter
        (fun e ->
          Format.fprintf ppf "  %-20s %-30s %s@." e.attr
            (match e.category with
            | Some cat -> Microdata.category_to_string cat
            | None -> "(uncategorized)")
            e.description)
        (attributes t ~microdb:name))
    (microdbs t)
