module Relational = Vadasa_relational
module Value = Vadasa_base.Value
module Schema = Relational.Schema
module Relation = Relational.Relation

type category = Identifier | Quasi_identifier | Non_identifying | Weight

let category_to_string = function
  | Identifier -> "identifier"
  | Quasi_identifier -> "quasi-identifier"
  | Non_identifying -> "non-identifying"
  | Weight -> "weight"

let category_of_string = function
  | "identifier" -> Some Identifier
  | "quasi-identifier" | "quasi_identifier" -> Some Quasi_identifier
  | "non-identifying" | "non_identifying" -> Some Non_identifying
  | "weight" -> Some Weight
  | _ -> None

type t = {
  relation : Relation.t;
  by_attr : (string, category) Hashtbl.t;
  ordered : (string * category) list;
  qi_positions : int array;
  identifier_positions : int array;
  weight_position : int option;
}

let make relation categories =
  let schema = Relation.schema relation in
  let by_attr = Hashtbl.create 16 in
  List.iter
    (fun (attr, cat) ->
      if not (Schema.mem schema attr) then
        invalid_arg ("Microdata.make: unknown attribute " ^ attr);
      if Hashtbl.mem by_attr attr then
        invalid_arg ("Microdata.make: duplicate category for " ^ attr);
      Hashtbl.add by_attr attr cat)
    categories;
  let ordered =
    List.map
      (fun attr ->
        match Hashtbl.find_opt by_attr attr with
        | Some cat -> (attr, cat)
        | None -> invalid_arg ("Microdata.make: no category for attribute " ^ attr))
      (Schema.attribute_names schema)
  in
  let positions_of cat =
    Array.of_list
      (List.filter_map
         (fun (attr, c) -> if c = cat then Some (Schema.index_of schema attr) else None)
         ordered)
  in
  let weights = positions_of Weight in
  if Array.length weights > 1 then
    invalid_arg "Microdata.make: more than one weight attribute";
  {
    relation;
    by_attr;
    ordered;
    qi_positions = positions_of Quasi_identifier;
    identifier_positions = positions_of Identifier;
    weight_position = (if Array.length weights = 1 then Some weights.(0) else None);
  }

let relation t = t.relation
let schema t = Relation.schema t.relation
let name t = Schema.name (schema t)
let cardinal t = Relation.cardinal t.relation

let category_of t attr =
  match Hashtbl.find_opt t.by_attr attr with
  | Some cat -> cat
  | None -> invalid_arg ("Microdata.category_of: unknown attribute " ^ attr)

let categories t = t.ordered

let quasi_identifiers t =
  List.filter_map
    (fun (attr, cat) -> if cat = Quasi_identifier then Some attr else None)
    t.ordered

let qi_positions t = t.qi_positions
let identifier_positions t = t.identifier_positions
let weight_position t = t.weight_position

let weight_of t i =
  match t.weight_position with
  | None -> 1.0
  | Some w ->
    (match Value.as_float (Relation.get t.relation i).(w) with
    | Some x -> x
    | None -> 1.0)

let with_relation t relation =
  if not (Schema.equal (Relation.schema relation) (schema t)) then
    invalid_arg "Microdata.with_relation: schema mismatch";
  { t with relation }

let copy t = { t with relation = Relation.copy t.relation }

let drop_identifiers t =
  let keep =
    List.filter_map
      (fun (attr, cat) -> if cat = Identifier then None else Some attr)
      t.ordered
  in
  Relational.Algebra.project t.relation keep

let qi_projection t i =
  Relational.Tuple.project (Relation.get t.relation i) t.qi_positions

let pp ppf t =
  Format.fprintf ppf "microdata %s (%d tuples)@." (name t) (cardinal t);
  List.iter
    (fun (attr, cat) ->
      Format.fprintf ppf "  %-20s %s@." attr (category_to_string cat))
    t.ordered;
  Relation.pp_sample ~limit:10 ppf t.relation
