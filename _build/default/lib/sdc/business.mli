(** Business knowledge: company-control relationships and disclosure-risk
    propagation along linked entities (paper, Section 4.4 / Algorithm 9).

    Risk propagates along relationships: if one member of a cluster of
    linked entities (same company group, same household, …) can be
    re-identified, the others follow. All members of a cluster get the
    combined risk 1 − ∏(1 − ρ_c).

    Control is the paper's recursive definition: X controls Y when X
    directly owns more than half of Y, or when companies controlled by X
    jointly own more than half of Y. The native closure mirrors the two
    Vadalog rules exactly; {!program} ships them for the engine. *)

type ownership = {
  owner : string;
  owned : string;
  share : float;  (** in (0, 1] *)
}

val control_closure : ownership list -> (string * string) list
(** All (controller, controlled) pairs under the recursive joint-control
    definition, sorted. *)

val clusters : (string * string) list -> string list list
(** Connected components of the control relation (undirected view):
    entities whose disclosure risks are linked. Singletons omitted. *)

val propagate :
  entity_of:(int -> string option) ->
  clusters:string list list ->
  float array ->
  float array
(** Per-tuple risk transform (plug into {!Cycle.config.risk_transform}):
    [entity_of] maps a tuple position to its entity identifier (e.g. the
    value of the [Id] attribute); every tuple whose entity belongs to a
    cluster receives the cluster's combined risk
    [1 − ∏(1 − ρ)] (at least its own risk). *)

val risk_transform :
  id_attr:string -> ownerships:ownership list ->
  Microdata.t -> float array -> float array
(** Convenience wiring of {!control_closure}, {!clusters} and {!propagate}
    keyed on a direct-identifier attribute. *)

val program : string
(** Vadalog source of the control rules:
    [rel(X,Y) :- own(X,Y,W), W > 0.5] and
    [rel(X,Y) :- rel(X,Z), own(Z,Y,W), msum(W, <Z>) > 0.5]. *)

val control_closure_via_engine : ownership list -> (string * string) list
(** Run {!program} on the reasoning engine (cross-check of the native
    closure; also the explainable path). *)
