module Value = Vadasa_base.Value

type t = {
  attr_types : (string, string) Hashtbl.t;
  supertypes : (string, string) Hashtbl.t;
  instance_types : (string, string) Hashtbl.t;  (* value key -> type *)
  parents : (string, Value.t) Hashtbl.t;  (* value key -> parent value *)
  mutable insertion : (string * Value.t array) list;  (* fact log, reversed *)
}

let key = Value.to_string

let create () =
  {
    attr_types = Hashtbl.create 16;
    supertypes = Hashtbl.create 16;
    instance_types = Hashtbl.create 64;
    parents = Hashtbl.create 64;
    insertion = [];
  }

let log t pred args = t.insertion <- (pred, args) :: t.insertion

let add_type_of t ~attr ~ty =
  Hashtbl.replace t.attr_types attr ty;
  log t "type_of" [| Value.Str attr; Value.Str ty |]

let add_subtype t ~sub ~super =
  Hashtbl.replace t.supertypes sub super;
  log t "sub_type_of" [| Value.Str sub; Value.Str super |]

let add_instance t ~value ~ty =
  Hashtbl.replace t.instance_types (key value) ty;
  log t "inst_of" [| value; Value.Str ty |]

let add_is_a t ~child ~parent =
  Hashtbl.replace t.parents (key child) parent;
  log t "is_a" [| child; parent |]

let type_of_attr t attr = Hashtbl.find_opt t.attr_types attr
let supertype t ty = Hashtbl.find_opt t.supertypes ty
let type_of_value t v = Hashtbl.find_opt t.instance_types (key v)

let parent t v =
  match Hashtbl.find_opt t.parents (key v) with
  | None -> None
  | Some p ->
    (* Algorithm 8 climbs via the type system when it can: the parent must
       be an instance of the value's supertype. With incomplete typing we
       still honour the direct IsA link. *)
    (match type_of_value t v with
    | None -> Some p
    | Some ty ->
      (match supertype t ty with
      | None -> Some p
      | Some super ->
        (match type_of_value t p with
        | Some pty when String.equal pty super -> Some p
        | Some _ -> Some p  (* typed differently: trust the IsA link *)
        | None -> Some p)))

let level_of_value t v =
  match type_of_value t v with
  | None -> 0
  | Some ty ->
    (* Count how many subtype steps lie below this type across all chains
       that end at it. We walk down is not stored; instead count steps from
       any base: level = distance from a type with no subtype pointing to
       it... simpler: count supertype steps from the attribute base is the
       caller's business; here count how many supertype hops remain and
       derive nothing. We instead count hops from the bottom by walking the
       subtype table backwards. *)
    let rec below current acc =
      match
        Hashtbl.fold
          (fun sub super found ->
            if found <> None then found
            else if String.equal super current then Some sub
            else found)
          t.supertypes None
      with
      | Some sub when acc < 32 -> below sub (acc + 1)
      | Some _ | None -> acc
    in
    below ty 0

let height t ~attr =
  match type_of_attr t attr with
  | None -> 0
  | Some ty ->
    let rec climb current acc =
      match supertype t current with
      | Some super when acc < 32 -> climb super (acc + 1)
      | Some _ | None -> acc
    in
    climb ty 0

let generalization_chain t v =
  let rec go current acc guard =
    if guard <= 0 then List.rev acc
    else
      match parent t current with
      | Some p when not (Value.equal p current) -> go p (p :: acc) (guard - 1)
      | Some _ | None -> List.rev acc
  in
  go v [ v ] 32

let to_facts t = List.rev t.insertion

let pp ppf t =
  List.iter
    (fun (pred, args) ->
      Format.fprintf ppf "%s(%s).@." pred
        (String.concat ", " (Array.to_list (Array.map Value.to_string args))))
    (to_facts t)
