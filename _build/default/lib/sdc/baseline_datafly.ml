module Value = Vadasa_base.Value
module Ids = Vadasa_base.Ids
module Relational = Vadasa_relational
module Relation = Relational.Relation
module Tuple = Relational.Tuple

type outcome = {
  anonymized : Microdata.t;
  generalization_rounds : (string * int) list;
  suppressed_tuples : int list;
  satisfied : bool;
  cells_generalized : int;
}

(* Tuples (excluding fully suppressed ones) living in combinations with
   frequency below k, under standard equality. *)
let small_combination_tuples md ~k =
  let stats =
    Relational.Algebra.Group_stats.compute
      ~semantics:Relational.Null_semantics.Standard
      ~rel:(Microdata.relation md) ~qi:(Microdata.qi_positions md) ()
  in
  let qi = Microdata.qi_positions md in
  let rel = Microdata.relation md in
  let out = ref [] in
  Array.iteri
    (fun i f ->
      let fully_suppressed =
        Array.for_all Value.is_null (Tuple.project (Relation.get rel i) qi)
      in
      if (not fully_suppressed) && f < k then out := i :: !out)
    stats.Relational.Algebra.Group_stats.freq;
  List.rev !out

let distinct_count md attr =
  let rel = Microdata.relation md in
  let pos = Relational.Schema.index_of (Microdata.schema md) attr in
  let seen = Hashtbl.create 64 in
  Relation.iter (fun t -> Hashtbl.replace seen (Value.to_string t.(pos)) ()) rel;
  Hashtbl.length seen

let run ?(k = 2) ?(max_suppression = 0.01) ~hierarchy input =
  let md = Microdata.copy input in
  let n = Microdata.cardinal md in
  let budget =
    max 0 (int_of_float (Float.round (max_suppression *. float_of_int n)))
  in
  let rounds = Hashtbl.create 8 in
  let cells = ref 0 in
  let continue = ref true in
  let guard = ref 0 in
  while !continue && !guard < 64 do
    incr guard;
    let small = small_combination_tuples md ~k in
    if List.length small <= budget then continue := false
    else begin
      (* Generalize the attribute with the most distinct values, among
         those that can still climb. *)
      let best = ref None in
      List.iter
        (fun attr ->
          let can_climb =
            (* An attribute can climb when at least one of its current
               values has a parent. *)
            let pos = Relational.Schema.index_of (Microdata.schema md) attr in
            let rel = Microdata.relation md in
            let found = ref false in
            Relation.iter
              (fun t ->
                if (not !found) && Hierarchy.parent hierarchy t.(pos) <> None
                then found := true)
              rel;
            !found
          in
          if can_climb then
            let d = distinct_count md attr in
            match !best with
            | Some (_, best_d) when best_d >= d -> ()
            | _ -> best := Some (attr, d))
        (Microdata.quasi_identifiers md);
      match !best with
      | None -> continue := false  (* nothing can generalize further *)
      | Some (attr, _) ->
        let steps = Recoding.recode_attr_fully hierarchy md ~attr in
        if steps = [] then continue := false
        else begin
          cells :=
            !cells
            + List.fold_left
                (fun acc s -> acc + s.Recoding.cells_changed)
                0 steps;
          let r = try Hashtbl.find rounds attr with Not_found -> 0 in
          Hashtbl.replace rounds attr (r + 1)
        end
    end
  done;
  (* Suppress the remaining small-combination tuples entirely. *)
  let ids = Ids.create () in
  let leftovers = small_combination_tuples md ~k in
  List.iter
    (fun tuple ->
      List.iter
        (fun attr -> ignore (Suppression.suppress ids md ~tuple ~attr))
        (Microdata.quasi_identifiers md))
    leftovers;
  {
    anonymized = md;
    generalization_rounds =
      List.sort compare (Hashtbl.fold (fun a r acc -> (a, r) :: acc) rounds []);
    suppressed_tuples = leftovers;
    satisfied = List.length leftovers <= budget;
    cells_generalized = !cells;
  }

let k_anonymous ?(k = 2) md =
  small_combination_tuples md ~k = []
