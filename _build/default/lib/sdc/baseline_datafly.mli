(** The Datafly baseline (Sweeney 1997, cited in the paper's related work).

    Datafly is the classic procedural route to k-anonymity that Vada-SA's
    declarative, cell-level approach is positioned against: it repeatedly
    applies {e full-domain generalization} — every value of the attribute
    with the most distinct values rolls up one hierarchy level — until the
    number of tuples in small (< k) combinations falls below a suppression
    budget; the survivors are suppressed outright.

    Coarse but fast: where Vada-SA erases single cells of the risky tuples,
    Datafly rewrites whole columns, so its information loss concentrates in
    generalization rather than suppression. The bench harness contrasts
    both on the same datasets. *)

type outcome = {
  anonymized : Microdata.t;
  generalization_rounds : (string * int) list;
      (** attribute → number of full-domain roll-ups applied *)
  suppressed_tuples : int list;
      (** tuples whose quasi-identifiers were fully suppressed at the end *)
  satisfied : bool;
      (** k-anonymity achieved within the suppression budget *)
  cells_generalized : int;
}

val run :
  ?k:int ->
  ?max_suppression:float ->
  hierarchy:Hierarchy.t ->
  Microdata.t ->
  outcome
(** [k] defaults to 2; [max_suppression] (default 0.01) is the fraction of
    tuples that may be suppressed instead of further generalizing. The
    input is copied, never mutated. *)

val k_anonymous : ?k:int -> Microdata.t -> bool
(** Check: every tuple's combination (fully suppressed tuples excluded)
    reaches frequency ≥ k under standard equality of generalized values. *)
