(** Runtime heuristics (paper, Section 4.4): which risky tuple to anonymize
    first, and which quasi-identifier of it to touch.

    These reproduce the routing strategies of the underlying reasoning
    system: bindings of the anonymization rule are prioritized rather than
    processed in arbitrary order. *)

(** Order in which risky tuples are anonymized within a round. *)
type tuple_order =
  | Less_significant_first
      (** ascending sampling weight: sacrifice the least statistically
          significant tuples first, preserving data utility *)
  | Most_risky_first  (** descending estimated risk *)
  | In_order  (** source position *)

val order_tuples :
  tuple_order -> Microdata.t -> risk:float array -> int list -> int list

(** Which quasi-identifier of a risky tuple to suppress or recode. *)
type qi_choice =
  | Most_risky_qi
      (** the attribute whose removal raises the tuple's frequency the most
          — maximal risk-reduction per suppressed value (the paper's
          "most risky first" routing strategy) *)
  | Most_selective_qi
      (** the attribute with the most distinct values globally — a cheap
          static proxy for {!Most_risky_qi} *)
  | First_qi  (** schema order *)

(** Per-round cache of leave-one-out frequency tables for
    {!Most_risky_qi}; build once per anonymization round. *)
type cache

val build_cache : Microdata.t -> cache

val choose_qi :
  qi_choice -> cache -> Microdata.t -> tuple:int -> candidates:string list ->
  string option
(** Pick among [candidates] (attributes still suppressible/recodable for
    the tuple); [None] when the list is empty. *)

val tuple_order_to_string : tuple_order -> string
val qi_choice_to_string : qi_choice -> string
