(** Local suppression with labelled nulls (paper, Algorithm 7).

    Suppressing a quasi-identifier replaces its value with a fresh labelled
    null ⊥ₙ. Under the maybe-match group semantics the suppressed tuple
    then joins every compatible combination, raising its frequency — one
    null can raise several tuples' anonymity at once (the paper's Figure 5
    example). *)

val suppress :
  Vadasa_base.Ids.t -> Microdata.t -> tuple:int -> attr:string ->
  Vadasa_base.Value.t option
(** Replace the tuple's value for a quasi-identifier attribute with a fresh
    null, in place. Returns the suppressed (previous) value, or [None] when
    the value was already a null (nothing to do — Algorithm 7's
    ["VSet\[A\] is not null"] guard). Raises [Invalid_argument] when [attr]
    is not a quasi-identifier. *)

val suppressible : Microdata.t -> tuple:int -> string list
(** Quasi-identifier attributes of the tuple still holding constants — the
    remaining suppression moves. *)

val program : string
(** Vadalog source of Algorithm 7: given [anonymize(I, A)] directives and
    [tuple(I, VSet)] facts, derive the suppressed
    [tuple_s(I, (A,Z) ∪ (VSet \ (A,_)))] with an invented null Z. *)
