(** SUDA — Special Unique Detection (paper, Algorithm 6).

    A {e sample unique} of a tuple is a set of quasi-identifier name–value
    pairs matched by no other tuple; a {e minimal sample unique} (MSU) is a
    sample unique none of whose proper subsets is one. A tuple identified
    by very few attributes is especially exposed: Algorithm 6 flags a tuple
    risky when it has an MSU smaller than a threshold.

    Search strategy: one frequency table per attribute subset of size ≤
    [max_size], computed in a single pass over the data each, then per-tuple
    minimality by subset-of-found-MSU pruning — the greedy preemption that
    keeps Figure 7f free of the combinatorial blowup.

    Labelled nulls (from earlier suppression rounds) are handled in the
    maybe-match spirit: a tuple's frequency for a subset is looked up on the
    subset restricted to its non-null positions, so a suppressed attribute
    can no longer make the tuple unique. *)

type tuple_msus = {
  msus : int array list;  (** each MSU as quasi-identifier positions (into
                              {!Microdata.qi_positions} order) *)
  min_size : int option;
}

val find_msus : ?max_size:int -> Microdata.t -> tuple_msus array
(** Per-tuple MSUs of size ≤ [max_size] (default 3). *)

val estimate :
  max_msu_size:int -> threshold_size:int -> Microdata.t -> float array
(** Algorithm 6's risk: 1.0 when the tuple has an MSU of size <
    [threshold_size] (searching sizes ≤ [max_msu_size]), else 0.0. *)

val dis_scores : ?max_size:int -> Microdata.t -> float array
(** Graded SUDA scores: each MSU of size s over m quasi-identifiers
    contributes 2^(m−s); normalized by the maximum attainable score. Used
    for ranking rather than thresholding. *)
