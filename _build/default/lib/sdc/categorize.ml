module Value = Vadasa_base.Value
module Schema = Vadasa_relational.Schema
module V = Vadasa_vadalog

type assignment = {
  attr : string;
  category : Microdata.category;
  matched : string;
  score : float;
}

type conflict = {
  conflict_attr : string;
  candidates : (Microdata.category * string * float) list;
}

type result = {
  assigned : assignment list;
  unresolved : string list;
  conflicts : conflict list;
}

type experience = (string * Microdata.category) list

let builtin_experience =
  let id = Microdata.Identifier
  and qi = Microdata.Quasi_identifier
  and non = Microdata.Non_identifying
  and w = Microdata.Weight in
  [
    (* direct identifiers *)
    ("id", id); ("identifier", id); ("ssn", id); ("social_security_number", id);
    ("fiscal_code", id); ("tax_code", id); ("vat_number", id);
    ("licence_number", id); ("passport", id); ("iban", id); ("account_number", id);
    ("company_id", id); ("customer_id", id);
    (* quasi-identifiers *)
    ("qi", qi); (* the synthetic generator's qi_1, qi_2, ... columns *)
    ("quasi_identifier", qi);
    ("area", qi); ("region", qi); ("city", qi); ("province", qi);
    ("zip_code", qi); ("country", qi); ("sector", qi); ("industry", qi);
    ("employees", qi); ("num_employees", qi); ("size_class", qi);
    ("age", qi); ("gender", qi); ("occupation", qi); ("education", qi);
    ("marital_status", qi); ("income_class", qi); ("revenue_class", qi);
    ("residential_revenue", qi); ("export_revenue", qi); ("legal_form", qi);
    ("birth_year", qi);
    (* non-identifying *)
    ("growth", non); ("growth_6mos", non); ("export_to_de", non);
    ("inflation_expectation", non); ("interest_rate", non); ("notes", non);
    ("amount", non); ("balance", non); ("score", non); ("flag", non);
    ("internal_key", non); ("timestamp", non);
    (* sampling weight *)
    ("weight", w); ("sampling_weight", w); ("sample_weight", w);
  ]

let run ?(similarity = Similarity.default) ?(threshold = 0.55)
    ?(conflict_margin = 0.05) ?(feedback = true) ~experience schema =
  let base = ref experience in
  let assigned = ref [] in
  let unresolved = ref [] in
  let conflicts = ref [] in
  List.iter
    (fun attr ->
      let scored = Similarity.best_matches similarity attr !base in
      match List.filter (fun (_, _, s) -> s >= threshold) scored with
      | [] -> unresolved := attr :: !unresolved
      | ((best_cat, best_name, best_score) :: _ as hits) ->
        (* EGD check (Rule 4): near-tied hits with differing categories. *)
        let rivals =
          List.filter
            (fun (cat, _, s) ->
              cat <> best_cat && best_score -. s <= conflict_margin)
            hits
        in
        if rivals <> [] then
          conflicts :=
            {
              conflict_attr = attr;
              candidates = (best_cat, best_name, best_score) :: rivals;
            }
            :: !conflicts;
        assigned :=
          { attr; category = best_cat; matched = best_name; score = best_score }
          :: !assigned;
        if feedback then base := (attr, best_cat) :: !base)
    (Schema.attribute_names schema);
  ( {
      assigned = List.rev !assigned;
      unresolved = List.rev !unresolved;
      conflicts = List.rev !conflicts;
    },
    !base )

let categorize_microdata ?similarity ?threshold
    ?(experience = builtin_experience) ?(overrides = []) relation =
  let schema = Vadasa_relational.Relation.schema relation in
  let result, _ = run ?similarity ?threshold ~experience schema in
  let category_of attr =
    match List.assoc_opt attr overrides with
    | Some cat -> Some cat
    | None ->
      List.find_map
        (fun a -> if String.equal a.attr attr then Some a.category else None)
        result.assigned
  in
  let missing =
    List.filter
      (fun attr -> category_of attr = None)
      (Schema.attribute_names schema)
  in
  if missing <> [] then
    Error
      ("uncategorized attributes (expert input needed): "
      ^ String.concat ", " missing)
  else
    Ok
      (Microdata.make relation
         (List.map
            (fun attr -> (attr, Option.get (category_of attr)))
            (Schema.attribute_names schema)))

let program ~threshold =
  {|
% Algorithm 1 - attribute categorization by recursive experience.
@label("borrow_category").
cat(M, A, C) :- att(M, A, D), exp_base(A1, C), similarity(A, A1) >= |}
  ^ Printf.sprintf "%.6f" threshold
  ^ {|.
@label("feedback").
exp_base(A, C) :- cat(M, A, C).
@label("egd_check").
conflict(M, A, C1, C2) :- cat(M, A, C1), cat(M, A, C2), C1 != C2.
@output("cat").
@output("conflict").
|}

let run_via_engine ?(threshold = 0.55) ~experience schema =
  let source = program ~threshold in
  let parsed = V.Parser.parse source in
  let facts =
    List.map
      (fun a ->
        ( "att",
          [|
            Value.Str (Schema.name schema);
            Value.Str a.Schema.attr_name;
            Value.Str a.Schema.attr_description;
          |] ))
      (Array.to_list (Schema.attributes schema))
    @ List.map
        (fun (name, cat) ->
          ( "exp_base",
            [| Value.Str name; Value.Str (Microdata.category_to_string cat) |] ))
        experience
  in
  let program = V.Program.union parsed (V.Program.make ~facts []) in
  let engine = V.Engine.create program in
  V.Engine.run engine;
  V.Engine.facts engine "cat"
  |> List.filter_map (fun fact ->
         match fact with
         | [| Value.Str m; Value.Str attr; Value.Str cat |]
           when String.equal m (Schema.name schema) ->
           (match Microdata.category_of_string cat with
           | Some category -> Some (attr, category)
           | None -> None)
         | _ -> None)
