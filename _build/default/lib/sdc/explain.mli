(** Explainability surface (paper desideratum vi): every risk figure and
    every anonymization decision rendered in domain terms. *)

val action : Microdata.t -> Cycle.action -> string
(** One-line, human-readable account of an anonymization action: which
    tuple, which attribute, what was removed or generalized, and the risk
    binding that motivated it. *)

val trace : Microdata.t -> Cycle.outcome -> string
(** The full anonymization narrative. *)

val tuple_risk :
  Microdata.t -> Risk.report -> tuple:int -> string
(** Why a tuple carries its risk: measure, frequency, weight sum and the
    quasi-identifier combination concerned. *)

val summary : Microdata.t -> Risk.report -> threshold:float -> string
(** File-level account: global risk, risky-tuple count, riskiest
    combinations. *)
