(** Domain-knowledge hierarchies for global recoding (paper, Section 4.3).

    The knowledge base stores what the paper encodes as
    [TypeOf(Area, City)], [SubTypeOf(City, Region)], [InstOf(Milano, City)],
    [IsA(Milano, North)]: attribute domains arranged in levels, every value
    linked to its coarser parent. Rolling a value up one level is the
    single recoding step; several roll-ups may be needed (the hierarchy is
    climbed recursively). *)

type t

val create : unit -> t

val add_type_of : t -> attr:string -> ty:string -> unit
(** The attribute's base (finest) type, e.g. Area : City. *)

val add_subtype : t -> sub:string -> super:string -> unit
(** City ⊂ Region ⊂ Country, … *)

val add_instance : t -> value:Vadasa_base.Value.t -> ty:string -> unit

val add_is_a : t -> child:Vadasa_base.Value.t -> parent:Vadasa_base.Value.t -> unit
(** Milano IsA North. *)

val type_of_attr : t -> string -> string option

val supertype : t -> string -> string option

val type_of_value : t -> Vadasa_base.Value.t -> string option

val parent : t -> Vadasa_base.Value.t -> Vadasa_base.Value.t option
(** One-level roll-up of a value, when the KB knows one whose type is the
    supertype of the value's type (Algorithm 8's climb). Falls back to the
    plain IsA parent when type information is incomplete. *)

val level_of_value : t -> Vadasa_base.Value.t -> int
(** 0 for values of a base type, +1 per supertype level; 0 when unknown. *)

val height : t -> attr:string -> int
(** Number of levels above the attribute's base type. *)

val generalization_chain : t -> Vadasa_base.Value.t -> Vadasa_base.Value.t list
(** The value followed by its successive roll-ups, finest first. *)

val to_facts : t -> (string * Vadasa_base.Value.t array) list
(** [type_of/2], [sub_type_of/2], [inst_of/2], [is_a/2] facts for the
    reasoning engine. *)

val pp : Format.formatter -> t -> unit
