(** The metadata dictionary (paper, Section 4.1 and Figure 4).

    The dictionary is the meta-level view that makes Vada-SA schema
    independent: facts [MicroDB(name)], [Att(microDB, attr, description)]
    and [Category(microDB, attr, category)] describe every registered
    microdata DB, and all reasoning modules work against these facts rather
    than against concrete schemas. *)

type entry = {
  microdb : string;
  attr : string;
  description : string;
  category : Microdata.category option;  (** [None] until categorized *)
}

type t

val create : unit -> t

val register :
  t -> Vadasa_relational.Schema.t -> unit
(** Add [MicroDB] and [Att] entries for every attribute of a schema;
    categories start undetermined. *)

val register_microdata : t -> Microdata.t -> unit
(** Register a fully categorized microdata DB. *)

val set_category : t -> microdb:string -> attr:string -> Microdata.category -> unit

val category : t -> microdb:string -> attr:string -> Microdata.category option

val entries : t -> entry list
(** All entries, grouped by microdata DB, in registration order. *)

val microdbs : t -> string list

val attributes : t -> microdb:string -> entry list

val uncategorized : t -> entry list
(** Entries still lacking a category — the human-in-the-loop queue. *)

val to_facts : t -> (string * Vadasa_base.Value.t array) list
(** The extensional encoding: [microdb/1], [att/3] and [cat/3] facts as
    consumed by the reasoning programs. *)

val categories_for : t -> Vadasa_relational.Schema.t ->
  (string * Microdata.category) list option
(** The full category assignment for a schema, if every attribute has
    one — ready for {!Microdata.make}. *)

val pp : Format.formatter -> t -> unit
