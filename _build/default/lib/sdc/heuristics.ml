module Value = Vadasa_base.Value
module Relation = Vadasa_relational.Relation
module Tuple = Vadasa_relational.Tuple
module Schema = Vadasa_relational.Schema

type tuple_order = Less_significant_first | Most_risky_first | In_order

let order_tuples order md ~risk indices =
  match order with
  | In_order -> indices
  | Less_significant_first ->
    List.stable_sort
      (fun a b -> Float.compare (Microdata.weight_of md a) (Microdata.weight_of md b))
      indices
  | Most_risky_first ->
    List.stable_sort (fun a b -> Float.compare risk.(b) risk.(a)) indices

type qi_choice = Most_risky_qi | Most_selective_qi | First_qi

type cache = {
  (* leave_one_out.(j): frequency of each tuple's projection onto the
     quasi-identifiers minus attribute j *)
  leave_one_out : (string, int) Hashtbl.t array;
  distinct_counts : int array;  (* per quasi-identifier *)
  qi_attrs : string array;
  projections : Tuple.t array;
}

let build_cache md =
  let rel = Microdata.relation md in
  let qi = Microdata.qi_positions md in
  let m = Array.length qi in
  let n = Relation.cardinal rel in
  let projections = Array.init n (fun i -> Tuple.project (Relation.get rel i) qi) in
  let leave_one_out =
    Array.init m (fun j ->
        let keep =
          Array.of_list
            (List.filter (fun p -> p <> j) (List.init m (fun p -> p)))
        in
        let table = Hashtbl.create (max 16 n) in
        Array.iter
          (fun proj ->
            let key = Tuple.key (Tuple.project proj keep) in
            let c = try Hashtbl.find table key with Not_found -> 0 in
            Hashtbl.replace table key (c + 1))
          projections;
        table)
  in
  let distinct_counts =
    Array.init m (fun j ->
        let seen = Hashtbl.create 64 in
        Array.iter
          (fun proj -> Hashtbl.replace seen (Value.to_string proj.(j)) ())
          projections;
        Hashtbl.length seen)
  in
  {
    leave_one_out;
    distinct_counts;
    qi_attrs = Array.of_list (Microdata.quasi_identifiers md);
    projections;
  }

let qi_index cache attr =
  let rec go j =
    if j >= Array.length cache.qi_attrs then None
    else if String.equal cache.qi_attrs.(j) attr then Some j
    else go (j + 1)
  in
  go 0

let freq_without cache ~tuple j =
  let m = Array.length cache.qi_attrs in
  let keep =
    Array.of_list (List.filter (fun p -> p <> j) (List.init m (fun p -> p)))
  in
  let key = Tuple.key (Tuple.project cache.projections.(tuple) keep) in
  try Hashtbl.find cache.leave_one_out.(j) key with Not_found -> 0

let choose_qi choice cache md ~tuple ~candidates =
  ignore md;
  match candidates with
  | [] -> None
  | first :: _ ->
    (match choice with
    | First_qi -> Some first
    | Most_selective_qi ->
      let best = ref first and best_score = ref (-1) in
      List.iter
        (fun attr ->
          match qi_index cache attr with
          | Some j when cache.distinct_counts.(j) > !best_score ->
            best := attr;
            best_score := cache.distinct_counts.(j)
          | Some _ | None -> ())
        candidates;
      Some !best
    | Most_risky_qi ->
      (* Maximize the frequency the tuple attains once the attribute is
         ignored: the biggest anonymity gain per suppression. Break ties
         toward the more selective attribute. *)
      let best = ref first and best_freq = ref (-1) and best_distinct = ref (-1) in
      List.iter
        (fun attr ->
          match qi_index cache attr with
          | None -> ()
          | Some j ->
            let f = freq_without cache ~tuple j in
            let d = cache.distinct_counts.(j) in
            if f > !best_freq || (f = !best_freq && d > !best_distinct) then begin
              best := attr;
              best_freq := f;
              best_distinct := d
            end)
        candidates;
      Some !best)

let tuple_order_to_string = function
  | Less_significant_first -> "less-significant-first"
  | Most_risky_first -> "most-risky-first"
  | In_order -> "in-order"

let qi_choice_to_string = function
  | Most_risky_qi -> "most-risky-qi"
  | Most_selective_qi -> "most-selective-qi"
  | First_qi -> "first-qi"
