(** Pluggable attribute-name similarity for categorization (the [∼] of
    Algorithm 1). *)

type func = string -> string -> float
(** Symmetric, in [\[0,1\]]. *)

val exact : func
(** 1.0 on equal normalized names, 0.0 otherwise. *)

val edit : func
(** Normalized Levenshtein similarity. *)

val token : func
(** Token-set Jaccard. *)

val default : func
(** The blend used by default ({!Vadasa_base.Strsim.similarity}) — also
    what the engine's [similarity] builtin computes, so the native and
    reasoned categorization paths agree. *)

val best_matches :
  func -> string -> (string * 'a) list -> ('a * string * float) list
(** All experience-base entries scored against a name, best first. *)
