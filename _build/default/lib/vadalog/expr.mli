(** Expressions: the computational layer of rule bodies and heads.

    Expressions appear as guards ([R > T]), assignments ([R = 1/S]) and head
    arguments (e.g. the suppression head
    [tuple(M, I, union(remove_key(VSet, A), pair(A, Z)))], Algorithm 7). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** always real division *)
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type t =
  | Const of Vadasa_base.Value.t
  | Var of string
  | Call of string * t list  (** builtin function application *)
  | Binop of binop * t * t
  | Not of t
  | Neg of t

exception Eval_error of string

type env = (string, Vadasa_base.Value.t) Hashtbl.t

val eval : env -> t -> Vadasa_base.Value.t
(** Raises {!Eval_error} on unbound variables or type errors. Arithmetic on
    two [Int]s stays integral except [Div]; comparisons use the total value
    order; [Eq]/[Ne] use standard (not maybe-match) equality — use the
    [maybe_eq] builtin for =⊥. *)

val eval_bool : env -> t -> bool
(** Evaluates and requires a boolean. *)

val vars : t -> string list
(** Distinct variables, first-occurrence order. *)

val of_term : Term.t -> t

val as_term : t -> Term.t option
(** [Some] when the expression is a bare variable or constant. *)

val binop_to_string : binop -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
