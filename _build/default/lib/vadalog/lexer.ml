type token =
  | IDENT of string
  | VAR of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | IMPLIES
  | AT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | KW_AND
  | KW_OR
  | HASH_INT of int
  | EOF

exception Error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_lower c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      emit
        (match word with
        | "not" -> KW_NOT
        | "mod" -> PERCENT
        | "true" -> KW_TRUE
        | "false" -> KW_FALSE
        | "and" -> KW_AND
        | "or" -> KW_OR
        | _ -> IDENT word)
    end
    else if is_upper c || c = '_' then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (VAR (String.sub src start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let d = src.[!i] in
        if d = '"' then begin
          closed := true;
          incr i
        end
        else if d = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | other -> Buffer.add_char buf other);
          i := !i + 2
        end
        else begin
          if d = '\n' then incr line;
          Buffer.add_char buf d;
          incr i
        end
      done;
      if not !closed then fail !line "unterminated string literal";
      emit (STRING (Buffer.contents buf))
    end
    else if c = '#' then begin
      incr i;
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i = start then fail !line "expected digits after '#'";
      emit (HASH_INT (int_of_string (String.sub src start (!i - start))))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | ":-" ->
        emit IMPLIES;
        i := !i + 2
      | "!=" ->
        emit NE;
        i := !i + 2
      | "<=" ->
        emit LE;
        i := !i + 2
      | ">=" ->
        emit GE;
        i := !i + 2
      | _ ->
        (match c with
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '{' -> emit LBRACE
        | '}' -> emit RBRACE
        | ',' -> emit COMMA
        | ';' -> emit SEMI
        | '.' -> emit DOT
        | '@' -> emit AT
        | '=' -> emit EQ
        | '<' -> emit LT
        | '>' -> emit GT
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '*' -> emit STAR
        | '/' -> emit SLASH
        | '%' -> emit PERCENT
        | _ -> fail !line "unexpected character %C" c);
        incr i
    end
  done;
  emit EOF;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | IDENT s -> s
  | VAR s -> s
  | INT x -> string_of_int x
  | FLOAT x -> string_of_float x
  | STRING s -> "\"" ^ s ^ "\""
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | DOT -> "."
  | IMPLIES -> ":-"
  | AT -> "@"
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | KW_NOT -> "not"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_AND -> "and"
  | KW_OR -> "or"
  | HASH_INT n -> "#" ^ string_of_int n
  | EOF -> "<eof>"
