(** Rules: existential rules (tuple-generating dependencies) extended with
    guards, assignments, stratified negation and monotonic aggregation. *)

type agg_result =
  | Bind of string
      (** [R = msum(E, <C>)] — the aggregate value is bound to a variable
          used in the head. Such rules must be stratified: their body
          predicates must be saturated before the rule fires. *)
  | Test of Expr.binop * Expr.t
      (** [msum(E, <C>) > 0.5] — the aggregate is only compared against a
          threshold. Because the test's truth can only flip monotonically,
          these rules may take part in recursion (paper, Section 4.4:
          company-control clusters). *)

type agg = {
  agg_op : Aggregate.op;
  agg_arg : Expr.t;  (** ignored for [mcount] *)
  agg_contributors : Term.t list;
  agg_result : agg_result;
}

type literal =
  | Pos of Atom.t
  | Neg of Atom.t  (** stratified negation *)
  | Guard of Expr.t  (** must evaluate to [true] *)
  | Assign of string * Expr.t
      (** binds when the variable is free, checks equality when bound *)
  | Agg of agg

type t = {
  id : int;
  label : string;
  head : Atom.t list;
  body : literal list;
}

val make :
  ?label:string -> id:int -> head:Atom.t list -> body:literal list -> unit -> t

val head_vars : t -> string list

val positive_body_vars : t -> string list
(** Variables bound by positive body atoms, in join order. *)

val bound_vars : t -> string list
(** Variables bound by positive atoms, assignments or an aggregate [Bind]. *)

val existential_vars : t -> string list
(** Head variables not bound by the body: each gets a fresh labelled null
    per distinct binding of the frontier (the bound head variables). *)

val frontier_vars : t -> string list
(** Head variables that {e are} bound by the body. *)

val the_agg : t -> agg option
(** The rule's aggregate literal, if any. *)

val body_predicates : t -> (string * [ `Pos | `Neg ]) list

val head_predicates : t -> string list

val validate : t -> (unit, string) result
(** Structural safety: body atoms term-shaped; guards/assignments only over
    bindable variables; negated atoms safe; at most one aggregate, placed
    semantically last; no existentials in aggregate rules. Existential
    variables may appear inside head expressions — e.g. Algorithm 7's
    suppression head [(A, Z) ∪ (VSet \ (A, _))] — where they evaluate to
    the invented labelled null. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
