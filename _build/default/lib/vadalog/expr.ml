module Value = Vadasa_base.Value

type binop = Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or

type t =
  | Const of Value.t
  | Var of string
  | Call of string * t list
  | Binop of binop * t * t
  | Not of t
  | Neg of t

exception Eval_error of string

type env = (string, Value.t) Hashtbl.t

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let arith op_name int_op float_op a b =
  match (a : Value.t), (b : Value.t) with
  | Int x, Int y -> Value.Int (int_op x y)
  | _ ->
    (match Value.as_float a, Value.as_float b with
    | Some x, Some y -> Value.Float (float_op x y)
    | _ ->
      err "%s: non-numeric operands %s, %s" op_name (Value.to_string a)
        (Value.to_string b))

let rec eval env expr =
  match expr with
  | Const v -> v
  | Var x ->
    (match Hashtbl.find_opt env x with
    | Some v -> v
    | None -> err "unbound variable %s" x)
  | Call (name, args) ->
    let vals = List.map (eval env) args in
    (try Builtins.apply name vals with Builtins.Error m -> raise (Eval_error m))
  | Not e ->
    (match eval env e with
    | Bool b -> Value.Bool (not b)
    | v -> err "not: expected boolean, got %s" (Value.to_string v))
  | Neg e ->
    (match eval env e with
    | Int x -> Value.Int (-x)
    | Float x -> Value.Float (-.x)
    | v -> err "unary minus: non-numeric %s" (Value.to_string v))
  | Binop (op, a, b) ->
    (match op with
    | And ->
      (match eval env a with
      | Bool false -> Value.Bool false
      | Bool true ->
        (match eval env b with
        | Bool r -> Value.Bool r
        | v -> err "and: expected boolean, got %s" (Value.to_string v))
      | v -> err "and: expected boolean, got %s" (Value.to_string v))
    | Or ->
      (match eval env a with
      | Bool true -> Value.Bool true
      | Bool false ->
        (match eval env b with
        | Bool r -> Value.Bool r
        | v -> err "or: expected boolean, got %s" (Value.to_string v))
      | v -> err "or: expected boolean, got %s" (Value.to_string v))
    | _ ->
      let va = eval env a and vb = eval env b in
      (match op with
      | Add -> arith "+" ( + ) ( +. ) va vb
      | Sub -> arith "-" ( - ) ( -. ) va vb
      | Mul -> arith "*" ( * ) ( *. ) va vb
      | Div ->
        (match Value.as_float va, Value.as_float vb with
        | Some x, Some y ->
          if y = 0.0 then err "division by zero" else Value.Float (x /. y)
        | _ ->
          err "/: non-numeric operands %s, %s" (Value.to_string va)
            (Value.to_string vb))
      | Mod ->
        (match va, vb with
        | Int x, Int y ->
          if y = 0 then err "modulo by zero" else Value.Int (x mod y)
        | _ -> err "%%: integer operands required")
      | Eq -> Value.Bool (numeric_equal va vb)
      | Ne -> Value.Bool (not (numeric_equal va vb))
      | Lt -> Value.Bool (numeric_compare va vb < 0)
      | Le -> Value.Bool (numeric_compare va vb <= 0)
      | Gt -> Value.Bool (numeric_compare va vb > 0)
      | Ge -> Value.Bool (numeric_compare va vb >= 0)
      | And | Or -> assert false))

(* Comparisons identify Int and Float numerically (2 = 2.0), so that rules
   mixing integer thresholds and real risks behave as users expect. *)
and numeric_compare a b =
  match Value.as_float a, Value.as_float b with
  | Some x, Some y -> Float.compare x y
  | _ -> Value.compare a b

and numeric_equal a b = numeric_compare a b = 0

let eval_bool env e =
  match eval env e with
  | Bool b -> b
  | v -> err "guard: expected boolean, got %s" (Value.to_string v)

let vars expr =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Const _ -> ()
    | Var x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        acc := x :: !acc
      end
    | Call (_, args) -> List.iter go args
    | Binop (_, a, b) ->
      go a;
      go b
    | Not e | Neg e -> go e
  in
  go expr;
  List.rev !acc

let of_term = function
  | Term.Const v -> Const v
  | Term.Var x -> Var x

let as_term = function
  | Const v -> Some (Term.Const v)
  | Var x -> Some (Term.Var x)
  | Call _ | Binop _ | Not _ | Neg _ -> None

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"

let rec to_string = function
  | Const v -> Value.to_string v
  | Var x -> x
  | Call (name, args) ->
    name ^ "(" ^ String.concat ", " (List.map to_string args) ^ ")"
  | Binop (op, a, b) ->
    "(" ^ to_string a ^ " " ^ binop_to_string op ^ " " ^ to_string b ^ ")"
  | Not e -> "not(" ^ to_string e ^ ")"
  | Neg e -> "-" ^ to_string e

let pp ppf e = Format.pp_print_string ppf (to_string e)
