type t = {
  pred : string;
  args : Expr.t array;
}

let make pred args = { pred; args = Array.of_list args }

let of_terms pred terms = make pred (List.map Expr.of_term terms)

let arity t = Array.length t.args

let vars t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun e ->
      List.iter
        (fun v ->
          if not (Hashtbl.mem seen v) then begin
            Hashtbl.add seen v ();
            acc := v :: !acc
          end)
        (Expr.vars e))
    t.args;
  List.rev !acc

let as_terms t =
  let n = Array.length t.args in
  let out = Array.make n (Term.Var "_") in
  let rec go i =
    if i >= n then Some out
    else
      match Expr.as_term t.args.(i) with
      | Some term ->
        out.(i) <- term;
        go (i + 1)
      | None -> None
  in
  go 0

let to_string t =
  t.pred ^ "("
  ^ String.concat ", " (Array.to_list (Array.map Expr.to_string t.args))
  ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)
