(** Terms: the arguments of body atoms — constants or variables. *)

type t =
  | Const of Vadasa_base.Value.t
  | Var of string

val equal : t -> t -> bool

val is_var : t -> bool

val vars : t list -> string list
(** Distinct variable names, in first-occurrence order. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
