module Value = Vadasa_base.Value

exception Error of { line : int; message : string }

type state = {
  tokens : (Lexer.token * int) array;
  mutable pos : int;
  mutable next_rule_id : int;
  mutable next_anon : int;
  mutable pending_label : string option;
}

let peek st = fst st.tokens.(st.pos)
let peek_at st k =
  if st.pos + k < Array.length st.tokens then fst st.tokens.(st.pos + k)
  else Lexer.EOF

let line st = snd st.tokens.(st.pos)

let fail st fmt =
  Printf.ksprintf (fun message -> raise (Error { line = line st; message })) fmt

let advance st = st.pos <- st.pos + 1

let expect st token =
  if peek st = token then advance st
  else
    fail st "expected %s but found %s"
      (Lexer.token_to_string token)
      (Lexer.token_to_string (peek st))

let fresh_anon st =
  st.next_anon <- st.next_anon + 1;
  "_anon" ^ string_of_int st.next_anon

let cmp_of_token = function
  | Lexer.EQ -> Some Expr.Eq
  | Lexer.NE -> Some Expr.Ne
  | Lexer.LT -> Some Expr.Lt
  | Lexer.LE -> Some Expr.Le
  | Lexer.GT -> Some Expr.Gt
  | Lexer.GE -> Some Expr.Ge
  | _ -> None

(* --- expressions ------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = Lexer.KW_OR then begin
    advance st;
    Expr.Binop (Expr.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_cmp st in
  if peek st = Lexer.KW_AND then begin
    advance st;
    Expr.Binop (Expr.And, left, parse_and st)
  end
  else left

and parse_cmp st =
  let left = parse_add st in
  match cmp_of_token (peek st) with
  | Some op ->
    advance st;
    Expr.Binop (op, left, parse_add st)
  | None -> left

and parse_add st =
  let left = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PLUS ->
      advance st;
      left := Expr.Binop (Expr.Add, !left, parse_mul st)
    | Lexer.MINUS ->
      advance st;
      left := Expr.Binop (Expr.Sub, !left, parse_mul st)
    | _ -> continue := false
  done;
  !left

and parse_mul st =
  let left = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR ->
      advance st;
      left := Expr.Binop (Expr.Mul, !left, parse_unary st)
    | Lexer.SLASH ->
      advance st;
      left := Expr.Binop (Expr.Div, !left, parse_unary st)
    | Lexer.PERCENT ->
      advance st;
      left := Expr.Binop (Expr.Mod, !left, parse_unary st)
    | _ -> continue := false
  done;
  !left

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    Expr.Neg (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT x ->
    advance st;
    Expr.Const (Value.Int x)
  | Lexer.FLOAT x ->
    advance st;
    Expr.Const (Value.Float x)
  | Lexer.STRING s ->
    advance st;
    Expr.Const (Value.Str s)
  | Lexer.KW_TRUE ->
    advance st;
    Expr.Const (Value.Bool true)
  | Lexer.KW_FALSE ->
    advance st;
    Expr.Const (Value.Bool false)
  | Lexer.HASH_INT n ->
    advance st;
    Expr.Const (Value.Null n)
  | Lexer.VAR v ->
    advance st;
    if v = "_" then Expr.Var (fresh_anon st) else Expr.Var v
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN then begin
      advance st;
      let args = parse_expr_list st in
      expect st Lexer.RPAREN;
      Expr.Call (name, args)
    end
    else Expr.Const (Value.Str name)
  | Lexer.LPAREN ->
    advance st;
    let first = parse_expr st in
    if peek st = Lexer.COMMA then begin
      (* Parenthesized comma builds (nested) pairs: (a, b, c) = (a, (b, c)). *)
      let rest = ref [] in
      while peek st = Lexer.COMMA do
        advance st;
        rest := parse_expr st :: !rest
      done;
      expect st Lexer.RPAREN;
      let elements = first :: List.rev !rest in
      let rec fold = function
        | [ x ] -> x
        | x :: more -> Expr.Call ("pair", [ x; fold more ])
        | [] -> assert false
      in
      fold elements
    end
    else begin
      expect st Lexer.RPAREN;
      first
    end
  | Lexer.KW_NOT when peek_at st 1 = Lexer.LPAREN ->
    (* Boolean negation in expressions: not(member(S, P)). *)
    advance st;
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    Expr.Not e
  | Lexer.LBRACE ->
    advance st;
    let elems = ref [] in
    if peek st <> Lexer.RBRACE then begin
      elems := [ parse_expr st ];
      while peek st = Lexer.SEMI || peek st = Lexer.COMMA do
        advance st;
        elems := parse_expr st :: !elems
      done
    end;
    expect st Lexer.RBRACE;
    Expr.Call ("coll", List.rev !elems)
  | t -> fail st "unexpected token %s in expression" (Lexer.token_to_string t)

and parse_expr_list st =
  if peek st = Lexer.RPAREN then []
  else begin
    let acc = ref [ parse_expr st ] in
    while peek st = Lexer.COMMA do
      advance st;
      acc := parse_expr st :: !acc
    done;
    List.rev !acc
  end

(* --- atoms, aggregates, literals -------------------------------------- *)

let parse_atom st =
  match peek st with
  | Lexer.IDENT name ->
    advance st;
    expect st Lexer.LPAREN;
    let args = parse_expr_list st in
    expect st Lexer.RPAREN;
    Atom.make name args
  | t -> fail st "expected an atom but found %s" (Lexer.token_to_string t)

let parse_contributor st =
  match peek st with
  | Lexer.VAR v ->
    advance st;
    if v = "_" then fail st "anonymous variables cannot be contributors"
    else Term.Var v
  | Lexer.INT x ->
    advance st;
    Term.Const (Value.Int x)
  | Lexer.STRING s ->
    advance st;
    Term.Const (Value.Str s)
  | Lexer.IDENT s when peek_at st 1 <> Lexer.LPAREN ->
    advance st;
    Term.Const (Value.Str s)
  | t -> fail st "expected a contributor term, found %s" (Lexer.token_to_string t)

(* [op] name was already recognized; cursor on '('. *)
let parse_agg_call st op =
  expect st Lexer.LPAREN;
  let arg =
    if op = Aggregate.Count then Expr.Const (Value.Int 1)
    else begin
      let e = parse_expr st in
      expect st Lexer.COMMA;
      e
    end
  in
  expect st Lexer.LT;
  let contributors = ref [ parse_contributor st ] in
  while peek st = Lexer.COMMA do
    advance st;
    contributors := parse_contributor st :: !contributors
  done;
  expect st Lexer.GT;
  expect st Lexer.RPAREN;
  (arg, List.rev !contributors)

let agg_name_at st k =
  match peek_at st k with
  | Lexer.IDENT name -> Aggregate.op_of_string name
  | _ -> None

let parse_literal st =
  match peek st with
  | Lexer.KW_NOT when peek_at st 1 <> Lexer.LPAREN ->
    advance st;
    Rule.Neg (parse_atom st)
  | Lexer.KW_NOT ->
    (* not(expr) is a boolean guard, not atom negation. *)
    let e = parse_expr st in
    Rule.Guard e
  | Lexer.VAR v
    when peek_at st 1 = Lexer.EQ
         && agg_name_at st 2 <> None
         && peek_at st 3 = Lexer.LPAREN ->
    (* X = msum(E, <C>) *)
    advance st;
    advance st;
    let op = Option.get (agg_name_at st 0) in
    advance st;
    let arg, contributors = parse_agg_call st op in
    Rule.Agg
      {
        agg_op = op;
        agg_arg = arg;
        agg_contributors = contributors;
        agg_result = Rule.Bind v;
      }
  | Lexer.IDENT name
    when Aggregate.op_of_string name <> None && peek_at st 1 = Lexer.LPAREN ->
    (* msum(E, <C>) > threshold *)
    let op = Option.get (Aggregate.op_of_string name) in
    advance st;
    let arg, contributors = parse_agg_call st op in
    let cmp =
      match cmp_of_token (peek st) with
      | Some op -> op
      | None -> fail st "aggregate guard needs a comparison operator"
    in
    advance st;
    let rhs = parse_add st in
    Rule.Agg
      {
        agg_op = op;
        agg_arg = arg;
        agg_contributors = contributors;
        agg_result = Rule.Test (cmp, rhs);
      }
  | _ ->
    let e = parse_expr st in
    (match e with
    | Expr.Binop (Expr.Eq, Expr.Var x, rhs) -> Rule.Assign (x, rhs)
    | Expr.Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) | Expr.Not _ ->
      Rule.Guard e
    | Expr.Call (name, _) when Builtins.is_builtin name -> Rule.Guard e
    | Expr.Call (name, args) -> Rule.Pos (Atom.make name args)
    | Expr.Const _ | Expr.Var _ | Expr.Binop _ | Expr.Neg _ ->
      fail st "expression %s is not a valid literal" (Expr.to_string e))

(* --- statements -------------------------------------------------------- *)

type accum = {
  mutable rules : Rule.t list;
  mutable facts : (string * Value.t array) list;
  mutable inputs : string list;
  mutable outputs : string list;
}

let ground_args st atom =
  let env = Hashtbl.create 1 in
  Array.map
    (fun e ->
      try Expr.eval env e
      with Expr.Eval_error m -> fail st "fact arguments must be ground: %s" m)
    atom.Atom.args

let parse_statement st acc =
  match peek st with
  | Lexer.AT ->
    advance st;
    let kind =
      match peek st with
      | Lexer.IDENT k ->
        advance st;
        k
      | t -> fail st "expected annotation name, found %s" (Lexer.token_to_string t)
    in
    expect st Lexer.LPAREN;
    let arg =
      match peek st with
      | Lexer.STRING s ->
        advance st;
        s
      | t -> fail st "annotation expects a string, found %s" (Lexer.token_to_string t)
    in
    expect st Lexer.RPAREN;
    expect st Lexer.DOT;
    (match kind with
    | "input" -> acc.inputs <- arg :: acc.inputs
    | "output" -> acc.outputs <- arg :: acc.outputs
    | "label" -> st.pending_label <- Some arg
    | other -> fail st "unknown annotation @%s" other)
  | _ ->
    let first = parse_atom st in
    (match peek st with
    | Lexer.DOT ->
      advance st;
      acc.facts <- (first.Atom.pred, ground_args st first) :: acc.facts
    | Lexer.COMMA | Lexer.IMPLIES ->
      let head = ref [ first ] in
      while peek st = Lexer.COMMA do
        advance st;
        head := parse_atom st :: !head
      done;
      expect st Lexer.IMPLIES;
      let body = ref [ parse_literal st ] in
      while peek st = Lexer.COMMA do
        advance st;
        body := parse_literal st :: !body
      done;
      expect st Lexer.DOT;
      let id = st.next_rule_id in
      st.next_rule_id <- id + 1;
      let label = st.pending_label in
      st.pending_label <- None;
      acc.rules <-
        Rule.make ?label ~id ~head:(List.rev !head) ~body:(List.rev !body) ()
        :: acc.rules
    | t ->
      fail st "expected '.' or ':-' after atom, found %s"
        (Lexer.token_to_string t))

let parse src =
  let tokens = Lexer.tokenize src in
  let st =
    { tokens; pos = 0; next_rule_id = 0; next_anon = 0; pending_label = None }
  in
  let acc = { rules = []; facts = []; inputs = []; outputs = [] } in
  while peek st <> Lexer.EOF do
    parse_statement st acc
  done;
  let program =
    Program.make ~facts:(List.rev acc.facts) ~inputs:(List.rev acc.inputs)
      ~outputs:(List.rev acc.outputs) (List.rev acc.rules)
  in
  (match Program.validate program with
  | Ok () -> ()
  | Error errors ->
    raise (Error { line = 0; message = String.concat "; " errors }));
  program

let parse_rule src =
  let program = parse src in
  match program.Program.rules with
  | [ rule ] -> rule
  | rules ->
    raise
      (Error
         {
           line = 0;
           message =
             Printf.sprintf "expected exactly one rule, found %d"
               (List.length rules);
         })
