(** Atoms: a predicate name applied to arguments.

    Body atoms must have term-shaped arguments (variables/constants); head
    atoms may carry full expressions, evaluated at emission time — this is
    how Algorithm 7 writes [tuple(M, I, union(remove_key(VSet,A), (A,Z)))].
    {!Rule.validate} enforces the distinction. *)

type t = {
  pred : string;
  args : Expr.t array;
}

val make : string -> Expr.t list -> t

val of_terms : string -> Term.t list -> t

val arity : t -> int

val vars : t -> string list
(** Distinct variables across all argument expressions. *)

val as_terms : t -> Term.t array option
(** [Some] when every argument is term-shaped. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
