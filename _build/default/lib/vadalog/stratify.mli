(** Stratification of programs with negation and aggregation.

    Edges of the predicate dependency graph are {e positive} (same stratum
    allowed) or {e raising} (the head must live in a strictly higher
    stratum). Negated body atoms and every body predicate of a rule whose
    aggregate {e binds} a variable produce raising edges; aggregates used
    only as monotone threshold tests keep positive edges and may recurse
    (paper, Section 4.4). Head predicates of one rule are forced into the
    same stratum. *)

exception Not_stratifiable of string

type t = {
  strata : Rule.t list array;
      (** rules grouped by stratum, evaluation order; within a stratum,
          aggregate-binding rules are listed first (their inputs are
          saturated by construction) *)
  stratum_of_pred : (string, int) Hashtbl.t;
}

val compute : Program.t -> t
(** Raises {!Not_stratifiable} when a raising edge occurs inside a cycle
    (negation or bound aggregation through recursion). *)

val stratum_count : t -> int
