(** Recursive-descent parser for the Vadalog surface syntax.

    Grammar sketch (see the test suite for worked programs):
    {v
    program    ::= statement*
    statement  ::= '@input'  '(' STRING ')' '.'
                 | '@output' '(' STRING ')' '.'
                 | '@label'  '(' STRING ')' '.'       (names the next rule)
                 | atom '.'                            (ground fact)
                 | atom (',' atom)* ':-' body '.'      (rule)
    body       ::= literal (',' literal)*
    literal    ::= 'not' atom
                 | VAR '=' AGG '(' [expr ','] '<' term+ '>' ')'
                 | AGG '(' [expr ','] '<' term+ '>' ')' CMP expr
                 | expr                                 (guard / assign / atom)
    v}

    Expression conventions: lowercase identifiers without parentheses are
    symbolic string constants ([cat(M, A, quasi_identifier)]); with
    parentheses they are builtin calls or, at literal level, predicate
    atoms; [(a, b)] builds a pair; [{x; y}] a collection; [#3] the labelled
    null ⊥₃. A literal [X = e] assigns when [X] is free and checks equality
    when bound. Aggregates: msum, mcount, mprod, mmin, mmax, munion with
    contributors in angle brackets. *)

exception Error of { line : int; message : string }

val parse : string -> Program.t
(** Raises {!Error} or {!Lexer.Error} on malformed input; the returned
    program is already validated ({!Program.validate}). *)

val parse_rule : string -> Rule.t
(** Parse a single rule (utility for tests and the REPL-style CLI). *)
