lib/vadalog/provenance.ml: Array Database Format List String Vadasa_base
