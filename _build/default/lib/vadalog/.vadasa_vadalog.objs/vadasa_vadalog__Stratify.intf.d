lib/vadalog/stratify.mli: Hashtbl Program Rule
