lib/vadalog/builtins.ml: Float Hashtbl List Printf String Vadasa_base
