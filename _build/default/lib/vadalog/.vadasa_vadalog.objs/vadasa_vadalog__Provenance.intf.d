lib/vadalog/provenance.mli: Database Format Vadasa_base
