lib/vadalog/expr.ml: Builtins Float Format Hashtbl List Printf String Term Vadasa_base
