lib/vadalog/database.ml: Array Buffer Hashtbl List String Vadasa_base
