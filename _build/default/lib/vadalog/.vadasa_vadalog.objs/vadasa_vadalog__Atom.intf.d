lib/vadalog/atom.mli: Expr Format Term
