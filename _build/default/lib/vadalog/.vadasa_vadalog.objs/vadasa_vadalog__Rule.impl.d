lib/vadalog/rule.ml: Aggregate Atom Expr Format Hashtbl List Printf String Term
