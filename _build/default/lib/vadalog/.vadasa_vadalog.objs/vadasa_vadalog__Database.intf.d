lib/vadalog/database.mli: Vadasa_base
