lib/vadalog/engine.mli: Database Program Provenance Vadasa_base
