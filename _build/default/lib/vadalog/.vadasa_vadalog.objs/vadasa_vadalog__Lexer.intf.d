lib/vadalog/lexer.mli:
