lib/vadalog/aggregate.mli: Vadasa_base
