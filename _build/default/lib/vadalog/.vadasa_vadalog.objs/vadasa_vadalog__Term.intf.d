lib/vadalog/term.mli: Format Vadasa_base
