lib/vadalog/stratify.ml: Array Hashtbl List Printf Program Rule String
