lib/vadalog/builtins.mli: Vadasa_base
