lib/vadalog/expr.mli: Format Hashtbl Term Vadasa_base
