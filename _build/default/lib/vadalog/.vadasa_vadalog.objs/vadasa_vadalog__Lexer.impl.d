lib/vadalog/lexer.ml: Array Buffer List Printf String
