lib/vadalog/program.mli: Format Rule Vadasa_base
