lib/vadalog/parser.ml: Aggregate Array Atom Builtins Expr Hashtbl Lexer List Option Printf Program Rule String Term Vadasa_base
