lib/vadalog/wardedness.ml: Array Atom Expr Format Hashtbl List Program Rule String Term
