lib/vadalog/engine.ml: Aggregate Array Atom Buffer Database Expr Hashtbl List Option Printf Program Provenance Rule Stratify String Term Vadasa_base
