lib/vadalog/atom.ml: Array Expr Format Hashtbl List String Term
