lib/vadalog/term.ml: Format Hashtbl List String Vadasa_base
