lib/vadalog/rule.mli: Aggregate Atom Expr Format Term
