lib/vadalog/wardedness.mli: Format Program
