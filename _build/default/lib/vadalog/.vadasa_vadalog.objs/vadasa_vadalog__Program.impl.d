lib/vadalog/program.ml: Array Format List Rule String Vadasa_base
