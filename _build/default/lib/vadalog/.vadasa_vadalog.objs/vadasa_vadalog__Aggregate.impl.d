lib/vadalog/aggregate.ml: Hashtbl Option Vadasa_base
