lib/vadalog/parser.mli: Program Rule
