module Value = Vadasa_base.Value

type t =
  | Const of Value.t
  | Var of string

let equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> String.equal x y
  | Const _, Var _ | Var _, Const _ -> false

let is_var = function Var _ -> true | Const _ -> false

let vars terms =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (function
      | Var v when not (Hashtbl.mem seen v) ->
        Hashtbl.add seen v ();
        Some v
      | Var _ | Const _ -> None)
    terms

let to_string = function
  | Const v -> Value.to_string v
  | Var v -> v

let pp ppf t = Format.pp_print_string ppf (to_string t)
