exception Not_stratifiable of string

type t = {
  strata : Rule.t list array;
  stratum_of_pred : (string, int) Hashtbl.t;
}

type edge = { src : string; dst : string; raising : bool }

let edges_of_rule rule =
  let heads = Rule.head_predicates rule in
  let raising_body =
    match Rule.the_agg rule with
    | Some { agg_result = Rule.Bind _; _ } -> true
    | Some { agg_result = Rule.Test _; _ } | None -> false
  in
  let body_edges =
    List.concat_map
      (fun (pred, sign) ->
        List.map
          (fun h ->
            { src = pred; dst = h; raising = raising_body || sign = `Neg })
          heads)
      (Rule.body_predicates rule)
  in
  (* Tie the head predicates of one rule together: they are derived by the
     same firing so they must share a stratum. *)
  let head_ties =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if String.equal a b then None
            else Some { src = a; dst = b; raising = false })
          heads)
      heads
  in
  body_edges @ head_ties

(* Tarjan's strongly connected components over the predicate graph. *)
let sccs predicates successors =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let component = Hashtbl.create 64 in
  let component_count = ref 0 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let id = !component_count in
      incr component_count;
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          Hashtbl.replace component w id;
          if String.equal w v then continue := false
      done
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) predicates;
  (component, !component_count)

let compute program =
  let predicates = Program.predicates program in
  let edges = List.concat_map edges_of_rule program.Program.rules in
  let succ_table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let existing = try Hashtbl.find succ_table e.src with Not_found -> [] in
      Hashtbl.replace succ_table e.src (e.dst :: existing))
    edges;
  let successors v = try Hashtbl.find succ_table v with Not_found -> [] in
  let component, count = sccs predicates successors in
  let comp_of p = Hashtbl.find component p in
  (* Raising edges inside a component make the program non-stratifiable. *)
  List.iter
    (fun e ->
      if e.raising && comp_of e.src = comp_of e.dst then
        raise
          (Not_stratifiable
             (Printf.sprintf
                "predicate %s depends on %s through negation or a bound \
                 aggregate inside a cycle"
                e.dst e.src)))
    edges;
  (* Longest-path strata over the condensation: raising edges add one. *)
  let comp_stratum = Array.make count 0 in
  let changed = ref true in
  let guard = ref 0 in
  while !changed do
    changed := false;
    incr guard;
    if !guard > count + List.length edges + 2 then
      raise (Not_stratifiable "stratum computation failed to converge");
    List.iter
      (fun e ->
        let cs = comp_of e.src and cd = comp_of e.dst in
        if cs <> cd then begin
          let need = comp_stratum.(cs) + if e.raising then 1 else 0 in
          if comp_stratum.(cd) < need then begin
            comp_stratum.(cd) <- need;
            changed := true
          end
        end)
      edges
  done;
  let stratum_of_pred = Hashtbl.create 64 in
  List.iter
    (fun p -> Hashtbl.replace stratum_of_pred p comp_stratum.(comp_of p))
    predicates;
  let max_stratum = Array.fold_left max 0 comp_stratum in
  let strata = Array.make (max_stratum + 1) [] in
  let rule_stratum rule =
    List.fold_left
      (fun acc p -> max acc (Hashtbl.find stratum_of_pred p))
      0 (Rule.head_predicates rule)
  in
  List.iter
    (fun rule ->
      let s = rule_stratum rule in
      strata.(s) <- rule :: strata.(s))
    program.Program.rules;
  let binds_first rules =
    let is_bind r =
      match Rule.the_agg r with
      | Some { agg_result = Rule.Bind _; _ } -> true
      | Some { agg_result = Rule.Test _; _ } | None -> false
    in
    let binds, others = List.partition is_bind rules in
    binds @ others
  in
  let strata = Array.map (fun rs -> binds_first (List.rev rs)) strata in
  { strata; stratum_of_pred }

let stratum_count t = Array.length t.strata
