type agg_result =
  | Bind of string
  | Test of Expr.binop * Expr.t

type agg = {
  agg_op : Aggregate.op;
  agg_arg : Expr.t;
  agg_contributors : Term.t list;
  agg_result : agg_result;
}

type literal =
  | Pos of Atom.t
  | Neg of Atom.t
  | Guard of Expr.t
  | Assign of string * Expr.t
  | Agg of agg

type t = {
  id : int;
  label : string;
  head : Atom.t list;
  body : literal list;
}

let make ?label ~id ~head ~body () =
  let label = match label with Some l -> l | None -> "r" ^ string_of_int id in
  { id; label; head; body }

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let head_vars t = dedup (List.concat_map Atom.vars t.head)

let positive_body_vars t =
  dedup
    (List.concat_map
       (function Pos a -> Atom.vars a | Neg _ | Guard _ | Assign _ | Agg _ -> [])
       t.body)

let the_agg t =
  List.find_map (function Agg a -> Some a | _ -> None) t.body

(* Variables bindable by the body: positive atoms seed the set; assignments
   join once their right-hand sides are covered; the aggregate's Bind
   variable comes last. *)
let bound_vars t =
  let bound = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace bound v ()) (positive_body_vars t);
  let assigns =
    List.filter_map (function Assign (x, e) -> Some (x, e) | _ -> None) t.body
  in
  let fixpoint () =
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun (x, e) ->
          if
            (not (Hashtbl.mem bound x))
            && List.for_all (Hashtbl.mem bound) (Expr.vars e)
          then begin
            Hashtbl.replace bound x ();
            progress := true
          end)
        assigns
    done
  in
  fixpoint ();
  (* Assignments may also depend on the aggregate's bound result: they are
     evaluated in the post-aggregation phase (see Engine). *)
  (match the_agg t with
  | Some { agg_result = Bind x; _ } ->
    Hashtbl.replace bound x ();
    fixpoint ()
  | Some { agg_result = Test _; _ } | None -> ());
  Hashtbl.fold (fun v () acc -> v :: acc) bound []

let existential_vars t =
  let bound = bound_vars t in
  List.filter (fun v -> not (List.mem v bound)) (head_vars t)

let frontier_vars t =
  let bound = bound_vars t in
  List.filter (fun v -> List.mem v bound) (head_vars t)

let body_predicates t =
  List.filter_map
    (function
      | Pos a -> Some (a.Atom.pred, `Pos)
      | Neg a -> Some (a.Atom.pred, `Neg)
      | Guard _ | Assign _ | Agg _ -> None)
    t.body

let head_predicates t = dedup (List.map (fun a -> a.Atom.pred) t.head)

let validate t =
  let fail fmt = Printf.ksprintf (fun s -> Error (t.label ^ ": " ^ s)) fmt in
  let rec check literals =
    match literals with
    | [] -> Ok ()
    | Pos a :: rest ->
      (match Atom.as_terms a with
      | Some _ -> check rest
      | None -> fail "body atom %s has non-term arguments" (Atom.to_string a))
    | Neg a :: rest ->
      (match Atom.as_terms a with
      | Some _ -> check rest
      | None -> fail "negated atom %s has non-term arguments" (Atom.to_string a))
    | (Guard _ | Assign _ | Agg _) :: rest -> check rest
  in
  match check t.body with
  | Error _ as e -> e
  | Ok () ->
    let bound = bound_vars t in
    let is_bound v = List.mem v bound in
    let aggs = List.filter (function Agg _ -> true | _ -> false) t.body in
    if List.length aggs > 1 then fail "more than one aggregate literal"
    else if List.length t.head = 0 then fail "empty head"
    else
      let unbound_in what vars =
        match List.filter (fun v -> not (is_bound v)) vars with
        | [] -> None
        | missing -> Some (what, missing)
      in
      let problems =
        List.filter_map
          (function
            | Guard e -> unbound_in ("guard " ^ Expr.to_string e) (Expr.vars e)
            | Assign (x, e) ->
              unbound_in
                ("assignment " ^ x ^ " = " ^ Expr.to_string e)
                (Expr.vars e)
            | Neg a -> unbound_in ("negated atom " ^ Atom.to_string a) (Atom.vars a)
            | Agg a ->
              let contributor_vars = Term.vars a.agg_contributors in
              let arg_vars = Expr.vars a.agg_arg in
              let test_vars =
                match a.agg_result with
                | Test (_, e) -> Expr.vars e
                | Bind _ -> []
              in
              unbound_in "aggregate" (contributor_vars @ arg_vars @ test_vars)
            | Pos _ -> None)
          t.body
      in
      (match problems with
      | (what, missing) :: _ ->
        fail "%s uses unbound variable(s) %s" what (String.concat ", " missing)
      | [] ->
        let existentials = existential_vars t in
        if existentials <> [] && the_agg t <> None then
          fail "aggregate rules cannot have existential variables (%s)"
            (String.concat ", " existentials)
        else Ok ())

let literal_to_string = function
  | Pos a -> Atom.to_string a
  | Neg a -> "not " ^ Atom.to_string a
  | Guard e -> Expr.to_string e
  | Assign (x, e) -> x ^ " = " ^ Expr.to_string e
  | Agg a ->
    let call =
      Aggregate.op_to_string a.agg_op
      ^ "("
      ^ (match a.agg_op with
        | Aggregate.Count -> ""
        | _ -> Expr.to_string a.agg_arg ^ ", ")
      ^ "<"
      ^ String.concat ", " (List.map Term.to_string a.agg_contributors)
      ^ ">)"
    in
    (match a.agg_result with
    | Bind x -> x ^ " = " ^ call
    | Test (op, e) -> call ^ " " ^ Expr.binop_to_string op ^ " " ^ Expr.to_string e)

let to_string t =
  String.concat ", " (List.map Atom.to_string t.head)
  ^ " :- "
  ^ String.concat ", " (List.map literal_to_string t.body)
  ^ "."

let pp ppf t = Format.pp_print_string ppf (to_string t)
