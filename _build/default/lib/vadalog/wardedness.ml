type rule_status =
  | Safe_datalog
  | Warded of string
  | Not_warded of string list

type report = {
  affected_positions : (string * int) list;
  rule_status : (string * rule_status) list;
}

(* Positions of a variable among the term-shaped body atoms of a rule. *)
let body_occurrences rule var =
  List.concat_map
    (function
      | Rule.Pos atom ->
        (match Atom.as_terms atom with
        | None -> []
        | Some terms ->
          List.concat
            (List.mapi
               (fun i t ->
                 match t with
                 | Term.Var v when String.equal v var -> [ (atom.Atom.pred, i) ]
                 | Term.Var _ | Term.Const _ -> [])
               (Array.to_list terms)))
      | Rule.Neg _ | Rule.Guard _ | Rule.Assign _ | Rule.Agg _ -> [])
    rule.Rule.body

(* A head position is an occurrence of [var] both when the argument is the
   bare variable and when the variable occurs inside a head expression
   (e.g. an invented null placed inside a collection, Algorithm 7). *)
let head_occurrences rule var =
  List.concat_map
    (fun atom ->
      List.concat
        (List.mapi
           (fun i e ->
             if List.mem var (Expr.vars e) then [ (atom.Atom.pred, i) ] else [])
           (Array.to_list atom.Atom.args)))
    rule.Rule.head

let compute_affected program =
  let affected = Hashtbl.create 64 in
  let add (p, i) =
    if not (Hashtbl.mem affected (p, i)) then begin
      Hashtbl.add affected (p, i) ();
      true
    end
    else false
  in
  (* Base: positions of existential variables in heads. *)
  List.iter
    (fun rule ->
      let existentials = Rule.existential_vars rule in
      List.iter
        (fun v -> List.iter (fun pos -> ignore (add pos)) (head_occurrences rule v))
        existentials)
    program.Program.rules;
  (* Propagation: a variable whose body occurrences are all affected marks
     its head occurrences as affected. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun rule ->
        let body_vars = Rule.positive_body_vars rule in
        List.iter
          (fun v ->
            let occs = body_occurrences rule v in
            if occs <> [] && List.for_all (Hashtbl.mem affected) occs then
              List.iter
                (fun pos -> if add pos then changed := true)
                (head_occurrences rule v))
          body_vars)
      program.Program.rules
  done;
  affected

let rule_status affected rule =
  let body_vars = Rule.positive_body_vars rule in
  let head_vars = Rule.head_vars rule in
  let harmful v =
    let occs = body_occurrences rule v in
    occs <> [] && List.for_all (Hashtbl.mem affected) occs
  in
  let dangerous = List.filter (fun v -> harmful v && List.mem v head_vars) body_vars in
  if dangerous = [] then Safe_datalog
  else
    (* Find a single positive atom containing every dangerous variable. *)
    let wards =
      List.filter_map
        (function
          | Rule.Pos atom ->
            let atom_vars = Atom.vars atom in
            if List.for_all (fun v -> List.mem v atom_vars) dangerous then
              Some atom
            else None
          | Rule.Neg _ | Rule.Guard _ | Rule.Assign _ | Rule.Agg _ -> None)
        rule.Rule.body
    in
    match wards with
    | [] -> Not_warded dangerous
    | ward :: _ ->
      (* The ward may share only harmless variables with the other atoms. *)
      let ward_vars = Atom.vars ward in
      let shared_harmful =
        List.filter
          (fun v ->
            harmful v
            && (not (List.mem v dangerous))
            && List.exists
                 (function
                   | Rule.Pos atom when atom != ward ->
                     List.mem v (Atom.vars atom)
                   | _ -> false)
                 rule.Rule.body)
          ward_vars
      in
      if shared_harmful = [] then Warded ward.Atom.pred
      else Not_warded (dangerous @ shared_harmful)

let analyze program =
  let affected = compute_affected program in
  let affected_positions =
    List.sort compare (Hashtbl.fold (fun pos () acc -> pos :: acc) affected [])
  in
  let rule_status =
    List.map
      (fun rule -> (rule.Rule.label, rule_status affected rule))
      program.Program.rules
  in
  { affected_positions; rule_status }

let is_warded program =
  List.for_all
    (fun (_, status) ->
      match status with
      | Safe_datalog | Warded _ -> true
      | Not_warded _ -> false)
    (analyze program).rule_status

let pp_report ppf report =
  Format.fprintf ppf "affected positions:@.";
  List.iter
    (fun (p, i) -> Format.fprintf ppf "  %s[%d]@." p i)
    report.affected_positions;
  Format.fprintf ppf "rules:@.";
  List.iter
    (fun (label, status) ->
      match status with
      | Safe_datalog -> Format.fprintf ppf "  %s: datalog-safe@." label
      | Warded pred -> Format.fprintf ppf "  %s: warded by %s@." label pred
      | Not_warded vars ->
        Format.fprintf ppf "  %s: NOT WARDED (%s)@." label
          (String.concat ", " vars))
    report.rule_status
