(** Static wardedness analysis (Warded Datalog±).

    Labelled nulls invented for existential variables can propagate through
    rule applications. A {e position} (predicate, argument index) is
    {e affected} when a null can reach it; a body variable is {e harmful}
    (for a rule) when all its body occurrences sit in affected positions,
    and {e dangerous} when it is harmful and propagated to the head. A rule
    is {b warded} if all its dangerous variables occur together in one body
    atom, the {e ward}, and the ward shares only harmless variables with
    the rest of the body. Warded programs have PTIME data-complexity
    reasoning — the property the paper inherits its scalability from. *)

type rule_status =
  | Safe_datalog  (** no dangerous variables at all *)
  | Warded of string  (** the ward's predicate name *)
  | Not_warded of string list  (** dangerous variables violating the check *)

type report = {
  affected_positions : (string * int) list;  (** sorted *)
  rule_status : (string * rule_status) list;  (** rule label → status *)
}

val analyze : Program.t -> report

val is_warded : Program.t -> bool

val pp_report : Format.formatter -> report -> unit
