(** Monotonic aggregations (msum, mcount, mprod, mmin, mmax, munion).

    Vadalog's monotonic aggregation semantics (paper, Section 4.3): inside
    one aggregation group, contributions are keyed by the {e contributor}
    terms, and a contributor that contributes several times is counted only
    once — the replacement rule keeps the extremal contribution, so that
    when anonymization re-derives a tuple in a "more anonymous version" the
    new version supersedes the old one in the aggregate rather than piling
    on top of it. This replacement is what makes the anonymization cycle
    converge.

    Replacement policy per operator: [Sum], [Prod], [Max] and [Union] keep
    the {b greatest} contribution per contributor (the paper's "least risk";
    note labelled nulls order after constants, so a suppressed pair
    supersedes the original in a [Union]); [Min] keeps the smallest;
    [Count] counts each contributor once. *)

type op = Sum | Count | Prod | Min | Max | Union

val op_of_string : string -> op option
(** Recognizes the Vadalog surface names: msum, mcount, mprod, mmin, mmax,
    munion. *)

val op_to_string : op -> string

val is_agg_name : string -> bool

(** Mutable per-group state: the contributor table plus the current
    aggregate value, updated incrementally. *)
type state

val create : op -> state

val contribute : state -> contributor:string -> Vadasa_base.Value.t -> bool
(** Feed one contribution keyed by the canonical contributor string.
    Returns [true] when the aggregate value changed. Raises
    [Invalid_argument] on non-numeric contributions to numeric operators. *)

val current : state -> Vadasa_base.Value.t
(** The aggregate value over the current contributor table. [Sum]/[Prod]
    over an empty table are 0/1; [Count] is 0; [Min]/[Max] over an empty
    table raise; [Union] is the empty collection. *)

val contributors : state -> int
