module Value = Vadasa_base.Value

type op = Sum | Count | Prod | Min | Max | Union

let op_of_string = function
  | "msum" -> Some Sum
  | "mcount" -> Some Count
  | "mprod" -> Some Prod
  | "mmin" -> Some Min
  | "mmax" -> Some Max
  | "munion" -> Some Union
  | _ -> None

let op_to_string = function
  | Sum -> "msum"
  | Count -> "mcount"
  | Prod -> "mprod"
  | Min -> "mmin"
  | Max -> "mmax"
  | Union -> "munion"

let is_agg_name name = Option.is_some (op_of_string name)

type state = {
  op : op;
  table : (string, Value.t) Hashtbl.t;
  (* Numeric running value for Sum/Count/Prod, recomputed lazily for the
     order-based operators. *)
  mutable running : float;
  mutable dirty : bool;
}

let create op = { op; table = Hashtbl.create 8; running = (match op with Prod -> 1.0 | _ -> 0.0); dirty = false }

let numeric v =
  match Value.as_float v with
  | Some x -> x
  | None ->
    invalid_arg ("Aggregate: non-numeric contribution " ^ Value.to_string v)

(* Does [v] supersede [old] for this operator's replacement policy? *)
let supersedes op v old =
  match op with
  | Sum | Prod | Max | Union -> Value.compare v old > 0
  | Min -> Value.compare v old < 0
  | Count -> false

let contribute state ~contributor v =
  match Hashtbl.find_opt state.table contributor with
  | None ->
    Hashtbl.add state.table contributor v;
    (match state.op with
    | Sum -> state.running <- state.running +. numeric v
    | Prod -> state.running <- state.running *. numeric v
    | Count -> state.running <- state.running +. 1.0
    | Min | Max | Union -> state.dirty <- true);
    true
  | Some old ->
    if supersedes state.op v old then begin
      Hashtbl.replace state.table contributor v;
      (match state.op with
      | Sum -> state.running <- state.running -. numeric old +. numeric v
      | Prod ->
        (* Rebuild: dividing out is numerically unsafe around zero. *)
        state.running <- Hashtbl.fold (fun _ x acc -> acc *. numeric x) state.table 1.0
      | Count | Min | Max | Union -> state.dirty <- true);
      true
    end
    else false

let current state =
  match state.op with
  | Sum | Prod -> Value.Float state.running
  | Count -> Value.Int (Hashtbl.length state.table)
  | Min ->
    let best = Hashtbl.fold
        (fun _ v acc ->
          match acc with
          | None -> Some v
          | Some b -> if Value.compare v b < 0 then Some v else acc)
        state.table None
    in
    (match best with
    | Some v -> v
    | None -> invalid_arg "Aggregate.current: mmin over empty group")
  | Max ->
    let best = Hashtbl.fold
        (fun _ v acc ->
          match acc with
          | None -> Some v
          | Some b -> if Value.compare v b > 0 then Some v else acc)
        state.table None
    in
    (match best with
    | Some v -> v
    | None -> invalid_arg "Aggregate.current: mmax over empty group")
  | Union ->
    Value.coll
      (Hashtbl.fold
         (fun _ v acc ->
           match v with
           | Value.Coll xs -> xs @ acc
           | x -> x :: acc)
         state.table [])

let contributors state = Hashtbl.length state.table
