(** Built-in functions available inside Vadalog expressions.

    These cover the operations the paper's rule programs rely on: pair
    construction, collection access ([VSet\[A\]]), filtering by a name set
    ([VSet\[AnonSet\]]), suppression rewriting ([VSet \ (A,_)] ∪ [(A,Z)]),
    size, membership, the conditional, and the maybe-match comparison of
    collections used when labelled nulls take part in group formation. *)

exception Error of string

val apply : string -> Vadasa_base.Value.t list -> Vadasa_base.Value.t
(** [apply name args]. Raises {!Error} on unknown names or ill-typed
    arguments. *)

val is_builtin : string -> bool

val names : unit -> string list

(** Supported functions:
    - [pair(a, b)] — an attribute/value pair (also written [(a, b)]).
    - [fst(p)], [snd(p)] — pair projections.
    - [coll(x1, …, xn)] — a collection (canonical set).
    - [get(c, k)] — second component of the pair keyed [k] in [c]; raises
      if absent.
    - [filter(c, keys)] — sub-collection of pairs whose key is in [keys].
    - [remove_key(c, k)] — drop pairs keyed [k] ([VSet \ (k, _)]).
    - [union(a, b)] — set union of collections.
    - [member(c, x)] — membership test.
    - [size(c)] — cardinality.
    - [keys(c)] — collection of the first components of [c]'s pairs.
    - [is_null(x)] — whether [x] is a labelled null.
    - [maybe_eq(a, b)] — the =⊥ comparison (Section 4.3).
    - [ite(c, a, b)] — conditional on a boolean.
    - [min(a, b)], [max(a, b)], [abs(x)], [log(x)], [exp(x)], [pow(x, y)].
    - [concat(a, b)] — string concatenation of renderings. *)
