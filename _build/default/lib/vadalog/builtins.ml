module Value = Vadasa_base.Value

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let as_float name v =
  match Value.as_float v with
  | Some x -> x
  | None -> err "%s: expected a number, got %s" name (Value.to_string v)

let as_bool name = function
  | Value.Bool b -> b
  | v -> err "%s: expected a boolean, got %s" name (Value.to_string v)

let registry : (string, Value.t list -> Value.t) Hashtbl.t = Hashtbl.create 32

let register name f = Hashtbl.replace registry name f

let arity2 name f = function
  | [ a; b ] -> f a b
  | args -> err "%s: expected 2 arguments, got %d" name (List.length args)

let arity1 name f = function
  | [ a ] -> f a
  | args -> err "%s: expected 1 argument, got %d" name (List.length args)

let () =
  register "pair" (arity2 "pair" Value.pair);
  register "fst"
    (arity1 "fst" (function
      | Value.Pair (a, _) -> a
      | v -> err "fst: not a pair: %s" (Value.to_string v)));
  register "snd"
    (arity1 "snd" (function
      | Value.Pair (_, b) -> b
      | v -> err "snd: not a pair: %s" (Value.to_string v)));
  register "coll" (fun args -> Value.coll args);
  register "get"
    (arity2 "get" (fun c k ->
         match Value.coll_assoc c k with
         | Some v -> v
         | None ->
           err "get: key %s not present in %s" (Value.to_string k)
             (Value.to_string c)));
  register "filter" (arity2 "filter" Value.coll_filter_keys);
  register "remove_key" (arity2 "remove_key" Value.coll_remove_key);
  register "union" (arity2 "union" Value.coll_union);
  register "member" (arity2 "member" (fun c x -> Value.Bool (Value.coll_mem c x)));
  register "size"
    (arity1 "size" (fun c -> Value.Int (List.length (Value.coll_elements c))));
  register "keys"
    (arity1 "keys" (fun c ->
         Value.coll
           (List.filter_map
              (function Value.Pair (k, _) -> Some k | _ -> None)
              (Value.coll_elements c))));
  register "is_null" (arity1 "is_null" (fun x -> Value.Bool (Value.is_null x)));
  register "maybe_eq"
    (arity2 "maybe_eq" (fun a b -> Value.Bool (Value.equal_maybe a b)));
  register "ite" (function
    | [ c; a; b ] -> if as_bool "ite" c then a else b
    | args -> err "ite: expected 3 arguments, got %d" (List.length args));
  register "min" (arity2 "min" (fun a b -> if Value.compare a b <= 0 then a else b));
  register "max" (arity2 "max" (fun a b -> if Value.compare a b >= 0 then a else b));
  register "abs"
    (arity1 "abs" (function
      | Value.Int x -> Value.Int (abs x)
      | v -> Value.Float (Float.abs (as_float "abs" v))));
  register "log" (arity1 "log" (fun v -> Value.Float (log (as_float "log" v))));
  register "exp" (arity1 "exp" (fun v -> Value.Float (exp (as_float "exp" v))));
  register "pow"
    (arity2 "pow" (fun a b ->
         Value.Float (as_float "pow" a ** as_float "pow" b)));
  register "concat"
    (arity2 "concat" (fun a b ->
         Value.Str (Value.to_string a ^ Value.to_string b)));
  register "subset"
    (arity2 "subset" (fun a b ->
         Value.Bool
           (List.for_all
              (fun x -> Value.coll_mem b x)
              (Value.coll_elements a))));
  register "similarity"
    (arity2 "similarity" (fun a b ->
         Value.Float
           (Vadasa_base.Strsim.similarity (Value.to_string a)
              (Value.to_string b))))

let apply name args =
  match Hashtbl.find_opt registry name with
  | Some f ->
    (* Value-level type errors (e.g. taking the size of a non-collection)
       surface uniformly as builtin errors. *)
    (try f args with Invalid_argument message -> err "%s: %s" name message)
  | None -> err "unknown builtin function: %s" name

let is_builtin name = Hashtbl.mem registry name

let names () = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])
