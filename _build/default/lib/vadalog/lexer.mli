(** Tokenizer for the Vadalog surface syntax.

    Conventions follow Datalog tradition: identifiers starting lowercase are
    predicate names, builtin functions or symbolic constants; identifiers
    starting uppercase (or [_]) are variables; [%] opens a line comment;
    [#n] is the labelled null ⊥ₙ. *)

type token =
  | IDENT of string
  | VAR of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | DOT
  | IMPLIES  (** [:-] *)
  | AT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT  (** the [mod] keyword ([%] itself opens a comment) *)
  | KW_NOT
  | KW_TRUE
  | KW_FALSE
  | KW_AND
  | KW_OR
  | HASH_INT of int  (** labelled null literal [#n] *)
  | EOF

exception Error of { line : int; message : string }

val tokenize : string -> (token * int) array
(** Token with its 1-based source line; ends with [EOF]. *)

val token_to_string : token -> string
