(** Programs: a set of rules plus inline facts and I/O annotations. *)

type t = {
  rules : Rule.t list;
  facts : (string * Vadasa_base.Value.t array) list;
      (** inline EDB facts, in source order *)
  inputs : string list;  (** predicates declared [@input] *)
  outputs : string list;  (** predicates declared [@output] *)
}

val empty : t

val make :
  ?facts:(string * Vadasa_base.Value.t array) list ->
  ?inputs:string list ->
  ?outputs:string list ->
  Rule.t list ->
  t

val validate : t -> (unit, string list) result
(** Validates every rule; collects all errors. *)

val predicates : t -> string list
(** Every predicate mentioned, sorted. *)

val idb_predicates : t -> string list
(** Predicates appearing in some rule head. *)

val edb_predicates : t -> string list
(** Predicates appearing only in bodies or facts. *)

val union : t -> t -> t
(** Concatenates rules and facts, re-numbering the second program's rule ids
    to stay unique. *)

val pp : Format.formatter -> t -> unit
