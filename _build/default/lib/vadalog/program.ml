type t = {
  rules : Rule.t list;
  facts : (string * Vadasa_base.Value.t array) list;
  inputs : string list;
  outputs : string list;
}

let empty = { rules = []; facts = []; inputs = []; outputs = [] }

let make ?(facts = []) ?(inputs = []) ?(outputs = []) rules =
  { rules; facts; inputs; outputs }

let validate t =
  let errors =
    List.filter_map
      (fun r -> match Rule.validate r with Ok () -> None | Error e -> Some e)
      t.rules
  in
  if errors = [] then Ok () else Error errors

let dedup_sorted xs = List.sort_uniq String.compare xs

let predicates t =
  dedup_sorted
    (List.concat_map
       (fun r ->
         Rule.head_predicates r @ List.map fst (Rule.body_predicates r))
       t.rules
    @ List.map fst t.facts)

let idb_predicates t =
  dedup_sorted (List.concat_map Rule.head_predicates t.rules)

let edb_predicates t =
  let idb = idb_predicates t in
  List.filter (fun p -> not (List.mem p idb)) (predicates t)

let union a b =
  let max_id = List.fold_left (fun acc r -> max acc r.Rule.id) 0 a.rules in
  let shifted =
    List.map (fun r -> { r with Rule.id = r.Rule.id + max_id + 1 }) b.rules
  in
  {
    rules = a.rules @ shifted;
    facts = a.facts @ b.facts;
    inputs = dedup_sorted (a.inputs @ b.inputs);
    outputs = dedup_sorted (a.outputs @ b.outputs);
  }

let pp ppf t =
  List.iter (fun p -> Format.fprintf ppf "@@input(\"%s\").@." p) t.inputs;
  List.iter (fun p -> Format.fprintf ppf "@@output(\"%s\").@." p) t.outputs;
  List.iter
    (fun (pred, args) ->
      Format.fprintf ppf "%s(%s).@." pred
        (String.concat ", "
           (Array.to_list (Array.map Vadasa_base.Value.to_string args))))
    t.facts;
  List.iter (fun r -> Format.fprintf ppf "%a@." Rule.pp r) t.rules
