module Value = Vadasa_base.Value
module Relational = Vadasa_relational
module Sdc = Vadasa_sdc

let v = Value.of_literal

(* Figure 1: microdata DB about inflation and growth. Columns: Id, Area,
   Sector, Employees, Residential Rev., Export Rev., Exp. to DE, Growth
   6mos, Weight. *)
let figure1_rows =
  [
    [ "612276"; "North"; "Public Service"; "50-200"; "0-30"; "0-30"; "30-60"; "2"; "230" ];
    [ "737536"; "South"; "Commerce"; "201-1000"; "0-30"; "90+"; "0-30"; "-1"; "190" ];
    [ "971906"; "Center"; "Commerce"; "1000+"; "0-30"; "30-60"; "0-30"; "4"; "70" ];
    [ "589681"; "North"; "Textiles"; "1000+"; "90+"; "0-30"; "0-30"; "30"; "60" ];
    [ "419410"; "North"; "Construction"; "1000+"; "90+"; "0-30"; "0-30"; "300"; "50" ];
    [ "972915"; "North"; "Other"; "1000+"; "0-30"; "0-30"; "30-60"; "50"; "70" ];
    [ "501118"; "North"; "Other"; "201-1000"; "60-90"; "90+"; "90+"; "-20"; "300" ];
    [ "815363"; "North"; "Textiles"; "201-1000"; "60-90"; "30-60"; "90+"; "2"; "230" ];
    [ "490065"; "South"; "Public Service"; "50-200"; "0-30"; "0-30"; "0-30"; "12"; "123" ];
    [ "415487"; "South"; "Commerce"; "1000+"; "0-30"; "0-30"; "90+"; "3"; "145" ];
    [ "399087"; "South"; "Commerce"; "50-200"; "30-60"; "0-30"; "30-60"; "2"; "70" ];
    [ "170034"; "Center"; "Commerce"; "1000+"; "60-90"; "0-30"; "0-30"; "45"; "90" ];
    [ "724905"; "Center"; "Construction"; "201-1000"; "0-30"; "30-60"; "0-30"; "2"; "200" ];
    [ "554475"; "Center"; "Other"; "50-200"; "0-30"; "90+"; "0-30"; "0"; "104" ];
    [ "946251"; "Center"; "Public Service"; "201-1000"; "30-60"; "90+"; "90+"; "150"; "30" ];
    [ "581077"; "North"; "Textiles"; "50-200"; "0-30"; "60-90"; "30-60"; "-20"; "160" ];
    [ "765562"; "South"; "Textiles"; "50-200"; "0-30"; "60-90"; "0-30"; "-7"; "200" ];
    [ "154840"; "Center"; "Commerce"; "201-1000"; "0-30"; "60-90"; "0-30"; "4"; "220" ];
    [ "600837"; "Center"; "Construction"; "50-200"; "0-30"; "60-90"; "0-30"; "20"; "190" ];
    [ "220712"; "Center"; "Financial"; "1000+"; "30-60"; "60-90"; "30-60"; "-30"; "90" ];
  ]

let figure1 () =
  let schema =
    Relational.Schema.make ~name:"ig_survey"
      (List.map
         (fun (n, d) -> { Relational.Schema.attr_name = n; attr_description = d })
         [
           ("id", "Company Identifier");
           ("area", "Geographic Area");
           ("sector", "Product Sector");
           ("employees", "Num. of employees");
           ("residential_revenue", "Rev. from internal market");
           ("export_revenue", "Rev. from external market");
           ("export_to_de", "Rev. from DE market");
           ("growth", "Rev. growth last 6 mths");
           ("weight", "Sampling Weight");
         ])
  in
  let rel =
    Relational.Relation.of_tuples schema
      (List.map (fun row -> Array.of_list (List.map v row)) figure1_rows)
  in
  Sdc.Microdata.make rel
    [
      ("id", Sdc.Microdata.Identifier);
      ("area", Sdc.Microdata.Quasi_identifier);
      ("sector", Sdc.Microdata.Quasi_identifier);
      ("employees", Sdc.Microdata.Quasi_identifier);
      ("residential_revenue", Sdc.Microdata.Quasi_identifier);
      ("export_revenue", Sdc.Microdata.Quasi_identifier);
      ("export_to_de", Sdc.Microdata.Non_identifying);
      ("growth", Sdc.Microdata.Non_identifying);
      ("weight", Sdc.Microdata.Weight);
    ]

let figure5_rows =
  [
    [ "099876"; "Roma"; "Textiles"; "1000+"; "0-30" ];
    [ "765389"; "Roma"; "Commerce"; "1000+"; "0-30" ];
    [ "231654"; "Roma"; "Commerce"; "1000+"; "0-30" ];
    [ "097302"; "Roma"; "Financial"; "1000+"; "0-30" ];
    [ "120967"; "Roma"; "Financial"; "1000+"; "0-30" ];
    [ "232498"; "Milano"; "Construction"; "0-200"; "60-90" ];
    [ "340901"; "Torino"; "Construction"; "0-200"; "60-90" ];
  ]

let figure5 () =
  let schema =
    Relational.Schema.of_names ~name:"figure5"
      [ "id"; "area"; "sector"; "employees"; "residential_revenue" ]
  in
  let rel =
    Relational.Relation.of_tuples schema
      (List.map (fun row -> Array.of_list (List.map v row)) figure5_rows)
  in
  Sdc.Microdata.make rel
    [
      ("id", Sdc.Microdata.Identifier);
      ("area", Sdc.Microdata.Quasi_identifier);
      ("sector", Sdc.Microdata.Quasi_identifier);
      ("employees", Sdc.Microdata.Quasi_identifier);
      ("residential_revenue", Sdc.Microdata.Quasi_identifier);
    ]

let figure5_hierarchy () =
  let h = Sdc.Hierarchy.create () in
  Sdc.Hierarchy.add_type_of h ~attr:"area" ~ty:"city";
  Sdc.Hierarchy.add_subtype h ~sub:"city" ~super:"region";
  Sdc.Hierarchy.add_subtype h ~sub:"region" ~super:"country";
  let city name region =
    Sdc.Hierarchy.add_instance h ~value:(Value.Str name) ~ty:"city";
    Sdc.Hierarchy.add_is_a h ~child:(Value.Str name) ~parent:(Value.Str region)
  in
  let region name =
    Sdc.Hierarchy.add_instance h ~value:(Value.Str name) ~ty:"region";
    Sdc.Hierarchy.add_is_a h ~child:(Value.Str name) ~parent:(Value.Str "Italy")
  in
  city "Roma" "Center";
  city "Milano" "North";
  city "Torino" "North";
  city "Napoli" "South";
  region "North";
  region "Center";
  region "South";
  Sdc.Hierarchy.add_instance h ~value:(Value.Str "Italy") ~ty:"country";
  h

let figure4_experience =
  [
    ("id", Sdc.Microdata.Identifier);
    ("area", Sdc.Microdata.Quasi_identifier);
    ("sector", Sdc.Microdata.Quasi_identifier);
    ("employees", Sdc.Microdata.Quasi_identifier);
    ("residential_revenue", Sdc.Microdata.Quasi_identifier);
    ("export_revenue", Sdc.Microdata.Quasi_identifier);
    ("export_to_de", Sdc.Microdata.Non_identifying);
    ("growth", Sdc.Microdata.Non_identifying);
    ("weight", Sdc.Microdata.Weight);
  ]
