type entry = {
  dataset : string;
  attrs : int;
  tuples : int;
  dist : Generator.distribution;
  source : string;
}

let figure6 =
  [
    { dataset = "R6A4U"; attrs = 4; tuples = 6_000; dist = Generator.U; source = "Synth" };
    { dataset = "R12A4U"; attrs = 4; tuples = 12_000; dist = Generator.U; source = "Synth" };
    { dataset = "R25A4W"; attrs = 4; tuples = 25_000; dist = Generator.W; source = "Real-world" };
    { dataset = "R25A4U"; attrs = 4; tuples = 25_000; dist = Generator.U; source = "Realistic" };
    { dataset = "R25A4V"; attrs = 4; tuples = 25_000; dist = Generator.V; source = "Realistic" };
    { dataset = "R50A4W"; attrs = 4; tuples = 50_000; dist = Generator.W; source = "Synth" };
    { dataset = "R50A4U"; attrs = 4; tuples = 50_000; dist = Generator.U; source = "Synth" };
    { dataset = "R50A5W"; attrs = 5; tuples = 50_000; dist = Generator.W; source = "Synth" };
    { dataset = "R50A6W"; attrs = 6; tuples = 50_000; dist = Generator.W; source = "Synth" };
    { dataset = "R50A8W"; attrs = 8; tuples = 50_000; dist = Generator.W; source = "Synth" };
    { dataset = "R50A9W"; attrs = 9; tuples = 50_000; dist = Generator.W; source = "Synth" };
    { dataset = "R100A4U"; attrs = 4; tuples = 100_000; dist = Generator.U; source = "Synth" };
  ]

let find name =
  List.find_opt (fun e -> String.equal e.dataset name) figure6

(* Deterministic seed from the dataset name. *)
let seed_of_name name =
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc * 31) + Char.code c) name;
  (!acc land 0xFFFFFF) + 1

let load_entry ?(scale = 1.0) entry =
  let tuples = max 10 (int_of_float (float_of_int entry.tuples *. scale)) in
  Generator.generate
    {
      Generator.name = entry.dataset;
      tuples;
      qi_count = entry.attrs;
      distribution = entry.dist;
      seed = seed_of_name entry.dataset;
    }

let load ?scale name =
  match find name with
  | Some entry -> load_entry ?scale entry
  | None -> raise Not_found

let pp_table ppf () =
  Format.fprintf ppf "%-10s %-8s %-10s %-6s %s@." "Dataset" "No. Att."
    "No. Tuples" "Dist." "Data";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10s %-8d %-10d %-6s %s@." e.dataset e.attrs
        e.tuples
        (Generator.distribution_to_string e.dist)
        e.source)
    figure6
