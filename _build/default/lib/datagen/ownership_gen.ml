module Value = Vadasa_base.Value
module Stats = Vadasa_stats
module Sdc = Vadasa_sdc
module Relational = Vadasa_relational

let generate rng md ~id_attr ~edges ?(chain_length = 3) ?(seed_entities = [])
    () =
  if edges < 0 then invalid_arg "Ownership_gen.generate: negative edge count";
  let rel = Sdc.Microdata.relation md in
  let pos = Relational.Schema.index_of (Sdc.Microdata.schema md) id_attr in
  let n = Relational.Relation.cardinal rel in
  if n < 2 then []
  else begin
    let id_of i = Value.to_string (Relational.Relation.get rel i).(pos) in
    (* Shuffled company order keeps the graph acyclic: stakes point from
       earlier to later positions only. *)
    let order = Array.init n (fun i -> i) in
    Stats.Rng.shuffle rng order;
    let position_in_order = Array.make n 0 in
    Array.iteri (fun slot i -> position_in_order.(i) <- slot) order;
    (* Tuple indexes of the seed entities, if they exist in the DB. *)
    let seeds =
      let by_id = Hashtbl.create (List.length seed_entities) in
      List.iter (fun e -> Hashtbl.replace by_id e ()) seed_entities;
      let acc = ref [] in
      for i = 0 to n - 1 do
        if Hashtbl.mem by_id (id_of i) then acc := i :: !acc
      done;
      Array.of_list !acc
    in
    let swap_into_slot slot i =
      let other = order.(slot) in
      let seed_slot = position_in_order.(i) in
      order.(slot) <- i;
      order.(seed_slot) <- other;
      position_in_order.(i) <- slot;
      position_in_order.(other) <- seed_slot
    in
    let out = ref [] in
    let made = ref 0 in
    let cursor = ref 0 in
    while !made < edges && !cursor < n - 1 do
      (* Half of the chains start at a seed entity (an identifiable
         outlier joining a company group). *)
      if
        Array.length seeds > 0
        && Stats.Rng.float rng < 0.5
        && !cursor < n
      then begin
        let seed = Stats.Rng.choice rng seeds in
        if position_in_order.(seed) > !cursor then swap_into_slot !cursor seed
      end;
      let len = min (2 + Stats.Rng.int rng (max 1 (chain_length - 1))) (n - !cursor) in
      (* A chain owner -> c1 -> c2 ... of majority stakes. *)
      for k = 0 to len - 2 do
        if !made < edges then begin
          let share = 0.51 +. (Stats.Rng.float rng *. 0.48) in
          out :=
            {
              Sdc.Business.owner = id_of order.(!cursor + k);
              owned = id_of order.(!cursor + k + 1);
              share;
            }
            :: !out;
          incr made
        end
      done;
      (* Occasionally add a minority stake from the chain head into the
         chain tail, exercising the joint-control rule. *)
      if !made < edges && len >= 3 && Stats.Rng.float rng < 0.3 then begin
        out :=
          {
            Sdc.Business.owner = id_of order.(!cursor);
            owned = id_of order.(!cursor + len - 1);
            share = 0.1 +. (Stats.Rng.float rng *. 0.3);
          }
          :: !out;
        incr made
      end;
      cursor := !cursor + len
    done;
    List.rev !out
  end

let inferred_relationships ownerships =
  List.length (Sdc.Business.control_closure ownerships)
