lib/datagen/ig_survey.ml: Array List Vadasa_base Vadasa_relational Vadasa_sdc
