lib/datagen/ownership_gen.mli: Vadasa_sdc Vadasa_stats
