lib/datagen/generator.mli: Vadasa_sdc
