lib/datagen/suite.mli: Format Generator Vadasa_sdc
