lib/datagen/generator.ml: Array Float Hashtbl List Printf Vadasa_base Vadasa_relational Vadasa_sdc Vadasa_stats
