lib/datagen/suite.ml: Char Format Generator List String
