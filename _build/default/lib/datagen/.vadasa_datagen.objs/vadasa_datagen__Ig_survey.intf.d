lib/datagen/ig_survey.mli: Vadasa_sdc
