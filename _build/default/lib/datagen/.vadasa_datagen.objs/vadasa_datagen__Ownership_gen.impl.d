lib/datagen/ownership_gen.ml: Array Hashtbl List Vadasa_base Vadasa_relational Vadasa_sdc Vadasa_stats
