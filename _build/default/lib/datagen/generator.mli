(** Synthetic microdata generation (paper, Section 5 / Figure 6).

    Datasets are parameterized by tuple count, number of quasi-identifiers
    and a distribution family:

    - [W] — fitted to the real-world Inflation & Growth survey: modest
      categorical domains, mild skew; very few sample-unique combinations.
    - [U] — unbalanced: larger domains, strong skew; many tuples carry
      selective combinations with high disclosure risk.
    - [V] — very unbalanced: wide domains, extreme skew plus a share of
      uniformly-drawn outliers; a large fraction of risky tuples.

    Every tuple receives a sampling weight proportional to the expected
    population frequency of its combination (the product of its values'
    marginal probabilities times an expansion factor, with lognormal
    noise), so rare combinations get low weights — exactly the
    outlier/weight relationship the paper leans on. Generation is fully
    deterministic in the seed. *)

type distribution = W | U | V

type spec = {
  name : string;
  tuples : int;
  qi_count : int;
  distribution : distribution;
  seed : int;
}

val distribution_to_string : distribution -> string
val distribution_of_string : string -> distribution option

val generate : spec -> Vadasa_sdc.Microdata.t
(** Schema: [id] (identifier), [qi_1 … qi_m] (quasi-identifiers),
    [growth] (non-identifying), [weight] (sampling weight). *)

val synthetic_hierarchy :
  ?branching:int -> Vadasa_sdc.Microdata.t -> Vadasa_sdc.Hierarchy.t
(** A generalization hierarchy over every quasi-identifier: distinct values
    grouped [branching] at a time (default 3) into synthetic parents,
    recursively up to a single root per attribute. Enables global recoding
    on generated data. *)
