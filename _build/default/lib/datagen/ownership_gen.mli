(** Random company-ownership graphs for the business-knowledge experiments
    (paper, Section 4.4 and Figure 7d). *)

val generate :
  Vadasa_stats.Rng.t ->
  Vadasa_sdc.Microdata.t ->
  id_attr:string ->
  edges:int ->
  ?chain_length:int ->
  ?seed_entities:string list ->
  unit ->
  Vadasa_sdc.Business.ownership list
(** [edges] direct ownership stakes among the microdata DB's company
    identifiers, arranged in chains of up to [chain_length] (default 3)
    companies so that the control closure infers transitive relationships
    and forms multi-company clusters. Majority stakes (share in (0.5, 1])
    dominate, with a sprinkling of minority stakes to exercise the joint
    control rule. Acyclic by construction.

    [seed_entities]: company identifiers that chains preferentially start
    from (half of the chains, when seeds are available). Use it to model
    the paper's Figure 7d situation where company groups involve the
    identifiable outliers, so that risk actually propagates. *)

val inferred_relationships :
  Vadasa_sdc.Business.ownership list -> int
(** Size of the control closure — the "number of relationships" axis of
    Figure 7d. *)
