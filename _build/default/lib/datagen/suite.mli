(** The experimental dataset suite of the paper's Figure 6. *)

type entry = {
  dataset : string;  (** e.g. "R25A4W" *)
  attrs : int;  (** quasi-identifier count *)
  tuples : int;
  dist : Generator.distribution;
  source : string;  (** "Synth", "Real-world" or "Realistic", per Figure 6 *)
}

val figure6 : entry list
(** The twelve datasets, in the paper's order: R6A4U, R12A4U, R25A4W,
    R25A4U, R25A4V, R50A4W, R50A4U, R50A5W, R50A6W, R50A8W, R50A9W,
    R100A4U. *)

val find : string -> entry option

val load : ?scale:float -> string -> Vadasa_sdc.Microdata.t
(** Generate the named dataset (deterministic seed derived from the name).
    [scale] (default 1.0) multiplies the tuple count — benches use scaled
    sizes to keep runtimes tractable while preserving the shapes. Raises
    [Not_found] for unknown names. *)

val load_entry : ?scale:float -> entry -> Vadasa_sdc.Microdata.t

val pp_table : Format.formatter -> unit -> unit
(** Render Figure 6's inventory table. *)
