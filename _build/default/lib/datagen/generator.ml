module Value = Vadasa_base.Value
module Stats = Vadasa_stats
module Relational = Vadasa_relational
module Sdc = Vadasa_sdc

type distribution = W | U | V

type spec = {
  name : string;
  tuples : int;
  qi_count : int;
  distribution : distribution;
  seed : int;
}

let distribution_to_string = function W -> "W" | U -> "U" | V -> "V"

let distribution_of_string = function
  | "W" | "w" -> Some W
  | "U" | "u" -> Some U
  | "V" | "v" -> Some V
  | _ -> None

(* Base domain sizes echoing the I&G survey attributes (area, sector, size
   class, revenue classes, ...). Attributes beyond the first four are the
   coarser survey indicators (binary/ternary flags, broad classes): in the
   real data additional columns add little selectivity, which is what keeps
   the paper's Figure 7f flat for k-anonymity and individual risk. *)
let base_domain_sizes = [| 4; 8; 5; 4; 3; 2; 3; 2; 3 |]

let column_profile distribution j =
  let base = base_domain_sizes.(j mod Array.length base_domain_sizes) in
  match distribution with
  | W -> (base, (if j < 4 then 0.9 else 1.6), 0.0)
  | U -> (2 * base, 1.2, 0.02)
  | V -> (8 * base, 1.2, 0.0)

(* Marginal probabilities of a Zipf-distributed categorical column mixed
   with a uniform outlier share. *)
let column_probs ~cardinality ~skew ~outlier_share =
  let weights = Stats.Distribution.zipf_weights ~n:cardinality ~s:skew in
  let total = Array.fold_left ( +. ) 0.0 weights in
  Array.map
    (fun w ->
      ((1.0 -. outlier_share) *. w /. total)
      +. (outlier_share /. float_of_int cardinality))
    weights

let expansion_factor = 40.0

let generate spec =
  if spec.tuples <= 0 || spec.qi_count <= 0 then
    invalid_arg "Generator.generate: non-positive size";
  let rng = Stats.Rng.create ~seed:spec.seed in
  let column_rngs = Array.init spec.qi_count (fun _ -> Stats.Rng.split rng) in
  let noise_rng = Stats.Rng.split rng in
  let growth_rng = Stats.Rng.split rng in
  let profiles =
    Array.init spec.qi_count (fun j -> column_profile spec.distribution j)
  in
  let probs =
    Array.map
      (fun (cardinality, skew, outlier_share) ->
        column_probs ~cardinality ~skew ~outlier_share)
      profiles
  in
  let qi_names = List.init spec.qi_count (fun j -> "qi_" ^ string_of_int (j + 1)) in
  let schema =
    Relational.Schema.of_names ~name:spec.name
      (("id" :: qi_names) @ [ "growth"; "weight" ])
  in
  let rel = Relational.Relation.create schema in
  (* The very unbalanced family (V) is a tuple-level mixture: 75% of the
     tuples fall into a pool of combinations with expected cluster size ~3
     (safe at k=2, risky at larger k, cheap to anonymize), 25% are deep
     outliers drawn uniformly over the wide domains (unique even after one
     suppression) — the bimodality behind Figure 7b's V curve. *)
  let v_pool =
    match spec.distribution with
    | V ->
      let pool_size = max 2 (spec.tuples / 3) in
      Some
        ( pool_size,
          Array.init pool_size (fun _ ->
              Array.init spec.qi_count (fun j ->
                  Stats.Distribution.categorical column_rngs.(j) probs.(j))) )
    | W | U -> None
  in
  let mixture_rng = Stats.Rng.split rng in
  let draw_tuple () =
    match v_pool with
    | Some (pool_size, pool) ->
      if Stats.Rng.float mixture_rng < 0.75 then begin
        let indices = pool.(Stats.Rng.int mixture_rng pool_size) in
        (indices, 0.75 /. float_of_int pool_size)
      end
      else begin
        let indices =
          Array.init spec.qi_count (fun j ->
              Stats.Rng.int column_rngs.(j) (Array.length probs.(j)))
        in
        let p =
          Array.fold_left
            (fun acc j -> acc /. float_of_int (Array.length probs.(j)))
            0.25
            (Array.init spec.qi_count (fun j -> j))
        in
        (indices, p)
      end
    | None ->
      let indices =
        Array.init spec.qi_count (fun j ->
            Stats.Distribution.categorical column_rngs.(j) probs.(j))
      in
      let p =
        Array.fold_left ( *. ) 1.0
          (Array.mapi (fun j v -> probs.(j).(v)) indices)
      in
      (indices, p)
  in
  for i = 0 to spec.tuples - 1 do
    (* Sampling weight: expected population frequency of the combination,
       with lognormal noise. *)
    let indices, p_combo = draw_tuple () in
    let expected =
      float_of_int spec.tuples *. p_combo *. expansion_factor
      *. Stats.Distribution.lognormal noise_rng ~mu:0.0 ~sigma:0.3
    in
    let weight = Float.max 1.0 (Float.round expected) in
    let tuple =
      Array.concat
        [
          [| Value.Str (Printf.sprintf "c%06d" (100000 + i)) |];
          Array.mapi
            (fun j v ->
              Value.Str (Printf.sprintf "q%d_v%02d" (j + 1) v))
            indices;
          [| Value.Int (int_of_float (10.0 *. Stats.Rng.gaussian growth_rng)) |];
          [| Value.Float weight |];
        ]
    in
    Relational.Relation.add rel tuple
  done;
  Sdc.Microdata.make rel
    ((("id", Sdc.Microdata.Identifier) :: List.map (fun a -> (a, Sdc.Microdata.Quasi_identifier)) qi_names)
    @ [ ("growth", Sdc.Microdata.Non_identifying); ("weight", Sdc.Microdata.Weight) ])

let synthetic_hierarchy ?(branching = 3) md =
  if branching < 2 then invalid_arg "Generator.synthetic_hierarchy: branching < 2";
  let h = Sdc.Hierarchy.create () in
  let rel = Sdc.Microdata.relation md in
  let schema = Sdc.Microdata.schema md in
  List.iter
    (fun attr ->
      let pos = Relational.Schema.index_of schema attr in
      let distinct = Hashtbl.create 32 in
      Relational.Relation.iter
        (fun t ->
          let v = t.(pos) in
          if not (Value.is_null v) then Hashtbl.replace distinct (Value.to_string v) v)
        rel;
      let values =
        List.sort compare (Hashtbl.fold (fun _ v acc -> v :: acc) distinct [])
      in
      Sdc.Hierarchy.add_type_of h ~attr ~ty:(attr ^ "_l0");
      let rec build level values =
        List.iter
          (fun v -> Sdc.Hierarchy.add_instance h ~value:v ~ty:(attr ^ "_l" ^ string_of_int level))
          values;
        if List.length values > 1 then begin
          Sdc.Hierarchy.add_subtype h
            ~sub:(attr ^ "_l" ^ string_of_int level)
            ~super:(attr ^ "_l" ^ string_of_int (level + 1));
          (* Group [branching] consecutive values under a synthetic parent. *)
          let parents = ref [] in
          let rec chunk idx = function
            | [] -> ()
            | group_head ->
              let group, rest =
                let rec take k = function
                  | x :: xs when k > 0 ->
                    let taken, rest = take (k - 1) xs in
                    (x :: taken, rest)
                  | xs -> ([], xs)
                in
                take branching group_head
              in
              let parent =
                Value.Str
                  (Printf.sprintf "%s_l%d_g%d" attr (level + 1) idx)
              in
              List.iter (fun child -> Sdc.Hierarchy.add_is_a h ~child ~parent) group;
              parents := parent :: !parents;
              chunk (idx + 1) rest
          in
          chunk 0 values;
          build (level + 1) (List.rev !parents)
        end
      in
      build 0 values)
    (Sdc.Microdata.quasi_identifiers md);
  h
