(** The paper's running examples as ready-made microdata DBs.

    {!figure1} is the Inflation & Growth Survey fragment of Figure 1
    (20 tuples; categories per Section 2.2: Id a direct identifier; Area,
    Sector, Employees, Residential Rev., Export Rev. quasi-identifiers;
    Export to DE and Growth non-identifying; Weight the sampling weight).

    {!figure5} is the 7-tuple local-suppression/global-recoding example of
    Figure 5a, with {!figure5_hierarchy} the geographic knowledge
    (Roma IsA Center, Milano/Torino IsA North; City ⊂ Region). *)

val figure1 : unit -> Vadasa_sdc.Microdata.t

val figure5 : unit -> Vadasa_sdc.Microdata.t

val figure5_hierarchy : unit -> Vadasa_sdc.Hierarchy.t

val figure4_experience : Vadasa_sdc.Categorize.experience
(** The experience base that lets Algorithm 1 reconstruct Figure 4's
    category assignment for the I&G attributes. *)
