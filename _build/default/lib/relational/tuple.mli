(** Tuples: flat arrays of values, positionally matching a schema. *)

type t = Vadasa_base.Value.t array

val of_list : Vadasa_base.Value.t list -> t

val get : t -> int -> Vadasa_base.Value.t

val set : t -> int -> Vadasa_base.Value.t -> t
(** Functional update: a fresh tuple with position [i] replaced. *)

val project : t -> int array -> t
(** Sub-tuple at the given positions, in the given order. *)

val equal : t -> t -> bool
(** Positional equality under the standard value equality. *)

val compare : t -> t -> int

val hash : t -> int

val has_null : t -> bool

val null_positions : t -> int list
(** Positions holding labelled nulls, ascending. *)

val null_mask : t -> int
(** Bitmask of null positions; tuples wider than 62 attributes are not
    supported by the mask (raises [Invalid_argument]). *)

val key : t -> string
(** Canonical string key of the tuple, safe for hashtable grouping:
    values are length-prefixed so that no two distinct tuples collide. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
