module Value = Vadasa_base.Value

type t = Standard | Maybe_match

let equal_value semantics a b =
  match semantics with
  | Standard -> Value.equal a b
  | Maybe_match -> Value.equal_maybe a b

let equal_tuple semantics a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (equal_value semantics a.(i) b.(i) && go (i + 1))
  in
  go 0

let to_string = function
  | Standard -> "standard"
  | Maybe_match -> "maybe-match"

let of_string = function
  | "standard" -> Some Standard
  | "maybe-match" | "maybe_match" -> Some Maybe_match
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
