type attribute = {
  attr_name : string;
  attr_description : string;
}

type t = {
  name : string;
  attributes : attribute array;
  positions : (string, int) Hashtbl.t;
}

let make ~name attrs =
  let attributes = Array.of_list attrs in
  let positions = Hashtbl.create (Array.length attributes) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem positions a.attr_name then
        invalid_arg ("Schema.make: duplicate attribute " ^ a.attr_name);
      Hashtbl.add positions a.attr_name i)
    attributes;
  { name; attributes; positions }

let of_names ~name names =
  make ~name
    (List.map (fun n -> { attr_name = n; attr_description = "" }) names)

let name t = t.name
let attributes t = t.attributes
let arity t = Array.length t.attributes

let attribute_names t =
  Array.to_list (Array.map (fun a -> a.attr_name) t.attributes)

let index_of t attr = Hashtbl.find t.positions attr
let index_of_opt t attr = Hashtbl.find_opt t.positions attr
let mem t attr = Hashtbl.mem t.positions attr

let indices_of t attrs = Array.of_list (List.map (index_of t) attrs)

let description t attr = t.attributes.(index_of t attr).attr_description

let restrict t attrs =
  make ~name:t.name (List.map (fun a -> t.attributes.(index_of t a)) attrs)

let equal a b =
  String.equal a.name b.name
  && Array.length a.attributes = Array.length b.attributes
  && Array.for_all2
       (fun x y -> String.equal x.attr_name y.attr_name)
       a.attributes b.attributes

let pp ppf t =
  Format.fprintf ppf "%s(%s)" t.name
    (String.concat ", " (attribute_names t))
