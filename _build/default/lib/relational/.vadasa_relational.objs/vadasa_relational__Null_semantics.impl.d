lib/relational/null_semantics.ml: Array Format Vadasa_base
