lib/relational/tuple.ml: Array Buffer Format Int String Vadasa_base
