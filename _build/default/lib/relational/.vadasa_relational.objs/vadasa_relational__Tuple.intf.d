lib/relational/tuple.mli: Format Vadasa_base
