lib/relational/null_semantics.mli: Format Tuple Vadasa_base
