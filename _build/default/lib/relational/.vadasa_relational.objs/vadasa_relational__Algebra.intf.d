lib/relational/algebra.mli: Hashtbl Null_semantics Relation Tuple
