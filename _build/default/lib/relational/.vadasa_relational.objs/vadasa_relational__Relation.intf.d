lib/relational/relation.mli: Format Schema Tuple Vadasa_base
