lib/relational/relation.ml: Array Format List Printf Schema String Tuple Vadasa_base
