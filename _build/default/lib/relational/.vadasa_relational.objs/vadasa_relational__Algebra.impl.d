lib/relational/algebra.ml: Array Hashtbl List Null_semantics Relation Schema Tuple Vadasa_base
