(** Relations: a schema plus a growable sequence of tuples.

    Tuples keep their insertion order and are addressed by a stable integer
    position — risk reports and anonymization traces refer to tuples by that
    position. *)

type t

val create : Schema.t -> t

val of_tuples : Schema.t -> Tuple.t list -> t
(** Raises [Invalid_argument] on an arity mismatch. *)

val schema : t -> Schema.t

val cardinal : t -> int

val get : t -> int -> Tuple.t

val set : t -> int -> Tuple.t -> unit
(** In-place replacement (used by anonymization to swap in the suppressed
    version of a tuple). *)

val add : t -> Tuple.t -> unit

val iter : (Tuple.t -> unit) -> t -> unit

val iteri : (int -> Tuple.t -> unit) -> t -> unit

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val map : (Tuple.t -> Tuple.t) -> t -> t
(** Fresh relation with the same schema. *)

val filter : (Tuple.t -> bool) -> t -> t

val to_list : t -> Tuple.t list

val copy : t -> t
(** Deep copy: the new relation shares no tuple arrays with the old one. *)

val column : t -> string -> Vadasa_base.Value.t array

val count_nulls : t -> int
(** Total number of labelled-null occurrences across all tuples — the
    paper's "number of injected nulls" metric when the input had none. *)

val pp : Format.formatter -> t -> unit
(** Render as an aligned table (all tuples; use {!pp_sample} for a prefix). *)

val pp_sample : ?limit:int -> Format.formatter -> t -> unit
