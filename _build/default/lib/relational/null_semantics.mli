(** Pluggable equality semantics for labelled nulls.

    The anonymization cycle forms aggregation groups by comparing
    quasi-identifier combinations. Once local suppression injects labelled
    nulls, the comparison semantics decides whether suppression actually
    reduces risk:

    - {b Standard} (the Skolem-chase semantics): ⊥ᵢ equals only ⊥ᵢ. A
      freshly suppressed tuple forms a singleton group, so its frequency
      stays 1 and its risk stays maximal — this is the null proliferation
      the paper demonstrates in Figure 7c.
    - {b Maybe_match} (the paper's choice, after Ciglic et al.): a null
      matches any value, so a suppressed tuple joins every group compatible
      with its remaining constants, and groups no longer partition the DB. *)

type t = Standard | Maybe_match

val equal_value : t -> Vadasa_base.Value.t -> Vadasa_base.Value.t -> bool

val equal_tuple : t -> Tuple.t -> Tuple.t -> bool
(** Positional comparison of same-arity tuples; [false] on arity mismatch. *)

val to_string : t -> string

val of_string : string -> t option
(** Recognizes ["standard"] and ["maybe-match"] (also ["maybe_match"]). *)

val pp : Format.formatter -> t -> unit
