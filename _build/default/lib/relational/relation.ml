module Value = Vadasa_base.Value

type t = {
  schema : Schema.t;
  mutable tuples : Tuple.t array;
  mutable size : int;
}

let create schema = { schema; tuples = [||]; size = 0 }

let schema t = t.schema
let cardinal t = t.size

let get t i =
  if i < 0 || i >= t.size then invalid_arg "Relation.get: index out of bounds";
  t.tuples.(i)

let set t i tup =
  if i < 0 || i >= t.size then invalid_arg "Relation.set: index out of bounds";
  t.tuples.(i) <- tup

let ensure_capacity t needed =
  let cap = Array.length t.tuples in
  if needed > cap then begin
    let cap' = max needed (max 8 (2 * cap)) in
    let fresh = Array.make cap' [||] in
    Array.blit t.tuples 0 fresh 0 t.size;
    t.tuples <- fresh
  end

let add t tup =
  if Array.length tup <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation.add: arity mismatch (%d vs %d) in %s"
         (Array.length tup) (Schema.arity t.schema) (Schema.name t.schema));
  ensure_capacity t (t.size + 1);
  t.tuples.(t.size) <- tup;
  t.size <- t.size + 1

let of_tuples schema tuples =
  let t = create schema in
  List.iter (add t) tuples;
  t

let iter f t =
  for i = 0 to t.size - 1 do
    f t.tuples.(i)
  done

let iteri f t =
  for i = 0 to t.size - 1 do
    f i t.tuples.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.tuples.(i)
  done;
  !acc

let map f t =
  let t' = create t.schema in
  iter (fun tup -> add t' (f tup)) t;
  t'

let filter pred t =
  let t' = create t.schema in
  iter (fun tup -> if pred tup then add t' tup) t;
  t'

let to_list t = List.rev (fold (fun acc tup -> tup :: acc) [] t)

let copy t = map Array.copy t

let column t attr =
  let i = Schema.index_of t.schema attr in
  Array.init t.size (fun j -> t.tuples.(j).(i))

let count_nulls t =
  fold
    (fun acc tup ->
      Array.fold_left (fun acc v -> if Value.is_null v then acc + 1 else acc) acc tup)
    0 t

let render ?limit ppf t =
  let n = match limit with None -> t.size | Some l -> min l t.size in
  let headers = Array.map (fun a -> a.Schema.attr_name) (Schema.attributes t.schema) in
  let widths = Array.map String.length headers in
  for i = 0 to n - 1 do
    Array.iteri
      (fun j v -> widths.(j) <- max widths.(j) (String.length (Value.to_string v)))
      t.tuples.(i)
  done;
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let row cells =
    Format.fprintf ppf "| %s |@."
      (String.concat " | " (Array.to_list (Array.mapi (fun j c -> pad c widths.(j)) cells)))
  in
  row headers;
  Format.fprintf ppf "|%s|@."
    (String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)));
  for i = 0 to n - 1 do
    row (Array.map Value.to_string t.tuples.(i))
  done;
  if n < t.size then Format.fprintf ppf "... (%d more tuples)@." (t.size - n)

let pp ppf t = render ppf t
let pp_sample ?(limit = 20) ppf t = render ~limit ppf t
