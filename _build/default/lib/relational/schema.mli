(** Relation schemas: a named, ordered list of attributes.

    The Vada-SA framework is schema independent — microdata DBs of any shape
    flow through the same rules — so the schema layer is deliberately plain:
    names, positions and descriptions, no types. Types live in the values. *)

type attribute = {
  attr_name : string;
  attr_description : string;
}

type t

val make : name:string -> attribute list -> t
(** Raises [Invalid_argument] on duplicate attribute names. *)

val of_names : name:string -> string list -> t
(** Schema with empty descriptions. *)

val name : t -> string

val attributes : t -> attribute array

val arity : t -> int

val attribute_names : t -> string list

val index_of : t -> string -> int
(** Position of an attribute. Raises [Not_found]. *)

val index_of_opt : t -> string -> int option

val mem : t -> string -> bool

val indices_of : t -> string list -> int array
(** Positions of several attributes, in the given order. Raises
    [Not_found] if any is missing. *)

val description : t -> string -> string

val restrict : t -> string list -> t
(** Sub-schema with only the given attributes, in the given order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
