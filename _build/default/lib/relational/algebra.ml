module Value = Vadasa_base.Value

let select pred rel = Relation.filter pred rel

let project rel attrs =
  let positions = Schema.indices_of (Relation.schema rel) attrs in
  let schema' = Schema.restrict (Relation.schema rel) attrs in
  let out = Relation.create schema' in
  Relation.iter (fun t -> Relation.add out (Tuple.project t positions)) rel;
  out

let distinct rel =
  let seen = Hashtbl.create 256 in
  Relation.filter
    (fun t ->
      let k = Tuple.key t in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    rel

let union a b =
  if Schema.arity (Relation.schema a) <> Schema.arity (Relation.schema b) then
    invalid_arg "Algebra.union: arity mismatch";
  let out = Relation.create (Relation.schema a) in
  Relation.iter (Relation.add out) a;
  Relation.iter (Relation.add out) b;
  out

let sort_by rel cmp =
  let arr = Array.of_list (Relation.to_list rel) in
  Array.sort cmp arr;
  Relation.of_tuples (Relation.schema rel) (Array.to_list arr)

let group_indices rel ~cols =
  let groups = Hashtbl.create 1024 in
  Relation.iteri
    (fun i t ->
      let k = Tuple.key (Tuple.project t cols) in
      let members = try Hashtbl.find groups k with Not_found -> [] in
      Hashtbl.replace groups k (i :: members))
    rel;
  (* Store members ascending. *)
  Hashtbl.iter (fun k members -> Hashtbl.replace groups k (List.rev members)) groups;
  groups

let joined_schema ~left ~right ~right_only =
  let ls = Relation.schema left and rs = Relation.schema right in
  let left_attrs = Array.to_list (Schema.attributes ls) in
  let right_attrs =
    List.filter_map
      (fun a ->
        if List.mem a.Schema.attr_name right_only then Some a else None)
      (Array.to_list (Schema.attributes rs))
  in
  Schema.make
    ~name:(Schema.name ls ^ "_" ^ Schema.name rs)
    (left_attrs @ right_attrs)

let natural_join left right =
  let ls = Relation.schema left and rs = Relation.schema right in
  let shared =
    List.filter (Schema.mem rs) (Schema.attribute_names ls)
  in
  let right_only =
    List.filter (fun a -> not (List.mem a shared)) (Schema.attribute_names rs)
  in
  let schema' = joined_schema ~left ~right ~right_only in
  let out = Relation.create schema' in
  let l_shared = Schema.indices_of ls shared in
  let r_shared = Schema.indices_of rs shared in
  let r_only = Schema.indices_of rs right_only in
  (* Hash the right side on the shared-attribute key. *)
  let index = Hashtbl.create 1024 in
  Relation.iter
    (fun t ->
      let k = Tuple.key (Tuple.project t r_shared) in
      let existing = try Hashtbl.find index k with Not_found -> [] in
      Hashtbl.replace index k (t :: existing))
    right;
  Relation.iter
    (fun lt ->
      let k = Tuple.key (Tuple.project lt l_shared) in
      match Hashtbl.find_opt index k with
      | None -> ()
      | Some matches ->
        List.iter
          (fun rt -> Relation.add out (Array.append lt (Tuple.project rt r_only)))
          matches)
    left;
  out

let equi_join ~left ~right ~on =
  let ls = Relation.schema left and rs = Relation.schema right in
  let l_cols = Schema.indices_of ls (List.map fst on) in
  let r_cols = Schema.indices_of rs (List.map snd on) in
  let rename a =
    if Schema.mem ls a.Schema.attr_name then
      { a with Schema.attr_name = Schema.name rs ^ "." ^ a.Schema.attr_name }
    else a
  in
  let schema' =
    Schema.make
      ~name:(Schema.name ls ^ "_" ^ Schema.name rs)
      (Array.to_list (Schema.attributes ls)
      @ List.map rename (Array.to_list (Schema.attributes rs)))
  in
  let out = Relation.create schema' in
  let index = Hashtbl.create 1024 in
  Relation.iter
    (fun t ->
      let k = Tuple.key (Tuple.project t r_cols) in
      let existing = try Hashtbl.find index k with Not_found -> [] in
      Hashtbl.replace index k (t :: existing))
    right;
  Relation.iter
    (fun lt ->
      let k = Tuple.key (Tuple.project lt l_cols) in
      match Hashtbl.find_opt index k with
      | None -> ()
      | Some matches ->
        List.iter (fun rt -> Relation.add out (Array.append lt rt)) matches)
    left;
  out

module Group_stats = struct
  type t = {
    freq : int array;
    weight_sum : float array;
  }

  let weight_of rel weight i =
    match weight with
    | None -> 1.0
    | Some w ->
      (match Value.as_float (Tuple.get (Relation.get rel i) w) with
      | Some x -> x
      | None -> 1.0)

  (* Exact (standard-semantics) grouping: one hash pass. *)
  let compute_standard ~rel ~qi ~weight =
    let n = Relation.cardinal rel in
    let freq = Array.make n 0 in
    let weight_sum = Array.make n 0.0 in
    let groups = Hashtbl.create (max 16 n) in
    Relation.iteri
      (fun i t ->
        let k = Tuple.key (Tuple.project t qi) in
        let members, ws =
          try Hashtbl.find groups k with Not_found -> ([], 0.0)
        in
        Hashtbl.replace groups k (i :: members, ws +. weight_of rel weight i))
      rel;
    Hashtbl.iter
      (fun _ (members, ws) ->
        let size = List.length members in
        List.iter
          (fun i ->
            freq.(i) <- size;
            weight_sum.(i) <- ws)
          members)
      groups;
    { freq; weight_sum }

  (* Maybe-match grouping: constants grouped exactly; null-bearing tuples
     matched against per-mask indexes of the constant cohort and pairwise
     against each other. *)
  let compute_maybe ~rel ~qi ~weight =
    let n = Relation.cardinal rel in
    let freq = Array.make n 0 in
    let weight_sum = Array.make n 0.0 in
    let proj = Array.init n (fun i -> Tuple.project (Relation.get rel i) qi) in
    let w = Array.init n (fun i -> weight_of rel weight i) in
    let const_idx = ref [] and null_idx = ref [] in
    for i = n - 1 downto 0 do
      if Tuple.has_null proj.(i) then null_idx := i :: !null_idx
      else const_idx := i :: !const_idx
    done;
    let const_idx = !const_idx and null_idx = !null_idx in
    (* 1. Exact groups among all-constant tuples. *)
    let groups = Hashtbl.create (max 16 n) in
    List.iter
      (fun i ->
        let k = Tuple.key proj.(i) in
        let members, ws = try Hashtbl.find groups k with Not_found -> ([], 0.0) in
        Hashtbl.replace groups k (i :: members, ws +. w.(i)))
      const_idx;
    Hashtbl.iter
      (fun _ (members, ws) ->
        let size = List.length members in
        List.iter
          (fun i ->
            freq.(i) <- size;
            weight_sum.(i) <- ws)
          members)
      groups;
    (* Null tuples start by matching themselves. *)
    List.iter
      (fun i ->
        freq.(i) <- 1;
        weight_sum.(i) <- w.(i))
      null_idx;
    (* 2. Null vs constant, via one index per distinct null mask: constant
       tuples keyed by their values at the mask's constant positions. *)
    let masks = Hashtbl.create 8 in
    List.iter
      (fun i ->
        let m = Tuple.null_mask proj.(i) in
        let members = try Hashtbl.find masks m with Not_found -> [] in
        Hashtbl.replace masks m (i :: members))
      null_idx;
    let width = Array.length qi in
    let const_positions_of_mask m =
      let acc = ref [] in
      for p = width - 1 downto 0 do
        if m land (1 lsl p) = 0 then acc := p :: !acc
      done;
      Array.of_list !acc
    in
    Hashtbl.iter
      (fun m members ->
        let positions = const_positions_of_mask m in
        let index = Hashtbl.create 1024 in
        List.iter
          (fun j ->
            let k = Tuple.key (Tuple.project proj.(j) positions) in
            let cohort, ws = try Hashtbl.find index k with Not_found -> ([], 0.0) in
            Hashtbl.replace index k (j :: cohort, ws +. w.(j)))
          const_idx;
        List.iter
          (fun i ->
            let k = Tuple.key (Tuple.project proj.(i) positions) in
            match Hashtbl.find_opt index k with
            | None -> ()
            | Some (cohort, ws) ->
              freq.(i) <- freq.(i) + List.length cohort;
              weight_sum.(i) <- weight_sum.(i) +. ws;
              List.iter
                (fun j ->
                  freq.(j) <- freq.(j) + 1;
                  weight_sum.(j) <- weight_sum.(j) +. w.(i))
                cohort)
          members)
      masks;
    (* 3. Null vs null. Suppressed tuples cluster into few patterns (same
       null positions, same remaining constants — null labels are
       irrelevant to =⊥), so we compare pattern classes, not tuples:
       O(c²) class tests plus O(m) bookkeeping instead of O(m²). *)
    let class_key p =
      let normalized =
        Array.map (fun v -> if Value.is_null v then Value.Null 0 else v) p
      in
      Tuple.key normalized
    in
    let classes = Hashtbl.create 64 in
    List.iter
      (fun i ->
        let k = class_key proj.(i) in
        match Hashtbl.find_opt classes k with
        | Some (repr, members, ws) ->
          Hashtbl.replace classes k (repr, i :: members, ws +. w.(i))
        | None -> Hashtbl.add classes k (proj.(i), [ i ], w.(i)))
      null_idx;
    let class_list =
      Hashtbl.fold (fun _ cls acc -> cls :: acc) classes []
    in
    let class_arr = Array.of_list class_list in
    let c = Array.length class_arr in
    let credit members ~count ~weight =
      List.iter
        (fun i ->
          freq.(i) <- freq.(i) + count;
          weight_sum.(i) <- weight_sum.(i) +. weight)
        members
    in
    for a = 0 to c - 1 do
      let repr_a, members_a, ws_a = class_arr.(a) in
      let size_a = List.length members_a in
      (* Within a class every member matches every other member. *)
      if size_a > 1 then
        List.iter
          (fun i ->
            freq.(i) <- freq.(i) + size_a - 1;
            weight_sum.(i) <- weight_sum.(i) +. ws_a -. w.(i))
          members_a;
      for b = a + 1 to c - 1 do
        let repr_b, members_b, ws_b = class_arr.(b) in
        if Null_semantics.equal_tuple Maybe_match repr_a repr_b then begin
          credit members_a ~count:(List.length members_b) ~weight:ws_b;
          credit members_b ~count:size_a ~weight:ws_a
        end
      done
    done;
    { freq; weight_sum }

  let compute ~semantics ~rel ~qi ?weight () =
    match (semantics : Null_semantics.t) with
    | Standard -> compute_standard ~rel ~qi ~weight
    | Maybe_match -> compute_maybe ~rel ~qi ~weight
end
