(** Relational algebra over {!Relation.t}, plus the null-aware group
    statistics that every risk measure is built on.

    The paper frames statistical disclosure risk as ρ = 1/λ(σ_{q=q̂} M): an
    aggregate λ over the tuples sharing a quasi-identifier combination q̂.
    {!Group_stats.compute} evaluates, for every tuple at once, the frequency
    and the weight sum of its combination — under either labelled-null
    semantics — so the individual measures reduce to arithmetic on the
    result. *)

val select : (Tuple.t -> bool) -> Relation.t -> Relation.t

val project : Relation.t -> string list -> Relation.t
(** Keeps duplicates (bag semantics, like the microdata DBs themselves). *)

val distinct : Relation.t -> Relation.t
(** Removes duplicate tuples under standard equality, keeping first
    occurrences in order. *)

val natural_join : Relation.t -> Relation.t -> Relation.t
(** Join on all shared attribute names; result carries the left schema
    followed by the right-only attributes. Standard null semantics
    (nulls join only with themselves). *)

val equi_join :
  left:Relation.t -> right:Relation.t -> on:(string * string) list ->
  Relation.t
(** Join on explicit attribute pairs; all attributes of both sides are kept
    (right-side names prefixed with the right schema name and a dot when
    they clash). *)

val union : Relation.t -> Relation.t -> Relation.t
(** Bag union; schemas must have equal arity. *)

val sort_by :
  Relation.t -> (Tuple.t -> Tuple.t -> int) -> Relation.t

val group_indices :
  Relation.t -> cols:int array -> (string, int list) Hashtbl.t
(** Standard-semantics grouping: canonical projected key → member positions
    (ascending). *)

(** Per-tuple statistics of the quasi-identifier combination each tuple
    belongs to. *)
module Group_stats : sig
  type t = {
    freq : int array;
        (** [freq.(i)] — how many tuples (including tuple [i] itself) match
            tuple [i] on the projection, under the chosen semantics. This is
            the sample frequency f of the paper. *)
    weight_sum : float array;
        (** [weight_sum.(i)] — sum of the sampling weights of those same
            tuples; the estimator ŵ of the population frequency F. Equal to
            [float freq] when no weight column is given. *)
  }

  val compute :
    semantics:Null_semantics.t ->
    rel:Relation.t ->
    qi:int array ->
    ?weight:int ->
    unit ->
    t
  (** [qi] — positions of the quasi-identifiers to compare on; [weight] —
      position of the sampling-weight column, if any.

      Under [Maybe_match] the groups overlap: a tuple with [k] nulls among
      its quasi-identifiers contributes to (and collects from) every
      compatible combination, exactly as in the paper's Section 4.3 example
      where one suppression lifts the frequency of tuple 1 from 1 to 5 and
      of tuples 2–5 from 2 to 3.

      Cost: O(n) for all-constant data; plus O(m·n̄ + m²) where m is the
      number of null-bearing tuples and n̄ the size of the matched constant
      cohorts — m stays small because suppression only touches risky
      tuples. *)
end
