module Value = Vadasa_base.Value

type t = Value.t array

let of_list = Array.of_list

let get t i = t.(i)

let set t i v =
  let t' = Array.copy t in
  t'.(i) <- v;
  t'

let project t positions = Array.map (fun i -> t.(i)) positions

let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let has_null t = Array.exists Value.is_null t

let null_positions t =
  let acc = ref [] in
  for i = Array.length t - 1 downto 0 do
    if Value.is_null t.(i) then acc := i :: !acc
  done;
  !acc

let null_mask t =
  if Array.length t > 62 then invalid_arg "Tuple.null_mask: tuple too wide";
  let mask = ref 0 in
  Array.iteri (fun i v -> if Value.is_null v then mask := !mask lor (1 lsl i)) t;
  !mask

let key t =
  let buf = Buffer.create 32 in
  Array.iter
    (fun v ->
      let s = Value.to_string v in
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s;
      Buffer.add_char buf '|')
    t;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_string t)))

let to_string t = Format.asprintf "%a" pp t
