let mean xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean: empty array";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Descriptive.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Descriptive.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. width) in
      let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let l = lo +. (float_of_int i *. width) in
      (l, l +. width, c))
    counts

let frequency_table table =
  let counts = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key _ ->
      let current = try Hashtbl.find counts key with Not_found -> 0 in
      Hashtbl.replace counts key (current + 1))
    table;
  let entries = Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts [] in
  List.sort (fun (_, a) (_, b) -> Int.compare b a) entries
