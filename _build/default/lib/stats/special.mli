(** Special mathematical functions needed by the distribution layer. *)

val log_gamma : float -> float
(** Natural log of the Gamma function for positive arguments (Lanczos
    approximation, ~15 significant digits). *)

val log_factorial : int -> float
(** [log n!]; exact summation for small [n], [log_gamma] beyond. *)

val log_choose : int -> int -> float
(** [log (n choose k)]; [neg_infinity] when [k < 0 || k > n]. *)

val log_beta : float -> float -> float

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26, |error| < 1.5e-7). *)

val normal_cdf : mean:float -> std:float -> float -> float
