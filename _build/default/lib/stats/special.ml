(* Lanczos approximation with g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: non-positive argument"
  else if x < 0.5 then
    (* Reflection formula keeps precision near zero. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. lanczos.(i) /. (x +. float_of_int i)
    done;
    0.5 *. log (2.0 *. Float.pi) +. ((x +. 0.5) *. log t) -. t +. log !a

let log_factorial_table =
  lazy
    (let table = Array.make 257 0.0 in
     for n = 2 to 256 do
       table.(n) <- table.(n - 1) +. log (float_of_int n)
     done;
     table)

let log_factorial n =
  if n < 0 then invalid_arg "Special.log_factorial: negative argument"
  else if n <= 256 then (Lazy.force log_factorial_table).(n)
  else log_gamma (float_of_int n +. 1.0)

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. (((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736)
        *. t
       +. 0.254829592)
       *. t
       *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf ~mean ~std x =
  0.5 *. (1.0 +. erf ((x -. mean) /. (std *. sqrt 2.0)))
