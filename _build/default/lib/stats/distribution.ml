let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Distribution.exponential: rate <= 0";
  -.log (1.0 -. Rng.float rng) /. rate

let rec gamma rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Distribution.gamma: non-positive parameter";
  if shape < 1.0 then
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let u = Rng.float rng in
    gamma rng ~shape:(shape +. 1.0) ~scale *. (u ** (1.0 /. shape))
  else
    (* Marsaglia & Tsang (2000). *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = Rng.gaussian rng in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else
        let v = v *. v *. v in
        let u = Rng.float rng in
        if u < 1.0 -. (0.0331 *. (x *. x) *. (x *. x)) then d *. v
        else if log u < (0.5 *. x *. x) +. (d *. (1.0 -. v +. log v)) then d *. v
        else draw ()
    in
    scale *. draw ()

let beta rng ~a ~b =
  let x = gamma rng ~shape:a ~scale:1.0 in
  let y = gamma rng ~shape:b ~scale:1.0 in
  x /. (x +. y)

let lognormal rng ~mu ~sigma = exp (mu +. (sigma *. Rng.gaussian rng))

let poisson rng ~mean =
  if mean < 0.0 then invalid_arg "Distribution.poisson: negative mean";
  if mean = 0.0 then 0
  else if mean < 30.0 then begin
    let l = exp (-.mean) in
    let k = ref 0 in
    let p = ref 1.0 in
    let continue = ref true in
    while !continue do
      p := !p *. Rng.float rng;
      if !p <= l then continue := false else incr k
    done;
    !k
  end
  else
    (* Normal approximation with continuity correction; adequate for the
       data-generation purposes this library serves. *)
    let x = mean +. (sqrt mean *. Rng.gaussian rng) +. 0.5 in
    if x < 0.0 then 0 else int_of_float x

let binomial rng ~n ~p =
  if n < 0 || p < 0.0 || p > 1.0 then invalid_arg "Distribution.binomial";
  if n <= 64 then begin
    let k = ref 0 in
    for _ = 1 to n do
      if Rng.float rng < p then incr k
    done;
    !k
  end
  else
    let mean = float_of_int n *. p in
    let std = sqrt (float_of_int n *. p *. (1.0 -. p)) in
    let x = int_of_float (mean +. (std *. Rng.gaussian rng) +. 0.5) in
    max 0 (min n x)

let negative_binomial rng ~r ~p =
  if r <= 0.0 || p <= 0.0 || p > 1.0 then
    invalid_arg "Distribution.negative_binomial";
  if p = 1.0 then 0
  else
    let lambda = gamma rng ~shape:r ~scale:((1.0 -. p) /. p) in
    poisson rng ~mean:lambda

let neg_binomial_log_pmf ~r ~p k =
  if k < 0 then neg_infinity
  else
    let kf = float_of_int k in
    Special.log_gamma (kf +. r)
    -. Special.log_gamma r
    -. Special.log_factorial k
    +. (r *. log p)
    +. (kf *. log (1.0 -. p))

let geometric rng ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Distribution.geometric";
  if p = 1.0 then 0
  else
    let u = Rng.float rng in
    int_of_float (Float.floor (log (1.0 -. u) /. log (1.0 -. p)))

let categorical = Rng.weighted_index

let zipf_weights ~n ~s =
  Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s))

let zipf rng ~n ~s = Rng.weighted_index rng (zipf_weights ~n ~s)

let dirichlet rng ~alpha =
  let draws = Array.map (fun a -> gamma rng ~shape:a ~scale:1.0) alpha in
  let total = Array.fold_left ( +. ) 0.0 draws in
  Array.map (fun x -> x /. total) draws
