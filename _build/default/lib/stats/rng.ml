type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 output function: mix the advanced state through two
   xor-shift-multiply rounds (Steele, Lea & Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

let copy t = { state = t.state }

let float t =
  (* 53 high-quality bits into the unit interval. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bound << 2^62, and determinism matters more than perfect uniformity.
     Shift by 2 so the result fits OCaml's 63-bit int as a non-negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let weighted_index t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: weights must sum to > 0";
  let x = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
