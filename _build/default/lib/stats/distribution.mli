(** Probability distributions used by the synthetic-data generator and the
    individual-risk estimator.

    Samplers take an explicit {!Rng.t}; log-densities are exposed where the
    estimators need them. *)

(** {1 Discrete} *)

val poisson : Rng.t -> mean:float -> int
(** Knuth's method below mean 30, normal approximation (rounded,
    non-negative) above. *)

val binomial : Rng.t -> n:int -> p:float -> int

val negative_binomial : Rng.t -> r:float -> p:float -> int
(** Number of failures before the [r]-th success, success probability [p];
    generalized to real [r] via the Gamma–Poisson mixture
    [lambda ~ Gamma(r, (1-p)/p); X ~ Poisson(lambda)]. Mean [r(1-p)/p]. *)

val neg_binomial_log_pmf : r:float -> p:float -> int -> float

val geometric : Rng.t -> p:float -> int
(** Failures before the first success. *)

val categorical : Rng.t -> float array -> int
(** Alias of {!Rng.weighted_index}: index drawn with the given weights. *)

val zipf : Rng.t -> n:int -> s:float -> int
(** Zipf-distributed rank in [\[0, n)], exponent [s]; inversion on the
    precomputed CDF is left to callers that need bulk draws — this is the
    simple linear-scan sampler used for modest [n]. *)

val zipf_weights : n:int -> s:float -> float array
(** The unnormalized Zipf weights [1/(i+1)^s], useful to feed categorical
    column generators directly. *)

(** {1 Continuous} *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Marsaglia–Tsang squeeze method; boosting for [shape < 1]. *)

val beta : Rng.t -> a:float -> b:float -> float

val exponential : Rng.t -> rate:float -> float

val lognormal : Rng.t -> mu:float -> sigma:float -> float

val dirichlet : Rng.t -> alpha:float array -> float array
(** A random probability vector; used to draw "unbalanced" category
    frequencies for the synthetic datasets (paper, Figure 6). *)
