(** Estimators for the individual (per-cell) re-identification risk.

    A "cell" is a combination of quasi-identifier values; [freq] is its
    sample frequency f (how many microdata tuples carry the combination) and
    [weight_sum] the sum ŵ of their sampling weights — the estimator of the
    population frequency F of the combination.

    The paper (Algorithm 5) poses λ = ŵ and estimates the risk as f/ŵ; the
    richer estimators below follow the Benedetti–Franconi line the paper
    cites, modelling the posterior of F given f as negative binomial. *)

val naive : freq:int -> weight_sum:float -> float
(** The paper's Algorithm 5: risk = f / ŵ, clamped into [\[0, 1\]].
    Degenerates to 1 when ŵ ≤ f (the sample exhausts the population). *)

val benedetti_franconi : freq:int -> weight_sum:float -> float
(** Posterior mean of 1/F under the negative-binomial model with estimated
    within-cell sampling rate p̂ = f/ŵ. Exact closed forms for f = 1 and
    f = 2; for f ≥ 3 the standard approximation
    [p̂ / (f - (1 - p̂))] (Franconi & Polettini 2004). *)

val monte_carlo :
  Rng.t -> samples:int -> freq:int -> weight_sum:float -> float
(** Simulation estimator of E[1/F | f]: draws F = f + NegBin(f, p̂) and
    averages 1/F. This is the reproduction of the paper's "off-the-shelf
    statistical library" plug-in used in Figure 7e, whose per-cell sampling
    cost dominates the individual-risk running time. *)

val global_risk : float array -> float
(** Expected number of re-identifications: the sum of per-tuple risks.
    A whole-file summary used in reports. *)

val cluster_risk : float array -> float
(** Risk that at least one member of a linked cluster is re-identified:
    1 - ∏(1 - ρ_c) (paper, Section 4.4). *)
