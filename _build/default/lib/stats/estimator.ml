let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let naive ~freq ~weight_sum =
  if freq <= 0 then 0.0
  else if weight_sum <= float_of_int freq then 1.0
  else clamp01 (float_of_int freq /. weight_sum)

let benedetti_franconi ~freq ~weight_sum =
  if freq <= 0 then 0.0
  else
    let f = float_of_int freq in
    if weight_sum <= f then 1.0 /. f
    else
      let p = f /. weight_sum in
      let q = p /. (1.0 -. p) in
      let risk =
        match freq with
        | 1 -> q *. log (1.0 /. p)
        | 2 -> q -. ((q *. q) *. log (1.0 /. p))
        | _ -> p /. (f -. (1.0 -. p))
      in
      clamp01 risk

let monte_carlo rng ~samples ~freq ~weight_sum =
  if freq <= 0 then 0.0
  else if samples <= 0 then invalid_arg "Estimator.monte_carlo: samples <= 0"
  else
    let f = float_of_int freq in
    if weight_sum <= f then 1.0 /. f
    else begin
      let p = f /. weight_sum in
      let acc = ref 0.0 in
      for _ = 1 to samples do
        (* Posterior of the population frequency given the sample frequency
           under the negative-binomial model: F = f + NegBin(f, p). *)
        let extra = Distribution.negative_binomial rng ~r:f ~p in
        acc := !acc +. (1.0 /. float_of_int (freq + extra))
      done;
      clamp01 (!acc /. float_of_int samples)
    end

let global_risk risks = Array.fold_left ( +. ) 0.0 risks

let cluster_risk risks =
  let survive = Array.fold_left (fun acc r -> acc *. (1.0 -. clamp01 r)) 1.0 risks in
  1.0 -. survive
