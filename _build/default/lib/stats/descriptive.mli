(** Descriptive statistics for experiment reporting. *)

val mean : float array -> float
(** Mean of a non-empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for arrays of length < 2. *)

val std : float array -> float

val median : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for q in [\[0,1\]], linear interpolation between order
    statistics. Does not mutate its argument. *)

val min_max : float array -> float * float

val histogram : bins:int -> float array -> (float * float * int) array
(** Equal-width bins over the data range; each entry is
    [(lo, hi, count)]. *)

val frequency_table : ('a, 'b) Hashtbl.t -> ('a * int) list
(** Count keys of a hashtable (multi-bindings counted), sorted descending by
    count. Used to summarize categorical columns in reports. *)
