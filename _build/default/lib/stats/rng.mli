(** Deterministic pseudo-random number generator (SplitMix64).

    Every data generator and Monte-Carlo estimator in this repository takes
    an explicit [Rng.t] so that datasets and experiments are reproducible
    from a seed. SplitMix64 passes BigCrush, is trivially seedable and
    splittable, and needs no external dependency. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from the current state; the parent
    advances. Used to give each column of a synthetic dataset its own
    stream, so adding a column does not perturb the others. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val weighted_index : t -> float array -> int
(** Index [i] with probability [w.(i) / sum w]. Weights must be non-negative
    with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
