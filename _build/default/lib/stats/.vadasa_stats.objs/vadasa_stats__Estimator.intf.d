lib/stats/estimator.mli: Rng
