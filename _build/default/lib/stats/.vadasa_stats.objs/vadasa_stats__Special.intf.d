lib/stats/special.mli:
