lib/stats/distribution.ml: Array Float Rng Special
