lib/stats/descriptive.mli: Hashtbl
