lib/stats/estimator.ml: Array Distribution
