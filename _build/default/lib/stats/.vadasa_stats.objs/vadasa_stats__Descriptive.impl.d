lib/stats/descriptive.ml: Array Float Hashtbl Int List
