lib/stats/rng.mli:
