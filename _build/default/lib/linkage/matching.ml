module Value = Vadasa_base.Value
module Stats = Vadasa_stats

type guess = {
  row : int;
  identity : string;
  confidence : float;
  block : int;
}

let score target candidate =
  let agree = ref 0 in
  Array.iteri
    (fun p v ->
      if
        p < Array.length candidate
        && (not (Value.is_null v))
        && Value.equal v candidate.(p)
      then incr agree)
    target;
  !agree

let best_guess rng oracle target rows =
  match rows with
  | [] -> None
  | _ ->
    let scored =
      List.map (fun r -> (r, score target (Oracle.qi_values oracle r))) rows
    in
    let best_score = List.fold_left (fun acc (_, s) -> max acc s) min_int scored in
    let best = List.filter (fun (_, s) -> s = best_score) scored in
    let pick = Stats.Rng.int rng (List.length best) in
    let row, _ = List.nth best pick in
    Some
      {
        row;
        identity = Oracle.identity_of_row oracle row;
        confidence = 1.0 /. float_of_int (List.length best);
        block = List.length rows;
      }
