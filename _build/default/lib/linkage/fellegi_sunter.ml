module Value = Vadasa_base.Value
module Stats = Vadasa_stats

type t = {
  m : float;
  u : float array;  (* per attribute *)
}

let estimate ?(m = 0.95) oracle =
  let n = Oracle.cardinal oracle in
  if n = 0 then { m; u = [||] }
  else begin
    let width = Array.length (Oracle.qi_values oracle 0) in
    let u =
      Array.init width (fun j ->
          (* u_j = P(agree | random pair) = sum of squared value shares. *)
          let counts = Hashtbl.create 64 in
          for r = 0 to n - 1 do
            let v = Value.to_string (Oracle.qi_values oracle r).(j) in
            let c = try Hashtbl.find counts v with Not_found -> 0 in
            Hashtbl.replace counts v (c + 1)
          done;
          let total = float_of_int n in
          let sum_sq =
            Hashtbl.fold
              (fun _ c acc ->
                let share = float_of_int c /. total in
                acc +. (share *. share))
              counts 0.0
          in
          (* Clamp away from 0 and 1 so the log weights stay finite. *)
          Float.min 0.999 (Float.max 1e-6 sum_sq))
    in
    { m; u }
  end

let log2 x = log x /. log 2.0

let agreement_weight t j = log2 (t.m /. t.u.(j))

let disagreement_weight t j = log2 ((1.0 -. t.m) /. (1.0 -. t.u.(j)))

let score t target candidate =
  let total = ref 0.0 in
  Array.iteri
    (fun j v ->
      if j < Array.length candidate && j < Array.length t.u then
        if Value.is_null v then ()  (* unknown: no evidence either way *)
        else if Value.equal v candidate.(j) then
          total := !total +. agreement_weight t j
        else total := !total +. disagreement_weight t j)
    target;
  !total

type decision = Match | Possible | Non_match

let classify _t ~upper ~lower total =
  if total >= upper then Match
  else if total <= lower then Non_match
  else Possible

let best_guess rng t oracle target rows =
  match rows with
  | [] -> None
  | _ ->
    let scored =
      List.map (fun r -> (r, score t target (Oracle.qi_values oracle r))) rows
    in
    let best_score =
      List.fold_left (fun acc (_, s) -> Float.max acc s) neg_infinity scored
    in
    let best = List.filter (fun (_, s) -> s >= best_score -. 1e-9) scored in
    let pick = Stats.Rng.int rng (List.length best) in
    let row, _ = List.nth best pick in
    Some
      {
        Matching.row;
        identity = Oracle.identity_of_row oracle row;
        confidence = 1.0 /. float_of_int (List.length best);
        block = List.length rows;
      }
