module Value = Vadasa_base.Value
module Relational = Vadasa_relational
module Tuple = Relational.Tuple
module Relation = Relational.Relation

type t = {
  oracle : Oracle.t;
  width : int;
  full_index : (string, int list) Hashtbl.t;
  (* per-attribute value index, for targets with suppressed values *)
  attr_index : (string, int list) Hashtbl.t array;
  total : int;
}

let build oracle =
  let rel = Oracle.relation oracle in
  let n = Relation.cardinal rel in
  let width =
    match n with
    | 0 -> 0
    | _ -> Array.length (Oracle.qi_values oracle 0)
  in
  let full_index = Hashtbl.create (max 16 n) in
  let attr_index = Array.init width (fun _ -> Hashtbl.create (max 16 n)) in
  for r = n - 1 downto 0 do
    let qi = Oracle.qi_values oracle r in
    let key = Tuple.key qi in
    let existing = try Hashtbl.find full_index key with Not_found -> [] in
    Hashtbl.replace full_index key (r :: existing);
    Array.iteri
      (fun p v ->
        let k = Value.to_string v in
        let existing = try Hashtbl.find attr_index.(p) k with Not_found -> [] in
        Hashtbl.replace attr_index.(p) k (r :: existing))
      qi
  done;
  { oracle; width; full_index; attr_index; total = n }

let candidates t target =
  if Array.length target <> t.width then
    invalid_arg "Blocking.candidates: arity mismatch";
  let constant_positions =
    List.filter
      (fun p -> not (Value.is_null target.(p)))
      (List.init t.width (fun p -> p))
  in
  match constant_positions with
  | [] -> List.init t.total (fun r -> r)
  | _ when List.length constant_positions = t.width ->
    (try Hashtbl.find t.full_index (Tuple.key target) with Not_found -> [])
  | p0 :: rest ->
    (* Intersect per-attribute postings, starting from one list and
       filtering against the others via the oracle rows themselves. *)
    let initial =
      try Hashtbl.find t.attr_index.(p0) (Value.to_string target.(p0))
      with Not_found -> []
    in
    List.filter
      (fun r ->
        let qi = Oracle.qi_values t.oracle r in
        List.for_all (fun p -> Value.equal qi.(p) target.(p)) rest)
      initial

let block_size t target = List.length (candidates t target)
