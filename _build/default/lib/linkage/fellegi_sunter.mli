(** Fellegi–Sunter probabilistic record linkage — the matching side of the
    attack toolbox the paper points at (Christen 2012, its ref. [13]).

    Each attribute contributes a log₂ likelihood-ratio weight: agreement on
    attribute j adds log₂(m_j/u_j), disagreement adds
    log₂((1−m_j)/(1−u_j)), where m_j is the probability that true matches
    agree on j and u_j the probability that random non-matches do. The u
    probabilities are estimated from the oracle's value distributions
    (Σ f_v² over the attribute's empirical frequencies), so agreement on a
    {e rare} value weighs much more than agreement on a common one —
    exactly why selective quasi-identifier values endanger confidentiality
    and why suppressing them defuses the attack. *)

type t

val estimate : ?m:float -> Oracle.t -> t
(** Estimate per-attribute weights from the oracle. [m] (default 0.95) is
    the assumed agreement probability among true matches, uniform across
    attributes. *)

val agreement_weight : t -> int -> float
(** log₂(m/u) of attribute [j] — positive, higher for selective attributes. *)

val disagreement_weight : t -> int -> float
(** log₂((1−m)/(1−u)) — negative. *)

val score : t -> Vadasa_relational.Tuple.t -> Vadasa_relational.Tuple.t -> float
(** Total weight of a record pair. A labelled null in the target
    contributes 0 (the attacker can neither confirm nor refute). *)

type decision = Match | Possible | Non_match

val classify : t -> upper:float -> lower:float -> float -> decision
(** The classic three-way decision on a pair's total weight. *)

val best_guess :
  Vadasa_stats.Rng.t -> t -> Oracle.t -> Vadasa_relational.Tuple.t ->
  int list -> Matching.guess option
(** Drop-in replacement for {!Matching.best_guess} ranking the blocked
    cohort by Fellegi–Sunter score instead of raw agreement counts. *)
