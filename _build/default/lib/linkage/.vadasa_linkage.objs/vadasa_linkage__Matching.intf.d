lib/linkage/matching.mli: Oracle Vadasa_relational Vadasa_stats
