lib/linkage/blocking.ml: Array Hashtbl List Oracle Vadasa_base Vadasa_relational
