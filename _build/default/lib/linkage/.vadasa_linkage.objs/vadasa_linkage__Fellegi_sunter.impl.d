lib/linkage/fellegi_sunter.ml: Array Float Hashtbl List Matching Oracle Vadasa_base Vadasa_stats
