lib/linkage/oracle.mli: Vadasa_relational Vadasa_sdc Vadasa_stats
