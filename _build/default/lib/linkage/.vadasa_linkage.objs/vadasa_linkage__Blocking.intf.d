lib/linkage/blocking.mli: Oracle Vadasa_relational
