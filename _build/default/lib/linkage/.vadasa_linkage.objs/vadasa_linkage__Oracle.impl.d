lib/linkage/oracle.ml: Array Float List Printf Vadasa_base Vadasa_relational Vadasa_sdc Vadasa_stats
