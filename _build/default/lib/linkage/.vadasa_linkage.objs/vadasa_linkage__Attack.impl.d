lib/linkage/attack.ml: Blocking Fellegi_sunter Format List Matching Oracle String Vadasa_sdc Vadasa_stats
