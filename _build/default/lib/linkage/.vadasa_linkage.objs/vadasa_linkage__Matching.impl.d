lib/linkage/matching.ml: Array List Oracle Vadasa_base Vadasa_stats
