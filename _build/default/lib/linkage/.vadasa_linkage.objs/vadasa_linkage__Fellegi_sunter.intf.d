lib/linkage/fellegi_sunter.mli: Matching Oracle Vadasa_relational Vadasa_stats
