lib/linkage/attack.mli: Format Oracle Vadasa_sdc
