module Stats = Vadasa_stats
module Sdc = Vadasa_sdc

type result = {
  attempted : int;
  exact_hits : int;
  expected_hits : float;
  mean_block : float;
  singleton_blocks : int;
}

let run ?(seed = 7) ?(matcher = `Agreement) oracle md =
  let rng = Stats.Rng.create ~seed in
  let blocking = Blocking.build oracle in
  let guess =
    match matcher with
    | `Agreement -> Matching.best_guess rng oracle
    | `Fellegi_sunter ->
      let fs = Fellegi_sunter.estimate oracle in
      Fellegi_sunter.best_guess rng fs oracle
  in
  let n = Sdc.Microdata.cardinal md in
  let exact = ref 0 in
  let expected = ref 0.0 in
  let block_total = ref 0 in
  let singletons = ref 0 in
  for i = 0 to n - 1 do
    let target = Sdc.Microdata.qi_projection md i in
    let cohort = Blocking.candidates blocking target in
    block_total := !block_total + List.length cohort;
    if List.length cohort = 1 then incr singletons;
    (match cohort with
    | [] -> ()
    | _ -> expected := !expected +. (1.0 /. float_of_int (List.length cohort)));
    match guess target cohort with
    | None -> ()
    | Some g ->
      if String.equal g.Matching.identity (Oracle.true_identity oracle i)
      then incr exact
  done;
  {
    attempted = n;
    exact_hits = !exact;
    expected_hits = !expected;
    mean_block = (if n = 0 then 0.0 else float_of_int !block_total /. float_of_int n);
    singleton_blocks = !singletons;
  }

let success_rate r =
  if r.attempted = 0 then 0.0
  else float_of_int r.exact_hits /. float_of_int r.attempted

let pp ppf r =
  Format.fprintf ppf
    "attack: %d attempted, %d exact re-identifications (%.2f%%), expected \
     hits %.1f, mean cohort %.1f, singleton cohorts %d@."
    r.attempted r.exact_hits
    (100.0 *. success_rate r)
    r.expected_hits r.mean_block r.singleton_blocks
