(** Matching — step 2 of the attack strategy: choose the candidate that
    best fits the target tuple.

    With only quasi-identifiers available (the identifiers were dropped
    before exchange), all blocked candidates are equally plausible; the
    attacker's best move is a uniform guess, and the score of the guess is
    1/|candidates|. The scorer still ranks by value agreement so partial
    suppression degrades gracefully. *)

type guess = {
  row : int;  (** oracle row guessed *)
  identity : string;
  confidence : float;  (** 1 / (number of best-scoring candidates) *)
  block : int;  (** size of the blocked cohort *)
}

val score : Vadasa_relational.Tuple.t -> Vadasa_relational.Tuple.t -> int
(** Number of positions agreeing exactly (nulls never agree — the attacker
    cannot confirm an unknown). *)

val best_guess :
  Vadasa_stats.Rng.t -> Oracle.t -> Vadasa_relational.Tuple.t -> int list ->
  guess option
(** Rank the candidate rows by {!score} against the target, break ties
    uniformly at random. [None] on an empty cohort. *)
