(** Blocking — step 1 of the attack strategy (paper, Section 2.2, Figure 2):
    restrict the oracle to the rows compatible with the target tuple's
    quasi-identifier values.

    Labelled nulls in the target act as wildcards for the attacker (an
    unknown value constrains nothing), which is precisely why suppression
    inflates the candidate cohort and defeats the attack. *)

type t

val build : Oracle.t -> t
(** Index the oracle by full quasi-identifier key plus one index per
    attribute for wildcard queries. *)

val candidates : t -> Vadasa_relational.Tuple.t -> int list
(** Oracle rows matching the (possibly null-bearing) quasi-identifier
    tuple under maybe-match semantics. *)

val block_size : t -> Vadasa_relational.Tuple.t -> int
