module Value = Vadasa_base.Value
module Stats = Vadasa_stats
module Relational = Vadasa_relational
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Sdc = Vadasa_sdc

type t = {
  relation : Relation.t;
  qi_width : int;
  true_rows : int array;  (* microdata tuple -> oracle row of its respondent *)
}

let from_microdata rng md ?(max_decoys_per_tuple = 25) () =
  let qi_attrs = Sdc.Microdata.quasi_identifiers md in
  let schema =
    Relational.Schema.of_names
      ~name:(Sdc.Microdata.name md ^ "_oracle")
      (qi_attrs @ [ "identity" ])
  in
  let oracle = Relation.create schema in
  let n = Sdc.Microdata.cardinal md in
  let true_rows = Array.make n (-1) in
  let next_identity = ref 0 in
  let fresh_identity () =
    incr next_identity;
    Printf.sprintf "person_%06d" !next_identity
  in
  for i = 0 to n - 1 do
    let qi = Sdc.Microdata.qi_projection md i in
    true_rows.(i) <- Relation.cardinal oracle;
    Relation.add oracle (Array.append qi [| Value.Str (fresh_identity ()) |]);
    let weight = Sdc.Microdata.weight_of md i in
    (* The tuple's weight estimates how many population members share its
       combination; the decoy count is Poisson around weight - 1, capped so
       the oracle stays tractable. *)
    let mean = Float.min 60.0 (Float.max 0.0 (weight -. 1.0)) in
    let decoys =
      min max_decoys_per_tuple (Stats.Distribution.poisson rng ~mean)
    in
    for _ = 1 to decoys do
      Relation.add oracle (Array.append qi [| Value.Str (fresh_identity ()) |])
    done
  done;
  { relation = oracle; qi_width = List.length qi_attrs; true_rows }

let relation t = t.relation
let cardinal t = Relation.cardinal t.relation

let true_identity t i =
  let row = t.true_rows.(i) in
  Value.to_string (Relation.get t.relation row).(t.qi_width)

let qi_values t r =
  Tuple.project (Relation.get t.relation r)
    (Array.init t.qi_width (fun i -> i))

let identity_of_row t r =
  Value.to_string (Relation.get t.relation r).(t.qi_width)
