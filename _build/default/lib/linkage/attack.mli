(** The end-to-end re-identification attack (paper, Section 2.2):
    block → match → guess, scored against the ground truth retained by the
    synthetic oracle. Running it before and after anonymization gives the
    empirical validation of the cycle: suppression must grow the blocked
    cohorts and depress the success rate. *)

type result = {
  attempted : int;
  exact_hits : int;  (** guesses naming the true respondent *)
  expected_hits : float;
      (** Σ 1/|cohort| — the attacker's expected score under uniform
          guessing; the empirical counterpart of the re-identification
          risk *)
  mean_block : float;  (** average blocked-cohort size *)
  singleton_blocks : int;  (** tuples whose cohort is a single record *)
}

val run :
  ?seed:int ->
  ?matcher:[ `Agreement | `Fellegi_sunter ] ->
  Oracle.t ->
  Vadasa_sdc.Microdata.t ->
  result
(** Attack every tuple of the (possibly anonymized) microdata DB against
    the oracle. The microdata's quasi-identifier attributes must match the
    oracle's (same source DB, possibly suppressed/recoded values).
    [matcher] selects the step-2 scorer: raw agreement counts (default) or
    {!Fellegi_sunter} likelihood-ratio weights. *)

val success_rate : result -> float

val pp : Format.formatter -> result -> unit
