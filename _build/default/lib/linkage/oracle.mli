(** The identity oracle (paper, Section 2): an external data source holding
    the identities of every respondent, against which re-identification is
    attempted.

    {!from_microdata} synthesizes the oracle a realistic attacker could
    hold: for every microdata tuple it contains the respondent's record
    (same quasi-identifier values, a known identity) plus decoy records —
    other population members sharing the combination, in number driven by
    the tuple's sampling weight. The ground-truth link (microdata tuple →
    oracle row) is retained so attack success can be scored. *)

type t

val from_microdata :
  Vadasa_stats.Rng.t ->
  Vadasa_sdc.Microdata.t ->
  ?max_decoys_per_tuple:int ->
  unit ->
  t
(** Decoys per tuple are Poisson-distributed around weight − 1, capped at
    [max_decoys_per_tuple] (default 25), each with the same
    quasi-identifier combination and a fresh identity, so the oracle
    mirrors the population frequencies the weights estimate. *)

val relation : t -> Vadasa_relational.Relation.t
(** Oracle rows: the quasi-identifier attributes of the source microdata DB
    followed by an [identity] attribute. *)

val cardinal : t -> int

val true_identity : t -> int -> string
(** Ground truth: the identity of the respondent behind microdata tuple
    [i]. *)

val qi_values : t -> int -> Vadasa_relational.Tuple.t
(** Quasi-identifier values of oracle row [r]. *)

val identity_of_row : t -> int -> string
