(** Generators for fresh labelled nulls and fresh symbols.

    A generator is an explicit value (not global mutable state) so that every
    reasoning task and every anonymization run owns its own supply and runs
    are reproducible. *)

type t

val create : ?start:int -> unit -> t
(** A fresh generator whose first null label is [start] (default [1]). *)

val fresh_null : t -> Value.t
(** The next labelled null, [Null n] with strictly increasing [n]. *)

val fresh_label : t -> int
(** The next raw label. [fresh_null g = Value.null (fresh_label g)]. *)

val fresh_symbol : t -> prefix:string -> string
(** A fresh identifier such as ["z_7"]; used for invented predicate and
    variable names. *)

val count : t -> int
(** Number of labels handed out so far — the "number of injected nulls"
    metric of the paper's Figure 7a/7c/7d when the generator is dedicated to
    an anonymization run. *)
