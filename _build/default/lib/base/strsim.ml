let is_separator c =
  c = '_' || c = '-' || c = '.' || c = '/' || c = ' ' || c = '\t'

let normalize s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  String.iter
    (fun c ->
      if is_separator c then begin
        if Buffer.length buf > 0 then pending_space := true
      end
      else begin
        if !pending_space then begin
          Buffer.add_char buf ' ';
          pending_space := false
        end;
        Buffer.add_char buf (Char.lowercase_ascii c)
      end)
    s;
  Buffer.contents buf

let tokens s =
  String.split_on_char ' ' (normalize s)
  |> List.filter (fun t -> String.length t > 0)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) (fun j -> j) in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let edit_similarity a b =
  let a = normalize a and b = normalize b in
  let la = String.length a and lb = String.length b in
  if la = 0 && lb = 0 then 1.0
  else
    let d = levenshtein a b in
    1.0 -. (float_of_int d /. float_of_int (max la lb))

let jaccard_tokens a b =
  let ta = tokens a and tb = tokens b in
  if ta = [] && tb = [] then 1.0
  else
    let inter =
      List.length (List.filter (fun t -> List.mem t tb) (List.sort_uniq compare ta))
    in
    let union =
      List.length (List.sort_uniq compare (ta @ tb))
    in
    if union = 0 then 0.0 else float_of_int inter /. float_of_int union

(* Token-overlap coefficient: |A ∩ B| / min(|A|, |B|) — catches suffixed
   variants such as "sector" vs "sector_code". Scaled by 0.9 so an exact
   name still wins over a mere extension. *)
let overlap_tokens a b =
  let ta = List.sort_uniq compare (tokens a) in
  let tb = List.sort_uniq compare (tokens b) in
  if ta = [] || tb = [] then 0.0
  else
    let inter = List.length (List.filter (fun t -> List.mem t tb) ta) in
    float_of_int inter /. float_of_int (min (List.length ta) (List.length tb))

let similarity a b =
  if String.equal (normalize a) (normalize b) then 1.0
  else
    Float.max (edit_similarity a b)
      (Float.max (jaccard_tokens a b) (0.9 *. overlap_tokens a b))
