(** Typed constants shared by the relational and reasoning layers.

    A value is a plain constant (integer, float, string, boolean), a
    {e labelled null} [Null n] — the invented symbols introduced by the chase
    for existentially quantified variables and the anonymization device of
    local suppression (paper, Section 4.3) — or one of the two structured
    forms the Vadalog layer needs for its set-typed variables: pairs and
    collections. A collection is kept canonical (sorted, deduplicated) so
    that set-valued join keys compare positionally. *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null of int  (** labelled null ⊥ₙ *)
  | Pair of t * t  (** attribute–value pairs inside collections *)
  | Coll of t list  (** canonical set: sorted, duplicate-free *)

val compare : t -> t -> int
(** Total order: by constructor first, then by payload. Numeric values of
    different constructors ([Int] vs [Float]) are {e not} identified. *)

val equal : t -> t -> bool
(** Standard equality: two labelled nulls are equal iff they carry the same
    label; a null never equals a constant. *)

val equal_maybe : t -> t -> bool
(** Maybe-match equality [=⊥] (paper, Section 4.3): equal constants match,
    and a labelled null matches anything. Pairs and equal-sized collections
    are compared component-wise (collections positionally, in canonical
    order). *)

val hash : t -> int

val is_null : t -> bool

val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val null : int -> t
val pair : t -> t -> t

val coll : t list -> t
(** Builds a canonical collection: sorts and deduplicates. *)

val coll_elements : t -> t list
(** Elements of a collection. Raises [Invalid_argument] on non-collections. *)

val coll_union : t -> t -> t

val coll_mem : t -> t -> bool
(** [coll_mem c x] — membership of [x] in collection [c]. *)

val coll_assoc : t -> t -> t option
(** [coll_assoc c k] — in a collection of pairs, the second component of the
    (first) pair whose first component equals [k]. *)

val coll_filter_keys : t -> t -> t
(** [coll_filter_keys c keys] — the sub-collection of pairs of [c] whose
    first component is a member of the collection [keys]; the paper's
    [VSet\[AnonSet\]] filtering. *)

val coll_remove_key : t -> t -> t
(** Drop every pair whose first component equals the given key — the
    [VSet \ (A, _)] operation of local suppression (Algorithm 7). *)

val to_string : t -> string
(** Round-trippable rendering for scalars: strings print bare, nulls as
    [#n]; pairs as [(a, b)] and collections as [{x; y}]. *)

val pp : Format.formatter -> t -> unit

val of_literal : string -> t
(** Parse a scalar literal the way the CSV loader and the Vadalog lexer
    agree on: ["12"] is an [Int], ["1.5"] a [Float], ["true"]/["false"] a
    [Bool], ["#3"] the labelled null ⊥₃, anything else a [Str]. *)

val type_name : t -> string

val as_float : t -> float option
(** Numeric view: [Int] and [Float] convert, everything else is [None]. *)
