(** String similarity, used by attribute categorization (paper,
    Algorithm 1's [∼] relation) both natively and as the [similarity]
    builtin of the reasoning engine.

    All measures are in [\[0, 1\]], 1 meaning identical. Comparison is
    performed on a normalized form: lowercased, with [_-./] and spaces
    treated as token separators. *)

val normalize : string -> string
(** Lowercase and collapse separators to single spaces. *)

val tokens : string -> string list

val levenshtein : string -> string -> int
(** Raw edit distance (insert/delete/substitute, all cost 1). *)

val edit_similarity : string -> string -> float
(** [1 - distance / max length] over normalized forms; 1.0 for two empty
    strings. *)

val jaccard_tokens : string -> string -> float
(** Token-set Jaccard index over normalized forms. *)

val similarity : string -> string -> float
(** The default blend: max of {!edit_similarity}, {!jaccard_tokens} and a
    0.9-scaled token-overlap coefficient (so "sector_code" scores high
    against "sector"), with a short-circuit 1.0 on equal normalized forms.
    This is what the [similarity(a, b)] engine builtin computes. *)
