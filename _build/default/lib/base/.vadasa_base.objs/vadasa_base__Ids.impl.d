lib/base/ids.ml: Value
