lib/base/strsim.mli:
