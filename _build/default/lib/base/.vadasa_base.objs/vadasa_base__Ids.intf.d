lib/base/ids.mli: Value
