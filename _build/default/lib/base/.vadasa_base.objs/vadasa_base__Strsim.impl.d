lib/base/strsim.ml: Array Buffer Char Float List String
