type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null of int
  | Pair of t * t
  | Coll of t list

let constructor_rank = function
  | Int _ -> 0
  | Float _ -> 1
  | Str _ -> 2
  | Bool _ -> 3
  | Null _ -> 4
  | Pair _ -> 5
  | Coll _ -> 6

let rec compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Null x, Null y -> Int.compare x y
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Coll xs, Coll ys -> List.compare compare xs ys
  | _ -> Int.compare (constructor_rank a) (constructor_rank b)

let equal a b = compare a b = 0

let rec equal_maybe a b =
  match a, b with
  | Null _, _ | _, Null _ -> true
  | Pair (x1, y1), Pair (x2, y2) -> equal_maybe x1 x2 && equal_maybe y1 y2
  | Coll xs, Coll ys ->
    List.length xs = List.length ys && List.for_all2 equal_maybe xs ys
  | _ -> equal a b

let rec hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Float x -> Hashtbl.hash (1, x)
  | Str x -> Hashtbl.hash (2, x)
  | Bool x -> Hashtbl.hash (3, x)
  | Null x -> Hashtbl.hash (4, x)
  | Pair (x, y) -> Hashtbl.hash (5, hash x, hash y)
  | Coll xs -> List.fold_left (fun acc v -> (acc * 31) + hash v) 7 xs

let is_null = function Null _ -> true | _ -> false

let int x = Int x
let float x = Float x
let str x = Str x
let bool x = Bool x
let null x = Null x
let pair a b = Pair (a, b)

let coll xs = Coll (List.sort_uniq compare xs)

let coll_elements = function
  | Coll xs -> xs
  | v ->
    invalid_arg
      ("Value.coll_elements: not a collection: rank "
      ^ string_of_int (constructor_rank v))

let coll_union a b = coll (coll_elements a @ coll_elements b)

let coll_mem c x = List.exists (equal x) (coll_elements c)

let coll_assoc c k =
  let rec go = function
    | [] -> None
    | Pair (k', v) :: _ when equal k k' -> Some v
    | _ :: rest -> go rest
  in
  go (coll_elements c)

let coll_filter_keys c keys =
  let wanted = coll_elements keys in
  let keep = function
    | Pair (k, _) -> List.exists (equal k) wanted
    | _ -> false
  in
  Coll (List.filter keep (coll_elements c))

let coll_remove_key c k =
  let keep = function Pair (k', _) -> not (equal k k') | _ -> true in
  Coll (List.filter keep (coll_elements c))

let rec to_string = function
  | Int x -> string_of_int x
  | Float x -> string_of_float x
  | Str x -> x
  | Bool x -> string_of_bool x
  | Null x -> "#" ^ string_of_int x
  | Pair (a, b) -> "(" ^ to_string a ^ ", " ^ to_string b ^ ")"
  | Coll xs -> "{" ^ String.concat "; " (List.map to_string xs) ^ "}"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_literal s =
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    match float_of_string_opt s with
    | Some f -> Float f
    | None ->
      match s with
      | "true" -> Bool true
      | "false" -> Bool false
      | _ ->
        let null_label () =
          if String.length s > 1 && s.[0] = '#'
          then int_of_string_opt (String.sub s 1 (String.length s - 1))
          else None
        in
        (match null_label () with Some n -> Null n | None -> Str s)

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Bool _ -> "bool"
  | Null _ -> "null"
  | Pair _ -> "pair"
  | Coll _ -> "collection"

let as_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Str _ | Bool _ | Null _ | Pair _ | Coll _ -> None
