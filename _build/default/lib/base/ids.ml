type t = { mutable next : int; mutable used : int }

let create ?(start = 1) () = { next = start; used = 0 }

let fresh_label g =
  let n = g.next in
  g.next <- n + 1;
  g.used <- g.used + 1;
  n

let fresh_null g = Value.null (fresh_label g)

let fresh_symbol g ~prefix = prefix ^ "_" ^ string_of_int (fresh_label g)

let count g = g.used
