(* Schema independence (paper desideratum ii).

     dune exec examples/schema_independence.exe

   The same risk and anonymization machinery — and the very same Vadalog
   rule text — runs unchanged over microdata DBs with completely different
   schemas, because everything is phrased against the metadata dictionary
   (val/cat facts) rather than concrete relations. We demonstrate on the
   paper's 5-quasi-identifier I&G survey and on a generated 3-attribute
   household survey. *)

module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

let program = S.Vadalog_bridge.k_anonymity_program ~k:2

let run_on md =
  Format.printf "--- %s: %d tuples, %d quasi-identifiers (%s)@."
    (S.Microdata.name md) (S.Microdata.cardinal md)
    (List.length (S.Microdata.quasi_identifiers md))
    (String.concat ", " (S.Microdata.quasi_identifiers md));
  (* One and the same program text; only the extensional facts change. *)
  let risks = S.Vadalog_bridge.risk_via_engine (S.Risk.K_anonymity { k = 2 }) md in
  let risky = Array.fold_left (fun acc r -> if r > 0.5 then acc + 1 else acc) 0 risks in
  Format.printf "    reasoned k-anonymity: %d risky tuples@." risky;
  let outcome = S.Cycle.run md in
  Format.printf "    cycle: %d nulls, %d rounds, %s@.@."
    outcome.S.Cycle.nulls_injected outcome.S.Cycle.rounds
    (if outcome.S.Cycle.converged then "converged" else "stopped")

let household_survey () =
  let base =
    D.Generator.generate
      {
        D.Generator.name = "household_survey";
        tuples = 200;
        qi_count = 3;
        distribution = D.Generator.U;
        seed = 4;
      }
  in
  (* Rename the synthetic columns into a plausible household schema to
     stress the point that nothing is keyed on attribute names. *)
  let old_schema = S.Microdata.schema base in
  let renames =
    [ ("qi_1", "municipality"); ("qi_2", "household_size"); ("qi_3", "income_band") ]
  in
  let schema =
    R.Schema.make ~name:"household_survey"
      (List.map
         (fun a ->
           let name =
             match List.assoc_opt a.R.Schema.attr_name renames with
             | Some n -> n
             | None -> a.R.Schema.attr_name
           in
           { a with R.Schema.attr_name = name })
         (Array.to_list (R.Schema.attributes old_schema)))
  in
  let rel = R.Relation.of_tuples schema (R.Relation.to_list (S.Microdata.relation base)) in
  S.Microdata.make rel
    (List.map
       (fun (attr, cat) ->
         match List.assoc_opt attr renames with
         | Some n -> (n, cat)
         | None -> (attr, cat))
       (S.Microdata.categories base))

let () =
  Format.printf "the shared rule program (Algorithm 2 Rule 1 + Algorithm 4):@.%s@."
    program;
  run_on (D.Ig_survey.figure1 ());
  run_on (household_survey ());
  Format.printf
    "same rules, two schemas: the dictionary facts carry all structure.@."
