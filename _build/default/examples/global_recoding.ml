(* Global recoding with domain hierarchies (paper, Section 4.3 / Figure 5).

     dune exec examples/global_recoding.exe

   Where local suppression erases values, global recoding coarsens them
   along domain knowledge (Milano -> North -> Italy), preserving more
   analytical value. This example contrasts both methods on the paper's
   Figure 5 microdata and reports the information-loss metrics. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen

let residual_risky md =
  let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  List.length (S.Risk.risky report ~threshold:0.5)

let () =
  let md = D.Ig_survey.figure5 () in
  let hierarchy = D.Ig_survey.figure5_hierarchy () in
  Format.printf "microdata (Figure 5a):@.%a@." R.Relation.pp
    (S.Microdata.relation md);
  Format.printf "geographic knowledge:@.%a@." S.Hierarchy.pp hierarchy;
  Format.printf "generalization chain of Milano: %s@.@."
    (String.concat " -> "
       (List.map Value.to_string
          (S.Hierarchy.generalization_chain hierarchy (Value.Str "Milano"))));

  (* Pure suppression. *)
  let suppression = S.Cycle.run md in
  Format.printf "-- local suppression --@.%a@." S.Cycle.pp_outcome suppression;

  (* Recode first (area rolls up to regions), suppress only as fallback. *)
  let recoding =
    S.Cycle.run
      ~config:
        {
          S.Cycle.default_config with
          S.Cycle.method_ = S.Cycle.Recode_then_suppress hierarchy;
        }
      md
  in
  Format.printf "-- global recoding (suppression fallback) --@.%a@."
    S.Cycle.pp_outcome recoding;
  Format.printf "recoded view:@.%a@." R.Relation.pp
    (S.Microdata.relation recoding.S.Cycle.anonymized);

  Format.printf "residual risky tuples: suppression %d, recoding %d@.@."
    (residual_risky suppression.S.Cycle.anonymized)
    (residual_risky recoding.S.Cycle.anonymized);

  Format.printf
    "information loss:@.  suppression: %.1f%% of QI cells erased@.  recoding: \
     %.1f%% of cells erased, generalization level %.2f@."
    (100.0 *. S.Info_loss.cell_suppression_rate suppression.S.Cycle.anonymized)
    (100.0 *. S.Info_loss.cell_suppression_rate recoding.S.Cycle.anonymized)
    (S.Info_loss.generalization_loss hierarchy recoding.S.Cycle.anonymized);

  (* Utility view: recoding keeps combinations analyzable. *)
  Format.printf
    "distinct QI combinations kept: suppression %.0f%%, recoding %.0f%%@."
    (100.0
    *. S.Info_loss.distinct_combination_ratio md suppression.S.Cycle.anonymized)
    (100.0
    *. S.Info_loss.distinct_combination_ratio md recoding.S.Cycle.anonymized)
