(* Quickstart: the full Vada-SA workflow on the paper's Figure 1 microdata.

     dune exec examples/quickstart.exe

   1. load a microdata DB and register it in the metadata dictionary;
   2. categorize its attributes with Algorithm 1;
   3. estimate disclosure risk (re-identification and k-anonymity);
   4. run the anonymization cycle until the threshold holds;
   5. read the fully-explained trace. *)

module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen

let () =
  (* 1. The Inflation & Growth survey fragment (paper, Figure 1). *)
  let md = D.Ig_survey.figure1 () in
  Format.printf "microdata DB %s, %d tuples@.@." (S.Microdata.name md)
    (S.Microdata.cardinal md);

  let dict = S.Dictionary.create () in
  S.Dictionary.register_microdata dict md;
  Format.printf "metadata dictionary:@.%a@." S.Dictionary.pp dict;

  (* 2. Attribute categorization from the experience base (Algorithm 1).
     Here the categories are already known; we show the inference agrees. *)
  let inferred, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (S.Microdata.schema md)
  in
  Format.printf "Algorithm 1 recovers %d/%d categories automatically@.@."
    (List.length inferred.S.Categorize.assigned)
    (R.Schema.arity (S.Microdata.schema md));

  (* 3. Risk estimation. *)
  let reid = S.Risk.estimate S.Risk.Re_identification md in
  print_string (S.Explain.summary md reid ~threshold:0.02);
  Format.printf "@.";
  let kanon = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
  Format.printf "k-anonymity (k=2): %d risky tuples of %d@.@."
    (List.length (S.Risk.risky kanon ~threshold:0.5))
    (S.Microdata.cardinal md);

  (* 4. The anonymization cycle: local suppression with labelled nulls,
     maybe-match semantics, less-significant-first routing. *)
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure = S.Risk.Re_identification;
      threshold = 0.02;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Format.printf "%a@." S.Cycle.pp_outcome outcome;

  (* 5. Every decision is explained. *)
  print_string (S.Explain.trace md outcome);

  (* The anonymized DB passes the threshold; the exchanged view drops the
     direct identifiers entirely. *)
  let check =
    S.Risk.estimate S.Risk.Re_identification outcome.S.Cycle.anonymized
  in
  Format.printf "@.residual risky tuples: %d@."
    (List.length (S.Risk.risky check ~threshold:0.02));
  let exported = S.Microdata.drop_identifiers outcome.S.Cycle.anonymized in
  Format.printf "exchanged view (identifiers dropped):@.%a@."
    (R.Relation.pp_sample ~limit:5) exported
