(* The reasoning engine on its own (paper, Section 3).

     dune exec examples/reasoning_demo.exe

   Shows the Vadalog substrate directly: parsing, wardedness analysis,
   the chase with labelled nulls, monotonic aggregation, and provenance —
   then the full reasoned anonymization path of Section 4 where both the
   risk measure and the suppression step execute as Vadalog programs. *)

module Value = Vadasa_base.Value
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

let () =
  (* A warded program with existentials and recursion: every employee has
     some manager (an invented null unless known), and reporting lines are
     the transitive closure. *)
  let source =
    {|
      @label("has_manager").
      manager(E, M) :- employee(E).
      @label("reporting_base").
      reports_to(E, M) :- manager(E, M).
      @label("reporting_step").
      reports_to(E, M2) :- reports_to(E, M), manager(M, M2).
      @label("team_size").
      team(M, N) :- reports_to(E, M), N = mcount(<E>).

      employee(ada). employee(grace). employee(alan).
      manager(ada, grace).
      @output("reports_to").
      @output("team").
    |}
  in
  let program = V.Parser.parse source in
  Format.printf "wardedness analysis:@.%a@." V.Wardedness.pp_report
    (V.Wardedness.analyze program);

  let config = { V.Engine.default_config with V.Engine.max_iterations = 50 } in
  let engine = V.Engine.create ~config program in
  V.Engine.run engine;
  Format.printf "reports_to facts (labelled nulls are invented managers):@.";
  List.iter
    (fun fact ->
      Format.printf "  reports_to(%s, %s)@."
        (Value.to_string fact.(0))
        (Value.to_string fact.(1)))
    (V.Engine.facts engine "reports_to");
  Format.printf "invented nulls: %d@.@." (V.Engine.nulls_created engine);

  (* Provenance: why does ada transitively report to grace's manager? *)
  (match V.Engine.facts engine "reports_to" with
  | fact :: _ ->
    (match V.Engine.explain engine "reports_to" fact with
    | Some tree ->
      Format.printf "explanation of the first fact:@.%s@."
        (V.Provenance.to_string tree)
    | None -> ())
  | [] -> ());

  (* The reasoned anonymization path: k-anonymity risk (Algorithm 4) and
     local suppression (Algorithm 7) both run on the engine, alternating
     until the Figure 5 microdata is 2-anonymous. *)
  let md = D.Ig_survey.figure5 () in
  Format.printf "reasoned anonymization of the Figure 5 microdata:@.";
  Format.printf "%s@." (S.Vadalog_bridge.k_anonymity_program ~k:2);
  let outcome = S.Vadalog_bridge.reasoned_cycle md in
  Format.printf
    "engine-driven cycle: %d rounds, %d suppressions: %s@."
    outcome.S.Vadalog_bridge.rounds outcome.S.Vadalog_bridge.nulls_injected
    (String.concat ", "
       (List.map
          (fun (i, a) -> Printf.sprintf "tuple %d.%s" i a)
          outcome.S.Vadalog_bridge.suppressed));
  Format.printf "@.anonymized relation:@.%a@." Vadasa_relational.Relation.pp
    (S.Microdata.relation outcome.S.Vadalog_bridge.anonymized);

  (* Risk provenance straight from the engine. *)
  match
    S.Vadalog_bridge.explain_risk (S.Risk.K_anonymity { k = 2 }) md ~tuple:0
  with
  | Some text -> Format.printf "why tuple 0 was risky:@.%s@." text
  | None -> ()
