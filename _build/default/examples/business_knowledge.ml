(* Embedding complex business knowledge (paper, Section 4.4 / Algorithm 9).

     dune exec examples/business_knowledge.exe

   Disclosure risk propagates along company-control relationships: once one
   company of a group is re-identified, the others follow. The control
   relation itself is derived by reasoning — directly in OCaml and,
   equivalently, by the Vadalog engine from the two declarative rules. *)

module Value = Vadasa_base.Value
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

let () =
  (* A small ownership graph: a holding (h) controls b directly, and
     controls c jointly: 40% held directly plus 20% through b. *)
  let ownerships =
    [
      { S.Business.owner = "holding"; owned = "bank_b"; share = 0.80 };
      { S.Business.owner = "holding"; owned = "fund_c"; share = 0.40 };
      { S.Business.owner = "bank_b"; owned = "fund_c"; share = 0.20 };
      { S.Business.owner = "fund_c"; owned = "leasing_d"; share = 0.60 };
      { S.Business.owner = "other"; owned = "bank_b"; share = 0.10 };
    ]
  in
  Format.printf "declarative control rules:@.%s@." S.Business.program;

  let native = S.Business.control_closure ownerships in
  let reasoned = S.Business.control_closure_via_engine ownerships in
  Format.printf "control closure (native):   %s@."
    (String.concat ", " (List.map (fun (a, b) -> a ^ ">" ^ b) native));
  Format.printf "control closure (reasoned): %s@."
    (String.concat ", " (List.map (fun (a, b) -> a ^ ">" ^ b) reasoned));
  assert (native = reasoned);

  let clusters = S.Business.clusters native in
  Format.printf "@.risk clusters:@.";
  List.iter
    (fun group -> Format.printf "  {%s}@." (String.concat ", " group))
    clusters;

  (* Cluster risk: the probability that at least one member is
     re-identified, 1 - prod(1 - rho). *)
  let member_risks = [| 0.05; 0.10; 0.30; 0.02 |] in
  Format.printf "@.member risks %s -> cluster risk %.3f@."
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "%.2f") member_risks)))
    (Vadasa_stats.Estimator.cluster_risk member_risks);

  (* The enhanced anonymization cycle (Algorithm 9) on a microdata DB whose
     Id column names these companies plus many bystanders. *)
  let md =
    D.Generator.generate
      {
        D.Generator.name = "firms";
        tuples = 1_500;
        qi_count = 4;
        distribution = D.Generator.W;
        seed = 99;
      }
  in
  let rng = Vadasa_stats.Rng.create ~seed:31 in
  let graph = D.Ownership_gen.generate rng md ~id_attr:"id" ~edges:60 () in
  Format.printf "@.synthetic ownership graph: %d stakes, %d inferred control pairs@."
    (List.length graph)
    (D.Ownership_gen.inferred_relationships graph);

  let base = S.Cycle.run md in
  let enhanced =
    S.Cycle.run
      ~config:
        {
          S.Cycle.default_config with
          S.Cycle.risk_transform =
            Some (S.Business.risk_transform ~id_attr:"id" ~ownerships:graph);
        }
      md
  in
  Format.printf
    "plain cycle: %d nulls; enhanced cycle (risk propagation): %d nulls@."
    base.S.Cycle.nulls_injected enhanced.S.Cycle.nulls_injected;
  Format.printf
    "the propagation flags %d additional disclosure cases@."
    (enhanced.S.Cycle.nulls_injected - base.S.Cycle.nulls_injected);

  (* The same Algorithm 9, fully declarative: k-anonymity risk, the control
     closure and the mprod cluster propagation all run as one Vadalog
     program on the engine, and must agree with the native computation. *)
  let small = D.Generator.generate
      { D.Generator.name = "firms_small"; tuples = 150; qi_count = 4;
        distribution = D.Generator.U; seed = 99 } in
  let rng2 = Vadasa_stats.Rng.create ~seed:31 in
  let small_graph = D.Ownership_gen.generate rng2 small ~id_attr:"id" ~edges:15 () in
  let native_risks =
    let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) small in
    S.Business.risk_transform ~id_attr:"id" ~ownerships:small_graph small
      report.S.Risk.risk
  in
  let reasoned_risks =
    S.Vadalog_bridge.enhanced_risk_via_engine ~k:2 small ~id_attr:"id"
      ~ownerships:small_graph
  in
  let agree = ref true in
  Array.iteri
    (fun i r -> if abs_float (r -. reasoned_risks.(i)) > 1e-9 then agree := false)
    native_risks;
  Format.printf
    "@.declarative Algorithm 9 on the engine agrees with the native path: %b@."
    !agree
