examples/global_recoding.mli:
