examples/global_recoding.ml: Format List String Vadasa_base Vadasa_datagen Vadasa_relational Vadasa_sdc
