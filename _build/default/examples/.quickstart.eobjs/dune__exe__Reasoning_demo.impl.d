examples/reasoning_demo.ml: Array Format List Printf String Vadasa_base Vadasa_datagen Vadasa_relational Vadasa_sdc Vadasa_vadalog
