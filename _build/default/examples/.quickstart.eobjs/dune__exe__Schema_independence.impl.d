examples/schema_independence.ml: Array Format List String Vadasa_datagen Vadasa_relational Vadasa_sdc Vadasa_vadalog
