examples/rdc_exchange.mli:
