examples/rdc_exchange.ml: Float Format List String Vadasa_datagen Vadasa_linkage Vadasa_relational Vadasa_sdc Vadasa_stats
