examples/quickstart.mli:
