examples/reasoning_demo.mli:
