examples/business_knowledge.mli:
