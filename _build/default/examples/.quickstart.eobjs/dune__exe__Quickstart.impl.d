examples/quickstart.ml: Format List Vadasa_datagen Vadasa_relational Vadasa_sdc
