examples/business_knowledge.ml: Array Format List Printf String Vadasa_base Vadasa_datagen Vadasa_sdc Vadasa_stats Vadasa_vadalog
