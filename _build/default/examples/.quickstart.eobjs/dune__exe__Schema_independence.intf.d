examples/schema_independence.mli:
