(* Research Data Center exchange scenario (paper, Section 2).

     dune exec examples/rdc_exchange.exe

   A financial authority wants to share a microdata DB with a research
   institute inside the "circle of trust": the recipient may see the
   statistical content but must not be able to re-identify respondents.
   The workflow is the preemptive/active loop of the paper:

   - evaluate the disclosure risk of the candidate dataset (preemptive);
   - if above threshold, anonymize and re-evaluate (active);
   - validate empirically with the record-linkage attack an adversary
     holding the identity oracle could mount. *)

module S = Vadasa_sdc
module D = Vadasa_datagen
module L = Vadasa_linkage
module Stats = Vadasa_stats

let () =
  (* An unbalanced survey extract: many selective combinations. *)
  let md =
    D.Generator.generate
      {
        D.Generator.name = "credit_survey";
        tuples = 2_000;
        qi_count = 4;
        distribution = D.Generator.U;
        seed = 2024;
      }
  in
  Format.printf "candidate dataset: %d tuples, quasi-identifiers: %s@.@."
    (S.Microdata.cardinal md)
    (String.concat ", " (S.Microdata.quasi_identifiers md));

  (* Preemptive risk evaluation: individual risk, Benedetti-Franconi. *)
  let report =
    S.Risk.estimate (S.Risk.Individual S.Risk.Benedetti_franconi) md
  in
  let threshold = 0.2 in
  let risky = S.Risk.risky report ~threshold in
  Format.printf
    "individual risk over threshold %.2f: %d tuples; global risk %.1f@.@."
    threshold (List.length risky) (S.Risk.global_risk report);

  (* The adversary's view: an identity oracle with the population the
     sampling weights estimate. Attack the raw data first. *)
  let rng = Stats.Rng.create ~seed:7 in
  let oracle = L.Oracle.from_microdata rng md () in
  Format.printf "identity oracle: %d records@." (L.Oracle.cardinal oracle);
  let before = L.Attack.run oracle md in
  Format.printf "attack on the raw dataset:      %a@." L.Attack.pp before;

  (* Active anonymization until the threshold holds. *)
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure = S.Risk.Individual S.Risk.Benedetti_franconi;
      threshold;
      tuple_order = S.Heuristics.Less_significant_first;
      qi_choice = S.Heuristics.Most_risky_qi;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Format.printf "@.%a@." S.Cycle.pp_outcome outcome;

  let after = L.Attack.run oracle outcome.S.Cycle.anonymized in
  Format.printf "attack on the anonymized data:  %a@." L.Attack.pp after;
  Format.printf
    "expected re-identifications dropped from %.1f to %.1f (%.0f%%)@."
    before.L.Attack.expected_hits after.L.Attack.expected_hits
    (100.0
    *. (before.L.Attack.expected_hits -. after.L.Attack.expected_hits)
    /. Float.max 1.0 before.L.Attack.expected_hits);

  (* What actually ships: identifiers dropped, statistics preserved. *)
  let exported = S.Microdata.drop_identifiers outcome.S.Cycle.anonymized in
  Format.printf
    "@.exported view: %d tuples, %.1f%% of quasi-identifier cells suppressed@."
    (Vadasa_relational.Relation.cardinal exported)
    (100.0 *. S.Info_loss.cell_suppression_rate outcome.S.Cycle.anonymized)
