(* Validate Prometheus text exposition (format 0.0.4) read from stdin
   or from the files given as arguments. The CI metrics-scrape step
   pipes the daemon's /metrics body through this.

   Checks:
   - every sample's metric family has # HELP and # TYPE lines, and
     they appear before the family's first sample;
   - no duplicate series (metric name + label set appears once);
   - sample lines parse: valid metric name, balanced labels, a numeric
     value;
   - histogram families are well formed: cumulative _bucket counts are
     monotone in le, an +Inf bucket exists and matches _count, and
     _sum/_count are present.

   Exit 0 when clean; 1 with one line per violation otherwise. *)

let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "promcheck: %s\n" msg)
    fmt

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char (String.sub s 1 (String.length s - 1))

(* The family a sample belongs to: strip histogram/summary child
   suffixes so x_bucket/x_sum/x_count all check against family x when
   x is typed histogram. *)
let strip_suffix ~suffix s =
  if String.length s > String.length suffix
     && String.sub s (String.length s - String.length suffix)
          (String.length suffix)
        = suffix
  then Some (String.sub s 0 (String.length s - String.length suffix))
  else None

type series = { s_labels : (string * string) list; s_value : float }

type family = {
  mutable f_help : bool;
  mutable f_type : string option;
  mutable f_samples : (string * series) list;  (* full name, sample *)
}

let families : (string, family) Hashtbl.t = Hashtbl.create 64

let family_of name =
  match Hashtbl.find_opt families name with
  | Some f -> f
  | None ->
    let f = { f_help = false; f_type = None; f_samples = [] } in
    Hashtbl.add families name f;
    f

(* Which family does a sample name belong to, honouring declared
   histogram types: x_bucket belongs to x iff x is a declared
   histogram family. *)
let owning_family name =
  let candidate suffix =
    match strip_suffix ~suffix name with
    | Some base -> (
      match Hashtbl.find_opt families base with
      | Some { f_type = Some "histogram"; _ } | Some { f_type = Some "summary"; _ }
        ->
        Some base
      | _ -> None)
    | None -> None
  in
  match candidate "_bucket" with
  | Some base -> base
  | None -> (
    match candidate "_sum" with
    | Some base -> base
    | None -> (
      match candidate "_count" with Some base -> base | None -> name))

let seen_series : (string, int) Hashtbl.t = Hashtbl.create 256

(* ---- parsing ---------------------------------------------------------- *)

let parse_labels lineno s =
  (* s is the text between '{' and '}'. *)
  let n = String.length s in
  let labels = ref [] in
  let i = ref 0 in
  let bad fmt = Printf.ksprintf (fun m -> fail "line %d: %s" lineno m) fmt in
  (try
     while !i < n do
       let start = !i in
       while !i < n && s.[!i] <> '=' do
         incr i
       done;
       if !i >= n then begin
         bad "label without '='";
         raise Exit
       end;
       let key = String.sub s start (!i - start) in
       if not (valid_name key) then bad "invalid label name %S" key;
       incr i;
       if !i >= n || s.[!i] <> '"' then begin
         bad "label value must be quoted";
         raise Exit
       end;
       incr i;
       let buf = Buffer.create 16 in
       let closed = ref false in
       while (not !closed) && !i < n do
         (match s.[!i] with
         | '\\' when !i + 1 < n ->
           Buffer.add_char buf s.[!i + 1];
           incr i
         | '"' -> closed := true
         | c -> Buffer.add_char buf c);
         incr i
       done;
       if not !closed then begin
         bad "unterminated label value";
         raise Exit
       end;
       labels := (key, Buffer.contents buf) :: !labels;
       if !i < n then
         if s.[!i] = ',' then incr i
         else begin
           bad "expected ',' between labels";
           raise Exit
         end
     done
   with Exit -> ());
  List.rev !labels

let parse_sample lineno line =
  let name_end =
    let rec go i =
      if i < String.length line && is_name_char line.[i] then go (i + 1) else i
    in
    go 0
  in
  let name = String.sub line 0 name_end in
  if not (valid_name name) then fail "line %d: invalid metric name in %S" lineno line
  else begin
    let rest = String.sub line name_end (String.length line - name_end) in
    let labels, rest =
      if rest <> "" && rest.[0] = '{' then begin
        (* the closing '}' must be found outside quoted label values:
           '}' is legal inside one (e.g. path="/v1/datasets/{id}") *)
        let n = String.length rest in
        let rec close i in_quote =
          if i >= n then None
          else
            match rest.[i] with
            | '\\' when in_quote && i + 1 < n -> close (i + 2) in_quote
            | '"' -> close (i + 1) (not in_quote)
            | '}' when not in_quote -> Some i
            | _ -> close (i + 1) in_quote
        in
        match close 1 false with
        | Some close ->
          ( parse_labels lineno (String.sub rest 1 (close - 1)),
            String.sub rest (close + 1) (String.length rest - close - 1) )
        | None ->
          fail "line %d: unclosed label block" lineno;
          ([], "")
      end
      else ([], rest)
    in
    let value = String.trim rest in
    (* timestamps (a second field) are legal; take the first token *)
    let value =
      match String.index_opt value ' ' with
      | Some i -> String.sub value 0 i
      | None -> value
    in
    let v =
      match value with
      | "+Inf" -> Some infinity
      | "-Inf" -> Some neg_infinity
      | "NaN" -> Some nan
      | v -> float_of_string_opt v
    in
    match v with
    | None -> fail "line %d: non-numeric value %S" lineno value
    | Some v ->
      let key =
        name ^ "{"
        ^ String.concat ","
            (List.map
               (fun (k, value) -> k ^ "=" ^ value)
               (List.sort compare labels))
        ^ "}"
      in
      (match Hashtbl.find_opt seen_series key with
      | Some first ->
        fail "line %d: duplicate series %s (first at line %d)" lineno key first
      | None -> Hashtbl.add seen_series key lineno);
      let fam = family_of (owning_family name) in
      fam.f_samples <- (name, { s_labels = labels; s_value = v }) :: fam.f_samples
  end

let parse_meta lineno line =
  (* "# HELP name text" | "# TYPE name kind" | other comments ignored *)
  match String.split_on_char ' ' line with
  | "#" :: "HELP" :: name :: _ ->
    if not (valid_name name) then
      fail "line %d: HELP for invalid metric name %S" lineno name
    else begin
      let f = family_of name in
      if f.f_help then fail "line %d: duplicate HELP for %s" lineno name;
      if f.f_samples <> [] then
        fail "line %d: HELP for %s after its samples" lineno name;
      f.f_help <- true
    end
  | "#" :: "TYPE" :: name :: kind :: _ ->
    if not (valid_name name) then
      fail "line %d: TYPE for invalid metric name %S" lineno name
    else begin
      let f = family_of name in
      (match f.f_type with
      | Some _ -> fail "line %d: duplicate TYPE for %s" lineno name
      | None -> ());
      if f.f_samples <> [] then
        fail "line %d: TYPE for %s after its samples" lineno name;
      (match kind with
      | "counter" | "gauge" | "histogram" | "summary" | "untyped" -> ()
      | k -> fail "line %d: unknown TYPE %S for %s" lineno k name);
      f.f_type <- Some kind
    end
  | _ -> ()

let check_input ic =
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if line = "" then ()
       else if line.[0] = '#' then parse_meta !lineno line
       else parse_sample !lineno line
     done
   with End_of_file -> ())

(* ---- family-level checks ---------------------------------------------- *)

let check_histogram name f =
  let buckets =
    List.filter_map
      (fun (n, s) ->
        if n = name ^ "_bucket" then
          match List.assoc_opt "le" s.s_labels with
          | Some le ->
            let bound =
              match le with "+Inf" -> infinity | le -> (
                match float_of_string_opt le with
                | Some b -> b
                | None ->
                  fail "%s_bucket: invalid le %S" name le;
                  nan)
            in
            Some (bound, s.s_value, List.remove_assoc "le" s.s_labels)
          | None ->
            fail "%s_bucket without le label" name;
            None
        else None)
      f.f_samples
  in
  let count = List.assoc_opt (name ^ "_count") f.f_samples in
  let sum = List.assoc_opt (name ^ "_sum") f.f_samples in
  if count = None then fail "histogram %s missing _count" name;
  if sum = None then fail "histogram %s missing _sum" name;
  (* group buckets by the non-le label set (one ladder per series) *)
  let groups = Hashtbl.create 4 in
  List.iter
    (fun (bound, v, rest) ->
      let key = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) (List.sort compare rest)) in
      Hashtbl.replace groups key
        ((bound, v) :: (try Hashtbl.find groups key with Not_found -> [])))
    buckets;
  if Hashtbl.length groups = 0 then fail "histogram %s has no _bucket series" name;
  Hashtbl.iter
    (fun _key ladder ->
      let ladder = List.sort (fun (a, _) (b, _) -> Float.compare a b) ladder in
      if not (List.exists (fun (b, _) -> b = infinity) ladder) then
        fail "histogram %s has no +Inf bucket" name;
      let last = ref neg_infinity in
      List.iter
        (fun (bound, v) ->
          if v < !last then
            fail "histogram %s: bucket le=%g count %g below previous %g" name
              bound v !last;
          last := v)
        ladder;
      match (count, List.rev ladder) with
      | Some c, (inf_bound, inf_v) :: _ when inf_bound = infinity ->
        if c.s_value <> inf_v then
          fail "histogram %s: +Inf bucket %g <> _count %g" name inf_v c.s_value
      | _ -> ())
    groups

let () =
  (match Array.to_list Sys.argv with
  | _ :: (_ :: _ as files) ->
    List.iter
      (fun path ->
        let ic = open_in path in
        check_input ic;
        close_in ic)
      files
  | _ -> check_input stdin);
  let total_samples = ref 0 in
  Hashtbl.iter
    (fun name f ->
      total_samples := !total_samples + List.length f.f_samples;
      if f.f_samples <> [] then begin
        if not f.f_help then fail "family %s has samples but no HELP" name;
        match f.f_type with
        | None -> fail "family %s has samples but no TYPE" name
        | Some ("histogram" | "summary") -> check_histogram name f
        | Some _ -> ()
      end)
    families;
  if !total_samples = 0 then fail "no samples found (empty exposition?)";
  if !errors > 0 then begin
    Printf.eprintf "promcheck: %d error(s)\n" !errors;
    exit 1
  end
  else
    Printf.printf "promcheck: OK (%d families, %d series)\n"
      (Hashtbl.length families)
      (Hashtbl.length seen_series)
