(* Markdown link checker for the repository's documentation.

   Usage: linkcheck FILE-OR-DIR ...
   Directories are scanned (non-recursively) for *.md files.

   Checks every inline link [text](target) outside fenced code blocks:

   - http(s)/mailto targets are skipped (no network);
   - relative file targets must exist (relative to the linking file);
   - anchor targets (#section, FILE.md#section) must match a heading of
     the target document under GitHub's slug rules: lowercase, spaces
     to hyphens, punctuation stripped, duplicate slugs suffixed -1, -2…

   Exits 1 listing every broken link, 0 when all links resolve. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Lines of a document with fenced code blocks blanked out, so neither
   links nor #-comments inside fences are interpreted. *)
let visible_lines text =
  let lines = String.split_on_char '\n' text in
  let in_fence = ref false in
  List.map
    (fun line ->
      let trimmed = String.trim line in
      let fence =
        String.length trimmed >= 3
        && (String.sub trimmed 0 3 = "```" || String.sub trimmed 0 3 = "~~~")
      in
      if fence then begin
        in_fence := not !in_fence;
        ""
      end
      else if !in_fence then ""
      else line)
    lines

(* GitHub's heading → anchor slug: lowercase, keep word characters and
   hyphens, spaces become hyphens, everything else is dropped. *)
let slug heading =
  let buf = Buffer.create (String.length heading) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9' | '_' | '-') as c -> Buffer.add_char buf c
      | ' ' -> Buffer.add_char buf '-'
      | _ -> ())
    (String.trim heading);
  Buffer.contents buf

let anchors_of text =
  let counts = Hashtbl.create 16 in
  List.filter_map
    (fun line ->
      let n = String.length line in
      let rec hashes i = if i < n && line.[i] = '#' then hashes (i + 1) else i in
      let h = hashes 0 in
      if h = 0 || h > 6 || h = n || line.[h] <> ' ' then None
      else begin
        let s = slug (String.sub line (h + 1) (n - h - 1)) in
        let seen = Option.value ~default:0 (Hashtbl.find_opt counts s) in
        Hashtbl.replace counts s (seen + 1);
        Some (if seen = 0 then s else Printf.sprintf "%s-%d" s seen)
      end)
    (visible_lines text)

(* Inline [text](target) links per line, fences removed. Skips image
   links' leading '!' implicitly (the '](' pattern is the same) and
   ignores code-span contents conservatively only via fencing — the
   docs do not put bracketed links inside inline code. *)
let links_of text =
  let links = ref [] in
  List.iteri
    (fun lineno line ->
      let n = String.length line in
      let rec scan i =
        if i + 1 < n then
          if line.[i] = ']' && line.[i + 1] = '(' then begin
            (match String.index_from_opt line (i + 2) ')' with
            | Some close when close > i + 2 ->
              let target = String.sub line (i + 2) (close - i - 2) in
              links := (lineno + 1, target) :: !links
            | _ -> ());
            scan (i + 2)
          end
          else scan (i + 1)
      in
      scan 0)
    (visible_lines text);
  List.rev !links

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let errors = ref 0

let fail file lineno fmt =
  incr errors;
  Printf.ksprintf (fun msg -> Printf.printf "%s:%d: %s\n" file lineno msg) fmt

let check_anchor ~file ~lineno ~target path anchor =
  match anchors_of (read_file path) with
  | anchors when List.mem anchor anchors -> ()
  | anchors ->
    fail file lineno "broken anchor %s (%s has: %s)" target
      (Filename.basename path)
      (String.concat ", " (List.map (fun a -> "#" ^ a) anchors))

let check_link file lineno target =
  if
    starts_with "http://" target || starts_with "https://" target
    || starts_with "mailto:" target
  then ()
  else
    let path, anchor =
      match String.index_opt target '#' with
      | Some i ->
        ( String.sub target 0 i,
          Some (String.sub target (i + 1) (String.length target - i - 1)) )
      | None -> (target, None)
    in
    let resolved =
      if path = "" then file else Filename.concat (Filename.dirname file) path
    in
    if not (Sys.file_exists resolved) then
      fail file lineno "broken link %s (no such file %s)" target resolved
    else
      match anchor with
      | None -> ()
      | Some _ when Sys.is_directory resolved ->
        fail file lineno "anchor into a directory: %s" target
      | Some a -> check_anchor ~file ~lineno ~target resolved a

let check_file file =
  List.iter (fun (lineno, target) -> check_link file lineno target)
    (links_of (read_file file))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: linkcheck FILE-OR-DIR ...";
    exit 2
  end;
  let files =
    List.concat_map
      (fun arg ->
        if Sys.is_directory arg then
          Sys.readdir arg |> Array.to_list |> List.sort compare
          |> List.filter (fun f -> Filename.check_suffix f ".md")
          |> List.map (Filename.concat arg)
        else [ arg ])
      args
  in
  List.iter check_file files;
  if !errors > 0 then begin
    Printf.printf "linkcheck: %d broken link(s) in %d file(s)\n" !errors
      (List.length files);
    exit 1
  end
  else
    Printf.printf "linkcheck: %d file(s), all links resolve\n"
      (List.length files)
