(* Validate an SDC audit trail (JSON lines) read from stdin or from the
   files given as arguments. The CI server-smoke step runs the CLI with
   [--audit FILE] and pipes the trail through this.

   Checks, per docs/OBSERVABILITY.md:
   - the trail is non-empty and every line is a JSON object;
   - every event carries the full field set with the right types
     ([violations_after] / [max_risk_after] may be null);
   - ["event"] is "cycle.round" and ["method"] is one of suppress,
     recode, mixed, none;
   - rounds are consecutive from 1;
   - [cells_affected] = [suppressed] + [recoded], and a "none" round
     touches no cells;
   - [info_loss_delta] = [info_loss_after] - [info_loss_before] (to
     float tolerance) and info loss never decreases.

   Exit 0 when clean; 1 with one line per violation otherwise. *)

module J = Vadasa_base.Json

let errors = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "auditcheck: %s\n" msg)
    fmt

let field obj name = List.assoc_opt name obj

let int_field ~where obj name =
  match field obj name with
  | Some (J.Int n) -> Some n
  | Some _ ->
    fail "%s: field %S is not an integer" where name;
    None
  | None ->
    fail "%s: missing field %S" where name;
    None

let num_field ~where obj name =
  match field obj name with
  | Some (J.Float f) -> Some f
  | Some (J.Int n) -> Some (float_of_int n)
  | Some _ ->
    fail "%s: field %S is not a number" where name;
    None
  | None ->
    fail "%s: missing field %S" where name;
    None

let str_field ~where obj name =
  match field obj name with
  | Some (J.Str s) -> Some s
  | Some _ ->
    fail "%s: field %S is not a string" where name;
    None
  | None ->
    fail "%s: missing field %S" where name;
    None

(* [violations_after] / [max_risk_after] are null exactly when the
   cycle stopped without re-estimating (budget, max-rounds). *)
let nullable_num_field ~where obj name =
  match field obj name with
  | Some J.Null | Some (J.Float _) | Some (J.Int _) -> ()
  | Some _ -> fail "%s: field %S is neither a number nor null" where name
  | None -> fail "%s: missing field %S" where name

let methods = [ "suppress"; "recode"; "mixed"; "none" ]

let check_event ~where ~expected_round obj =
  (match str_field ~where obj "event" with
  | Some "cycle.round" | None -> ()
  | Some other -> fail "%s: unexpected event type %S" where other);
  (match int_field ~where obj "round" with
  | Some r when r <> expected_round ->
    fail "%s: round %d, expected %d (rounds must be consecutive from 1)"
      where r expected_round
  | _ -> ());
  ignore (int_field ~where obj "risky_before");
  ignore (num_field ~where obj "max_risk_before");
  ignore (num_field ~where obj "mean_risk_before");
  let method_ = str_field ~where obj "method" in
  (match method_ with
  | Some m when not (List.mem m methods) ->
    fail "%s: unknown method %S (expected one of %s)" where m
      (String.concat ", " methods)
  | _ -> ());
  let suppressed = int_field ~where obj "suppressed" in
  let recoded = int_field ~where obj "recoded" in
  let cells = int_field ~where obj "cells_affected" in
  (match (suppressed, recoded, cells) with
  | Some s, Some r, Some c when c <> s + r ->
    fail "%s: cells_affected %d <> suppressed %d + recoded %d" where c s r
  | _ -> ());
  (match (method_, cells) with
  | Some "none", Some c when c <> 0 ->
    fail "%s: method \"none\" but %d cell(s) affected" where c
  | _ -> ());
  ignore (int_field ~where obj "blocked");
  ignore (int_field ~where obj "skipped");
  nullable_num_field ~where obj "violations_after";
  nullable_num_field ~where obj "max_risk_after";
  let before = num_field ~where obj "info_loss_before" in
  let after = num_field ~where obj "info_loss_after" in
  let delta = num_field ~where obj "info_loss_delta" in
  match (before, after, delta) with
  | Some b, Some a, Some d ->
    if Float.abs (d -. (a -. b)) > 1e-9 then
      fail "%s: info_loss_delta %g <> info_loss_after %g - info_loss_before %g"
        where d a b;
    if a < b -. 1e-9 then
      fail "%s: info loss decreased (%g -> %g)" where b a
  | _ -> ()

let check_trail ~source lines =
  let events = List.filter (fun l -> String.trim l <> "") lines in
  if events = [] then fail "%s: empty audit trail" source;
  List.iteri
    (fun i line ->
      let where = Printf.sprintf "%s:%d" source (i + 1) in
      match J.of_string line with
      | Error e -> fail "%s: %s" where e
      | Ok (J.Obj obj) -> check_event ~where ~expected_round:(i + 1) obj
      | Ok _ -> fail "%s: line is not a JSON object" where)
    events

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let () =
  (match Array.to_list Sys.argv with
  | _ :: (_ :: _ as files) ->
    List.iter
      (fun file ->
        match open_in file with
        | ic ->
          let lines = read_lines ic in
          close_in ic;
          check_trail ~source:file lines
        | exception Sys_error e -> fail "%s" e)
      files
  | _ -> check_trail ~source:"<stdin>" (read_lines stdin));
  if !errors > 0 then exit 1
