(* vadasa — command-line front end of the Vada-SA statistical disclosure
   control framework.

   Subcommands:
     generate    synthesize a Figure 6 dataset as CSV
     categorize  run Algorithm 1 over a CSV's attribute names
     risk        estimate disclosure risk for a CSV microdata DB
     anonymize   run the anonymization cycle and write the result
     attack      simulate the record-linkage attack against a microdata DB
     reason      execute a Vadalog program file on the reasoning engine
     explain     unfold one fact's provenance derivation tree
     serve       expose the pipeline as a concurrent HTTP service
     datasets    manage the server's persistent dataset registry
     append      stream a delta CSV into a registered dataset
     jobs        submit and track async anonymization/risk jobs *)

module Value = Vadasa_base.Value
module E = Vadasa_base.Error
module Budget = Vadasa_base.Budget
module Faultpoint = Vadasa_resilience.Faultpoint
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module L = Vadasa_linkage
module V = Vadasa_vadalog
module T = Vadasa_telemetry.Telemetry
module Srv = Vadasa_server
open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Collect telemetry (engine counters, per-phase spans, I/O \
           volumes) and print a report to stderr after the run. FMT is \
           $(b,text) (default) or $(b,json). See docs/OBSERVABILITY.md.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write machine-readable metrics to FILE as JSON lines instead of \
           stderr: the final telemetry report, preceded (under $(b,serve)) \
           by one access-log line per request.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write every finished telemetry span (name, path, start, \
           duration, depth) to FILE; the rendering is picked by \
           $(b,--trace-format).")

let trace_format_arg =
  Arg.(
    value
    & opt string "json"
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:
          "Rendering for $(b,--trace) FILE: $(b,json) (native span-event \
           list), $(b,chrome) (Chrome/Perfetto trace-event JSON — open in \
           ui.perfetto.dev or chrome://tracing), or $(b,folded) \
           (folded-stacks lines for flamegraph.pl).")

let span_limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "span-limit" ] ~docv:"N"
        ~doc:
          "Retain at most N finished telemetry spans (default 100000); \
           completions beyond the bound are counted as dropped and \
           reported on stderr.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget for the run's reasoning work, in \
           milliseconds. An exhausted budget does not fail the command: \
           the chase stops cooperatively and the result is degraded \
           (partial output, noted on stderr). See docs/RESILIENCE.md.")

let max_facts_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-facts" ] ~docv:"N"
        ~doc:
          "Ceiling on chase-derived facts. Like $(b,--deadline), hitting \
           it degrades the result instead of failing; under $(b,serve) it \
           becomes the server-wide per-request ceiling.")

(* Shared preamble of every subcommand: logging, telemetry, fault-point
   arming ($VADASA_FAULTS), and the run's work budget. Returns the
   [finish] hook the subcommand calls once its work is done — it
   emits the report and span trace that [--metrics]/[--trace] asked
   for — paired with the [--metrics-out] line sink (None without the
   flag), which [serve] reuses as its access log, and the
   [--deadline]/[--max-facts] pair. *)
let telemetry_setup verbose metrics metrics_out trace trace_format span_limit
    deadline_ms max_facts =
  setup_logs verbose;
  (match Faultpoint.arm_from_env () with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "error[%s]: %s\n" e.E.code e.E.message;
    exit 2);
  (match deadline_ms with
  | Some ms when ms < 1 ->
    Printf.eprintf "error: --deadline must be >= 1 (milliseconds)\n";
    exit 2
  | _ -> ());
  (match max_facts with
  | Some n when n < 1 ->
    Printf.eprintf "error: --max-facts must be >= 1\n";
    exit 2
  | _ -> ());
  let fmt =
    match metrics with
    | None -> `None
    | Some "json" -> `Json
    | Some "text" -> `Text
    | Some other ->
      Printf.eprintf "error: unknown metrics format %s (use text or json)\n"
        other;
      exit 1
  in
  let tfmt =
    match T.trace_format_of_string trace_format with
    | Ok f -> f
    | Error message ->
      Printf.eprintf "error: %s\n" message;
      exit 1
  in
  (match span_limit with
  | Some n when n < 0 ->
    Printf.eprintf "error: --span-limit must be non-negative\n";
    exit 1
  | Some n -> T.set_span_limit T.global n
  | None -> ());
  let sink, close_sink =
    match metrics_out with
    | None -> (None, fun () -> ())
    | Some path ->
      let oc =
        try open_out path
        with Sys_error message ->
          Printf.eprintf "error: cannot open --metrics-out file: %s\n" message;
          exit 1
      in
      let mutex = Mutex.create () in
      ( Some
          (fun line ->
            Mutex.lock mutex;
            output_string oc line;
            output_char oc '\n';
            flush oc;
            Mutex.unlock mutex),
        fun () -> close_out oc )
  in
  if fmt <> `None || metrics_out <> None || trace <> None then
    T.set_enabled true;
  let finish () =
    (match trace with
    | Some path -> (
      try T.write_trace_as tfmt T.global path
      with Sys_error message ->
        Printf.eprintf "error: cannot write trace: %s\n" message;
        exit 1)
    | None -> ());
    let dropped = T.Span.dropped T.global in
    if dropped > 0 then
      Printf.eprintf
        "warning: %d telemetry span(s) dropped (retention limit %d; raise \
         with --span-limit)\n"
        dropped (T.span_limit T.global);
    (match sink with
    | Some write ->
      write (T.Json.to_string (T.Report.to_json (T.Report.capture T.global)))
    | None -> ());
    close_sink ();
    match fmt with
    | `None -> ()
    | `Json ->
      prerr_endline
        (T.Json.to_string ~indent:true (T.Report.to_json (T.Report.capture T.global)))
    | `Text -> prerr_string (T.Report.to_text (T.Report.capture T.global))
  in
  (finish, sink, (deadline_ms, max_facts))

let common_term =
  Term.(
    const telemetry_setup $ verbose_arg $ metrics_arg $ metrics_out_arg
    $ trace_arg $ trace_format_arg $ span_limit_arg $ deadline_arg
    $ max_facts_arg)

(* ---- shared helpers --------------------------------------------------- *)

(* The work budget starts ticking when the subcommand begins its
   reasoning work, not at process start. *)
let budget_of_limits (deadline_ms, max_facts) =
  match (deadline_ms, max_facts) with
  | None, None -> None
  | _ ->
    Some
      (Budget.create
         ?deadline_in:
           (Option.map (fun ms -> float_of_int ms /. 1000.0) deadline_ms)
         ?max_facts ())

let warn_degraded (i : V.Engine.interrupt) =
  Printf.eprintf
    "warning: chase interrupted (%s) at stratum %d, iteration %d; %d facts \
     derived — output is partial\n"
    (Budget.reason_code i.V.Engine.reason)
    i.V.Engine.stratum i.V.Engine.iteration i.V.Engine.facts_derived

let load_microdata ~path ~overrides =
  let name = Filename.remove_extension (Filename.basename path) in
  let rel = R.Csv.load ~name path in
  let overrides =
    List.filter_map
      (fun (attr, cat) ->
        Option.map (fun c -> (attr, c)) (S.Microdata.category_of_string cat))
      overrides
  in
  match S.Categorize.categorize_microdata ~overrides rel with
  | Ok md -> md
  | Error message ->
    E.fail ~code:"categorize.failed" E.Wardedness message
      ~context:
        [
          ( "hint",
            "pass --category \
             attr=identifier|quasi-identifier|non-identifying|weight" );
        ]

let parse_measure measure k threshold_size =
  match measure with
  | "k-anonymity" -> S.Risk.K_anonymity { k }
  | "re-identification" -> S.Risk.Re_identification
  | "individual" -> S.Risk.Individual S.Risk.Benedetti_franconi
  | "individual-naive" -> S.Risk.Individual S.Risk.Naive
  | "suda" -> S.Risk.Suda { max_msu_size = 3; threshold_size }
  | other ->
    E.fail ~code:"measure.unknown" E.Wardedness ("unknown measure " ^ other)
      ~context:[ ("measure", other) ]

(* ---- arguments --------------------------------------------------------- *)

let input_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Input microdata CSV (with header).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path (default: stdout).")

let category_arg =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg "expected attr=category")
  in
  let print ppf (a, c) = Format.fprintf ppf "%s=%s" a c in
  Arg.(
    value
    & opt_all (conv (parse, print)) []
    & info [ "category" ] ~docv:"ATTR=CAT"
        ~doc:
          "Expert category override (identifier, quasi-identifier, \
           non-identifying, weight). Repeatable.")

let measure_arg =
  Arg.(
    value
    & opt string "k-anonymity"
    & info [ "measure" ] ~docv:"MEASURE"
        ~doc:
          "Risk measure: k-anonymity, re-identification, individual, \
           individual-naive, suda.")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"k-anonymity threshold.")

let threshold_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "threshold" ] ~docv:"T" ~doc:"Risk threshold T in [0,1].")

let msu_arg =
  Arg.(
    value
    & opt int 3
    & info [ "msu-threshold" ] ~docv:"N" ~doc:"SUDA minimal-sample-unique size threshold.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let engine_domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Evaluate the chase across N OCaml domains (default 1 = \
           sequential). The result is byte-identical for any N — parallel \
           evaluation merges worker derivations in sequential order. Only \
           reasoning-engine work parallelizes; native paths (e.g. the \
           anonymization cycle) ignore it. See docs/PERFORMANCE.md.")

let check_domains domains =
  if domains < 1 then begin
    Printf.eprintf "error: --domains must be >= 1\n";
    exit 2
  end

let write_csv rel = function
  | None -> print_string (R.Csv.write_string rel)
  | Some path ->
    R.Csv.save rel path;
    Printf.printf "wrote %d tuples to %s\n" (R.Relation.cardinal rel) path

(* ---- generate ----------------------------------------------------------- *)

let generate_cmd =
  let dataset =
    Arg.(
      value
      & opt string "R25A4W"
      & info [ "dataset" ] ~docv:"NAME"
          ~doc:"Figure 6 dataset name (R6A4U ... R100A4U).")
  in
  let scale =
    Arg.(
      value
      & opt float 1.0
      & info [ "scale" ] ~docv:"S" ~doc:"Tuple-count multiplier.")
  in
  let list_flag =
    Arg.(value & flag & info [ "list" ] ~doc:"List the Figure 6 inventory and exit.")
  in
  let run (finish, _, _) dataset scale output list_flag =
    if list_flag then Format.printf "%a" D.Suite.pp_table ()
    else
      (match D.Suite.find dataset with
      | None ->
        Printf.eprintf "error: unknown dataset %s (try --list)\n" dataset;
        exit 1
      | Some entry ->
        let md = D.Suite.load_entry ~scale entry in
        write_csv (S.Microdata.relation md) output);
    finish ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a Figure 6 dataset as CSV")
    Term.(const run $ common_term $ dataset $ scale $ output_arg $ list_flag)

(* ---- categorize ---------------------------------------------------------- *)

let categorize_cmd =
  let run (finish, _, _) input =
    let name = Filename.remove_extension (Filename.basename input) in
    let rel = R.Csv.load ~name input in
    let result, _ =
      S.Categorize.run ~experience:S.Categorize.builtin_experience
        (R.Relation.schema rel)
    in
    List.iter
      (fun a ->
        Printf.printf "%-24s %-18s (matched %s, score %.2f)\n"
          a.S.Categorize.attr
          (S.Microdata.category_to_string a.S.Categorize.category)
          a.S.Categorize.matched a.S.Categorize.score)
      result.S.Categorize.assigned;
    List.iter
      (fun attr -> Printf.printf "%-24s UNRESOLVED (expert input needed)\n" attr)
      result.S.Categorize.unresolved;
    List.iter
      (fun c ->
        Printf.printf "CONFLICT on %s: %s\n" c.S.Categorize.conflict_attr
          (String.concat ", "
             (List.map
                (fun (cat, name, score) ->
                  Printf.sprintf "%s via %s (%.2f)"
                    (S.Microdata.category_to_string cat)
                    name score)
                c.S.Categorize.candidates)))
      result.S.Categorize.conflicts;
    finish ()
  in
  Cmd.v
    (Cmd.info "categorize"
       ~doc:"Categorize a CSV's attributes with Algorithm 1 (experience base)")
    Term.(const run $ common_term $ input_arg)

(* ---- risk ------------------------------------------------------------------ *)

let risk_cmd =
  let explain =
    Arg.(
      value
      & opt (some int) None
      & info [ "explain" ] ~docv:"TUPLE"
          ~doc:"Explain one tuple's risk via the reasoning engine's provenance.")
  in
  let reasoned_flag =
    Arg.(
      value & flag
      & info [ "reasoned" ]
          ~doc:
            "Also run the measure as a Vadalog program on the reasoning \
             engine and report the maximum deviation from the native path.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the canonical JSON risk report on stdout instead of the \
             text summary — the exact bytes the server's POST /v1/risk \
             returns for the same input.")
  in
  let run (finish, _, limits) input categories measure k threshold msu_threshold
      explain reasoned json domains =
    check_domains domains;
    let md = load_microdata ~path:input ~overrides:categories in
    let measure = parse_measure measure k msu_threshold in
    let report = S.Risk.estimate measure md in
    if json then print_string (Srv.Codec.risk_report_string ~threshold md report)
    else print_string (S.Explain.summary md report ~threshold);
    (* With --json, keep stdout pure JSON: extras go to stderr. *)
    let out = if json then stderr else stdout in
    if reasoned then begin
      match
        S.Vadalog_bridge.risk_via_engine
          ?budget:(budget_of_limits limits)
          ~domains ~threshold measure md
      with
      | engine_risks ->
        let max_diff = ref 0.0 in
        Array.iteri
          (fun i r ->
            max_diff := Float.max !max_diff (Float.abs (r -. report.S.Risk.risk.(i))))
          engine_risks;
        Printf.fprintf out
          "\nreasoned path: %d risks derived on the engine; max |delta| vs \
           native = %.2e\n"
          (Array.length engine_risks) !max_diff
      | exception S.Vadalog_bridge.Unsupported msg ->
        Printf.fprintf out "\nreasoned path unsupported for this measure: %s\n"
          msg
      | exception V.Engine.Interrupted i ->
        (* The native report above is already complete — only the
           reasoned cross-check was cut short. *)
        warn_degraded i
    end;
    (match explain with
    | None -> ()
    | Some tuple ->
      (match S.Vadalog_bridge.explain_risk measure md ~tuple with
      | Some text ->
        Printf.fprintf out "\nreasoned derivation for tuple %d:\n%s" tuple text
      | None -> Printf.fprintf out "\nno derivation found for tuple %d\n" tuple));
    finish ()
  in
  Cmd.v
    (Cmd.info "risk" ~doc:"Estimate statistical disclosure risk for a CSV")
    Term.(
      const run $ common_term $ input_arg $ category_arg $ measure_arg $ k_arg
      $ threshold_arg $ msu_arg $ explain $ reasoned_flag $ json_flag
      $ engine_domains_arg)

(* ---- anonymize --------------------------------------------------------------- *)

let anonymize_cmd =
  let method_arg =
    Arg.(
      value
      & opt string "suppress"
      & info [ "method" ] ~docv:"METHOD"
          ~doc:"suppress (labelled nulls) or recode (synthetic hierarchy roll-up).")
  in
  let semantics_arg =
    Arg.(
      value
      & opt string "maybe-match"
      & info [ "semantics" ] ~docv:"SEM"
          ~doc:"Labelled-null semantics: maybe-match or standard.")
  in
  let narrative_flag =
    Arg.(
      value & flag
      & info [ "narrative" ]
          ~doc:"Print the full anonymization narrative (per-action story).")
  in
  let audit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit" ] ~docv:"FILE"
          ~doc:
            "Write the decision-level audit trail to FILE as JSON lines: \
             exactly one event per cycle round — risk before/after, method \
             applied, cells affected, violations remaining, info-loss delta. \
             Schema in docs/OBSERVABILITY.md; validated by tools/auditcheck.")
  in
  let run (finish, _, limits) input categories measure k threshold msu_threshold
      method_ semantics output narrative audit domains =
    (* Accepted for CLI uniformity: the native anonymization cycle is
       engine-free, so the flag only matters for reasoned paths. *)
    check_domains domains;
    let md = load_microdata ~path:input ~overrides:categories in
    let semantics =
      match R.Null_semantics.of_string semantics with
      | Some s -> s
      | None ->
        Printf.eprintf "error: unknown semantics %s\n" semantics;
        exit 1
    in
    let method_ =
      match method_ with
      | "suppress" -> S.Cycle.Local_suppression
      | "recode" ->
        S.Cycle.Recode_then_suppress (D.Generator.synthetic_hierarchy md)
      | other ->
        Printf.eprintf "error: unknown method %s\n" other;
        exit 1
    in
    let config =
      {
        S.Cycle.default_config with
        S.Cycle.measure = parse_measure measure k msu_threshold;
        threshold;
        semantics;
        method_;
      }
    in
    let recorder = Option.map (fun _ -> S.Audit.recorder ()) audit in
    let outcome =
      S.Cycle.run ~config ?audit:recorder ?budget:(budget_of_limits limits) md
    in
    Format.eprintf "%a" S.Cycle.pp_outcome outcome;
    if narrative then prerr_string (S.Explain.trace md outcome);
    (match (audit, recorder) with
    | Some path, Some recorder ->
      let events = S.Audit.events recorder in
      (try
         let oc = open_out path in
         output_string oc (S.Audit.to_jsonl events);
         close_out oc
       with Sys_error message ->
         E.fail ~code:"io.audit" E.Io
           ("cannot write --audit file: " ^ message)
           ~context:[ ("file", path) ]);
      Printf.eprintf "audit trail: %d event(s) -> %s\n" (List.length events)
        path
    | _ -> ());
    write_csv (S.Microdata.relation outcome.S.Cycle.anonymized) output;
    finish ()
  in
  Cmd.v
    (Cmd.info "anonymize"
       ~doc:"Run the anonymization cycle on a CSV until the risk threshold holds")
    Term.(
      const run $ common_term $ input_arg $ category_arg $ measure_arg $ k_arg
      $ threshold_arg $ msu_arg $ method_arg $ semantics_arg $ output_arg
      $ narrative_flag $ audit_arg $ engine_domains_arg)

(* ---- attack --------------------------------------------------------------------- *)

let attack_cmd =
  let run (finish, _, limits) input categories seed =
    let md = load_microdata ~path:input ~overrides:categories in
    let rng = Vadasa_stats.Rng.create ~seed in
    let oracle = L.Oracle.from_microdata rng md () in
    Printf.printf "identity oracle: %d records\n" (L.Oracle.cardinal oracle);
    let before = L.Attack.run oracle md in
    Format.printf "before anonymization: %a" L.Attack.pp before;
    let outcome = S.Cycle.run ?budget:(budget_of_limits limits) md in
    let after = L.Attack.run oracle outcome.S.Cycle.anonymized in
    Format.printf "after anonymization (%d nulls): %a"
      outcome.S.Cycle.nulls_injected L.Attack.pp after;
    finish ()
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Simulate the re-identification attack before and after anonymization")
    Term.(const run $ common_term $ input_arg $ category_arg $ seed_arg)

(* ---- reason --------------------------------------------------------------------- *)

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let csv_facts_arg =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (`Msg "expected pred=path.csv")
  in
  let print ppf (p, f) = Format.fprintf ppf "%s=%s" p f in
  Arg.(
    value
    & opt_all (conv (parse, print)) []
    & info [ "csv-facts" ] ~docv:"PRED=FILE"
        ~doc:
          "Load a CSV file (with header) as facts of the given predicate, \
           one fact per row. Repeatable.")

let load_program path csv_facts =
  let program = V.Parser.parse (read_file path) in
  let extra_facts =
    List.concat_map
      (fun (pred, file) ->
        let rel = R.Csv.load ~name:pred file in
        List.map (fun t -> (pred, t)) (R.Relation.to_list rel))
      csv_facts
  in
  V.Program.union program (V.Program.make ~facts:extra_facts [])

let reason_cmd =
  let program_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "p"; "program" ] ~docv:"FILE" ~doc:"Vadalog program file.")
  in
  let query_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "query" ] ~docv:"PRED"
          ~doc:"Predicate to print (default: the program's @output annotations).")
  in
  let explain_arg =
    Arg.(
      value
      & flag
      & info [ "explain" ] ~doc:"Print the provenance tree of every printed fact.")
  in
  let check_warded =
    Arg.(value & flag & info [ "check-warded" ] ~doc:"Print the wardedness analysis.")
  in
  let run (finish, _, limits) path queries explain warded csv_facts domains =
    check_domains domains;
    let program = load_program path csv_facts in
    if warded then
      Format.printf "%a@." V.Wardedness.pp_report (V.Wardedness.analyze program);
    let engine = V.Engine.create ~domains program in
    (* A budgeted run may stop early: print whatever the partial chase
       derived, flagged on stderr. *)
    (match V.Engine.run ?budget:(budget_of_limits limits) engine with
    | () -> ()
    | exception V.Engine.Interrupted i -> warn_degraded i);
    V.Engine.shutdown engine;
    let preds =
      match queries with [] -> program.V.Program.outputs | qs -> qs
    in
    List.iter
      (fun pred ->
        List.iter
          (fun fact ->
            Printf.printf "%s(%s).\n" pred
              (String.concat ", "
                 (Array.to_list (Array.map Value.to_string fact)));
            if explain then
              match V.Engine.explain engine pred fact with
              | Some tree -> print_string (V.Provenance.to_string tree)
              | None -> ())
          (V.Engine.facts engine pred))
      preds;
    finish ()
  in
  Cmd.v
    (Cmd.info "reason" ~doc:"Run a Vadalog program on the reasoning engine")
    Term.(
      const run $ common_term $ program_arg $ query_arg $ explain_arg
      $ check_warded $ csv_facts_arg $ engine_domains_arg)

(* ---- explain -------------------------------------------------------------------- *)

let explain_cmd =
  let program_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "p"; "program" ] ~docv:"FILE" ~doc:"Vadalog program file.")
  in
  let fact_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FACT"
          ~doc:
            "The fact to explain, in Vadalog syntax: 'pred(arg1, arg2)' \
             (trailing dot optional).")
  in
  let max_depth_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:
            "Cut the derivation tree below N levels (default 12); cut \
             subtrees render as [unknown].")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the derivation tree as canonical JSON on stdout — the \
             exact bytes the server's POST /v1/explain returns for the same \
             program and fact.")
  in
  let run (finish, _, limits) path fact json max_depth csv_facts domains =
    check_domains domains;
    (match max_depth with
    | Some n when n < 1 ->
      Printf.eprintf "error: --max-depth must be >= 1\n";
      exit 2
    | _ -> ());
    let pred, args =
      match Srv.Codec.parse_fact fact with
      | Ok f -> f
      | Error e -> raise (E.Error e)
    in
    let program = load_program path csv_facts in
    let engine = V.Engine.create ~domains program in
    (match V.Engine.run ?budget:(budget_of_limits limits) engine with
    | () -> ()
    | exception V.Engine.Interrupted i -> warn_degraded i);
    V.Engine.shutdown engine;
    (match V.Engine.explain ?max_depth engine pred args with
    | Some tree ->
      if json then print_string (Srv.Codec.explain_string tree)
      else print_string (V.Provenance.to_string tree)
    | None ->
      E.fail ~code:"fact.not_found" E.Wardedness
        (Printf.sprintf "fact %s is not in the database" (String.trim fact))
        ~context:
          [
            ("fact", String.trim fact);
            ("hint", "run `vadasa reason` to list the derived facts");
          ]);
    finish ()
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Unfold one fact's provenance: the derivation tree of rules and \
          parent facts the chase recorded for it (the paper's full-\
          explainability desideratum). Exits 2 with error[fact.not_found] \
          when the fact is not in the saturated database.")
    Term.(
      const run $ common_term $ program_arg $ fact_arg $ json_flag
      $ max_depth_arg $ csv_facts_arg $ engine_domains_arg)

(* ---- profile -------------------------------------------------------------------- *)

let profile_cmd =
  let program_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"PROGRAM" ~doc:"Vadalog program file to profile.")
  in
  let top_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"N"
          ~doc:"Print only the N most expensive rules (default: all).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the profile as JSON on stdout instead of the table.")
  in
  let run (finish, _, limits) path top json_out csv_facts domains =
    check_domains domains;
    let program = load_program path csv_facts in
    (* The profiler itself is always on; arm the global registry too so
       the run records the engine.run/engine.stratum.* spans the table
       is cross-checked against. *)
    T.set_enabled true;
    let engine = V.Engine.create ~domains program in
    (match V.Engine.run ?budget:(budget_of_limits limits) engine with
    | () -> ()
    | exception V.Engine.Interrupted i -> warn_degraded i);
    V.Engine.shutdown engine;
    let report = V.Engine.profile_report engine in
    if json_out then
      print_endline (T.Json.to_string ~indent:true (V.Profile.to_json report))
    else begin
      print_string (V.Profile.to_text ?top report);
      (* The parallel-chase cost table: where the domains actually
         spend their time (queue wait, chunk joins) and how long the
         single-threaded merge replay holds them all up. *)
      if domains > 1 then begin
        let captured = T.Report.capture T.global in
        let pool_metrics =
          List.filter
            (fun (name, _) ->
              List.exists
                (fun prefix -> String.starts_with ~prefix name)
                [ "pool."; "engine.chunk."; "engine.merge." ])
            captured.T.Report.histograms
        in
        if pool_metrics <> [] then begin
          Printf.printf "\nparallel chase (%d domains):\n" domains;
          Printf.printf "  %-24s %8s %12s %12s %12s %12s\n" "metric" "count"
            "mean" "p50" "p95" "max";
          List.iter
            (fun (name, s) ->
              Printf.printf "  %-24s %8d %12.4g %12.4g %12.4g %12.4g\n" name
                s.T.Histogram.count s.T.Histogram.mean s.T.Histogram.p50
                s.T.Histogram.p95 s.T.Histogram.max)
            pool_metrics
        end
      end
    end;
    finish ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a Vadalog program and print the chase hotspot table: per-rule \
          self time, join selectivity (tuples scanned vs. matched), facts \
          derived vs. duplicates, nulls invented and aggregate-group churn")
    Term.(
      const run $ common_term $ program_arg $ top_arg $ json_flag
      $ csv_facts_arg $ engine_domains_arg)

(* ---- serve ---------------------------------------------------------------------- *)

let serve_cmd =
  let host_arg =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port_arg =
    Arg.(
      value
      & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Port to bind (0 picks an ephemeral port).")
  in
  let domains_arg =
    Arg.(
      value
      & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Worker pool size (OCaml domains).")
  in
  let engine_domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "engine-domains" ] ~docv:"N"
          ~doc:
            "Size of the shared parallel-chase pool (default 1 = \
             sequential engines). All request handlers borrow this one \
             pool, so the process runs $(b,--domains) + N - 1 worker \
             domains in total — no per-request spawning, no \
             oversubscription. Responses are byte-identical for any N.")
  in
  let queue_arg =
    Arg.(
      value
      & opt int 128
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Bounded job-queue capacity; connections beyond it are answered \
             503 immediately (backpressure).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-request deadline: socket read timeout and maximum queue \
             wait.")
  in
  let max_body_arg =
    Arg.(
      value
      & opt int Srv.Http.default_limits.Srv.Http.max_body_bytes
      & info [ "max-body" ] ~docv:"BYTES"
          ~doc:"Largest accepted request body (413 beyond it).")
  in
  let registry_capacity_arg =
    Arg.(
      value
      & opt int 16
      & info [ "registry-capacity" ] ~docv:"N"
          ~doc:
            "Most datasets the registry keeps registered at once \
             ($(b,/v1/datasets)); beyond it the least-recently-used entry \
             is evicted.")
  in
  let dataset_audit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dataset-audit" ] ~docv:"FILE"
          ~doc:
            "Append the dataset registry's decision trail to FILE as JSON \
             lines: one line per register, append (rows re-scored, groups \
             touched, chase mode) and delete. See docs/STREAMING.md.")
  in
  let data_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Crash-safe durability: journal every dataset and job mutation \
             to DIR (append-only, CRC-framed, group-committed) and \
             periodically compact into an atomic snapshot. On boot the \
             server recovers every committed dataset and job from \
             DIR — risk reports byte-identical to the pre-crash state. \
             Without it, state is in-memory only. See docs/JOBS.md.")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt int 64
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Write a snapshot (and truncate the journal) every N committed \
             records (requires $(b,--data-dir)).")
  in
  let job_domains_arg =
    Arg.(
      value
      & opt int 2
      & info [ "job-domains" ] ~docv:"N"
          ~doc:
            "Async job worker pool size ($(b,POST /v1/jobs)); spawned \
             lazily on the first submission.")
  in
  let job_queue_arg =
    Arg.(
      value
      & opt int 64
      & info [ "job-queue" ] ~docv:"N"
          ~doc:
            "Bounded async-job queue; submissions beyond it answer 503 \
             jobs.queue_full with Retry-After.")
  in
  let tenant_quota_arg =
    Arg.(
      value
      & opt int 16
      & info [ "tenant-quota" ] ~docv:"N"
          ~doc:
            "Most queued+running jobs a single tenant may hold; beyond it \
             submissions answer 429 tenant.quota_exceeded.")
  in
  let job_retain_arg =
    Arg.(
      value
      & opt int 256
      & info [ "job-retain" ] ~docv:"N"
          ~doc:
            "Most terminal (done/failed/cancelled/orphaned) jobs kept per \
             tenant; beyond it the oldest are pruned from the table and \
             from snapshots, keeping long-lived servers bounded.")
  in
  let tenant_rate_arg =
    Arg.(
      value
      & opt float 50.0
      & info [ "tenant-rate" ] ~docv:"R"
          ~doc:
            "Per-tenant job submission rate (token bucket, R tokens per \
             second); beyond it submissions answer 429 tenant.rate_limited \
             with Retry-After.")
  in
  let tenant_burst_arg =
    Arg.(
      value
      & opt float 100.0
      & info [ "tenant-burst" ] ~docv:"B"
          ~doc:"Token-bucket burst capacity for $(b,--tenant-rate).")
  in
  let trace_sample_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Dump every Nth request's full span tree as a JSON line on the \
             $(b,--metrics-out) sink (requires $(b,--metrics-out)); lines \
             carry the request id, so traces join against access-log lines.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-request log: any request slower than MS milliseconds dumps \
             its full span tree as a JSON line on the $(b,--metrics-out) \
             sink, independently of $(b,--trace-sample) — the tail-latency \
             lens is always on. Slow lines carry $(b,slow: true) and the \
             request's latency; each slow request also bumps the \
             $(b,http.slow_requests) counter.")
  in
  let run (finish, sink, (_, max_facts)) host port domains engine_domains queue
      timeout max_body registry_capacity dataset_audit data_dir snapshot_every
      job_domains job_queue tenant_quota job_retain tenant_rate tenant_burst
      trace_sample slow_ms =
    if domains < 1 then begin
      Printf.eprintf "error: --domains must be >= 1\n";
      exit 1
    end;
    if snapshot_every < 1 then begin
      Printf.eprintf "error: --snapshot-every must be >= 1\n";
      exit 1
    end;
    if job_domains < 1 || job_queue < 1 then begin
      Printf.eprintf "error: --job-domains and --job-queue must be >= 1\n";
      exit 1
    end;
    if tenant_quota < 1 || tenant_rate <= 0.0 || tenant_burst < 1.0 then begin
      Printf.eprintf
        "error: --tenant-quota must be >= 1, --tenant-rate > 0, \
         --tenant-burst >= 1\n";
      exit 1
    end;
    if job_retain < 1 then begin
      Printf.eprintf "error: --job-retain must be >= 1\n";
      exit 1
    end;
    if engine_domains < 1 then begin
      Printf.eprintf "error: --engine-domains must be >= 1\n";
      exit 1
    end;
    if queue < 1 then begin
      Printf.eprintf "error: --queue must be >= 1\n";
      exit 1
    end;
    if registry_capacity < 1 then begin
      Printf.eprintf "error: --registry-capacity must be >= 1\n";
      exit 1
    end;
    (match trace_sample with
    | Some n when n < 1 ->
      Printf.eprintf "error: --trace-sample must be >= 1\n";
      exit 1
    | _ -> ());
    (match slow_ms with
    | Some n when n < 1 ->
      Printf.eprintf "error: --slow-ms must be >= 1\n";
      exit 1
    | _ -> ());
    let config =
      {
        Srv.Server.host;
        port;
        domains;
        queue_capacity = queue;
        request_timeout = timeout;
        max_body_bytes = max_body;
        access_log = sink;
        trace_sample;
        slow_ms;
      }
    in
    (* The registry shards per domain, so the gated global telemetry is
       safe (and useful) under the worker pool: per-endpoint latency
       histograms (keyed by the route table, never by raw client paths)
       and engine metrics record concurrently and merge at capture —
       /metrics exposes them, Prometheus format included. Request span
       trees are only recorded for --trace-sample'd requests. *)
    T.set_enabled true;
    let engine_pool =
      if engine_domains > 1 then
        Some
          (Vadasa_base.Task_pool.create ~name:"engine"
             ~on_wait:(fun dt -> T.observe "pool.wait" dt)
             ~domains:engine_domains ())
      else None
    in
    (* The audit sink is append-only and mutex-serialized: worker
       domains emit registry lines concurrently. *)
    let dataset_audit_sink, close_dataset_audit =
      match dataset_audit with
      | None -> (None, fun () -> ())
      | Some path ->
        let oc =
          try open_out_gen [ Open_append; Open_creat ] 0o644 path
          with Sys_error message ->
            Printf.eprintf "error: cannot open --dataset-audit file: %s\n"
              message;
            exit 1
        in
        let mutex = Mutex.create () in
        ( Some
            (fun line ->
              Mutex.lock mutex;
              output_string oc line;
              output_char oc '\n';
              flush oc;
              Mutex.unlock mutex),
          fun () -> close_out oc )
    in
    let persist =
      match data_dir with
      | None -> None
      | Some dir -> (
        match Srv.Persist.open_ ~snapshot_every ~dir () with
        | p -> Some p
        | exception E.Error e ->
          Printf.eprintf "error: cannot open --data-dir %s: %s\n" dir
            e.E.message;
          exit 1)
    in
    let handlers =
      Srv.Handlers.create ?default_max_facts:max_facts ?engine_pool
        ~registry_capacity ?dataset_audit:dataset_audit_sink ?persist
        ~job_domains ~job_queue ~tenant_quota ~job_retain ~tenant_rate
        ~tenant_burst ()
    in
    (match persist with
    | None -> ()
    | Some p ->
      let r = Srv.Persist.recovery p in
      Printf.printf
        "vadasa serve: recovered from %s (%d records replayed, %d skipped, \
         %d torn bytes discarded)\n%!"
        (Srv.Persist.dir p) r.Srv.Persist.replayed r.Srv.Persist.skipped
        r.Srv.Persist.truncated);
    let server =
      match Srv.Server.create ~config handlers with
      | server -> server
      | exception Unix.Unix_error (err, _, _) ->
        Printf.eprintf "error: cannot bind %s:%d: %s\n" host port
          (Unix.error_message err);
        exit 1
    in
    Srv.Server.install_signal_handlers server;
    Printf.printf
      "vadasa serve: listening on http://%s:%d (%d domains, %d engine \
       domains, queue %d)\n%!"
      host (Srv.Server.port server) domains engine_domains queue;
    Srv.Server.run server;
    (* Accept loop drained; now stop the job workers and close the
       journal (final snapshot) before dropping auxiliary sinks. *)
    Srv.Handlers.shutdown handlers;
    Option.iter Vadasa_base.Task_pool.stop engine_pool;
    close_dataset_audit ();
    Printf.eprintf "vadasa serve: shutdown complete\n%!";
    finish ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the SDC pipeline as a long-lived HTTP service: POST /v1/risk, \
          /v1/anonymize, /v1/categorize, /v1/reason, /v1/explain; the \
          dataset registry under /v1/datasets (PUT/GET/DELETE, append via \
          POST /v1/datasets/ID/facts); async jobs under /v1/jobs; GET \
          /healthz, /metrics. With $(b,--data-dir) every dataset and job \
          mutation is journaled and recovered on restart. See \
          docs/SERVER.md, docs/STREAMING.md and docs/JOBS.md.")
    Term.(
      const run $ common_term $ host_arg $ port_arg $ domains_arg
      $ engine_domains_arg $ queue_arg $ timeout_arg $ max_body_arg
      $ registry_capacity_arg $ dataset_audit_arg $ data_dir_arg
      $ snapshot_every_arg $ job_domains_arg $ job_queue_arg
      $ tenant_quota_arg $ job_retain_arg $ tenant_rate_arg $ tenant_burst_arg
      $ trace_sample_arg $ slow_ms_arg)

(* ---- datasets / append (registry HTTP client) ------------------------------------- *)

(* A deliberately tiny HTTP/1.1 client, one request per connection —
   which matches the server's connection-close discipline — so the
   registry subcommands don't pull in a client library. *)

let find_crlf2 s =
  let n = String.length s in
  let rec go i =
    if i + 4 > n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let client_error fmt =
  Printf.ksprintf
    (fun message -> raise (E.Error (E.make ~code:"client.io" E.Io message)))
    fmt

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
      client_error "cannot resolve host %s" host
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found -> client_error "cannot resolve host %s" host)

let http_request ~host ~port ~meth ~target ?(headers = []) ?(body = "") () =
  let addr = Unix.ADDR_INET (resolve_host host, port) in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error (err, _, _) ->
        client_error "cannot connect to %s:%d: %s" host port
          (Unix.error_message err));
      let buf = Buffer.create (String.length body + 256) in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth target);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        (("host", host) :: headers);
      Buffer.add_string buf
        (Printf.sprintf "content-length: %d\r\n\r\n" (String.length body));
      Buffer.add_string buf body;
      let raw = Buffer.to_bytes buf in
      let off = ref 0 in
      while !off < Bytes.length raw do
        off := !off + Unix.write fd raw !off (Bytes.length raw - !off)
      done;
      (* the server always closes: read to EOF *)
      let resp = Buffer.create 1024 in
      let chunk = Bytes.create 8192 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes resp chunk 0 n;
          drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      let raw = Buffer.contents resp in
      if raw = "" then client_error "empty response from %s:%d" host port;
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> int_of_string_opt code |> Option.value ~default:0
        | _ -> 0
      in
      let head, body =
        match find_crlf2 raw with
        | Some i ->
          ( String.sub raw 0 i,
            String.sub raw (i + 4) (String.length raw - i - 4) )
        | None -> (raw, "")
      in
      (* Response headers, names lowercased — the retry loop reads
         Retry-After out of these. *)
      let resp_headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | None -> None
            | Some i ->
              Some
                ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) ))
          (String.split_on_char '\n'
             (String.concat "" (String.split_on_char '\r' head)))
      in
      (status, resp_headers, body))

(* Honour backpressure: a 503 (open breaker, full queue) or 429
   (tenant quota / rate limit) with its Retry-After header re-issues
   the request under a jittered-backoff retry policy with a bounded
   budget; exhaustion raises a clear typed [client.unavailable] (the
   CLI renders it as [error[client.unavailable]] plus the retry
   context and exits 2). Every other status returns to the caller. *)
let client_retry_policy =
  {
    Vadasa_resilience.Retry.default_policy with
    Vadasa_resilience.Retry.max_attempts = 4;
    base_delay = 0.2;
    budget = 15.0;
  }

let http_request_retrying ~host ~port ~meth ~target ?headers ?body () =
  let module Retry = Vadasa_resilience.Retry in
  Retry.run ~policy:client_retry_policy
    ~should_retry:(fun ~attempt:_ -> function
      | E.Error e when e.E.code = "client.unavailable" ->
        Some
          (Option.bind
             (List.assoc_opt "retry_after_s" e.E.context)
             float_of_string_opt)
      | _ -> None)
    (fun () ->
      let status, resp_headers, resp_body =
        http_request ~host ~port ~meth ~target ?headers ?body ()
      in
      if status = 503 || status = 429 then
        raise
          (E.Error
             (E.make ~code:"client.unavailable" E.Resource
                (Printf.sprintf "%s %s: HTTP %d from %s:%d" meth target
                   status host port)
                ~context:
                  (("status", string_of_int status)
                  ::
                  (match List.assoc_opt "retry-after" resp_headers with
                  | Some v -> [ ("retry_after_s", v) ]
                  | None -> []))));
      (status, resp_headers, resp_body))

let server_arg =
  Arg.(
    value
    & opt string "127.0.0.1:8080"
    & info [ "server" ] ~docv:"HOST:PORT"
        ~doc:"Address of the running $(b,vadasa serve) instance.")

let parse_server s =
  let fail () =
    Printf.eprintf "error: --server expects HOST:PORT (got %s)\n" s;
    exit 1
  in
  match String.rindex_opt s ':' with
  | None -> fail ()
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && host <> "" -> (host, p)
    | _ -> fail ())

(* Print the response body on stdout (it is already JSON); a non-2xx
   answer goes to stderr instead and exits 1 — the body carries the
   typed error.code, so scripts can branch on it. *)
let newline_terminated s =
  if s = "" || s.[String.length s - 1] <> '\n' then s ^ "\n" else s

let client_call ~server ~meth ~target ?headers ?body () =
  let host, port = parse_server server in
  let status, _, resp =
    http_request_retrying ~host ~port ~meth ~target ?headers ?body ()
  in
  if status >= 200 && status < 300 then print_string (newline_terminated resp)
  else begin
    Printf.eprintf "error: HTTP %d\n%s" status (newline_terminated resp);
    exit 1
  end

let slurp path =
  let ic =
    try open_in_bin path
    with Sys_error message ->
      Printf.eprintf "error: %s\n" message;
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let dataset_id_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ID" ~doc:"Dataset id (registered under /v1/datasets/ID).")

let datasets_cmd =
  let list_cmd =
    let run (finish, _, _) server =
      client_call ~server ~meth:"GET" ~target:"/v1/datasets" ();
      finish ()
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List registered datasets (GET /v1/datasets).")
      Term.(const run $ common_term $ server_arg)
  in
  let show_cmd =
    let csv_flag =
      Arg.(
        value & flag
        & info [ "csv" ]
            ~doc:
              "Also return the dataset's current (base plus appended \
               deltas) CSV document ($(b,?include=csv)) — the exact input \
               a from-scratch run needs to reproduce its reports.")
    in
    let run (finish, _, _) server id csv =
      let target =
        "/v1/datasets/" ^ id ^ if csv then "?include=csv" else ""
      in
      client_call ~server ~meth:"GET" ~target ();
      finish ()
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:"Show one dataset's metadata (GET /v1/datasets/ID).")
      Term.(const run $ common_term $ server_arg $ dataset_id_arg $ csv_flag)
  in
  let put_cmd =
    let file_arg =
      Arg.(
        required
        & pos 1 (some file) None
        & info [] ~docv:"CSV" ~doc:"Base CSV document to register.")
    in
    let param_arg =
      Arg.(
        value & opt_all string []
        & info [ "param" ] ~docv:"KEY=VALUE"
            ~doc:
              "Extra query parameter forwarded verbatim — the same options \
               $(b,POST /v1/risk) takes: $(b,measure), $(b,threshold), \
               $(b,k), $(b,msu-threshold), $(b,semantics), \
               $(b,category)=attr=cat, ... Repeatable.")
    in
    let run (finish, _, _) server id file params =
      let target =
        "/v1/datasets/" ^ id
        ^ if params = [] then "" else "?" ^ String.concat "&" params
      in
      client_call ~server ~meth:"PUT" ~target
        ~headers:[ ("content-type", "text/csv") ]
        ~body:(slurp file) ();
      finish ()
    in
    Cmd.v
      (Cmd.info "put"
         ~doc:
           "Register a CSV document as a persistent dataset (PUT \
            /v1/datasets/ID). Re-PUTting the identical document is \
            idempotent; different content under a live id is refused with \
            409 dataset.conflict.")
      Term.(
        const run $ common_term $ server_arg $ dataset_id_arg $ file_arg
        $ param_arg)
  in
  let risk_cmd =
    let full_flag =
      Arg.(
        value & flag
        & info [ "full" ]
            ~doc:
              "Re-estimate from scratch on a snapshot of the current data \
               ($(b,?mode=full)) instead of answering from the \
               incrementally maintained report — the two are \
               byte-identical; this flag exists to prove it.")
    in
    let threshold_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "threshold" ] ~docv:"T"
            ~doc:"Override the registered risk threshold for this report.")
    in
    let run (finish, _, _) server id full threshold =
      let params =
        (if full then [ "mode=full" ] else [])
        @
        match threshold with
        | Some t -> [ Printf.sprintf "threshold=%g" t ]
        | None -> []
      in
      let target =
        "/v1/datasets/" ^ id ^ "/risk"
        ^ if params = [] then "" else "?" ^ String.concat "&" params
      in
      client_call ~server ~meth:"GET" ~target ();
      finish ()
    in
    Cmd.v
      (Cmd.info "risk"
         ~doc:
           "Print the dataset's maintained risk report (GET \
            /v1/datasets/ID/risk) — byte-identical to POST /v1/risk over \
            the union CSV.")
      Term.(
        const run $ common_term $ server_arg $ dataset_id_arg $ full_flag
        $ threshold_arg)
  in
  let delete_cmd =
    let run (finish, _, _) server id =
      client_call ~server ~meth:"DELETE" ~target:("/v1/datasets/" ^ id) ();
      finish ()
    in
    Cmd.v
      (Cmd.info "delete"
         ~doc:"Unregister a dataset (DELETE /v1/datasets/ID).")
      Term.(const run $ common_term $ server_arg $ dataset_id_arg)
  in
  Cmd.group
    (Cmd.info "datasets"
       ~doc:
         "Manage the server's persistent dataset registry: list, show, \
          put, risk, delete — thin clients over /v1/datasets on a running \
          $(b,vadasa serve). See docs/STREAMING.md.")
    [ list_cmd; show_cmd; put_cmd; risk_cmd; delete_cmd ]

let append_cmd =
  let input_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "i"; "input" ] ~docv:"CSV"
          ~doc:"Delta CSV file (same header as the base document).")
  in
  let run (finish, _, _) server id input =
    client_call ~server ~meth:"POST"
      ~target:("/v1/datasets/" ^ id ^ "/facts")
      ~headers:[ ("content-type", "text/csv") ]
      ~body:(slurp input) ();
    finish ()
  in
  Cmd.v
    (Cmd.info "append"
       ~doc:
         "Append a delta CSV to a registered dataset (POST \
          /v1/datasets/ID/facts): rows join the live relation, risk is \
          re-scored incrementally (only the touched quasi-identifier \
          groups), and the chase continues from the dataset's previous \
          fixpoint — falling back to a from-scratch rebuild when a \
          non-monotone stratum is invalidated. The response reports what \
          happened (rows_rescored, chase mode).")
    Term.(const run $ common_term $ server_arg $ dataset_id_arg $ input_arg)

(* ---- jobs (async jobs HTTP client) ------------------------------------------------ *)

let jobs_cmd =
  let module Json = Vadasa_base.Json in
  let tenant_arg =
    Arg.(
      value
      & opt string "default"
      & info [ "tenant" ] ~docv:"TENANT"
          ~doc:
            "Tenant the submission is accounted to (sent as \
             X-Vadasa-Tenant; quota and rate limits apply per tenant).")
  in
  let job_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOB" ~doc:"Job id (as returned by $(b,jobs submit)).")
  in
  let submit_cmd =
    let op_arg =
      Arg.(
        value
        & opt string "risk"
        & info [ "op" ] ~docv:"OP"
            ~doc:
              "What to run: $(b,risk) (the dataset's maintained report — \
               byte-identical to $(b,datasets risk)) or $(b,anonymize) (a \
               suppression/recoding cycle over a snapshot).")
    in
    let measure_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "measure" ] ~docv:"MEASURE"
            ~doc:"Risk measure for $(b,--op anonymize).")
    in
    let threshold_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "threshold" ] ~docv:"T" ~doc:"Risk threshold.")
    in
    let k_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "k" ] ~docv:"K" ~doc:"k-anonymity parameter.")
    in
    let method_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "method" ] ~docv:"METHOD"
            ~doc:"Anonymization method: $(b,suppress) or $(b,recode).")
    in
    let semantics_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "semantics" ] ~docv:"SEMANTICS"
            ~doc:"Null-matching semantics for risk grouping.")
    in
    let run (finish, _, _) server tenant id op measure threshold k method_
        semantics =
      let opt_field name to_json value =
        match value with Some v -> [ (name, to_json v) ] | None -> []
      in
      let body =
        Json.to_string
          (Json.Obj
             ([ ("dataset", Json.Str id); ("op", Json.Str op) ]
             @ opt_field "measure" (fun s -> Json.Str s) measure
             @ opt_field "threshold" (fun f -> Json.Float f) threshold
             @ opt_field "k" (fun n -> Json.Int n) k
             @ opt_field "method" (fun s -> Json.Str s) method_
             @ opt_field "semantics" (fun s -> Json.Str s) semantics))
      in
      client_call ~server ~meth:"POST" ~target:"/v1/jobs"
        ~headers:
          [
            ("content-type", "application/json");
            ("x-vadasa-tenant", tenant);
          ]
        ~body ();
      finish ()
    in
    Cmd.v
      (Cmd.info "submit"
         ~doc:
           "Submit an async job over a registered dataset (POST /v1/jobs, \
            202). Prints the job object; poll it with $(b,jobs status) or \
            $(b,jobs wait). Quota/rate rejections (429) are retried with \
            backoff honouring Retry-After before giving up.")
      Term.(
        const run $ common_term $ server_arg $ tenant_arg $ dataset_id_arg
        $ op_arg $ measure_arg $ threshold_arg $ k_arg $ method_arg
        $ semantics_arg)
  in
  let status_cmd =
    let run (finish, _, _) server id =
      client_call ~server ~meth:"GET" ~target:("/v1/jobs/" ^ id) ();
      finish ()
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:"Show one job's state and result (GET /v1/jobs/JOB).")
      Term.(const run $ common_term $ server_arg $ job_pos)
  in
  let list_cmd =
    let run (finish, _, _) server =
      client_call ~server ~meth:"GET" ~target:"/v1/jobs" ();
      finish ()
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List every known job (GET /v1/jobs).")
      Term.(const run $ common_term $ server_arg)
  in
  let wait_cmd =
    let timeout_arg =
      Arg.(
        value
        & opt float 60.0
        & info [ "timeout" ] ~docv:"SECONDS"
            ~doc:
              "Give up (error[client.timeout], exit 2) if the job is still \
               not terminal after this long.")
    in
    let poll_ms_arg =
      Arg.(
        value
        & opt int 200
        & info [ "poll-ms" ] ~docv:"MS" ~doc:"Polling interval.")
    in
    let run (finish, _, _) server id timeout poll_ms =
      let host, port = parse_server server in
      let deadline = Unix.gettimeofday () +. timeout in
      let rec poll () =
        let status, _, body =
          http_request_retrying ~host ~port ~meth:"GET"
            ~target:("/v1/jobs/" ^ id) ()
        in
        if status <> 200 then begin
          Printf.eprintf "error: HTTP %d\n%s" status (newline_terminated body);
          exit 1
        end;
        let json =
          match Json.of_string body with
          | Ok json -> json
          | Error msg ->
            raise
              (E.Error
                 (E.make ~code:"client.bad_response" E.Io
                    ("cannot parse job status: " ^ msg)))
        in
        let state =
          Option.value ~default:""
            (Option.bind (Json.member "state" json) Json.to_string_opt)
        in
        match state with
        | "done" -> (
          (* The result body is the op's canonical rendering (for risk
             jobs: byte-identical to [datasets risk]); print it alone so
             scripts can diff it directly. *)
          match
            Option.bind (Json.member "result" json) Json.to_string_opt
          with
          | Some result -> print_string (newline_terminated result)
          | None -> print_string (newline_terminated body))
        | ("failed" | "cancelled" | "orphaned") as state ->
          (* Exit through the typed-error path (exit 2) with the job's
             own error code, so scripts branch on error[job.cancelled],
             error[job.orphaned], ... *)
          let code, message =
            match Json.member "error" json with
            | Some error_json ->
              ( Option.value ~default:("job." ^ state)
                  (Option.bind (Json.member "code" error_json)
                     Json.to_string_opt),
                Option.value
                  ~default:("job " ^ id ^ " " ^ state)
                  (Option.bind (Json.member "message" error_json)
                     Json.to_string_opt) )
            | None -> ("job." ^ state, "job " ^ id ^ " " ^ state)
          in
          raise
            (E.Error
               (E.make ~code E.Resource message
                  ~context:[ ("job", id); ("state", state) ]))
        | state ->
          if Unix.gettimeofday () > deadline then
            raise
              (E.Error
                 (E.make ~code:"client.timeout" E.Resource
                    (Printf.sprintf "job %s still %s after %gs" id state
                       timeout)
                    ~context:[ ("job", id); ("state", state) ]))
          else begin
            Unix.sleepf (float_of_int poll_ms /. 1000.0);
            poll ()
          end
      in
      poll ();
      finish ()
    in
    Cmd.v
      (Cmd.info "wait"
         ~doc:
           "Poll a job until it reaches a terminal state. Prints the \
            result body on success; a failed/cancelled/orphaned job exits \
            2 with its typed error code.")
      Term.(
        const run $ common_term $ server_arg $ job_pos $ timeout_arg
        $ poll_ms_arg)
  in
  let cancel_cmd =
    let run (finish, _, _) server id =
      client_call ~server ~meth:"DELETE" ~target:("/v1/jobs/" ^ id) ();
      finish ()
    in
    Cmd.v
      (Cmd.info "cancel"
         ~doc:
           "Cooperatively cancel a job (DELETE /v1/jobs/JOB): queued jobs \
            settle immediately, running jobs stop at their next budget \
            poll point; either way the worker slot is released and the \
            job reports job.cancelled.")
      Term.(const run $ common_term $ server_arg $ job_pos)
  in
  Cmd.group
    (Cmd.info "jobs"
       ~doc:
         "Submit and track async anonymization/risk jobs on a running \
          $(b,vadasa serve): submit, status, list, wait, cancel — thin \
          clients over /v1/jobs. Per-tenant quotas and rate limits answer \
          429 with Retry-After, honoured by the built-in retry. See \
          docs/JOBS.md.")
    [ submit_cmd; status_cmd; list_cmd; wait_cmd; cancel_cmd ]

(* ---- main ------------------------------------------------------------------------- *)

let () =
  let doc = "Vada-SA: reasoning-based statistical disclosure control" in
  let info = Cmd.info "vadasa" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd;
        categorize_cmd;
        risk_cmd;
        anonymize_cmd;
        attack_cmd;
        reason_cmd;
        explain_cmd;
        profile_cmd;
        serve_cmd;
        datasets_cmd;
        append_cmd;
        jobs_cmd;
      ]
  in
  (* [~catch:false] lets typed errors reach this handler: every failure
     in the taxonomy prints as one [error[code]] line plus its context
     pairs (file, line, column, …) and exits 2. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception E.Error e ->
    Printf.eprintf "error[%s]: %s\n" e.E.code e.E.message;
    List.iter (fun (k, v) -> Printf.eprintf "  %s: %s\n" k v) e.E.context;
    exit 2
