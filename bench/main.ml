(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5), plus Bechamel micro-benchmarks of the hot
   kernels.

   Usage:
     main.exe                  run everything at the default scale (10%)
     main.exe --full           paper-size datasets (slow)
     main.exe fig7a fig7e ...  selected experiments only
     main.exe micro            Bechamel kernels only
     main.exe --json-dir DIR   write BENCH_<figure>.json reports to DIR
                               (created if missing)
     main.exe --no-json        skip the JSON reports
     main.exe --metrics        also collect library telemetry (engine/SDC
                               counters); printed to stderr at the end
     main.exe --compare DIR    load prior BENCH_<figure>.json reports from
                               DIR, print per-figure deltas, and exit
                               non-zero when a figure slowed by more than
                               the threshold
     main.exe --threshold PCT  regression threshold for --compare in
                               percent (default 25)
     main.exe --min-delta MS   absolute slowdown (milliseconds) a figure
                               must exceed before --compare flags it, so
                               sub-millisecond figures do not flake on
                               scheduler noise (default 0.5)
     main.exe --domains N      top of the domain sweep for the [scaling]
                               experiment: the parallel chase runs at
                               1, 2, 4, ... N domains and records
                               chase.<workload>.d<N> spans (default 1)
     main.exe --speedup-threshold PCT
                               scaling-figure speedup gate for --compare:
                               fail when a workload's current d1/dN
                               speedup ratio drops more than PCT percent
                               below the baseline's ratio (default 25).
                               The ratio compares two runs on the same
                               machine, so this gate is meaningful across
                               heterogeneous CI runners where wall-clock
                               comparison is not

   Every figure is timed through telemetry spans on a dedicated registry
   and dumps a machine-readable BENCH_<figure>.json report (span
   durations per operation) next to the text output, so regressions can
   be tracked without scraping stdout.

   Absolute numbers differ from the paper (different hardware, a fresh
   engine rather than the production Vadalog system); the shapes — who
   wins, what grows, where the curves sit relative to each other — are the
   reproduction target. Expected shapes are printed with each figure. *)

module Value = Vadasa_base.Value
module R = Vadasa_relational
module S = Vadasa_sdc
module D = Vadasa_datagen
module L = Vadasa_linkage
module T = Vadasa_telemetry.Telemetry
module V = Vadasa_vadalog

let scale = ref 0.1

(* Top of the domain sweep for the [scaling] experiment (--domains N):
   each workload runs at 1, 2, 4, ... up to N. *)
let max_domains = ref 1

let section title = Printf.printf "\n=== %s ===\n%!" title

let note fmt = Printf.printf ("  note: " ^^ fmt ^^ "\n%!")

(* The bench registry is explicit (never gated): figures always measure.
   Library-level telemetry on the global registry stays off unless
   --metrics is passed, so instrumentation cannot skew the figures. *)
let bench_registry = ref (T.create ())

let timed name f = T.Span.timed ~registry:!bench_registry name f

(* Histograms grafted onto the figure's JSON report at write time —
   the scaling figure records the engine's pool/chunk/merge metrics per
   (workload, domain count) under [chase.<wl>.d<N>.<metric>]. *)
let extra_histograms : (string * T.Histogram.summary) list ref = ref []

(* ------------------------------------------------------------------ *)
(* Figure 1: the I&G microdata fragment and its re-identification
   risks (paper quotes tuples 15, 7 and 4). *)

let fig1 () =
  section "Figure 1 - I&G microdata and re-identification risk";
  let md = D.Ig_survey.figure1 () in
  Format.printf "%a" R.Relation.pp (S.Microdata.relation md);
  let report = S.Risk.estimate S.Risk.Re_identification md in
  Printf.printf "\n%-8s %-10s %-6s %s\n" "tuple" "risk" "freq" "weight sum";
  Array.iteri
    (fun i r ->
      Printf.printf "%-8d %-10.4f %-6d %.1f\n" (i + 1) r
        report.S.Risk.freq.(i)
        report.S.Risk.weight_sum.(i))
    report.S.Risk.risk;
  note "paper: tuple 15 riskiest (0.03), tuple 7 safest (0.003), tuple 4 = 0.016";
  Printf.printf "  measured: tuple 15 = %.3f, tuple 7 = %.3f, tuple 4 = %.3f\n"
    report.S.Risk.risk.(14) report.S.Risk.risk.(6) report.S.Risk.risk.(3)

(* ------------------------------------------------------------------ *)
(* Figure 4: metadata dictionary and inferred categories. *)

let fig4 () =
  section "Figure 4 - metadata dictionary and attribute categorization";
  let md = D.Ig_survey.figure1 () in
  let dict = S.Dictionary.create () in
  S.Dictionary.register_microdata dict md;
  Format.printf "%a" S.Dictionary.pp dict;
  let result, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (S.Microdata.schema md)
  in
  Printf.printf "\nAlgorithm 1 assignment (builtin experience base):\n";
  List.iter
    (fun a ->
      Printf.printf "  %-22s -> %-18s (matched %s, score %.2f)\n"
        a.S.Categorize.attr
        (S.Microdata.category_to_string a.S.Categorize.category)
        a.S.Categorize.matched a.S.Categorize.score)
    result.S.Categorize.assigned;
  List.iter
    (fun attr -> Printf.printf "  %-22s -> (unresolved: expert input)\n" attr)
    result.S.Categorize.unresolved

(* ------------------------------------------------------------------ *)
(* Figure 5: local suppression and global recoding worked example. *)

let freq_line md label =
  let stats = S.Risk.group_stats md in
  Printf.printf "  %-28s frequencies: %s\n" label
    (String.concat " "
       (Array.to_list (Array.map string_of_int stats.R.Algebra.Group_stats.freq)))

let fig5 () =
  section "Figure 5 - local suppression and global recoding";
  let md = S.Microdata.copy (D.Ig_survey.figure5 ()) in
  Format.printf "%a" R.Relation.pp (S.Microdata.relation md);
  freq_line md "before";
  let ids = Vadasa_base.Ids.create () in
  ignore (S.Suppression.suppress ids md ~tuple:0 ~attr:"sector");
  freq_line md "suppress t1.sector";
  note "paper: frequencies 1,2,2,2,2,1,1 become 5,3,3,3,3,1,1";
  let h = D.Ig_survey.figure5_hierarchy () in
  ignore (S.Recoding.recode_tuple h md ~tuple:5 ~attr:"area");
  ignore (S.Recoding.recode_tuple h md ~tuple:6 ~attr:"area");
  freq_line md "recode Milano/Torino->North";
  note "paper: tuples 6 and 7 collapse to frequency 2 after recoding";
  Format.printf "%a" R.Relation.pp (S.Microdata.relation md)

(* ------------------------------------------------------------------ *)
(* Figure 6: the dataset inventory. *)

let fig6 () =
  section "Figure 6 - datasets used in the experimental settings";
  Format.printf "%a" D.Suite.pp_table ();
  Printf.printf "  (generated at scale %.2f for the experiments below)\n" !scale

(* ------------------------------------------------------------------ *)
(* Figures 7a/7b: nulls injected and information loss by k-anonymity
   threshold, datasets R25A4W/U/V, T = 0.5, local suppression,
   less-significant-first. *)

type ab_row = {
  ds : string;
  k : int;
  nulls : int;
  loss : float;
  risky : int;
}

let fig7ab_rows : ab_row list option ref = ref None

let compute_fig7ab () =
  match !fig7ab_rows with
  | Some rows -> rows
  | None ->
    let rows =
      List.concat_map
        (fun ds ->
          let md = D.Suite.load ~scale:!scale ds in
          List.map
            (fun k ->
              let config =
                {
                  S.Cycle.default_config with
                  S.Cycle.measure = S.Risk.K_anonymity { k };
                }
              in
              let outcome = S.Cycle.run ~config md in
              {
                ds;
                k;
                nulls = outcome.S.Cycle.nulls_injected;
                loss = outcome.S.Cycle.info_loss;
                risky = outcome.S.Cycle.risky_initial;
              })
            [ 2; 3; 4; 5 ])
        [ "R25A4W"; "R25A4U"; "R25A4V" ]
    in
    fig7ab_rows := Some rows;
    rows

let fig7a () =
  section "Figure 7a - nulls injected by k-anonymity threshold";
  let rows = compute_fig7ab () in
  Printf.printf "%-10s %-4s %-14s %s\n" "dataset" "k" "risky tuples" "nulls injected";
  List.iter
    (fun r -> Printf.printf "%-10s %-4d %-14d %d\n" r.ds r.k r.risky r.nulls)
    rows;
  note "paper: nulls grow with k; W lowest (<50 at 25k, k=5), V highest"

let fig7b () =
  section "Figure 7b - information loss by k-anonymity threshold";
  let rows = compute_fig7ab () in
  Printf.printf "%-10s %-4s %s\n" "dataset" "k" "information loss";
  List.iter (fun r -> Printf.printf "%-10s %-4d %.3f\n" r.ds r.k r.loss) rows;
  note "paper: W/U flat 12-17%%; V higher (37%%) but dropping toward 13%% at low tolerance"

(* ------------------------------------------------------------------ *)
(* Figure 7c: maybe-match vs standard labelled-null semantics. *)

let fig7c () =
  section "Figure 7c - nulls injected, maybe-match vs standard semantics";
  Printf.printf "%-10s %-4s %-22s %s\n" "dataset" "k" "maybe-match nulls"
    "standard nulls";
  List.iter
    (fun ds ->
      let md = D.Suite.load ~scale:!scale ds in
      List.iter
        (fun k ->
          let run semantics =
            let config =
              {
                S.Cycle.default_config with
                S.Cycle.measure = S.Risk.K_anonymity { k };
                semantics;
                (* The standard semantics cannot converge; bound the work. *)
                max_rounds = 10;
              }
            in
            (S.Cycle.run ~config md).S.Cycle.nulls_injected
          in
          let maybe = run R.Null_semantics.Maybe_match in
          let standard = run R.Null_semantics.Standard in
          Printf.printf "%-10s %-4d %-22d %d\n" ds k maybe standard)
        [ 2; 3 ])
    [ "R25A4W"; "R25A4U"; "R25A4V" ];
  note "paper: standard semantics proliferates symbols (unusable); maybe-match minimal"

(* ------------------------------------------------------------------ *)
(* Figure 7d: nulls injected vs number of control relationships
   (enhanced anonymization cycle, k = 2). *)

let fig7d () =
  section "Figure 7d - nulls injected by number of control relationships";
  Printf.printf "%-10s %-18s %-18s %s\n" "dataset" "ownership edges"
    "inferred rels" "nulls injected";
  let edge_steps =
    List.map (fun e -> int_of_float (float_of_int e *. !scale)) [ 0; 100; 200; 300; 400 ]
  in
  List.iter
    (fun ds ->
      let md = D.Suite.load ~scale:!scale ds in
      (* Company groups preferentially involve the identifiable outliers —
         otherwise, on the nearly-safe W dataset, random clusters would
         never touch a risky tuple and nothing would propagate. *)
      let risky_ids =
        let report = S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md in
        let rel = S.Microdata.relation md in
        let pos = R.Schema.index_of (S.Microdata.schema md) "id" in
        List.map
          (fun i -> Value.to_string (R.Relation.get rel i).(pos))
          (S.Risk.risky report ~threshold:0.5)
      in
      List.iter
        (fun edges ->
          let rng = Vadasa_stats.Rng.create ~seed:17 in
          let ownerships =
            D.Ownership_gen.generate rng md ~id_attr:"id" ~edges
              ~seed_entities:risky_ids ()
          in
          let inferred = D.Ownership_gen.inferred_relationships ownerships in
          let config =
            {
              S.Cycle.default_config with
              S.Cycle.risk_transform =
                (if edges = 0 then None
                 else Some (S.Business.risk_transform ~id_attr:"id" ~ownerships));
            }
          in
          let outcome = S.Cycle.run ~config md in
          Printf.printf "%-10s %-18d %-18d %d\n" ds edges inferred
            outcome.S.Cycle.nulls_injected)
        edge_steps)
    [ "R25A4W"; "R25A4U"; "R25A4V" ];
  note "paper: nulls grow with relationships; effect strongest on the V dataset"

(* ------------------------------------------------------------------ *)
(* Figures 7e/7f: execution time by dataset size and by number of
   quasi-identifiers, for three risk-estimation techniques. *)

let techniques =
  [
    ("individual", S.Risk.Individual (S.Risk.Monte_carlo { samples = 200; seed = 3 }));
    ("k-anonymity", S.Risk.K_anonymity { k = 2 });
    ("SUDA", S.Risk.Suda { max_msu_size = 3; threshold_size = 3 });
  ]

let time_dataset ds md =
  List.map
    (fun (name, measure) ->
      let _, risk_time =
        timed (Printf.sprintf "risk.%s.%s" name ds) (fun () ->
            S.Risk.estimate measure md)
      in
      let config = { S.Cycle.default_config with S.Cycle.measure = measure } in
      let _, total_time =
        timed (Printf.sprintf "cycle.%s.%s" name ds) (fun () ->
            S.Cycle.run ~config md)
      in
      (name, risk_time, total_time))
    techniques

let print_timing_header () =
  Printf.printf "%-10s %-8s %-14s %-14s %s\n" "dataset" "tuples" "technique"
    "risk-only (s)" "full cycle (s)"

let print_timings ds md rows =
  List.iter
    (fun (name, risk_time, total_time) ->
      Printf.printf "%-10s %-8d %-14s %-14.3f %.3f\n" ds
        (S.Microdata.cardinal md) name risk_time total_time)
    rows

let fig7e () =
  section "Figure 7e - execution time by dataset size";
  print_timing_header ();
  List.iter
    (fun ds ->
      let md = D.Suite.load ~scale:!scale ds in
      print_timings ds md (time_dataset ds md))
    [ "R6A4U"; "R12A4U"; "R25A4U"; "R50A4U"; "R100A4U" ];
  note "paper: linear trends; k-anonymity cheapest; individual risk costly";
  note "(sampling library); SUDA in between; risk estimation dominates the cycle"

let fig7f () =
  section "Figure 7f - execution time by number of quasi-identifiers";
  print_timing_header ();
  List.iter
    (fun ds ->
      let md = D.Suite.load ~scale:!scale ds in
      print_timings ds md (time_dataset ds md))
    [ "R50A4W"; "R50A5W"; "R50A6W"; "R50A8W"; "R50A9W" ];
  note "paper: individual risk and k-anonymity flat in the QI count;";
  note "SUDA grows but without combinatorial blowup (greedy MSU pruning)"

(* ------------------------------------------------------------------ *)
(* Extension experiment: the record-linkage attack before and after
   anonymization (Section 2.2's validation story). *)

let attack () =
  section "Attack validation - re-identification before/after anonymization";
  Printf.printf "%-10s %-10s %-16s %-14s %s\n" "dataset" "phase" "expected hits"
    "mean cohort" "exact hits";
  List.iter
    (fun ds ->
      let md = D.Suite.load ~scale:(!scale /. 2.0) ds in
      let rng = Vadasa_stats.Rng.create ~seed:5 in
      let oracle = L.Oracle.from_microdata rng md () in
      let before = L.Attack.run oracle md in
      let outcome = S.Cycle.run md in
      let after = L.Attack.run oracle outcome.S.Cycle.anonymized in
      Printf.printf "%-10s %-10s %-16.1f %-14.1f %d\n" ds "before"
        before.L.Attack.expected_hits before.L.Attack.mean_block
        before.L.Attack.exact_hits;
      Printf.printf "%-10s %-10s %-16.1f %-14.1f %d\n" ds "after"
        after.L.Attack.expected_hits after.L.Attack.mean_block
        after.L.Attack.exact_hits)
    [ "R25A4U"; "R25A4V" ];
  note "expectation: anonymization grows blocking cohorts and depresses hits"

(* ------------------------------------------------------------------ *)
(* Baseline comparison: Vada-SA's cell-level anonymization cycle against
   the classic Datafly full-domain generalization (Sweeney 1997, cited in
   the paper's related work). *)

let baseline () =
  section "Baseline - Vada-SA cycle vs Datafly full-domain generalization";
  Printf.printf "%-10s %-10s %-10s %-14s %-14s %-12s %s\n" "dataset" "method"
    "k-anon?" "cells erased" "cells coarser" "supp. rate" "time (s)";
  List.iter
    (fun ds ->
      let md = D.Suite.load ~scale:!scale ds in
      let hierarchy = D.Generator.synthetic_hierarchy md in
      (* Vada-SA cycle (cell-level suppression). *)
      let outcome, cycle_time = timed ("cycle.vada-sa." ^ ds) (fun () -> S.Cycle.run md) in
      let cycle_md = outcome.S.Cycle.anonymized in
      Printf.printf "%-10s %-10s %-10b %-14d %-14d %-12.4f %.3f\n" ds "vada-sa"
        (S.Baseline_datafly.k_anonymous cycle_md
        ||
        (* cell suppression reaches k-anonymity under maybe-match *)
        S.Risk.risky (S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) cycle_md)
          ~threshold:0.5
        = [])
        outcome.S.Cycle.nulls_injected 0
        (S.Info_loss.cell_suppression_rate cycle_md)
        cycle_time;
      (* Datafly (full-domain generalization + residual suppression). *)
      let datafly, datafly_time =
        timed ("cycle.datafly." ^ ds) (fun () -> S.Baseline_datafly.run ~hierarchy md)
      in
      let datafly_md = datafly.S.Baseline_datafly.anonymized in
      Printf.printf "%-10s %-10s %-10b %-14d %-14d %-12.4f %.3f\n" ds "datafly"
        datafly.S.Baseline_datafly.satisfied
        (List.length datafly.S.Baseline_datafly.suppressed_tuples
        * List.length (S.Microdata.quasi_identifiers md))
        datafly.S.Baseline_datafly.cells_generalized
        (S.Info_loss.cell_suppression_rate datafly_md)
        datafly_time)
    [ "R25A4W"; "R25A4U"; "R25A4V" ];
  note "expectation: Datafly is fast but coarsens whole columns; Vada-SA";
  note "touches only the risky tuples' cells (lower utility loss)"

(* ------------------------------------------------------------------ *)
(* Ablations of the design choices DESIGN.md calls out: the runtime
   heuristics (Section 4.4), the within-round null sharing behind
   Figure 7b, and the greedy granularity (per-round limit). *)

let ablation () =
  section "Ablation - routing heuristics, null sharing, greed granularity";
  let md = D.Suite.load ~scale:!scale "R25A4U" in
  let base = S.Cycle.default_config in
  let variants =
    [
      ("default (less-significant, most-risky-qi)", base);
      ( "tuple order: most-risky-first",
        { base with S.Cycle.tuple_order = S.Heuristics.Most_risky_first } );
      ( "tuple order: in-order",
        { base with S.Cycle.tuple_order = S.Heuristics.In_order } );
      ( "qi choice: most-selective",
        { base with S.Cycle.qi_choice = S.Heuristics.Most_selective_qi } );
      ( "qi choice: first",
        { base with S.Cycle.qi_choice = S.Heuristics.First_qi } );
      ("no null sharing", { base with S.Cycle.share_nulls = false });
      ( "fully greedy (1 tuple/round)",
        { base with S.Cycle.per_round_limit = Some 1; max_rounds = 100_000 } );
    ]
  in
  Printf.printf "%-42s %-8s %-8s %-10s %s\n" "variant" "nulls" "rounds"
    "info loss" "time (s)";
  List.iter
    (fun (name, config) ->
      let outcome, t = timed ("cycle.variant." ^ name) (fun () -> S.Cycle.run ~config md) in
      Printf.printf "%-42s %-8d %-8d %-10.3f %.3f\n" name
        outcome.S.Cycle.nulls_injected outcome.S.Cycle.rounds
        outcome.S.Cycle.info_loss t)
    variants;
  note "most-risky-qi + null sharing minimize suppression; full greed costs time";
  (* Individual-risk estimator family: naive vs closed-form vs sampling. *)
  Printf.printf "\n%-42s %-14s %s\n" "individual-risk estimator" "global risk"
    "time (s)";
  List.iter
    (fun (name, estimator) ->
      let report, t =
        timed ("risk.estimator." ^ name) (fun () ->
            S.Risk.estimate (S.Risk.Individual estimator) md)
      in
      Printf.printf "%-42s %-14.1f %.3f\n" name (S.Risk.global_risk report) t)
    [
      ("naive f/w (Algorithm 5)", S.Risk.Naive);
      ("Benedetti-Franconi closed form", S.Risk.Benedetti_franconi);
      ("Monte Carlo posterior (200 samples)",
       S.Risk.Monte_carlo { samples = 200; seed = 3 });
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per experiment family. *)

let micro () =
  section "Micro-benchmarks (Bechamel, ns per run)";
  let module B = Bechamel in
  let module Test = Bechamel.Test in
  let module Staged = Bechamel.Staged in
  let md_u = D.Suite.load ~scale:0.02 "R25A4U" in
  let md_nulls =
    let out = S.Cycle.run md_u in
    out.S.Cycle.anonymized
  in
  let fig1_md = D.Ig_survey.figure1 () in
  let tests =
    Test.make_grouped ~name:"vadasa"
      [
        Test.make ~name:"group_stats_standard (fig7e kernel)"
          (Staged.stage (fun () ->
               S.Risk.group_stats ~semantics:R.Null_semantics.Standard md_u));
        Test.make ~name:"group_stats_maybe_match (fig7c kernel)"
          (Staged.stage (fun () -> S.Risk.group_stats md_nulls));
        Test.make ~name:"k_anonymity_estimate (fig7a kernel)"
          (Staged.stage (fun () ->
               S.Risk.estimate (S.Risk.K_anonymity { k = 2 }) md_u));
        Test.make ~name:"reidentification_estimate (fig1 kernel)"
          (Staged.stage (fun () ->
               S.Risk.estimate S.Risk.Re_identification md_u));
        Test.make ~name:"individual_bf_estimate (fig7e kernel)"
          (Staged.stage (fun () ->
               S.Risk.estimate (S.Risk.Individual S.Risk.Benedetti_franconi) md_u));
        Test.make ~name:"suda_msus (fig7f kernel)"
          (Staged.stage (fun () -> S.Risk_suda.find_msus fig1_md));
        Test.make ~name:"control_closure (fig7d kernel)"
          (Staged.stage
             (let rng = Vadasa_stats.Rng.create ~seed:13 in
              let ownerships =
                D.Ownership_gen.generate rng md_u ~id_attr:"id" ~edges:40 ()
              in
              fun () -> S.Business.control_closure ownerships));
        Test.make ~name:"cycle_figure5 (fig5 kernel)"
          (Staged.stage (fun () -> S.Cycle.run (D.Ig_survey.figure5 ())));
        Test.make ~name:"engine_k_anonymity_fig5 (reasoned path)"
          (Staged.stage (fun () ->
               S.Vadalog_bridge.risk_via_engine (S.Risk.K_anonymity { k = 2 })
                 (D.Ig_survey.figure5 ())));
      ]
  in
  let cfg = B.Benchmark.cfg ~limit:200 ~quota:(B.Time.second 0.5) () in
  let raw = B.Benchmark.all cfg [ B.Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    B.Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| B.Measure.run |]
  in
  let results = B.Analyze.all ols B.Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      let estimate =
        match B.Analyze.OLS.estimates result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      Printf.printf "  %-48s %12.0f ns/run\n" name estimate)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* Scaling: parallel chase wall time by domain count.  [--domains N]
   sweeps 1, 2, 4, ... up to N (default 1: single sequential run, so
   the figure still produces a baseline span on every bench run).

   Two engine workloads with opposite shapes:

   - band: a band self-join over [item(I, A)].  The inner atom shares no
     variable with the delta atom, so every delta fact forces a full
     scan of [item] — O(n^2) read-only join work against a small
     emission count.  This is the parallel-friendly shape: phase 1
     (workers) dominates, phase 2 (single-threaded merge) is tiny.
   - closure: transitive closure of a chain.  Every binding emits a new
     fact, so the sequential merge phase dominates and the curve stays
     near 1.0x however many domains run.  Kept as the honest
     counterpoint — docs/PERFORMANCE.md points here.

   The derived databases are byte-identical across domain counts (the
   engine's determinism guarantee; asserted below via fact counts and
   checked exhaustively in test/test_parallel.ml).  Spans are named
   [chase.<workload>.d<N>] so BENCH_scaling.json records the whole
   curve.

   Engines are created with the default domain cap, exactly as
   production callers get them: on a host with fewer cores than the
   requested count the engine clamps to the host's useful parallelism
   (printed as "effective" below) instead of paying OCaml 5
   oversubscription costs, so a single-core runner records a flat
   curve — d4 ~= d1, not the 2.5x *slowdown* uncapped oversubscription
   used to produce.  Real speedup needs real cores.  The --compare
   gate therefore keys on the d1/dN speedup *ratio* of this very
   machine, never on wall time against someone else's; see
   [compare_figure]. *)

let scaling () =
  section "Scaling - parallel chase wall time by domain count";
  let sweep =
    let rec up acc d =
      if d >= !max_domains then List.rev (!max_domains :: acc)
      else up (d :: acc) (d * 2)
    in
    if !max_domains <= 1 then [ 1 ] else up [] 1
  in
  let band_n = max 400 (int_of_float (6000.0 *. sqrt !scale)) in
  let band =
    let facts =
      List.init band_n (fun i ->
          ("item", [| Value.Int i; Value.Int (i mod 997) |]))
    in
    let rules =
      V.Parser.parse
        "near(X, Y) :- item(X, A), item(Y, B), X < Y, A <= B + 1, B <= A + 1.\n\
         @output(\"near\")."
    in
    V.Program.union rules (V.Program.make ~facts [])
  in
  let chain_n = max 100 (int_of_float (400.0 *. sqrt !scale)) in
  let closure =
    let facts =
      List.init (chain_n - 1) (fun i ->
          ("edge", [| Value.Int i; Value.Int (i + 1) |]))
    in
    let rules =
      V.Parser.parse
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n\
         @output(\"path\")."
    in
    V.Program.union rules (V.Program.make ~facts [])
  in
  Printf.printf "  band: %d items (O(n^2) join); closure: %d-node chain\n"
    band_n chain_n;
  Printf.printf "  %-10s %-8s %-10s %-10s %s\n" "workload" "domains"
    "time (s)" "speedup" "facts";
  (* The sweep runs with the global registry armed so the engine's
     pool.wait / engine.chunk.* / engine.merge.* histograms record on
     the worker domains; each (workload, domains) cell is captured,
     printed, and grafted onto BENCH_scaling.json as
     [chase.<wl>.d<N>.<metric>]. *)
  let was_enabled = T.enabled () in
  List.iter
    (fun (wl, program) ->
      let base = ref nan in
      let reference = ref (-1) in
      List.iter
        (fun d ->
          T.reset T.global;
          T.set_enabled true;
          (* Each leg inherits the previous leg's major-heap state;
             compacting first puts every (workload, domains) cell on the
             same footing, so the d1/dN ratio measures the engine, not
             GC carryover. *)
          Gc.compact ();
          let effective = ref 1 in
          let facts, t =
            timed
              (Printf.sprintf "chase.%s.d%d" wl d)
              (fun () ->
                let engine = V.Engine.create ~domains:d program in
                effective := V.Engine.parallelism engine;
                Fun.protect
                  ~finally:(fun () -> V.Engine.shutdown engine)
                  (fun () ->
                    V.Engine.run engine;
                    V.Database.total (V.Engine.database engine)))
          in
          T.set_enabled was_enabled;
          let captured = T.Report.capture T.global in
          T.reset T.global;
          if Float.is_nan !base then base := t;
          if !reference < 0 then reference := facts
          else assert (facts = !reference);
          Printf.printf "  %-10s %-8d %-10.3f %-10s %d%s\n" wl d t
            (Printf.sprintf "%.2fx" (!base /. t))
            facts
            (if !effective <> d then
               Printf.sprintf "  (capped to %d effective domain%s)" !effective
                 (if !effective = 1 then "" else "s")
             else "");
          let pool_metrics =
            List.filter
              (fun (name, _) ->
                List.exists
                  (fun prefix -> String.starts_with ~prefix name)
                  [ "pool."; "engine.chunk."; "engine.merge." ])
              captured.T.Report.histograms
          in
          List.iter
            (fun (name, s) ->
              extra_histograms :=
                (Printf.sprintf "chase.%s.d%d.%s" wl d name, s)
                :: !extra_histograms)
            pool_metrics;
          if d > 1 && pool_metrics <> [] then begin
            let find name =
              List.assoc_opt name pool_metrics
            in
            let mean name =
              match find name with
              | Some s when s.T.Histogram.count > 0 -> s.T.Histogram.mean
              | _ -> 0.0
            in
            let total name =
              match find name with Some s -> s.T.Histogram.sum | None -> 0.0
            in
            Printf.printf
              "  %-10s %-8s wait mean %.2gs · join mean %.2gs · merge total \
               %.3fs\n"
              "" ""
              (mean "pool.wait")
              (mean "engine.chunk.join")
              (total "engine.merge.replay")
          end)
        sweep)
    [ ("band", band); ("closure", closure) ];
  note "identical fact counts across domain counts (byte-identity is";
  note "asserted exhaustively in test/test_parallel.ml)"

(* ------------------------------------------------------------------ *)
(* Incremental: reuse-the-fixpoint re-evaluation vs. full re-runs
   (the dataset registry's append path, docs/STREAMING.md).

   The band workload from [scaling] — a delta-unfriendly self-join
   where every appended item scans the whole relation — grows by K
   deltas. The incremental engine continues each append from its
   semi-naive snapshot ([Engine.run_incremental]); the from-scratch
   engine recomputes the fixpoint over the union. Both databases must
   stay byte-identical modulo labelled-null renaming
   ([Canonical.of_engine], asserted every round); the figure reports
   the wall-time ratio. *)

let incremental () =
  section "Incremental - fixpoint reuse vs full re-run (band workload)";
  let n = max 400 (int_of_float (4000.0 *. sqrt !scale)) in
  let deltas = 5 in
  let delta_n = max 10 (n / 50) in
  let item i = ("item", [| Value.Int i; Value.Int (i mod 997) |]) in
  let rules =
    V.Parser.parse
      "near(X, Y) :- item(X, A), item(Y, B), X < Y, A <= B + 1, B <= A + 1.\n\
       @output(\"near\")."
  in
  let facts lo hi = List.init (hi - lo) (fun k -> item (lo + k)) in
  let program hi = V.Program.union rules (V.Program.make ~facts:(facts 0 hi) []) in
  Printf.printf "  band: %d base items, %d appends of %d items each\n" n deltas
    delta_n;
  Printf.printf "  %-8s %-20s %-12s %s\n" "append" "mode" "time (s)" "facts";
  let inc_engine = V.Engine.create (program n) in
  let _, base_time =
    timed "incremental.base" (fun () -> V.Engine.run inc_engine)
  in
  let snap = ref (V.Engine.snapshot inc_engine) in
  let append_total = ref 0.0 in
  let scratch_total = ref 0.0 in
  for a = 1 to deltas do
    let lo = n + ((a - 1) * delta_n) and hi = n + (a * delta_n) in
    let _, t_inc =
      timed
        (Printf.sprintf "incremental.append.%d" a)
        (fun () ->
          List.iter
            (fun (p, args) -> V.Engine.add_fact_array inc_engine p args)
            (facts lo hi);
          snap := V.Engine.run_incremental ~snapshot:!snap inc_engine)
    in
    append_total := !append_total +. t_inc;
    let scratch_engine = V.Engine.create (program hi) in
    let _, t_scr =
      timed
        (Printf.sprintf "incremental.scratch.%d" a)
        (fun () -> V.Engine.run scratch_engine)
    in
    scratch_total := !scratch_total +. t_scr;
    Printf.printf "  %-8d %-20s %-12.4f %d\n" a "append (continue)" t_inc
      (V.Database.total (V.Engine.database inc_engine));
    Printf.printf "  %-8d %-20s %-12.4f %d\n" a "full re-run" t_scr
      (V.Database.total (V.Engine.database scratch_engine));
    assert (
      String.equal
        (V.Canonical.of_engine inc_engine)
        (V.Canonical.of_engine scratch_engine));
    V.Engine.shutdown scratch_engine
  done;
  V.Engine.shutdown inc_engine;
  Printf.printf
    "  totals: base fixpoint %.3f s; appends %.3f s; full re-runs %.3f s \
     (%.1fx)\n"
    base_time !append_total !scratch_total
    (!scratch_total /. Float.max !append_total 1e-9);
  note "expectation: appends beat full re-runs by a widening margin (the";
  note "continuation only evaluates the old*new and new*new join quadrants);";
  note "canonical forms are byte-identical every round (asserted)"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1", fig1);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7a", fig7a);
    ("fig7b", fig7b);
    ("fig7c", fig7c);
    ("fig7d", fig7d);
    ("fig7e", fig7e);
    ("fig7f", fig7f);
    ("attack", attack);
    ("baseline", baseline);
    ("ablation", ablation);
    ("scaling", scaling);
    ("incremental", incremental);
    ("micro", micro);
  ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let resolve path =
  if Filename.is_relative path then Filename.concat (Sys.getcwd ()) path
  else path

let write_bench_report ~json_dir name =
  let report = T.Report.capture !bench_registry in
  let report =
    match !extra_histograms with
    | [] -> report
    | extras ->
      {
        report with
        T.Report.histograms =
          report.T.Report.histograms
          @ List.sort (fun (a, _) (b, _) -> String.compare a b) extras;
      }
  in
  let file = Filename.concat json_dir ("BENCH_" ^ name ^ ".json") in
  let oc = open_out file in
  output_string oc (T.Json.to_string ~indent:true (T.Report.to_json report));
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" (resolve file)

(* ---- the regression guard (--compare) ---------------------------------- *)

let load_report file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Vadasa_base.Json.of_string s with
  | Error e -> Error e
  | Ok json -> T.Report.of_json json

let span_total report path =
  List.find_opt
    (fun a -> String.equal a.T.Report.agg_path path)
    report.T.Report.spans
  |> Option.map (fun a -> a.T.Report.agg_total)

(* Slowdowns smaller than this are indistinguishable from noise on
   sub-millisecond figures; they are printed but never fail the guard.
   Override with --min-delta (milliseconds). *)
let min_regression_delta = ref 0.0005

let figure_regressions : (string * float * float) list ref = ref []

(* The scaling figure gets a second, machine-relative gate: the d1/dN
   speedup ratio per workload. Wall-clock comparison across runner
   generations is noise (the loose --threshold above only catches
   catastrophes), but the speedup ratio is computed from two runs on
   the same machine in the same process, so it is stable: a change
   that reintroduces oversubscription losses (ratio collapsing below
   1) fails the gate on any host, while a multicore runner whose
   ratio exceeds the checked-in baseline passes trivially.
   [--speedup-threshold PCT] (default 25): fail when a workload's
   current speedup drops more than PCT percent below its baseline
   speedup. *)
let speedup_threshold = ref 25.0

(* A workload whose d1 leg finishes faster than this is too small for
   its speedup ratio to mean anything (a few ms of GC timing moves it
   by 2x); such workloads are printed but never gated — the same role
   [min_regression_delta] plays for the wall-clock guard. *)
let speedup_min_base_s = 0.25

let speedup_regressions : (string * float * float * float) list ref = ref []

(* [(workload, dmax, t1, d1/dmax)] for every chase.<wl>.d* span family
   in the report that has a d1 cell and at least one dN, N > 1. Span
   paths carry their enclosing-span prefix ("bench.scaling/chase.band.d1"
   when captured live, bare "chase.band.d1" in some baselines), so match
   on the component after the last '/'. *)
let scaling_speedups report =
  let families = Hashtbl.create 4 in
  List.iter
    (fun a ->
      let path = a.T.Report.agg_path in
      let leaf =
        match String.rindex_opt path '/' with
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
        | None -> path
      in
      match String.split_on_char '.' leaf with
      | [ "chase"; wl; dn ] when String.length dn > 1 && dn.[0] = 'd' -> (
        match int_of_string_opt (String.sub dn 1 (String.length dn - 1)) with
        | Some n ->
          let cells =
            match Hashtbl.find_opt families wl with Some c -> c | None -> []
          in
          Hashtbl.replace families wl ((n, a.T.Report.agg_total) :: cells)
        | None -> ())
      | _ -> ())
    report.T.Report.spans;
  Hashtbl.fold
    (fun wl cells acc ->
      match List.assoc_opt 1 cells with
      | Some t1 when t1 > 0.0 ->
        let n, tn =
          List.fold_left
            (fun (bn, bt) (n, t) -> if n > bn then (n, t) else (bn, bt))
            (1, t1) cells
        in
        if n > 1 && tn > 0.0 then (wl, n, t1, t1 /. tn) :: acc else acc
      | _ -> acc)
    families []
  |> List.sort compare

let compare_scaling_speedups ~baseline ~current =
  let base_sp = scaling_speedups baseline in
  let cur_sp = scaling_speedups current in
  if base_sp = [] then
    Printf.printf
      "  speedup: baseline has no multi-domain scaling spans (skipped)\n";
  List.iter
    (fun (wl, bn, bt1, bs) ->
      match List.find_opt (fun (w, _, _, _) -> String.equal w wl) cur_sp with
      | None ->
        Printf.printf "  speedup %-10s missing in current run (not gated)\n" wl
      | Some (_, cn, ct1, cs) ->
        let too_small = bt1 < speedup_min_base_s || ct1 < speedup_min_base_s in
        let floor = bs *. (1.0 -. (!speedup_threshold /. 100.0)) in
        let regressed = (not too_small) && cs < floor in
        Printf.printf
          "  speedup %-10s baseline %5.2fx (d1/d%d)  current %5.2fx (d1/d%d)  \
           floor %5.2fx%s\n"
          wl bs bn cs cn floor
          (if regressed then "  ** REGRESSION"
           else if too_small then "  (below gate floor, not gated)"
           else "");
        if regressed then
          speedup_regressions := (wl, bs, cs, floor) :: !speedup_regressions)
    base_sp

(* Compare the figure just run (spans still in [bench_registry]) against
   DIR/BENCH_<name>.json. The guard verdict keys on the figure's
   enclosing bench.<name> span; sub-span slowdowns are printed as
   context but do not fail the build on their own. *)
let compare_figure ~dir ~threshold name =
  let file = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
  if not (Sys.file_exists file) then
    Printf.printf "  compare: no baseline %s (skipped)\n" (resolve file)
  else
    match load_report file with
    | Error e -> Printf.printf "  compare: cannot read %s: %s\n" file e
    | Ok baseline -> (
      let current = T.Report.capture !bench_registry in
      let figure_span = "bench." ^ name in
      match (span_total baseline figure_span, span_total current figure_span) with
      | Some b, Some c when b > 0.0 ->
        let delta_pct = (c -. b) /. b *. 100.0 in
        let regressed =
          c > b *. (1.0 +. (threshold /. 100.0))
          && c -. b > !min_regression_delta
        in
        Printf.printf
          "  compare %-10s baseline %8.3f s  current %8.3f s  delta %+7.1f%%%s\n"
          name b c delta_pct
          (if regressed then "  ** REGRESSION" else "");
        List.iter
          (fun d ->
            if not (String.equal d.T.Report.d_path figure_span) then
              Printf.printf "    slower: %-44s %8.3f s -> %8.3f s\n"
                d.T.Report.d_path d.T.Report.d_baseline d.T.Report.d_current)
          (T.Report.regressions ~threshold:(threshold /. 100.0) ~baseline
             ~current ());
        if regressed then
          figure_regressions := (name, b, c) :: !figure_regressions;
        if String.equal name "scaling" then
          compare_scaling_speedups ~baseline ~current
      | _ ->
        Printf.printf "  compare: span %s missing in baseline or current run\n"
          figure_span)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = ref false in
  let json = ref true in
  let json_dir = ref "." in
  let metrics = ref false in
  let compare_dir = ref None in
  let threshold = ref 25.0 in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--full" :: rest ->
      full := true;
      parse acc rest
    | "--no-json" :: rest ->
      json := false;
      parse acc rest
    | "--json-dir" :: dir :: rest ->
      json_dir := dir;
      parse acc rest
    | "--json-dir" :: [] ->
      Printf.eprintf "--json-dir expects a directory argument\n";
      exit 2
    | "--metrics" :: rest ->
      metrics := true;
      parse acc rest
    | "--compare" :: dir :: rest ->
      compare_dir := Some dir;
      parse acc rest
    | "--compare" :: [] ->
      Printf.eprintf "--compare expects a baseline directory argument\n";
      exit 2
    | "--threshold" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 -> threshold := p
      | _ ->
        Printf.eprintf "--threshold expects a non-negative percentage\n";
        exit 2);
      parse acc rest
    | "--threshold" :: [] ->
      Printf.eprintf "--threshold expects a percentage argument\n";
      exit 2
    | "--speedup-threshold" :: pct :: rest ->
      (match float_of_string_opt pct with
      | Some p when p >= 0.0 && p <= 100.0 -> speedup_threshold := p
      | _ ->
        Printf.eprintf
          "--speedup-threshold expects a percentage in [0, 100]\n";
        exit 2);
      parse acc rest
    | "--speedup-threshold" :: [] ->
      Printf.eprintf "--speedup-threshold expects a percentage argument\n";
      exit 2
    | "--min-delta" :: ms :: rest ->
      (match float_of_string_opt ms with
      | Some m when m >= 0.0 -> min_regression_delta := m /. 1000.0
      | _ ->
        Printf.eprintf "--min-delta expects a non-negative millisecond value\n";
        exit 2);
      parse acc rest
    | "--min-delta" :: [] ->
      Printf.eprintf "--min-delta expects a millisecond argument\n";
      exit 2
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some d when d >= 1 -> max_domains := d
      | _ ->
        Printf.eprintf "--domains expects a positive integer\n";
        exit 2);
      parse acc rest
    | "--domains" :: [] ->
      Printf.eprintf "--domains expects a domain-count argument\n";
      exit 2
    | name :: rest -> parse (name :: acc) rest
  in
  let selected = parse [] args in
  if !full then scale := 1.0;
  if !metrics then T.set_enabled true;
  if !json then mkdir_p !json_dir;
  let to_run =
    match selected with
    | [] -> experiments
    | names ->
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf
              "unknown experiment %s (available: %s)\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        names
  in
  Printf.printf "Vada-SA evaluation harness (scale %.2f%s)\n" !scale
    (if !full then ", paper-size" else "; pass --full for paper sizes");
  List.iter
    (fun (name, f) ->
      (* A fresh registry per figure so each BENCH_<figure>.json report
         holds exactly that figure's spans. *)
      bench_registry := T.create ();
      extra_histograms := [];
      ignore (timed ("bench." ^ name) f);
      (* Peak-heap footprint per figure: [top_heap_words] is the
         high-water mark of the major heap since program start, so each
         figure's report records the largest heap any figure so far
         needed — still a faithful upper bound for this figure.
         [Gc.stat] rather than [Gc.quick_stat]: on this runtime the
         quick variant's aggregates only refresh at collection
         boundaries, so a figure that finishes between collections would
         report a stale (possibly zero) heap. The full [stat] walk runs
         after [timed], so it cannot skew the figure's spans. *)
      let gc = Gc.stat () in
      T.Gauge.set
        (T.Gauge.v ~registry:!bench_registry "gc.top_heap_words")
        (float_of_int gc.Gc.top_heap_words);
      T.Gauge.set
        (T.Gauge.v ~registry:!bench_registry "gc.heap_words")
        (float_of_int gc.Gc.heap_words);
      if !json then write_bench_report ~json_dir:!json_dir name;
      Option.iter
        (fun dir -> compare_figure ~dir ~threshold:!threshold name)
        !compare_dir)
    to_run;
  if !metrics then
    prerr_string (T.Report.to_text (T.Report.capture T.global));
  (match !figure_regressions with
  | [] -> ()
  | regs ->
    Printf.eprintf
      "regression guard: %d figure(s) slowed by more than %.0f%%:\n"
      (List.length regs) !threshold;
    List.iter
      (fun (name, b, c) ->
        Printf.eprintf "  %-10s %.3f s -> %.3f s (%+.1f%%)\n" name b c
          ((c -. b) /. b *. 100.0))
      (List.rev regs));
  (match !speedup_regressions with
  | [] -> ()
  | regs ->
    Printf.eprintf
      "speedup guard: %d scaling workload(s) lost more than %.0f%% of their \
       baseline d1/dN speedup:\n"
      (List.length regs) !speedup_threshold;
    List.iter
      (fun (wl, bs, cs, floor) ->
        Printf.eprintf "  %-10s %.2fx -> %.2fx (floor %.2fx)\n" wl bs cs floor)
      (List.rev regs));
  if !figure_regressions <> [] || !speedup_regressions <> [] then exit 1
