(* Minimal HTTP/1.1 on top of the Unix module: a buffered request
   parser driven by a [read] function and a deterministic response
   serializer. No chunked transfer encoding (501), no keep-alive (every
   response carries [Connection: close]) — exactly what the SDC service
   daemon needs, with hard limits on request line, header block and body
   so a misbehaving client cannot exhaust the server. *)

type meth = GET | POST | HEAD | PUT | DELETE | Other of string

let meth_of_string = function
  | "GET" -> GET
  | "POST" -> POST
  | "HEAD" -> HEAD
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | m -> Other m

let meth_to_string = function
  | GET -> "GET"
  | POST -> "POST"
  | HEAD -> "HEAD"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | Other m -> m

type request = {
  meth : meth;
  target : string;  (* raw request target, e.g. "/v1/risk?k=3" *)
  path : string;  (* decoded path component *)
  query : (string * string) list;  (* decoded, document order *)
  version : string;
  headers : (string * string) list;  (* names lowercased, document order *)
  body : string;
  mutable deadline : float option;
      (* absolute Clock time by which the response should be written;
         set by the server once the request is parsed, read by
         handlers to derive a work budget *)
}

type error =
  | Bad_request of string  (* 400 *)
  | Payload_too_large of int  (* 413; carries the limit in bytes *)
  | Not_implemented of string  (* 501 *)
  | Timeout  (* 408: the socket read deadline expired mid-request *)
  | Closed  (* peer closed before sending a complete request *)

type limits = {
  max_request_line : int;
  max_header_bytes : int;
  max_body_bytes : int;
}

let default_limits =
  {
    max_request_line = 8 * 1024;
    max_header_bytes = 64 * 1024;
    max_body_bytes = 16 * 1024 * 1024;
  }

(* ---- readers ----------------------------------------------------------- *)

type reader = bytes -> int -> int -> int

exception Read_timeout

let reader_of_fd fd : reader =
 fun buf off len ->
  try Unix.read fd buf off len with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* SO_RCVTIMEO expiry surfaces as EAGAIN. *)
    raise Read_timeout
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0

let reader_of_string s : reader =
  let pos = ref 0 in
  fun buf off len ->
    let n = min len (String.length s - !pos) in
    if n > 0 then begin
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n
    end;
    n

(* ---- percent decoding and target splitting ----------------------------- *)

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex_digit s.[!i + 1], hex_digit s.[!i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
        i := !i + 2
      | _ -> Buffer.add_char buf '%')
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let split_target target =
  let path, query_string =
    match String.index_opt target '?' with
    | None -> (target, "")
    | Some i ->
      ( String.sub target 0 i,
        String.sub target (i + 1) (String.length target - i - 1) )
  in
  let query =
    if query_string = "" then []
    else
      String.split_on_char '&' query_string
      |> List.filter_map (fun pair ->
             if pair = "" then None
             else
               match String.index_opt pair '=' with
               | None -> Some (percent_decode pair, "")
               | Some i ->
                 Some
                   ( percent_decode (String.sub pair 0 i),
                     percent_decode
                       (String.sub pair (i + 1) (String.length pair - i - 1))
                   ))
  in
  (percent_decode path, query)

(* ---- request parsing --------------------------------------------------- *)

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let query_param req name = List.assoc_opt name req.query

let trim = String.trim

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error (Bad_request ("malformed header line: " ^ line))
  | Some i ->
    let name = String.lowercase_ascii (trim (String.sub line 0 i)) in
    let value = trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" then Error (Bad_request "empty header name")
    else Ok (name, value)

let parse_request_line ~limits line =
  if String.length line > limits.max_request_line then
    Error (Bad_request "request line too long")
  else
    match String.split_on_char ' ' line with
    | [ meth; target; version ]
      when meth <> "" && target <> ""
           && (String.equal version "HTTP/1.1" || String.equal version "HTTP/1.0")
      ->
      Ok (meth_of_string meth, target, version)
    | _ -> Error (Bad_request ("malformed request line: " ^ line))

(* Index of the first "\r\n\r\n" in [s], if any. *)
let find_header_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let split_lines s =
  (* header block lines are CRLF-separated *)
  String.split_on_char '\n' s
  |> List.map (fun line ->
         let n = String.length line in
         if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)

let read_request ?(limits = default_limits) (read : reader) =
  let chunk = Bytes.create 8192 in
  let acc = Buffer.create 1024 in
  let read_more () =
    match read chunk 0 (Bytes.length chunk) with
    | exception Read_timeout -> Error Timeout
    | exception Unix.Unix_error (_, _, _) -> Error Closed
    | 0 -> Error Closed
    | n ->
      Buffer.add_subbytes acc chunk 0 n;
      Ok ()
  in
  let ( let* ) = Result.bind in
  (* 1. accumulate until the header terminator *)
  let rec fill_headers () =
    match find_header_end (Buffer.contents acc) with
    | Some i ->
      if i > limits.max_header_bytes then
        Error (Bad_request "header block too large")
      else Ok i
    | None ->
      if Buffer.length acc > limits.max_header_bytes then
        Error (Bad_request "header block too large")
      else
        let* () =
          match read_more () with
          | Error Closed when Buffer.length acc > 0 ->
            Error (Bad_request "truncated request")
          | r -> r
        in
        fill_headers ()
  in
  let* header_end = fill_headers () in
  let data = Buffer.contents acc in
  let head = String.sub data 0 header_end in
  let* request_line, header_lines =
    match split_lines head with
    | [] | [ "" ] -> Error (Bad_request "empty request")
    | line :: rest -> Ok (line, rest)
  in
  let* meth, target, version = parse_request_line ~limits request_line in
  let* headers =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        let* h = parse_header_line line in
        Ok (h :: acc))
      (Ok []) header_lines
    |> Result.map List.rev
  in
  let find name = List.assoc_opt name headers in
  let* () =
    match find "transfer-encoding" with
    | Some enc -> Error (Not_implemented ("transfer-encoding: " ^ enc))
    | None -> Ok ()
  in
  let* content_length =
    match find "content-length" with
    | None -> Ok 0
    | Some v -> (
      match int_of_string_opt (trim v) with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Bad_request ("invalid content-length: " ^ v)))
  in
  let* () =
    if content_length > limits.max_body_bytes then
      Error (Payload_too_large limits.max_body_bytes)
    else Ok ()
  in
  (* 2. the body: whatever followed the terminator, then the rest *)
  let body_start = header_end + 4 in
  let rec fill_body () =
    if Buffer.length acc - body_start >= content_length then Ok ()
    else
      let* () =
        match read_more () with
        | Error Closed -> Error (Bad_request "truncated body")
        | r -> r
      in
      fill_body ()
  in
  let* () = fill_body () in
  let body = String.sub (Buffer.contents acc) body_start content_length in
  let path, query = split_target target in
  Ok { meth; target; path; query; version; headers; body; deadline = None }

(* ---- responses --------------------------------------------------------- *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  resp_body : string;
}

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | s -> if s >= 200 && s < 300 then "OK" else "Error"

let response ?(content_type = "application/json") ?(headers = []) ~status body =
  { status; resp_headers = ("content-type", content_type) :: headers; resp_body = body }

let json_body fields = Vadasa_base.Json.to_string (Vadasa_base.Json.Obj fields)

(* Default error codes when the producer did not pick a more precise
   one — every error body carries a stable machine-readable code. *)
let code_of_status = function
  | 400 -> "http.bad_request"
  | 404 -> "http.not_found"
  | 405 -> "http.method_not_allowed"
  | 408 -> "http.timeout"
  | 413 -> "http.body_too_large"
  | 422 -> "http.invalid"
  | 501 -> "http.not_implemented"
  | 503 -> "http.unavailable"
  | _ -> "internal"

let json_error ~status ?code message =
  let code = match code with Some c -> c | None -> code_of_status status in
  response ~status
    (json_body
       [
         ( "error",
           Vadasa_base.Json.Obj
             [
               ("code", Vadasa_base.Json.Str code);
               ("message", Vadasa_base.Json.Str message);
             ] );
       ])

let error_response = function
  | Bad_request msg -> json_error ~status:400 ~code:"http.bad_request" msg
  | Payload_too_large limit ->
    json_error ~status:413 ~code:"http.body_too_large"
      (Printf.sprintf "request body exceeds the %d-byte limit" limit)
  | Not_implemented msg ->
    json_error ~status:501 ~code:"http.not_implemented" (msg ^ " not supported")
  | Timeout ->
    json_error ~status:408 ~code:"http.timeout" "timed out reading the request"
  | Closed ->
    json_error ~status:400 ~code:"http.closed" "connection closed mid-request"

let response_to_string r =
  let buf = Buffer.create (String.length r.resp_body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status (reason_phrase r.status));
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    r.resp_headers;
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length r.resp_body));
  Buffer.add_string buf "connection: close\r\n\r\n";
  Buffer.add_string buf r.resp_body;
  Buffer.contents buf

let write_response fd r =
  (* An armed [http.write:fail] simulates a client that vanished; the
     caller treats the raised typed error like a broken pipe. *)
  Vadasa_resilience.Faultpoint.hit "http.write";
  let s = response_to_string r in
  let bytes = Bytes.of_string s in
  let n = Bytes.length bytes in
  let written = ref 0 in
  (try
     while !written < n do
       written := !written + Unix.write fd bytes !written (n - !written)
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
  !written
