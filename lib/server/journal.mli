(** Append-only on-disk record journal: CRC-framed records, a single
    writer domain with group commit, torn-write-tolerant scanning.

    {!append} blocks until the record is durable (written {e and}
    fsynced): concurrent appenders are drained into one batch paying a
    single [write]+[fsync], so the journal is also the registry's way
    off the serializing per-entry lock — commits to different datasets
    ride the same batch. A batch that fails (injected
    ["journal.write"] / ["journal.fsync"] fault, or a real I/O error)
    is rolled back to the pre-batch file offset and every append in it
    raises: an append that returned committed, an append that raised
    left nothing behind.

    Record framing is [magic "VJL1" | seq:64LE | len:32LE |
    crc32:32LE | payload]. {!scan} replays a journal file without
    opening it for writing and stops at the first frame that fails the
    magic/bounds/CRC checks — a crash mid-write costs at most the
    uncommitted tail, never an earlier record. *)

type t

val open_ : ?min_next_seq:int -> path:string -> unit -> t
(** Open (or create) the journal for appending and start its writer
    domain. A torn tail left by a crash mid-write is physically cut off
    the file, so new records append contiguously after the last valid
    one. Sequence numbering continues from the highest committed record
    already in the file, or from [min_next_seq] if that is higher —
    callers whose snapshot owns sequences the journal no longer holds
    (it was truncated) pass [snapshot.last_seq + 1] so fresh records
    never collide with ones a recovery would skip. Raises [journal.io]
    on open or truncation failure. *)

val append : t -> string -> int
(** Durably append one record; returns its sequence number. Blocks for
    (at most) one group-commit round. Raises the batch failure —
    [fault.journal.write], [fault.journal.fsync] or [journal.io] — with
    the record rolled back, and [journal.closed] after {!close}. *)

val truncate : t -> unit
(** Empty the journal file (after its records were captured by a
    snapshot). Sequence numbers keep counting. *)

val last_seq : t -> int
(** Highest sequence number committed so far; 0 when none. *)

val close : t -> unit
(** Flush pending appends, join the writer domain, close the file.
    Idempotent. *)

type scan_result = {
  records : (int * string) list;  (** [(seq, payload)] in file order *)
  truncated_bytes : int;  (** torn-tail bytes discarded by the CRC check *)
  next_seq : int;  (** 1 + the highest sequence number seen *)
}

val scan : path:string -> scan_result
(** Read every intact record; a missing file is an empty journal. Never
    raises on corrupt input — the first bad frame ends the scan. *)

val crc32 : string -> int
(** The frame checksum (IEEE CRC-32), exposed for tests. *)

type counters = {
  appends : int;  (** records committed *)
  bytes : int;  (** framed bytes written by committed batches *)
  fsyncs : int;
  batches : int;  (** group commits; [appends / batches] = batch size *)
  errors : int;  (** failed (rolled-back) batches *)
}

val counters : t -> counters

val stats : t -> Vadasa_base.Json.t
