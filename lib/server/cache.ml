(* A small mutex-guarded LRU cache shared by all worker domains. Values
   are built OUTSIDE the lock (compilation / dataset loading can take
   milliseconds and must not serialize unrelated requests); a second
   check on insert keeps concurrent builders from double-publishing —
   the loser's value is discarded and the winner's returned, so every
   caller observes one canonical value per key. *)

type ('k, 'v) entry = { value : 'v; mutable last_used : int }

type ('k, 'v) t = {
  name : string;
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutex : Mutex.t;
  mutable tick : int;  (* logical clock for LRU ordering *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 64) name =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    name;
    capacity;
    table = Hashtbl.create 16;
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* caller holds the lock *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1

let find_opt t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some entry ->
        touch t entry;
        t.hits <- t.hits + 1;
        Some entry.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let insert_locked t key value =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key { value; last_used = t.tick }

let find_or_build_hit t key build =
  match find_opt t key with
  | Some v -> (v, true)
  | None ->
    (* Build outside the lock: compilation may be slow and must not
       block readers of other keys. *)
    let candidate = build key in
    let value =
      with_lock t (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some entry ->
            (* another domain won the race; keep its value *)
            touch t entry;
            entry.value
          | None ->
            insert_locked t key candidate;
            candidate)
    in
    (value, false)

let find_or_build t key build = fst (find_or_build_hit t key build)

(* Invalidation for keys whose underlying data changed (a registry
   dataset that absorbed a delta): the next lookup misses and rebuilds
   from the current data instead of serving the stale value. *)
let remove t key = with_lock t (fun () -> Hashtbl.remove t.table key)

let hits t = with_lock t (fun () -> t.hits)

let misses t = with_lock t (fun () -> t.misses)

let evictions t = with_lock t (fun () -> t.evictions)

let size t = with_lock t (fun () -> Hashtbl.length t.table)

let name t = t.name

let capacity t = t.capacity

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.tick <- 0)

let stats t =
  with_lock t (fun () ->
      Vadasa_base.Json.Obj
        [
          ("size", Vadasa_base.Json.Int (Hashtbl.length t.table));
          ("capacity", Vadasa_base.Json.Int t.capacity);
          ("hits", Vadasa_base.Json.Int t.hits);
          ("misses", Vadasa_base.Json.Int t.misses);
          ("evictions", Vadasa_base.Json.Int t.evictions);
        ])
