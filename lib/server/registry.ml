(* The persistent dataset registry: named datasets that survive across
   requests and grow by appended rows, each carrying its materialized
   SDC state — the incremental risk scorer over the live microdata and,
   when the measure is expressible as a Vadalog program, a saturated
   engine plus the fixpoint snapshot that lets the next delta continue
   the chase instead of recomputing it.

   Consistency contract: an entry only ever moves between consistent
   states. [append] validates the delta and fires the ["dataset.append"]
   fault point *before* touching any entry state; once mutation starts,
   the native path (relation + risk scorer) commits atomically under the
   entry mutex, and a chase whose incremental continuation is
   invalidated (or dies) is rebuilt from scratch over the full data —
   the entry never exposes a half-continued fixpoint. Readers and the
   single appender of an entry serialize on the per-entry mutex; the
   registry table has its own lock (never held while an entry's work
   runs).

   Evicted and deleted entries just drop: their engines are sequential
   or borrow the server's shared pool, so there is nothing to stop. *)

module E = Vadasa_base.Error
module Json = Vadasa_base.Json
module Faultpoint = Vadasa_resilience.Faultpoint
module Telemetry = Vadasa_telemetry.Telemetry
module R = Vadasa_relational
module S = Vadasa_sdc
module V = Vadasa_vadalog

type chase = {
  program : V.Program.t;  (* rules only; facts union-ed per engine *)
  strat : V.Stratify.t;
  mutable engine : V.Engine.t;
  mutable snap : V.Engine.Snapshot.t;
}

type entry = {
  id : string;
  digest : string;  (* of the base payload; makes PUT idempotent *)
  options : Codec.options;
  measure : S.Risk.measure;
  semantics : R.Null_semantics.t;
  md : S.Microdata.t;  (* the live relation; rows appended in place *)
  scorer : S.Risk.Incremental.t;
  mutable chase : chase option;
  mutable bytes : int;  (* CSV bytes accepted (base + deltas) *)
  mutable appends : int;
  mutable chase_incremental : int;  (* deltas continued from the snapshot *)
  mutable chase_rebuilds : int;  (* [Invalidated] fallbacks *)
  created_at : float;
  mutable updated_at : float;
  mu : Mutex.t;
  mutable last_used : int;  (* registry LRU tick *)
}

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  mu : Mutex.t;  (* guards [table], [tick] and the lifetime counters *)
  mutable tick : int;
  mutable evictions : int;
  mutable lifetime_appends : int;  (* survives delete/evict *)
  mutable lifetime_rebuilds : int;
  audit : (string -> unit) option;
  pool : Vadasa_base.Task_pool.t option;
  persist : Persist.t option;  (* journal+snapshot store; None = in-memory *)
}

(* [create] (at the bottom of the file) also registers the registry
   with the persistence layer; this raw constructor is everything
   else. *)
let make ?(capacity = 16) ?audit ?pool ?persist () =
  if capacity < 1 then invalid_arg "Registry.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create 16;
    mu = Mutex.create ();
    tick = 0;
    evictions = 0;
    lifetime_appends = 0;
    lifetime_rebuilds = 0;
    audit;
    pool;
    persist;
  }

(* Run [f commit_now] under the persistence layer's shared commit lock
   (a no-op without [--data-dir] and during replay): [commit_now]
   durably journals [record] — called by [f] after all validation, at
   the moment the mutation becomes inevitable, so a journal failure
   aborts with nothing applied and an acknowledged mutation is always
   recoverable. *)
let with_commit t ~record f =
  match t.persist with
  | None -> f (fun () -> ())
  | Some p -> Persist.commit p ~record f

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let not_found id =
  E.make ~code:"dataset.not_found" E.Wardedness
    (Printf.sprintf "no dataset registered under id %s" id)
    ~context:[ ("dataset", id) ]

let conflict id detail =
  E.make ~code:"dataset.conflict" E.Wardedness
    (Printf.sprintf "dataset %s: %s" id detail)
    ~context:[ ("dataset", id) ]

(* Ids appear in audit lines and URLs; keep them to a tame charset so
   neither needs escaping (metric series never carry them at all). *)
let validate_id id =
  let ok_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
    | _ -> false
  in
  if
    id = "" || String.length id > 128
    || not (String.for_all ok_char id)
    || id.[0] = '.'
  then
    E.fail ~code:"dataset.bad_id" E.Parse
      (Printf.sprintf
         "invalid dataset id %S (want 1-128 chars of [A-Za-z0-9._-], not \
          starting with a dot)"
         id)
      ~context:[ ("dataset", id) ]

(* ---- audit trail -------------------------------------------------------- *)

(* One compact JSON object per line, deterministic field order — the
   same JSONL conventions as the anonymization cycle's audit trail
   (lib/sdc/audit); the schema is documented in docs/STREAMING.md. *)
let audit_line t fields =
  match t.audit with
  | None -> ()
  | Some sink ->
    sink
      (Json.to_string
         (Json.Obj (("ts", Json.Float (Unix.gettimeofday ())) :: fields)))

(* ---- chase maintenance -------------------------------------------------- *)

let build_engine t ~program ~strat md =
  let program =
    V.Program.union program
      (V.Program.make ~facts:(S.Vadalog_bridge.microdata_facts md) [])
  in
  let engine = V.Engine.create ~strat ?pool:t.pool program in
  V.Engine.run engine;
  engine

let materialize_chase t ~program ~strat md =
  let engine = build_engine t ~program ~strat md in
  { program; strat; engine; snap = V.Engine.snapshot engine }

(* A fresh fixpoint over the entry's full current data, replacing
   whatever state the chase held (the [Invalidated] recovery path). *)
let rebuild_chase t chase md =
  let engine = build_engine t ~program:chase.program ~strat:chase.strat md in
  chase.engine <- engine;
  chase.snap <- V.Engine.snapshot engine

(* ---- registration ------------------------------------------------------- *)

type put_outcome = { entry : entry; created : bool }

(* caller holds [t.mu] *)
let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

(* caller holds [t.mu] *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun id entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (id, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (id, _) ->
    Hashtbl.remove t.table id;
    t.evictions <- t.evictions + 1

let put t ~id ~digest ~bytes ~(options : Codec.options) ~measure ~compiled
    (md : S.Microdata.t) =
  validate_id id;
  Telemetry.span "registry.put" @@ fun () ->
  (match
     with_lock t.mu (fun () ->
         match Hashtbl.find_opt t.table id with
         | Some existing ->
           touch t existing;
           Some existing
         | None -> None)
   with
  | Some existing ->
    if String.equal existing.digest digest && existing.appends = 0 then
      (* Idempotent re-PUT of the same base payload. *)
      Some { entry = existing; created = false }
    else
      raise
        (E.Error
           (conflict id
              "already registered with different content (DELETE it first)"))
  | None -> None)
  |> function
  | Some outcome -> outcome
  | None ->
    let semantics =
      Option.value
        (R.Null_semantics.of_string options.Codec.semantics)
        ~default:R.Null_semantics.Maybe_match
    in
    (* The expensive state is built before the entry is published:
       losing a PUT race below just discards this candidate. *)
    let risk = S.Risk.Incremental.create ~semantics measure md in
    let chase =
      match compiled with
      | None -> None
      | Some (program, strat) -> Some (materialize_chase t ~program ~strat md)
    in
    let now = Unix.gettimeofday () in
    let entry =
      {
        id;
        digest;
        options;
        measure;
        semantics;
        md;
        scorer = risk;
        chase;
        bytes;
        appends = 0;
        chase_incremental = 0;
        chase_rebuilds = 0;
        created_at = now;
        updated_at = now;
        mu = Mutex.create ();
        last_used = 0;
      }
    in
    let record =
      Json.Obj
        [
          ("kind", Json.Str "dataset.put");
          ("id", Json.Str id);
          ("digest", Json.Str digest);
          ("bytes", Json.Int bytes);
          ("csv", Json.Str (R.Csv.write_string (S.Microdata.relation md)));
          ("options", Codec.options_to_json options);
        ]
    in
    let outcome =
      with_commit t ~record @@ fun commit_now ->
      with_lock t.mu (fun () ->
          match Hashtbl.find_opt t.table id with
          | Some winner ->
            (* another domain registered the id while we built; their
               commit already journaled the dataset *)
            touch t winner;
            if String.equal winner.digest digest && winner.appends = 0 then
              { entry = winner; created = false }
            else
              raise
                (E.Error
                   (conflict id
                      "already registered with different content (DELETE it \
                       first)"))
          | None ->
            (* Durable before visible: the journal write happens at the
               last instant before publication, so a journal failure
               leaves no entry and a published entry is recoverable. *)
            commit_now ();
            if Hashtbl.length t.table >= t.capacity then evict_lru t;
            Hashtbl.replace t.table id entry;
            touch t entry;
            { entry; created = true })
    in
    if outcome.created then
      audit_line t
        [
          ("dataset", Json.Str id);
          ("event", Json.Str "register");
          ("rows", Json.Int (S.Microdata.cardinal md));
          ( "chase",
            Json.Str (match chase with Some _ -> "materialized" | None -> "none")
          );
        ];
    outcome

let find t id =
  with_lock t.mu (fun () ->
      match Hashtbl.find_opt t.table id with
      | Some entry ->
        touch t entry;
        Some entry
      | None -> None)

let get t id =
  match find t id with
  | Some entry -> entry
  | None -> raise (E.Error (not_found id))

let delete t id =
  let record =
    Json.Obj [ ("kind", Json.Str "dataset.delete"); ("id", Json.Str id) ]
  in
  let deleted =
    with_commit t ~record @@ fun commit_now ->
    with_lock t.mu (fun () ->
        if Hashtbl.mem t.table id then (
          commit_now ();
          Hashtbl.remove t.table id;
          true)
        else false)
  in
  if deleted then
    audit_line t [ ("dataset", Json.Str id); ("event", Json.Str "delete") ];
  deleted

let ids t =
  with_lock t.mu (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.table [])
  |> List.sort String.compare

(* ---- delta ingestion ---------------------------------------------------- *)

type append_outcome = {
  rows_added : int;
  rows_total : int;
  risk : S.Risk.Incremental.outcome;
  chase_mode : string;  (* "incremental" | "rebuild" | "none" *)
  chase_facts : int;  (* saturated database size after the append *)
}

(* Parse and validate a delta CSV against the entry's schema — pure, no
   entry state touched; every failure here leaves the dataset exactly as
   it was. The delta must carry the same header as the base document. *)
let parse_delta (entry : entry) csv =
  let rel =
    try R.Csv.read_string ~name:(S.Microdata.name entry.md) csv
    with E.Error e -> raise (E.Error { e with E.code = "dataset.bad_delta" })
  in
  let base = S.Microdata.schema entry.md in
  let got = R.Schema.attribute_names (R.Relation.schema rel) in
  let want = R.Schema.attribute_names base in
  if got <> want then
    raise
      (E.Error
         (conflict entry.id
            (Printf.sprintf
               "delta header [%s] does not match the dataset's schema [%s]"
               (String.concat ", " got)
               (String.concat ", " want))));
  rel

let append t (entry : entry) ~csv =
  Telemetry.span "registry.append" @@ fun () ->
  (* Validate outside any lock (pure), mutate inside the entry lock:
     concurrent appends to different entries never serialize on each
     other, and a validation failure leaves no state to unwind. *)
  let delta = parse_delta entry csv in
  let record =
    Json.Obj
      [
        ("kind", Json.Str "dataset.append");
        ("id", Json.Str entry.id);
        ("csv", Json.Str csv);
      ]
  in
  with_commit t ~record @@ fun commit_now ->
  with_lock entry.mu @@ fun () ->
  (* Mid-append failure injection: after validation, before any entry
     state changes — an injected fault leaves the registry at the last
     consistent fixpoint (asserted by the resilience tests). *)
  Faultpoint.hit "dataset.append";
  (* Durable before applied: journal failure aborts here, with the
     entry untouched; journal success means this delta replays even if
     the process dies before the next line executes. *)
  commit_now ();
  let rel = S.Microdata.relation entry.md in
  let lo = R.Relation.cardinal rel in
  R.Relation.iter (fun tuple -> R.Relation.add rel tuple) delta;
  let hi = R.Relation.cardinal rel in
  let risk_outcome = S.Risk.Incremental.append entry.scorer in
  let chase_mode, chase_facts =
    match entry.chase with
    | None -> ("none", 0)
    | Some chase -> (
      let continue () =
        List.iter
          (fun (pred, args) -> V.Engine.add_fact_array chase.engine pred args)
          (S.Vadalog_bridge.microdata_facts_range entry.md ~lo ~hi);
        chase.snap <- V.Engine.run_incremental ~snapshot:chase.snap chase.engine
      in
      match continue () with
      | () ->
        entry.chase_incremental <- entry.chase_incremental + 1;
        ("incremental", V.Engine.Snapshot.total chase.snap)
      | exception V.Engine.Invalidated _ ->
        (* The continuation was abandoned mid-stratum; the polluted
           engine is discarded for a fresh fixpoint over the full data. *)
        rebuild_chase t chase entry.md;
        entry.chase_rebuilds <- entry.chase_rebuilds + 1;
        ("rebuild", V.Engine.Snapshot.total chase.snap)
      | exception e ->
        (* Any other failure (fact-limit, injected engine fault): same
           recovery — the entry must never expose a half-continued
           chase. If the rebuild itself fails, the exception escapes
           with the chase dropped so no stale state survives. *)
        entry.chase <- None;
        rebuild_chase t chase entry.md;
        entry.chase <- Some chase;
        entry.chase_rebuilds <- entry.chase_rebuilds + 1;
        ignore e;
        ("rebuild", V.Engine.Snapshot.total chase.snap))
  in
  entry.appends <- entry.appends + 1;
  entry.bytes <- entry.bytes + String.length csv;
  entry.updated_at <- Unix.gettimeofday ();
  with_lock t.mu (fun () ->
      t.lifetime_appends <- t.lifetime_appends + 1;
      if chase_mode = "rebuild" then
        t.lifetime_rebuilds <- t.lifetime_rebuilds + 1);
  let outcome =
    {
      rows_added = hi - lo;
      rows_total = hi;
      risk = risk_outcome;
      chase_mode;
      chase_facts;
    }
  in
  audit_line t
    [
      ("dataset", Json.Str entry.id);
      ("event", Json.Str "append");
      ("rows_added", Json.Int outcome.rows_added);
      ("rows_total", Json.Int outcome.rows_total);
      ("rows_rescored", Json.Int risk_outcome.S.Risk.Incremental.rows_rescored);
      ( "groups_touched",
        Json.Int risk_outcome.S.Risk.Incremental.groups_touched );
      ( "risk_fallback",
        match risk_outcome.S.Risk.Incremental.fallback with
        | None -> Json.Null
        | Some f -> Json.Str (S.Risk.Incremental.fallback_to_string f) );
      ("chase", Json.Str chase_mode);
      ("chase_facts", Json.Int chase_facts);
    ];
  outcome

(* ---- introspection ------------------------------------------------------ *)

let entry_md entry = entry.md

let entry_options entry = entry.options

let entry_measure entry = entry.measure

let entry_semantics (entry : entry) = entry.semantics

let entry_report (entry : entry) =
  with_lock entry.mu (fun () -> S.Risk.Incremental.report entry.scorer)

let entry_csv (entry : entry) =
  with_lock entry.mu (fun () ->
      R.Csv.write_string (S.Microdata.relation entry.md))

let entry_md_snapshot (entry : entry) =
  with_lock entry.mu (fun () -> S.Microdata.copy entry.md)

let entry_engine entry =
  Option.map (fun chase -> chase.engine) entry.chase

let entry_json (entry : entry) =
  with_lock entry.mu (fun () ->
      Json.Obj
        [
          ("id", Json.Str entry.id);
          ("dataset", Json.Str (S.Microdata.name entry.md));
          ("rows", Json.Int (S.Microdata.cardinal entry.md));
          ("bytes", Json.Int entry.bytes);
          ("measure", Json.Str (S.Risk.measure_to_string entry.measure));
          ("threshold", Json.Float entry.options.Codec.threshold);
          ( "semantics",
            Json.Str (R.Null_semantics.to_string entry.semantics) );
          ("appends", Json.Int entry.appends);
          ( "risk_full_rescores",
            Json.Int (S.Risk.Incremental.full_rescores entry.scorer) );
          ( "chase",
            Json.Str
              (match entry.chase with
              | Some _ -> "materialized"
              | None -> "none") );
          ( "chase_facts",
            Json.Int
              (match entry.chase with
              | Some chase -> V.Engine.Snapshot.total chase.snap
              | None -> 0) );
          ("chase_incremental", Json.Int entry.chase_incremental);
          ("chase_rebuilds", Json.Int entry.chase_rebuilds);
          ("created_at", Json.Float entry.created_at);
          ("updated_at", Json.Float entry.updated_at);
        ])

type totals = {
  registered : int;
  bytes : int;
  rows : int;
  appends : int;  (* lifetime, survives delete/evict *)
  rebuilds : int;  (* lifetime *)
  evictions : int;
}

let totals t =
  let entries =
    with_lock t.mu (fun () ->
        Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  in
  let bytes, rows =
    List.fold_left
      (fun (b, r) (e : entry) -> (b + e.bytes, r + S.Microdata.cardinal e.md))
      (0, 0) entries
  in
  with_lock t.mu (fun () ->
      {
        registered = List.length entries;
        bytes;
        rows;
        appends = t.lifetime_appends;
        rebuilds = t.lifetime_rebuilds;
        evictions = t.evictions;
      })

let stats t =
  let totals = totals t in
  Json.Obj
    [
      ("registered", Json.Int totals.registered);
      ("capacity", Json.Int t.capacity);
      ("rows", Json.Int totals.rows);
      ("bytes", Json.Int totals.bytes);
      ("appends", Json.Int totals.appends);
      ("chase_rebuilds", Json.Int totals.rebuilds);
      ("evictions", Json.Int totals.evictions);
    ]

(* ---- persistence: snapshot dump/restore + journal replay ----------------- *)

let bad_record detail =
  E.Error (E.make ~code:"persist.bad_record" E.Io ("journal record: " ^ detail))

let record_string json key =
  match Option.bind (Json.member key json) Json.to_string_opt with
  | Some s -> s
  | None -> raise (bad_record ("missing string field " ^ key))

let record_int json key =
  match Option.bind (Json.member key json) Json.to_int_opt with
  | Some n -> n
  | None -> raise (bad_record ("missing int field " ^ key))

(* Recompile a measure's chase program the same way the server's PUT
   handler does (minus its cache): measures the bridge can't express
   stay native-only, exactly as they did before the crash. *)
let compile_measure measure =
  match S.Vadalog_bridge.program_of_measure measure with
  | source -> (
    match
      let program = V.Parser.parse source in
      (program, V.Stratify.compute program)
    with
    | program, strat -> Some (program, strat)
    | exception _ -> None)
  | exception S.Vadalog_bridge.Unsupported _ -> None

(* Decode the pieces a [dataset.put] needs — shared by snapshot restore
   and journal replay. The stored CSV is the canonical union document,
   so the rebuilt scorer and chase are fixpoints over exactly the rows
   the crashed process held (reports are byte-identical because
   incremental state always equals from-scratch state over the union). *)
let decode_dataset_state json =
  let options =
    match Json.member "options" json with
    | Some options_json -> (
      match Codec.options_of_json options_json with
      | Ok options -> options
      | Error e -> raise (E.Error e))
    | None -> raise (bad_record "missing options")
  in
  let measure =
    match Codec.measure_of_options options with
    | Ok m -> m
    | Error e -> raise (E.Error e)
  in
  let csv = record_string json "csv" in
  let md =
    match Codec.microdata_of_payload { Codec.csv; options } with
    | Ok md -> md
    | Error e -> raise (E.Error e)
  in
  (options, measure, md)

let dump t =
  let entries =
    with_lock t.mu (fun () ->
        Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
    (* oldest-used first, so restore re-creates the same LRU order *)
    |> List.sort (fun (a : entry) b -> compare a.last_used b.last_used)
  in
  let entry_dump (e : entry) =
    with_lock e.mu (fun () ->
        Json.Obj
          [
            ("id", Json.Str e.id);
            ("digest", Json.Str e.digest);
            ("bytes", Json.Int e.bytes);
            ("appends", Json.Int e.appends);
            ("chase_incremental", Json.Int e.chase_incremental);
            ("chase_rebuilds", Json.Int e.chase_rebuilds);
            ("created_at", Json.Float e.created_at);
            ("updated_at", Json.Float e.updated_at);
            ("csv", Json.Str (R.Csv.write_string (S.Microdata.relation e.md)));
            ("options", Codec.options_to_json e.options);
          ])
  in
  let entries_json = List.map entry_dump entries in
  with_lock t.mu (fun () ->
      Json.Obj
        [
          ("lifetime_appends", Json.Int t.lifetime_appends);
          ("lifetime_rebuilds", Json.Int t.lifetime_rebuilds);
          ("evictions", Json.Int t.evictions);
          ("entries", Json.List entries_json);
        ])

let restore_entry t json =
  let id = record_string json "id" in
  let options, measure, md = decode_dataset_state json in
  let semantics =
    Option.value
      (R.Null_semantics.of_string options.Codec.semantics)
      ~default:R.Null_semantics.Maybe_match
  in
  let scorer = S.Risk.Incremental.create ~semantics measure md in
  let chase =
    match compile_measure measure with
    | None -> None
    | Some (program, strat) -> Some (materialize_chase t ~program ~strat md)
  in
  let entry =
    {
      id;
      digest = record_string json "digest";
      options;
      measure;
      semantics;
      md;
      scorer;
      chase;
      bytes = record_int json "bytes";
      appends = record_int json "appends";
      chase_incremental = record_int json "chase_incremental";
      chase_rebuilds = record_int json "chase_rebuilds";
      created_at =
        (match Option.bind (Json.member "created_at" json) Json.to_float_opt with
        | Some f -> f
        | None -> Unix.gettimeofday ());
      updated_at =
        (match Option.bind (Json.member "updated_at" json) Json.to_float_opt with
        | Some f -> f
        | None -> Unix.gettimeofday ());
      mu = Mutex.create ();
      last_used = 0;
    }
  in
  with_lock t.mu (fun () ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table id entry;
      touch t entry)

let restore t json =
  (match Option.bind (Json.member "lifetime_appends" json) Json.to_int_opt with
  | Some n -> t.lifetime_appends <- n
  | None -> ());
  (match Option.bind (Json.member "lifetime_rebuilds" json) Json.to_int_opt with
  | Some n -> t.lifetime_rebuilds <- n
  | None -> ());
  (match Option.bind (Json.member "evictions" json) Json.to_int_opt with
  | Some n -> t.evictions <- n
  | None -> ());
  match Option.bind (Json.member "entries" json) Json.to_list_opt with
  | None -> ()
  | Some entries -> List.iter (restore_entry t) entries

(* Re-apply one journal record by re-running the public mutation it
   recorded; [Persist.replaying] makes the nested commit a no-op, so
   replay exercises exactly the code path the original request did. *)
let apply t json =
  match record_string json "kind" with
  | "dataset.put" ->
    let id = record_string json "id" in
    let options, measure, md = decode_dataset_state json in
    let compiled = compile_measure measure in
    ignore
      (put t ~id
         ~digest:(record_string json "digest")
         ~bytes:(record_int json "bytes") ~options ~measure ~compiled md)
  | "dataset.append" ->
    let entry = get t (record_string json "id") in
    ignore (append t entry ~csv:(record_string json "csv"))
  | "dataset.delete" -> ignore (delete t (record_string json "id"))
  | kind -> raise (bad_record ("unknown kind " ^ kind))

let create ?capacity ?audit ?pool ?persist () =
  let t = make ?capacity ?audit ?pool ?persist () in
  (match persist with
  | None -> ()
  | Some p ->
    Persist.register p ~section:"datasets" ~prefix:"dataset." ~dump:(fun () ->
        dump t)
      ~restore:(restore t) ~apply:(apply t));
  t
