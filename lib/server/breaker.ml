module Clock = Vadasa_base.Clock
module Json = Vadasa_base.Json

type circuit =
  | Closed of int  (* consecutive failures so far *)
  | Open of float  (* re-evaluate at this Clock time *)
  | Half_open  (* one probe in flight *)

type t = {
  threshold : int;
  cooldown : float;
  mutex : Mutex.t;
  circuits : (string, circuit) Hashtbl.t;
}

type decision = Allow | Rejected of float

let create ?(threshold = 5) ?(cooldown = 10.0) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown < 0.0 then invalid_arg "Breaker.create: cooldown must be >= 0";
  { threshold; cooldown; mutex = Mutex.create (); circuits = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let get t key =
  match Hashtbl.find_opt t.circuits key with
  | Some c -> c
  | None -> Closed 0

let check t key =
  locked t (fun () ->
      match get t key with
      | Closed _ -> Allow
      | Half_open ->
        (* a probe is already in flight; keep rejecting until it lands *)
        Rejected t.cooldown
      | Open until ->
        let now = Clock.now () in
        if now >= until then begin
          (* cooldown over: this caller becomes the half-open probe *)
          Hashtbl.replace t.circuits key Half_open;
          Allow
        end
        else Rejected (until -. now))

let success t key =
  locked t (fun () -> Hashtbl.replace t.circuits key (Closed 0))

let failure t key =
  locked t (fun () ->
      match get t key with
      | Half_open | Open _ ->
        Hashtbl.replace t.circuits key (Open (Clock.deadline_in t.cooldown))
      | Closed n ->
        let n = n + 1 in
        if n >= t.threshold then
          Hashtbl.replace t.circuits key (Open (Clock.deadline_in t.cooldown))
        else Hashtbl.replace t.circuits key (Closed n))

let render = function
  | Closed _ -> "closed"
  | Open _ -> "open"
  | Half_open -> "half_open"

let state t key = locked t (fun () -> render (get t key))

let stats t =
  locked t (fun () ->
      Hashtbl.fold
        (fun key c acc ->
          ( key,
            Json.Obj
              [
                ("state", Json.Str (render c));
                ( "consecutive_failures",
                  Json.Int (match c with Closed n -> n | _ -> t.threshold) );
              ] )
          :: acc)
        t.circuits []
      |> List.sort compare
      |> fun fields -> Json.Obj fields)
