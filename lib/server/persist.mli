(** Crash-safety for the server's durable state (`--data-dir`): one
    {!Journal} plus one atomically-renamed snapshot file, shared by
    every registered subsystem (the dataset registry, the jobs table).

    Durability contract:
    - a mutation acknowledged to a client was journaled (write-ahead,
      fsynced via group commit) {e before} it was applied;
    - a journal append that fails — injected ["journal.write"] /
      ["journal.fsync"] faults included — aborts the mutation with
      nothing applied and nothing left in the file;
    - {!recover} restores the last snapshot, then replays only journal
      records past the snapshot's sequence number (so the
      snapshot-then-truncate crash window never double-applies), and
      tolerates a torn journal tail (consistent prefix, never a
      crash).

    See docs/JOBS.md for the full recovery semantics. *)

type t

val open_ : ?snapshot_every:int -> dir:string -> unit -> t
(** Create/open the data directory (made recursively). A snapshot is
    taken every [snapshot_every] committed records (default 64) and on
    {!close}. *)

val register :
  t ->
  section:string ->
  prefix:string ->
  dump:(unit -> Vadasa_base.Json.t) ->
  restore:(Vadasa_base.Json.t -> unit) ->
  apply:(Vadasa_base.Json.t -> unit) ->
  unit
(** Attach a durable subsystem: [dump]/[restore] serialize its full
    state into the snapshot's [section]; [apply] re-applies one journal
    record whose ["kind"] field starts with [prefix]. Register every
    subsystem before {!recover}. *)

val recover : t -> unit
(** Load the snapshot (if any) through each registrant's [restore],
    then replay the journal tail through [apply]. Raises
    [persist.corrupt_snapshot] only when the snapshot file itself is
    unreadable — journal damage is tolerated, not fatal. *)

val commit : t -> record:Vadasa_base.Json.t -> ((unit -> unit) -> 'a) -> 'a
(** [commit t ~record f] runs [f commit_now] under the shared side of
    the commit/snapshot lock. [f] calls [commit_now ()] once its own
    validation passed and the mutation is inevitable: the call blocks
    until [record] is durable and raises (aborting [f]) if the journal
    rejects it. If [f] never calls [commit_now], nothing is journaled.
    During replay, [commit_now] is a no-op (records are not
    re-journaled). May take a snapshot after the commit completes. *)

val replaying : t -> bool

val snapshot : t -> unit
(** Force a snapshot now: dump all registrants (under the exclusive
    lock), write + fsync a temp file, atomically rename it over the
    previous snapshot, truncate the journal. *)

val close : t -> unit
(** Final snapshot (best-effort), then close the journal. *)

val dir : t -> string

val journal : t -> Journal.t

val stats : t -> Vadasa_base.Json.t
(** The [/metrics] JSON object (journal counters, snapshot and
    recovery accounting). *)

type recovery = {
  replayed : int;  (** journal records re-applied at boot *)
  skipped : int;  (** records that failed to re-apply (counted, not fatal) *)
  truncated : int;  (** torn-tail bytes discarded at boot *)
  snapshots : int;  (** snapshots written since open *)
}

val recovery : t -> recovery
