(** Request routing for the service daemon.

    Route paths are exact ("/v1/risk") or patterns whose [{name}]
    segments match exactly one non-empty path segment
    ("/v1/datasets/{id}"). The first route whose pattern matches wins. *)

type handler = Http.request -> Http.response

type t

val create : (Http.meth * string * handler) list -> t

val add : t -> meth:Http.meth -> path:string -> handler -> t
(** Appends a route (used by tests to graft synthetic endpoints onto the
    standard surface). *)

val routes : t -> (Http.meth * string) list

val known_path : t -> string -> bool
(** [true] when some route serves [path] (any method). *)

val endpoint_path : t -> string -> string option
(** The route pattern serving [path] (any method) — ["/v1/datasets/{id}"]
    for ["/v1/datasets/band42"]. The server keys telemetry on this so
    metric/span names only ever come from the route table, never from
    client-controlled request paths (a dataset id must not mint a new
    histogram). *)

val path_param : pattern:string -> string -> string -> string option
(** [path_param ~pattern path name] — the (percent-decoded) path segment
    bound to [{name}] when [path] is laid against [pattern];
    [path_param ~pattern:"/v1/datasets/{id}" "/v1/datasets/x%20y" "id"]
    is [Some "x y"]. *)

val dispatch : t -> Http.request -> Http.response
(** Runs the handler of the first route matching method and path; 404 on
    unknown paths, 405 (with an [allow] header) on known paths with the
    wrong method. *)
