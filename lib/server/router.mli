(** Exact-path request routing for the service daemon. *)

type handler = Http.request -> Http.response

type t

val create : (Http.meth * string * handler) list -> t

val add : t -> meth:Http.meth -> path:string -> handler -> t
(** Appends a route (used by tests to graft synthetic endpoints onto the
    standard surface). *)

val routes : t -> (Http.meth * string) list

val known_path : t -> string -> bool
(** [true] when some route serves [path] (any method). The server keys
    telemetry on this so metric/span names only ever come from the
    route table, never from client-controlled request paths. *)

val dispatch : t -> Http.request -> Http.response
(** Runs the handler of the first route matching method and path; 404 on
    unknown paths, 405 (with an [allow] header) on known paths with the
    wrong method. *)
