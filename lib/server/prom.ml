(* Low-level Prometheus exposition helpers for /metrics content
   negotiation. The telemetry library renders its own registry
   ([Telemetry.Prometheus.render]); this module covers what lives
   outside the registry — the handler request counters, cache and
   breaker statistics, and pool gauges — as labeled series, plus the
   Accept-header sniffing that selects the exposition body. Kept free
   of [Handlers]/[Server] so both can call into it. *)

let content_type = "text/plain; version=0.0.4; charset=utf-8"

(* The exposition body is chosen when the client asks for a plain-text
   or OpenMetrics media type; a bare [*/*] (curl's default) keeps the
   JSON body, so browsers and existing scrapes are unaffected.

   The Accept header is parsed, not substring-matched: entries split on
   ',', the media type is the token before the first ';', and an entry
   whose parameters carry [q=0] means "explicitly not acceptable"
   (RFC 9110 §12.4.2) — so [text/html, text/plain;q=0] keeps JSON, and
   a media type merely containing "text/plain" does not match. *)
let accept_entry_matches entry =
  match String.split_on_char ';' entry with
  | [] -> false
  | media :: params ->
    let media = String.trim media in
    let q_zero =
      List.exists
        (fun p ->
          match String.index_opt p '=' with
          | None -> false
          | Some i ->
            String.trim (String.sub p 0 i) = "q"
            &&
            let v = String.trim (String.sub p (i + 1) (String.length p - i - 1)) in
            (match float_of_string_opt v with
            | Some q -> q <= 0.0
            | None -> false))
        params
    in
    (not q_zero)
    && (media = "text/plain" || media = "application/openmetrics-text")

let wants_prometheus req =
  match Http.header req "accept" with
  | None -> false
  | Some accept ->
    String.split_on_char ',' (String.lowercase_ascii accept)
    |> List.exists accept_entry_matches

let label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let family buf ~name ~help ~typ =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (label_escape v))
           labels)
    ^ "}"

let sample_int buf ~name ?(labels = []) v =
  Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name (render_labels labels) v)

let sample_float buf ~name ?(labels = []) v =
  Buffer.add_string buf
    (Printf.sprintf "%s%s %g\n" name (render_labels labels) v)
