(* Low-level Prometheus exposition helpers for /metrics content
   negotiation. The telemetry library renders its own registry
   ([Telemetry.Prometheus.render]); this module covers what lives
   outside the registry — the handler request counters, cache and
   breaker statistics, and pool gauges — as labeled series, plus the
   Accept-header sniffing that selects the exposition body. Kept free
   of [Handlers]/[Server] so both can call into it. *)

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  nn = 0
  ||
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  at 0

(* The exposition body is chosen when the client asks for a plain-text
   or OpenMetrics media type; a bare [*/*] (curl's default) keeps the
   JSON body, so browsers and existing scrapes are unaffected. *)
let wants_prometheus req =
  match Http.header req "accept" with
  | None -> false
  | Some accept ->
    let accept = String.lowercase_ascii accept in
    contains accept "text/plain" || contains accept "openmetrics"

let label_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let family buf ~name ~help ~typ =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (label_escape v))
           labels)
    ^ "}"

let sample_int buf ~name ?(labels = []) v =
  Buffer.add_string buf (Printf.sprintf "%s%s %d\n" name (render_labels labels) v)

let sample_float buf ~name ?(labels = []) v =
  Buffer.add_string buf
    (Printf.sprintf "%s%s %g\n" name (render_labels labels) v)
