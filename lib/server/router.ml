(* Exact-path routing: the endpoint surface is small and flat, so a
   simple association list beats a radix tree. Unknown paths get 404;
   known paths with the wrong method get 405 with an Allow header. *)

type handler = Http.request -> Http.response

type t = { routes : (Http.meth * string * handler) list }

let create routes = { routes }

let add t ~meth ~path handler = { routes = t.routes @ [ (meth, path, handler) ] }

let routes t = List.map (fun (m, p, _) -> (m, p)) t.routes

let known_path t path =
  List.exists (fun (_, p, _) -> String.equal p path) t.routes

let dispatch t (req : Http.request) =
  let matching_path =
    List.filter (fun (_, path, _) -> String.equal path req.path) t.routes
  in
  match
    List.find_opt (fun (meth, _, _) -> meth = req.meth) matching_path
  with
  | Some (_, _, handler) -> handler req
  | None -> (
    match matching_path with
    | [] ->
      Http.json_error ~status:404 ~code:"http.not_found"
        (Printf.sprintf "no such endpoint: %s" req.path)
    | methods ->
      let allow =
        String.concat ", "
          (List.map (fun (m, _, _) -> Http.meth_to_string m) methods)
      in
      {
        (Http.json_error ~status:405 ~code:"http.method_not_allowed"
           (Printf.sprintf "%s not allowed on %s (allow: %s)"
              (Http.meth_to_string req.meth) req.path allow))
        with
        Http.resp_headers = [ ("content-type", "application/json"); ("allow", allow) ];
      })
