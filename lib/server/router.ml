(* Path routing: the endpoint surface is small and flat, so a simple
   association list beats a radix tree. Route paths are either exact
   ("/v1/risk") or patterns with parameter segments ("/v1/datasets/{id}"):
   a [{name}] segment matches exactly one non-empty path segment. Unknown
   paths get 404; known paths with the wrong method get 405 with an
   Allow header.

   Patterns exist for the dataset registry's per-resource endpoints; the
   pattern string — not the concrete request path — is what telemetry
   keys on ([endpoint_path]), so client-chosen dataset ids never mint
   new metric or span names. *)

type handler = Http.request -> Http.response

type t = { routes : (Http.meth * string * handler) list }

let create routes = { routes }

let add t ~meth ~path handler = { routes = t.routes @ [ (meth, path, handler) ] }

let routes t = List.map (fun (m, p, _) -> (m, p)) t.routes

let segments path = List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let is_param seg =
  String.length seg >= 2 && seg.[0] = '{' && seg.[String.length seg - 1] = '}'

(* [matches pattern path]: segment-wise equality, with [{name}] pattern
   segments matching any single non-empty segment. *)
let matches pattern path =
  let rec go = function
    | [], [] -> true
    | p :: ps, s :: ss -> (is_param p || String.equal p s) && go (ps, ss)
    | _ -> false
  in
  if String.contains pattern '{' then go (segments pattern, segments path)
  else String.equal pattern path

let endpoint_path t path =
  List.find_map
    (fun (_, pattern, _) -> if matches pattern path then Some pattern else None)
    t.routes

let known_path t path = Option.is_some (endpoint_path t path)

let path_param ~pattern path name =
  let target = "{" ^ name ^ "}" in
  let rec go = function
    | p :: _, s :: _ when String.equal p target -> Some (Http.percent_decode s)
    | _ :: ps, _ :: ss -> go (ps, ss)
    | _ -> None
  in
  go (segments pattern, segments path)

let dispatch t (req : Http.request) =
  let matching_path =
    List.filter (fun (_, pattern, _) -> matches pattern req.path) t.routes
  in
  match
    List.find_opt (fun (meth, _, _) -> meth = req.meth) matching_path
  with
  | Some (_, _, handler) -> handler req
  | None -> (
    match matching_path with
    | [] ->
      Http.json_error ~status:404 ~code:"http.not_found"
        (Printf.sprintf "no such endpoint: %s" req.path)
    | methods ->
      let allow =
        String.concat ", "
          (List.map (fun (m, _, _) -> Http.meth_to_string m) methods)
      in
      {
        (Http.json_error ~status:405 ~code:"http.method_not_allowed"
           (Printf.sprintf "%s not allowed on %s (allow: %s)"
              (Http.meth_to_string req.meth) req.path allow))
        with
        Http.resp_headers = [ ("content-type", "application/json"); ("allow", allow) ];
      })
