(* The crash-safety layer under `vadasa serve --data-dir`: one journal
   plus one snapshot file shared by every durable subsystem (the
   dataset registry, the jobs table).

   Write path (write-ahead): a mutator calls [commit ~record f]; [f]
   receives a [commit_now] thunk it calls after its own validation and
   fault points, at the exact moment the mutation becomes inevitable —
   [commit_now] blocks until the record is durable (group-committed
   with whatever else is in flight), so an acknowledged mutation is
   always recoverable and a failed journal write aborts before any
   state changed.

   Snapshot path: every [snapshot_every] committed records the full
   state (each registrant's [dump]) is serialized to a temp file,
   fsynced, atomically renamed over the previous snapshot, and the
   journal is truncated. Crash windows are covered by sequence
   numbers: the snapshot stores the last sequence it contains, and
   replay skips journal records at or below it — a crash between
   rename and truncate replays nothing twice.

   The commit/snapshot race is settled by a readers-writer lock:
   commits (journal append + in-memory mutation, both inside [f]) hold
   it shared, a snapshot holds it exclusive — so a snapshot never
   observes a mutation whose record it doesn't own, and never misses
   one it claims. Lock order is persist-shared -> registry/entry
   mutexes; the snapshot's [dump] callbacks may take those mutexes
   because no commit holds them while waiting for the exclusive
   lock. *)

module E = Vadasa_base.Error
module Json = Vadasa_base.Json

type registrant = {
  section : string;  (* snapshot key *)
  prefix : string;  (* journal record "kind" prefix, e.g. "dataset." *)
  dump : unit -> Json.t;
  restore : Json.t -> unit;
  apply : Json.t -> unit;
}

type t = {
  dir : string;
  journal : Journal.t;
  snapshot_every : int;
  mutable registrants : registrant list;
  (* readers-writer lock for commit (shared) vs snapshot (exclusive) *)
  lk : Mutex.t;
  lk_cond : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable writer_waiting : int;
  (* accounting, guarded by [lk] *)
  mutable since_snapshot : int;
  mutable snapshots : int;
  mutable replaying : bool;
  mutable replayed_records : int;
  mutable skipped_records : int;
  mutable truncated_bytes : int;
  mutable snapshot_seq : int;  (* last_seq the boot snapshot covered *)
}

let journal_path dir = Filename.concat dir "registry.journal"

let snapshot_path dir = Filename.concat dir "registry.snapshot"

(* Best-effort read of the snapshot's last_seq, for seeding the
   journal's counter at open time: after a snapshot truncates the
   journal, the file alone says "start at 1", but seq <= last_seq is
   the replay skip rule — fresh records numbered below it would be
   silently dropped by the next recovery. Corrupt or missing snapshots
   answer 0 here and fail properly in [recover]. *)
let snapshot_last_seq dir =
  match open_in_bin (snapshot_path dir) with
  | exception Sys_error _ -> 0
  | ic -> (
    let raw =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string raw with
    | Error _ -> 0
    | Ok json -> (
      match Option.bind (Json.member "last_seq" json) Json.to_int_opt with
      | Some n -> n
      | None -> 0))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(snapshot_every = 64) ~dir () =
  if snapshot_every < 1 then
    invalid_arg "Persist.open_: snapshot_every must be >= 1";
  mkdir_p dir;
  {
    dir;
    journal =
      Journal.open_
        ~min_next_seq:(snapshot_last_seq dir + 1)
        ~path:(journal_path dir) ();
    snapshot_every;
    registrants = [];
    lk = Mutex.create ();
    lk_cond = Condition.create ();
    readers = 0;
    writer = false;
    writer_waiting = 0;
    since_snapshot = 0;
    snapshots = 0;
    replaying = false;
    replayed_records = 0;
    skipped_records = 0;
    truncated_bytes = 0;
    snapshot_seq = 0;
  }

let dir t = t.dir

let register t ~section ~prefix ~dump ~restore ~apply =
  t.registrants <-
    t.registrants @ [ { section; prefix; dump; restore; apply } ]

let replaying t = t.replaying

(* ---- readers-writer lock ------------------------------------------------- *)

let shared_acquire t =
  Mutex.lock t.lk;
  while t.writer || t.writer_waiting > 0 do
    Condition.wait t.lk_cond t.lk
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.lk

let shared_release t =
  Mutex.lock t.lk;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.lk_cond;
  Mutex.unlock t.lk

let exclusive_acquire t =
  Mutex.lock t.lk;
  t.writer_waiting <- t.writer_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.lk_cond t.lk
  done;
  t.writer_waiting <- t.writer_waiting - 1;
  t.writer <- true;
  Mutex.unlock t.lk

let exclusive_release t =
  Mutex.lock t.lk;
  t.writer <- false;
  Condition.broadcast t.lk_cond;
  Mutex.unlock t.lk

(* ---- snapshot ------------------------------------------------------------ *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* caller holds the exclusive lock *)
let write_snapshot t =
  let state =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("last_seq", Json.Int (Journal.last_seq t.journal));
        ( "sections",
          Json.Obj
            (List.map (fun r -> (r.section, r.dump ())) t.registrants) );
      ]
  in
  let tmp = snapshot_path t.dir ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let raw = Bytes.of_string (Json.to_string state) in
      let off = ref 0 in
      while !off < Bytes.length raw do
        off := !off + Unix.write fd raw !off (Bytes.length raw - !off)
      done;
      Unix.fsync fd);
  Unix.rename tmp (snapshot_path t.dir);
  fsync_dir t.dir;
  Journal.truncate t.journal;
  Mutex.lock t.lk;
  t.since_snapshot <- 0;
  t.snapshots <- t.snapshots + 1;
  Mutex.unlock t.lk

let snapshot t =
  exclusive_acquire t;
  Fun.protect
    ~finally:(fun () -> exclusive_release t)
    (fun () -> write_snapshot t)

let maybe_snapshot t =
  let due =
    Mutex.lock t.lk;
    let d = t.since_snapshot >= t.snapshot_every in
    Mutex.unlock t.lk;
    d
  in
  if due then
    (* Best-effort: a failed snapshot leaves the journal authoritative
       (it still holds every record), so durability is unaffected. *)
    try snapshot t with E.Error _ | Unix.Unix_error _ | Sys_error _ -> ()

(* ---- commit -------------------------------------------------------------- *)

let commit t ~record f =
  if t.replaying then f (fun () -> ())
  else begin
    shared_acquire t;
    let committed = ref false in
    let result =
      Fun.protect
        ~finally:(fun () -> shared_release t)
        (fun () ->
          f (fun () ->
              ignore (Journal.append t.journal (Json.to_string record));
              committed := true))
    in
    if !committed then begin
      Mutex.lock t.lk;
      t.since_snapshot <- t.since_snapshot + 1;
      Mutex.unlock t.lk;
      maybe_snapshot t
    end;
    result
  end

(* ---- boot-time recovery -------------------------------------------------- *)

let corrupt detail =
  E.Error
    (E.make ~code:"persist.corrupt_snapshot" E.Io
       ("cannot load snapshot: " ^ detail))

let recover t =
  let snap_last_seq =
    match open_in_bin (snapshot_path t.dir) with
    | exception Sys_error _ -> 0
    | ic ->
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let json =
        match Json.of_string raw with
        | Ok json -> json
        | Error msg -> raise (corrupt msg)
      in
      let last_seq =
        match Option.bind (Json.member "last_seq" json) Json.to_int_opt with
        | Some n -> n
        | None -> raise (corrupt "missing last_seq")
      in
      (match Json.member "sections" json with
      | Some (Json.Obj sections) ->
        List.iter
          (fun r ->
            match List.assoc_opt r.section sections with
            | Some section_json -> r.restore section_json
            | None -> ())
          t.registrants
      | _ -> ());
      last_seq
  in
  t.snapshot_seq <- snap_last_seq;
  let { Journal.records; truncated_bytes; _ } =
    Journal.scan ~path:(journal_path t.dir)
  in
  t.truncated_bytes <- truncated_bytes;
  t.replaying <- true;
  Fun.protect
    ~finally:(fun () -> t.replaying <- false)
    (fun () ->
      List.iter
        (fun (seq, payload) ->
          if seq > snap_last_seq then
            match Json.of_string payload with
            | Error _ -> t.skipped_records <- t.skipped_records + 1
            | Ok json -> (
              let kind =
                match Json.member "kind" json with
                | Some (Json.Str k) -> k
                | _ -> ""
              in
              match
                List.find_opt
                  (fun r -> String.starts_with ~prefix:r.prefix kind)
                  t.registrants
              with
              | None -> t.skipped_records <- t.skipped_records + 1
              | Some r -> (
                (* A record that fails to re-apply (e.g. it referenced
                   state a later record deleted in a way replay can't
                   reorder) is counted and skipped: replay always
                   terminates with a consistent prefix state. *)
                match r.apply json with
                | () -> t.replayed_records <- t.replayed_records + 1
                | exception E.Error _ ->
                  t.skipped_records <- t.skipped_records + 1)))
        records)

let close t =
  (try snapshot t with E.Error _ | Unix.Unix_error _ | Sys_error _ -> ());
  Journal.close t.journal

let journal t = t.journal

let stats t =
  Mutex.lock t.lk;
  let snapshots = t.snapshots
  and since = t.since_snapshot
  and replayed = t.replayed_records
  and skipped = t.skipped_records
  and truncated = t.truncated_bytes in
  Mutex.unlock t.lk;
  Json.Obj
    [
      ("dir", Json.Str t.dir);
      ("journal", Journal.stats t.journal);
      ("snapshots", Json.Int snapshots);
      ("since_snapshot", Json.Int since);
      ("snapshot_every", Json.Int t.snapshot_every);
      ("replayed_records", Json.Int replayed);
      ("skipped_records", Json.Int skipped);
      ("truncated_bytes", Json.Int truncated);
    ]

type recovery = {
  replayed : int;
  skipped : int;
  truncated : int;
  snapshots : int;
}

let recovery t =
  Mutex.lock t.lk;
  let r =
    {
      replayed = t.replayed_records;
      skipped = t.skipped_records;
      truncated = t.truncated_bytes;
      snapshots = t.snapshots;
    }
  in
  Mutex.unlock t.lk;
  r
