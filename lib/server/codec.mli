(** Request decoding and canonical JSON rendering of SDC results.

    {!risk_report_string} is shared with the CLI's [risk --json], which
    makes server responses byte-identical to CLI output for the same
    input — the CI smoke job byte-compares the two. *)

type options = {
  name : string;
  measure : string;
  k : int;
  threshold : float;
  msu_threshold : int;
  categories : (string * string) list;
  reasoned : bool;
  method_ : string;
  semantics : string;
}

val default_options : options

type payload = { csv : string; options : options }

val parse_payload : Http.request -> (payload, string) result
(** [application/json] bodies carry [{"csv": "...", ...options}];
    [text/csv] (or untyped) bodies are the CSV itself with options in the
    query string ([measure], [k], [threshold], [msu-threshold],
    [category=attr=cat] repeatable, [reasoned=true], [method],
    [semantics], [name]). *)

val measure_of_options : options -> (Vadasa_sdc.Risk.measure, string) result

val microdata_of_payload :
  payload -> (Vadasa_sdc.Microdata.t, string) result
(** CSV → relation → categorized microdata (expert overrides honoured). *)

val risk_report_json :
  threshold:float ->
  Vadasa_sdc.Microdata.t ->
  Vadasa_sdc.Risk.report ->
  Vadasa_base.Json.t

val risk_report_string :
  threshold:float -> Vadasa_sdc.Microdata.t -> Vadasa_sdc.Risk.report -> string
(** Indented JSON plus trailing newline — the canonical rendering used
    verbatim by both the CLI and the server. *)

val anonymize_outcome_json :
  Vadasa_sdc.Microdata.t -> Vadasa_sdc.Cycle.outcome -> Vadasa_base.Json.t
(** Outcome counters plus the anonymized relation as a [csv] field. *)

val categorize_result_json : Vadasa_sdc.Categorize.result -> Vadasa_base.Json.t

val reason_json :
  cached:bool ->
  warded:bool ->
  threshold:float ->
  Vadasa_sdc.Microdata.t ->
  float array ->
  Vadasa_base.Json.t
(** Reasoned-path risk report; [cached] reports whether the compiled
    program came from the program cache, [warded] the static wardedness
    verdict cached alongside it. *)
