(** Request decoding, typed-error HTTP mapping, and canonical JSON
    rendering of SDC results.

    {!risk_report_string} is shared with the CLI's [risk --json], which
    makes server responses byte-identical to CLI output for the same
    input — the CI smoke job byte-compares the two. Decoding failures
    are {!Vadasa_base.Error.t} values; {!status_of_category} maps their
    category to an HTTP status and {!response_of_error} renders the
    machine-readable error body. *)

type options = {
  name : string;
  measure : string;
  k : int;
  threshold : float;
  msu_threshold : int;
  categories : (string * string) list;
  reasoned : bool;
  method_ : string;
  semantics : string;
  budget_ms : int option;
      (** per-request chase/cycle wall-clock budget (query [budget-ms],
          JSON [budget_ms]) *)
  max_facts : int option;
      (** per-request derived-fact ceiling (query [max-facts], JSON
          [max_facts]) *)
  audit : bool;
      (** anonymize: embed the per-round audit trail in the response
          (query [audit=true], JSON [audit]) *)
}

val default_options : options

val options_to_json : options -> Vadasa_base.Json.t
(** The exact inverse of the JSON-body options decoding (same field
    names): what the registry journal records so replay rebuilds
    identical state, and what job submissions echo back. *)

val options_of_json :
  Vadasa_base.Json.t -> (options, Vadasa_base.Error.t) result
(** Decode options from a JSON object (the [application/json] body
    fields; unknown fields ignored, missing fields defaulted). *)

type payload = { csv : string; options : options }

val parse_payload : Http.request -> (payload, Vadasa_base.Error.t) result
(** [application/json] bodies carry [{"csv": "...", ...options}];
    [text/csv] (or untyped) bodies are the CSV itself with options in the
    query string ([measure], [k], [threshold], [msu-threshold],
    [category=attr=cat] repeatable, [reasoned=true], [method],
    [semantics], [name], [budget-ms], [max-facts]). All failures are
    [Parse]-category errors (HTTP 400): [json.invalid],
    [request.missing_csv], [request.bad_field], [request.bad_param],
    [request.empty_body], [request.unsupported_media]. *)

val measure_of_options :
  options -> (Vadasa_sdc.Risk.measure, Vadasa_base.Error.t) result
(** [measure.unknown] (Wardedness, 422) for unrecognized measures. *)

val parse_fact :
  string ->
  (string * Vadasa_base.Value.t array, Vadasa_base.Error.t) result
(** A ground fact in Vadalog syntax — ["p(a, 1)"], trailing dot
    optional — parsed with the program parser so the accepted value
    syntax matches programs exactly. [fact.invalid] (Parse, 400) on
    anything that is not exactly one ground fact. *)

type explain_request = {
  explain_program : string;
  explain_pred : string;
  explain_args : Vadasa_base.Value.t array;
  explain_max_depth : int option;
  explain_budget_ms : int option;
  explain_max_facts : int option;
}
(** [POST /v1/explain]'s decoded body: the Vadalog program text, the
    fact to explain, and optional depth/budget bounds. *)

val parse_explain_payload :
  Http.request -> (explain_request, Vadasa_base.Error.t) result
(** JSON bodies only: [{"program": "...", "fact": "p(a, 1)",
    "max_depth"?, "budget_ms"?, "max_facts"?}]. Failures are Parse
    errors: [json.invalid], [request.missing_program],
    [request.missing_fact], [request.bad_field], [fact.invalid],
    [request.unsupported_media]. *)

val explain_string : Vadasa_vadalog.Provenance.t -> string
(** Indented {!Vadasa_vadalog.Provenance.to_json} plus trailing newline
    — the canonical rendering used verbatim by both [vadasa explain
    --json] and [POST /v1/explain]. *)

val microdata_of_payload :
  payload -> (Vadasa_sdc.Microdata.t, Vadasa_base.Error.t) result
(** CSV → relation → categorized microdata (expert overrides honoured).
    Propagates the CSV reader's typed errors ([csv.ragged_row], …) and
    adds [category.unknown] / [categorize.failed] (both Wardedness). *)

val status_of_category : Vadasa_base.Error.category -> int
(** Parse → 400, Wardedness → 422, Resource → 503, Io → 500,
    Internal → 500. *)

val status_of_error : Vadasa_base.Error.t -> int
(** {!status_of_category} of the error's category, except the registry
    and jobs codes the lattice can't express: [dataset.not_found] /
    [job.not_found] → 404, [dataset.conflict] → 409,
    [tenant.quota_exceeded] / [tenant.rate_limited] → 429. *)

val error_of_exn : exn -> Vadasa_base.Error.t
(** Total mapping of escaped exceptions to the taxonomy:
    [Vadasa_base.Error.Error] passes through; parser/lexer/stratifier
    failures become [program.*] (Wardedness); [Engine.Limit] becomes
    [engine.limit] (Resource); [Vadalog_bridge.Unsupported] becomes
    [measure.unsupported] (Wardedness); [Unix_error] becomes [io.unix];
    everything else lands in [internal.*]. *)

val response_of_error : Vadasa_base.Error.t -> Http.response
(** [{"error": {"code", "category", "message", "context"}}] with the
    status from {!status_of_error}. An error carrying a
    [retry_after_s] context pair (quota / rate-limit / queue-full
    rejections) additionally gets a real [Retry-After] header — the
    same convention as the circuit breaker's 503. *)

val risk_report_json :
  threshold:float ->
  Vadasa_sdc.Microdata.t ->
  Vadasa_sdc.Risk.report ->
  Vadasa_base.Json.t

val risk_report_string :
  threshold:float -> Vadasa_sdc.Microdata.t -> Vadasa_sdc.Risk.report -> string
(** Indented JSON plus trailing newline — the canonical rendering used
    verbatim by both the CLI and the server. *)

val interrupt_json : Vadasa_vadalog.Engine.interrupt -> Vadasa_base.Json.t
(** [{"reason", "stratum", "iteration", "facts_derived"}] — the partial
    progress carried by a degraded response. *)

val risk_report_degraded_string :
  threshold:float ->
  Vadasa_sdc.Microdata.t ->
  Vadasa_sdc.Risk.report ->
  Vadasa_vadalog.Engine.interrupt ->
  string
(** {!risk_report_string}'s fields followed by ["degraded": true] and a
    ["partial"] object — the baseline prefix is byte-identical to the
    unbudgeted rendering. *)

val anonymize_outcome_json :
  ?audit:Vadasa_sdc.Audit.event list ->
  Vadasa_sdc.Microdata.t ->
  Vadasa_sdc.Cycle.outcome ->
  Vadasa_base.Json.t
(** Outcome counters plus the anonymized relation as a [csv] field.
    [audit] appends the per-round trail as an ["audit"] list (the same
    event objects the CLI's [--audit] JSONL holds). When the cycle was
    interrupted by its budget, appends ["degraded": true] and
    ["interrupt_reason"]. *)

val categorize_result_json : Vadasa_sdc.Categorize.result -> Vadasa_base.Json.t

val reason_json :
  ?interrupt:Vadasa_vadalog.Engine.interrupt ->
  cached:bool ->
  warded:bool ->
  threshold:float ->
  Vadasa_sdc.Microdata.t ->
  float array ->
  Vadasa_base.Json.t
(** Reasoned-path risk report; [cached] reports whether the compiled
    program came from the program cache, [warded] the static wardedness
    verdict cached alongside it. [interrupt] marks a chase cut short by
    its budget: the risks rendered are the partial decode and the body
    carries ["degraded": true]. *)
