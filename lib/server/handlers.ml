(* The service endpoints, wired over the two shared caches.

   [compiled] is the program cache's value: parse, stratification and
   wardedness analysis are done once per distinct program text; a cache
   hit hands the engine a ready [Stratify.t] so repeat requests skip the
   whole front end ([Program.union] with a facts-only program keeps rule
   ids stable, which is what makes the cached stratification valid).

   The dataset cache keys on a digest of the CSV body plus the category
   overrides: repeat POSTs of the same document reuse the categorized
   microdata (loading and categorization dominate small requests).
   Handlers only read cached microdata — [Cycle.run] transforms a copy —
   so sharing one value across worker domains is safe.

   Failure paths are typed: every error a handler produces is a
   [Vadasa_base.Error.t] (raised as [Error.Error] or mapped from an
   escaped exception by [Codec.error_of_exn]) and renders through
   [Codec.response_of_error], so every non-2xx body carries a stable
   [error.code]. Engine work runs under a [Budget] derived from the
   request deadline and the request's [budget_ms]/[max_facts] options;
   an interrupted chase degrades to a partial 200 instead of failing. *)

module Json = Vadasa_base.Json
module E = Vadasa_base.Error
module Budget = Vadasa_base.Budget
module Faultpoint = Vadasa_resilience.Faultpoint
module Telemetry = Vadasa_telemetry.Telemetry
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

type compiled = {
  program : V.Program.t;
  strat : V.Stratify.t;
  warded : bool;
}

type t = {
  programs : (string, compiled) Cache.t;
  datasets : (string, S.Microdata.t) Cache.t;
  breaker : Breaker.t;
  default_max_facts : int option;  (* server-wide derived-fact ceiling *)
  engine_pool : Vadasa_base.Task_pool.t option;
      (* shared chase worker pool: every request's engine borrows it, so
         M request domains compose with K engine workers without
         spawning per request (no oversubscription) *)
  started_at : float;
  counters : (string, int) Hashtbl.t;  (* "METHOD path status" -> count *)
  counters_mutex : Mutex.t;
}

let create ?(program_capacity = 64) ?(dataset_capacity = 16)
    ?breaker_threshold ?breaker_cooldown ?default_max_facts ?engine_pool () =
  {
    programs = Cache.create ~capacity:program_capacity "programs";
    datasets = Cache.create ~capacity:dataset_capacity "datasets";
    breaker =
      Breaker.create ?threshold:breaker_threshold ?cooldown:breaker_cooldown ();
    default_max_facts;
    engine_pool;
    started_at = Unix.gettimeofday ();
    counters = Hashtbl.create 16;
    counters_mutex = Mutex.create ();
  }

let count t (req : Http.request) (resp : Http.response) =
  let key =
    Printf.sprintf "%s %s %d" (Http.meth_to_string req.Http.meth) req.Http.path
      resp.Http.status
  in
  Mutex.lock t.counters_mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.counters key) in
  Hashtbl.replace t.counters key (n + 1);
  Mutex.unlock t.counters_mutex

let request_counts t =
  Mutex.lock t.counters_mutex;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] in
  Mutex.unlock t.counters_mutex;
  List.sort compare entries

let programs t = t.programs

let datasets t = t.datasets

let breaker t = t.breaker

(* ---- shared steps ------------------------------------------------------- *)

let dataset_key (payload : Codec.payload) =
  let open Codec in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (payload.options.name :: payload.csv
          :: List.concat_map
               (fun (a, c) -> [ a; c ])
               payload.options.categories)))

let ok_or_raise = function Ok v -> v | Error e -> raise (E.Error e)

(* The per-request work budget: the earlier of the response deadline the
   server stamped on the request and the client's own [budget_ms],
   capped by [max_facts]. [None] only when no constraint applies. *)
let budget_of (req : Http.request) (options : Codec.options) =
  let deadline_in =
    Option.map (fun ms -> float_of_int ms /. 1000.0) options.Codec.budget_ms
  in
  match (req.Http.deadline, deadline_in, options.Codec.max_facts) with
  | None, None, None -> None
  | deadline, deadline_in, max_facts ->
    Some (Budget.create ?deadline ?deadline_in ?max_facts ())

(* [budget_of] plus the server-wide fact ceiling ([serve --max-facts])
   when the request didn't bring its own. *)
let budget_for t req (options : Codec.options) =
  let options =
    match options.Codec.max_facts with
    | Some _ -> options
    | None -> { options with Codec.max_facts = t.default_max_facts }
  in
  budget_of req options

let microdata_for t payload =
  let key = dataset_key payload in
  (* The builder can fail (bad CSV, unresolved attributes); failures
     escape as [Error.Error] and are not cached. *)
  Cache.find_or_build t.datasets key (fun _ ->
      ok_or_raise (Codec.microdata_of_payload payload))

let payload_of_request req = ok_or_raise (Codec.parse_payload req)

let measure_of_options options = ok_or_raise (Codec.measure_of_options options)

let compile t source =
  Cache.find_or_build_hit t.programs source (fun src ->
      (* Parser/lexer/stratifier failures escape as typed [program.*]
         errors via [Codec.error_of_exn] in the guard. *)
      let program = V.Parser.parse src in
      {
        program;
        strat = V.Stratify.compute program;
        warded = V.Wardedness.is_warded program;
      })

(* ---- endpoints ---------------------------------------------------------- *)

let healthz t _req =
  Http.response ~status:200
    (Json.to_string
       (Json.Obj
          [
            ("status", Json.Str "ok");
            ( "uptime_s",
              Json.Float (Unix.gettimeofday () -. t.started_at) );
          ]))

let risk t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let threshold = options.Codec.threshold in
  let report = S.Risk.estimate measure md in
  if not options.Codec.reasoned then
    (* The exact string the CLI's [risk --json] prints: byte-identical. *)
    Http.response ~status:200 (Codec.risk_report_string ~threshold md report)
  else
    (* Reasoned cross-check: run the measure's program on the engine
       under the request budget. A chase cut short by the budget
       degrades to the native report plus partial-progress markers —
       still a 200, never a timeout error. *)
    match
      S.Vadalog_bridge.risk_via_engine ?budget:(budget_for t req options)
        ?pool:t.engine_pool ~threshold measure md
    with
    | _engine_risks ->
      Http.response ~status:200 (Codec.risk_report_string ~threshold md report)
    | exception V.Engine.Interrupted interrupt ->
      Http.response ~status:200
        (Codec.risk_report_degraded_string ~threshold md report interrupt)

let anonymize t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let semantics =
    match
      Vadasa_relational.Null_semantics.of_string options.Codec.semantics
    with
    | Some s -> s
    | None ->
      E.fail ~code:"semantics.unknown" E.Wardedness
        ("unknown semantics " ^ options.Codec.semantics)
        ~context:[ ("semantics", options.Codec.semantics) ]
  in
  let method_ =
    match options.Codec.method_ with
    | "suppress" -> S.Cycle.Local_suppression
    | "recode" ->
      S.Cycle.Recode_then_suppress (D.Generator.synthetic_hierarchy md)
    | other ->
      E.fail ~code:"method.unknown" E.Wardedness ("unknown method " ^ other)
        ~context:[ ("method", other) ]
  in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure;
      threshold = options.Codec.threshold;
      semantics;
      method_;
    }
  in
  let recorder = if options.Codec.audit then Some (S.Audit.recorder ()) else None in
  let outcome =
    S.Cycle.run ~config ?audit:recorder ?budget:(budget_for t req options) md
  in
  let audit = Option.map S.Audit.events recorder in
  Http.response ~status:200
    (Json.to_string ~indent:true (Codec.anonymize_outcome_json ?audit md outcome)
    ^ "\n")

(* Program + fact -> derivation tree. The program compiles through the
   same cache as /v1/reason; the chase runs under the request budget. A
   budget-cut chase may simply not have derived the fact yet — the 422
   then names the interruption so the client can tell "never derivable"
   from "ran out of budget". *)
let explain t req =
  let er = ok_or_raise (Codec.parse_explain_payload req) in
  let compiled, _cached = compile t er.Codec.explain_program in
  let engine =
    V.Engine.create ~strat:compiled.strat ?pool:t.engine_pool
      compiled.program
  in
  let budget =
    budget_for t req
      {
        Codec.default_options with
        Codec.budget_ms = er.Codec.explain_budget_ms;
        max_facts = er.Codec.explain_max_facts;
      }
  in
  let interrupted =
    match V.Engine.run ?budget engine with
    | () -> false
    | exception V.Engine.Interrupted _ -> true
  in
  match
    V.Engine.explain ?max_depth:er.Codec.explain_max_depth engine
      er.Codec.explain_pred er.Codec.explain_args
  with
  | Some tree -> Http.response ~status:200 (Codec.explain_string tree)
  | None ->
    let fact =
      er.Codec.explain_pred ^ "("
      ^ String.concat ", "
          (Array.to_list
             (Array.map Vadasa_base.Value.to_string er.Codec.explain_args))
      ^ ")"
    in
    E.fail ~code:"fact.not_found" E.Wardedness
      (Printf.sprintf "fact %s is not in the database" fact)
      ~context:
        (("fact", fact)
        :: (if interrupted then [ ("note", "chase interrupted by budget") ]
            else []))

let categorize _t req =
  let payload = payload_of_request req in
  let rel =
    Vadasa_relational.Csv.read_string ~name:payload.Codec.options.Codec.name
      payload.Codec.csv
  in
  let result, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (Vadasa_relational.Relation.schema rel)
  in
  Http.response ~status:200
    (Json.to_string ~indent:true (Codec.categorize_result_json result) ^ "\n")

let reason t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let threshold = options.Codec.threshold in
  let source = S.Vadalog_bridge.program_of_measure measure in
  let compiled, cached = compile t source in
  let program =
    V.Program.union compiled.program
      (V.Program.make ~facts:(S.Vadalog_bridge.microdata_facts md) [])
  in
  let engine =
    V.Engine.create ~strat:compiled.strat ?pool:t.engine_pool program
  in
  (* An interrupted chase still answers: [decode_risks] reads whatever
     riskoutput facts the partial saturation derived. *)
  let interrupt =
    match V.Engine.run ?budget:(budget_for t req options) engine with
    | () -> None
    | exception V.Engine.Interrupted i -> Some i
  in
  let risks = S.Vadalog_bridge.decode_risks engine (S.Microdata.cardinal md) in
  Http.response ~status:200
    (Json.to_string ~indent:true
       (Codec.reason_json ?interrupt ~cached ~warded:compiled.warded ~threshold
          md risks)
    ^ "\n")

(* The labeled series living outside the telemetry registry: request
   counters, cache statistics, breaker states, uptime. The registry
   itself (engine/pool/latency instruments, merged across worker-domain
   shards) renders first via [Telemetry.Prometheus.render]. *)
let prometheus_body ?(extra_prom = fun () -> "") t =
  let buf = Buffer.create 4096 in
  (* Runtime-health gauges are sampled at capture time, so every scrape
     sees the capturing domain's current GC picture. *)
  Health.sample_gc ();
  Buffer.add_string buf
    (Telemetry.Prometheus.render
       (Telemetry.Report.capture Telemetry.global));
  Prom.family buf ~name:"vadasa_uptime_seconds"
    ~help:"Seconds since the handlers were created" ~typ:"gauge";
  Prom.sample_float buf ~name:"vadasa_uptime_seconds"
    (Unix.gettimeofday () -. t.started_at);
  Prom.family buf ~name:"vadasa_http_requests_total"
    ~help:"Guarded requests by method, path and status" ~typ:"counter";
  List.iter
    (fun (key, n) ->
      match String.split_on_char ' ' key with
      | [ meth; path; status ] ->
        Prom.sample_int buf ~name:"vadasa_http_requests_total"
          ~labels:[ ("method", meth); ("path", path); ("status", status) ]
          n
      | _ -> ())
    (request_counts t);
  let cache_series name help value_programs value_datasets =
    Prom.family buf ~name ~help ~typ:"counter";
    Prom.sample_int buf ~name
      ~labels:[ ("cache", Cache.name t.programs) ]
      value_programs;
    Prom.sample_int buf ~name
      ~labels:[ ("cache", Cache.name t.datasets) ]
      value_datasets
  in
  cache_series "vadasa_cache_hits_total" "Cache lookup hits"
    (Cache.hits t.programs) (Cache.hits t.datasets);
  cache_series "vadasa_cache_misses_total" "Cache lookup misses"
    (Cache.misses t.programs) (Cache.misses t.datasets);
  cache_series "vadasa_cache_evictions_total" "Cache LRU evictions"
    (Cache.evictions t.programs) (Cache.evictions t.datasets);
  Prom.family buf ~name:"vadasa_cache_size"
    ~help:"Entries currently cached" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_cache_size"
    ~labels:[ ("cache", Cache.name t.programs) ]
    (Cache.size t.programs);
  Prom.sample_int buf ~name:"vadasa_cache_size"
    ~labels:[ ("cache", Cache.name t.datasets) ]
    (Cache.size t.datasets);
  Prom.family buf ~name:"vadasa_breaker_state"
    ~help:"Circuit state per endpoint: 0 closed, 1 half-open, 2 open"
    ~typ:"gauge";
  (match Breaker.stats t.breaker with
  | Json.Obj circuits ->
    List.iter
      (fun (endpoint, circuit) ->
        let state =
          match circuit with
          | Json.Obj fields -> (
            match List.assoc_opt "state" fields with
            | Some (Json.Str s) -> s
            | _ -> "closed")
          | _ -> "closed"
        in
        let v =
          match state with "open" -> 2 | "half_open" -> 1 | _ -> 0
        in
        Prom.sample_int buf ~name:"vadasa_breaker_state"
          ~labels:[ ("endpoint", endpoint) ]
          v)
      circuits
  | _ -> ());
  Buffer.add_string buf (extra_prom ());
  Buffer.contents buf

let metrics ?(extra = fun () -> []) ?extra_prom t req =
  if Prom.wants_prometheus req then
    Http.response ~content_type:Prom.content_type ~status:200
      (prometheus_body ?extra_prom t)
  else
    let requests =
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (request_counts t))
    in
    let body =
      Json.Obj
        ([
           ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
           ( "caches",
             Json.Obj
               [
                 ("programs", Cache.stats t.programs);
                 ("datasets", Cache.stats t.datasets);
               ] );
           ("requests", requests);
           ("breaker", Breaker.stats t.breaker);
           ( "faults_armed",
             Json.List
               (List.map
                  (fun (name, action) -> Json.Str (name ^ ":" ^ action))
                  (Faultpoint.armed ())) );
         ]
        @ extra ())
    in
    Http.response ~status:200 (Json.to_string ~indent:true body ^ "\n")

(* ---- router ------------------------------------------------------------- *)

(* Wraps every endpoint with the resilience plumbing: the
   [handler.dispatch] fault point, the per-endpoint circuit breaker
   (open circuit → 503 + Retry-After without running the handler), and
   the total exception→typed-error mapping. A 5xx response counts as a
   breaker failure; anything else closes the circuit. *)
let guard t handler req =
  let key =
    Printf.sprintf "%s %s" (Http.meth_to_string req.Http.meth) req.Http.path
  in
  let resp =
    match Breaker.check t.breaker key with
    | Breaker.Rejected retry_after ->
      let resp =
        Http.json_error ~status:503 ~code:"breaker.open"
          (Printf.sprintf "circuit open for %s; retry later" key)
      in
      {
        resp with
        Http.resp_headers =
          resp.Http.resp_headers
          @ [
              ( "Retry-After",
                string_of_int (max 1 (int_of_float (Float.ceil retry_after)))
              );
            ];
      }
    | Breaker.Allow ->
      let resp =
        match
          Faultpoint.hit "handler.dispatch";
          handler req
        with
        | resp -> resp
        | exception e -> Codec.response_of_error (Codec.error_of_exn e)
      in
      if resp.Http.status >= 500 then Breaker.failure t.breaker key
      else Breaker.success t.breaker key;
      resp
  in
  count t req resp;
  resp

let router ?extra_metrics ?extra_prom t =
  Router.create
    [
      (Http.GET, "/healthz", guard t (healthz t));
      (Http.GET, "/metrics", guard t (metrics ?extra:extra_metrics ?extra_prom t));
      (Http.POST, "/v1/risk", guard t (risk t));
      (Http.POST, "/v1/anonymize", guard t (anonymize t));
      (Http.POST, "/v1/categorize", guard t (categorize t));
      (Http.POST, "/v1/reason", guard t (reason t));
      (Http.POST, "/v1/explain", guard t (explain t));
    ]
