(* The service endpoints, wired over the two shared caches.

   [compiled] is the program cache's value: parse, stratification and
   wardedness analysis are done once per distinct program text; a cache
   hit hands the engine a ready [Stratify.t] so repeat requests skip the
   whole front end ([Program.union] with a facts-only program keeps rule
   ids stable, which is what makes the cached stratification valid).

   The dataset cache keys on a digest of the CSV body plus the category
   overrides: repeat POSTs of the same document reuse the categorized
   microdata (loading and categorization dominate small requests).
   Handlers only read cached microdata — [Cycle.run] transforms a copy —
   so sharing one value across worker domains is safe. *)

module Json = Vadasa_base.Json
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

type compiled = {
  program : V.Program.t;
  strat : V.Stratify.t;
  warded : bool;
}

type t = {
  programs : (string, compiled) Cache.t;
  datasets : (string, S.Microdata.t) Cache.t;
  started_at : float;
  counters : (string, int) Hashtbl.t;  (* "METHOD path status" -> count *)
  counters_mutex : Mutex.t;
}

let create ?(program_capacity = 64) ?(dataset_capacity = 16) () =
  {
    programs = Cache.create ~capacity:program_capacity "programs";
    datasets = Cache.create ~capacity:dataset_capacity "datasets";
    started_at = Unix.gettimeofday ();
    counters = Hashtbl.create 16;
    counters_mutex = Mutex.create ();
  }

let count t (req : Http.request) (resp : Http.response) =
  let key =
    Printf.sprintf "%s %s %d" (Http.meth_to_string req.Http.meth) req.Http.path
      resp.Http.status
  in
  Mutex.lock t.counters_mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.counters key) in
  Hashtbl.replace t.counters key (n + 1);
  Mutex.unlock t.counters_mutex

let request_counts t =
  Mutex.lock t.counters_mutex;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] in
  Mutex.unlock t.counters_mutex;
  List.sort compare entries

let programs t = t.programs

let datasets t = t.datasets

(* ---- shared steps ------------------------------------------------------- *)

let dataset_key (payload : Codec.payload) =
  let open Codec in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (payload.options.name :: payload.csv
          :: List.concat_map
               (fun (a, c) -> [ a; c ])
               payload.options.categories)))

exception Reply of Http.response

let fail status message = raise (Reply (Http.json_error ~status message))

let microdata_for t payload =
  let key = dataset_key payload in
  (* The builder can fail (bad CSV, unresolved attributes); failures are
     not cached. *)
  match
    Cache.find_or_build t.datasets key (fun _ ->
        match Codec.microdata_of_payload payload with
        | Ok md -> md
        | Error msg -> fail 422 msg)
  with
  | md -> md
  | exception Reply r -> raise (Reply r)

let payload_of_request req =
  match Codec.parse_payload req with
  | Ok p -> p
  | Error msg -> fail 400 msg

let measure_of_options options =
  match Codec.measure_of_options options with
  | Ok m -> m
  | Error msg -> fail 422 msg

let compile t source =
  Cache.find_or_build_hit t.programs source (fun src ->
      match V.Parser.parse src with
      | program ->
        {
          program;
          strat = V.Stratify.compute program;
          warded = V.Wardedness.is_warded program;
        }
      | exception Failure msg -> fail 422 ("program does not parse: " ^ msg))

(* ---- endpoints ---------------------------------------------------------- *)

let healthz t _req =
  Http.response ~status:200
    (Json.to_string
       (Json.Obj
          [
            ("status", Json.Str "ok");
            ( "uptime_s",
              Json.Float (Unix.gettimeofday () -. t.started_at) );
          ]))

let risk t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let measure = measure_of_options payload.Codec.options in
  let threshold = payload.Codec.options.Codec.threshold in
  let report = S.Risk.estimate measure md in
  (* The exact string the CLI's [risk --json] prints: byte-identical. *)
  Http.response ~status:200 (Codec.risk_report_string ~threshold md report)

let anonymize t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let semantics =
    match
      Vadasa_relational.Null_semantics.of_string options.Codec.semantics
    with
    | Some s -> s
    | None -> fail 422 ("unknown semantics " ^ options.Codec.semantics)
  in
  let method_ =
    match options.Codec.method_ with
    | "suppress" -> S.Cycle.Local_suppression
    | "recode" ->
      S.Cycle.Recode_then_suppress (D.Generator.synthetic_hierarchy md)
    | other -> fail 422 ("unknown method " ^ other)
  in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure;
      threshold = options.Codec.threshold;
      semantics;
      method_;
    }
  in
  let outcome = S.Cycle.run ~config md in
  Http.response ~status:200
    (Json.to_string ~indent:true (Codec.anonymize_outcome_json md outcome) ^ "\n")

let categorize _t req =
  let payload = payload_of_request req in
  let rel =
    match
      Vadasa_relational.Csv.read_string ~name:payload.Codec.options.Codec.name
        payload.Codec.csv
    with
    | rel -> rel
    | exception Failure msg -> fail 422 ("invalid CSV: " ^ msg)
  in
  let result, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (Vadasa_relational.Relation.schema rel)
  in
  Http.response ~status:200
    (Json.to_string ~indent:true (Codec.categorize_result_json result) ^ "\n")

let reason t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let measure = measure_of_options payload.Codec.options in
  let threshold = payload.Codec.options.Codec.threshold in
  let source =
    match S.Vadalog_bridge.program_of_measure measure with
    | source -> source
    | exception S.Vadalog_bridge.Unsupported msg -> fail 422 msg
  in
  let compiled, cached = compile t source in
  let program =
    V.Program.union compiled.program
      (V.Program.make ~facts:(S.Vadalog_bridge.microdata_facts md) [])
  in
  let engine = V.Engine.create ~strat:compiled.strat program in
  V.Engine.run engine;
  let risks = S.Vadalog_bridge.decode_risks engine (S.Microdata.cardinal md) in
  Http.response ~status:200
    (Json.to_string ~indent:true
       (Codec.reason_json ~cached ~warded:compiled.warded ~threshold md risks)
    ^ "\n")

let metrics ?(extra = fun () -> []) t _req =
  let requests =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (request_counts t))
  in
  let body =
    Json.Obj
      ([
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
         ( "caches",
           Json.Obj
             [
               ("programs", Cache.stats t.programs);
               ("datasets", Cache.stats t.datasets);
             ] );
         ("requests", requests);
       ]
      @ extra ())
  in
  Http.response ~status:200 (Json.to_string ~indent:true body ^ "\n")

(* ---- router ------------------------------------------------------------- *)

let guard t handler req =
  let resp =
    match handler req with
    | resp -> resp
    | exception Reply resp -> resp
    | exception e ->
      Http.json_error ~status:500
        (Printf.sprintf "internal error: %s" (Printexc.to_string e))
  in
  count t req resp;
  resp

let router ?extra_metrics t =
  Router.create
    [
      (Http.GET, "/healthz", guard t (healthz t));
      (Http.GET, "/metrics", guard t (metrics ?extra:extra_metrics t));
      (Http.POST, "/v1/risk", guard t (risk t));
      (Http.POST, "/v1/anonymize", guard t (anonymize t));
      (Http.POST, "/v1/categorize", guard t (categorize t));
      (Http.POST, "/v1/reason", guard t (reason t));
    ]
