(* The service endpoints, wired over the two shared caches.

   [compiled] is the program cache's value: parse, stratification and
   wardedness analysis are done once per distinct program text; a cache
   hit hands the engine a ready [Stratify.t] so repeat requests skip the
   whole front end ([Program.union] with a facts-only program keeps rule
   ids stable, which is what makes the cached stratification valid).

   The dataset cache keys on a digest of the CSV body plus the category
   overrides: repeat POSTs of the same document reuse the categorized
   microdata (loading and categorization dominate small requests).
   Handlers only read cached microdata — [Cycle.run] transforms a copy —
   so sharing one value across worker domains is safe.

   Failure paths are typed: every error a handler produces is a
   [Vadasa_base.Error.t] (raised as [Error.Error] or mapped from an
   escaped exception by [Codec.error_of_exn]) and renders through
   [Codec.response_of_error], so every non-2xx body carries a stable
   [error.code]. Engine work runs under a [Budget] derived from the
   request deadline and the request's [budget_ms]/[max_facts] options;
   an interrupted chase degrades to a partial 200 instead of failing. *)

module Json = Vadasa_base.Json
module E = Vadasa_base.Error
module Budget = Vadasa_base.Budget
module Faultpoint = Vadasa_resilience.Faultpoint
module Telemetry = Vadasa_telemetry.Telemetry
module S = Vadasa_sdc
module D = Vadasa_datagen
module V = Vadasa_vadalog

type compiled = {
  program : V.Program.t;
  strat : V.Stratify.t;
  warded : bool;
}

type t = {
  programs : (string, compiled) Cache.t;
  datasets : (string, S.Microdata.t) Cache.t;
  registry : Registry.t;  (* persistent datasets behind /v1/datasets *)
  jobs : Jobs.t;  (* async anonymize/risk jobs behind /v1/jobs *)
  persist : Persist.t option;  (* crash-safety store ([serve --data-dir]) *)
  breaker : Breaker.t;
  default_max_facts : int option;  (* server-wide derived-fact ceiling *)
  engine_pool : Vadasa_base.Task_pool.t option;
      (* shared chase worker pool: every request's engine borrows it, so
         M request domains compose with K engine workers without
         spawning per request (no oversubscription) *)
  started_at : float;
  counters : (string, int) Hashtbl.t;
      (* "METHOD route-pattern status" -> count; keyed on the route
         pattern, never the raw path, so dataset ids don't mint keys *)
  counters_mutex : Mutex.t;
}

let create ?(program_capacity = 64) ?(dataset_capacity = 16)
    ?(registry_capacity = 16) ?dataset_audit ?breaker_threshold
    ?breaker_cooldown ?default_max_facts ?engine_pool ?persist ?job_domains
    ?job_queue ?tenant_quota ?job_retain ?tenant_rate ?tenant_burst () =
  let registry =
    Registry.create ~capacity:registry_capacity ?audit:dataset_audit
      ?pool:engine_pool ?persist ()
  in
  let jobs =
    Jobs.create ?domains:job_domains ?queue:job_queue ?quota:tenant_quota
      ?retain:job_retain ?rate:tenant_rate ?burst:tenant_burst ?persist
      registry
  in
  Jobs.register jobs;
  (* Both durable subsystems are registered; rebuild their state from
     the snapshot + journal tail, then settle what the crash left open
     (queued jobs re-run, mid-flight jobs fault as orphaned). *)
  (match persist with
  | None -> ()
  | Some p ->
    Persist.recover p;
    Jobs.resume jobs);
  {
    programs = Cache.create ~capacity:program_capacity "programs";
    datasets = Cache.create ~capacity:dataset_capacity "datasets";
    registry;
    jobs;
    persist;
    breaker =
      Breaker.create ?threshold:breaker_threshold ?cooldown:breaker_cooldown ();
    default_max_facts;
    engine_pool;
    started_at = Unix.gettimeofday ();
    counters = Hashtbl.create 16;
    counters_mutex = Mutex.create ();
  }

(* Stop the job workers and close the persistence store (final snapshot
   + journal shutdown). The server's own accept/worker machinery has
   its own [Server.shutdown]; this covers what the handlers own. *)
let shutdown t =
  Jobs.stop t.jobs;
  match t.persist with None -> () | Some p -> Persist.close p

let count t ~route (resp : Http.response) =
  let key = Printf.sprintf "%s %d" route resp.Http.status in
  Mutex.lock t.counters_mutex;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.counters key) in
  Hashtbl.replace t.counters key (n + 1);
  Mutex.unlock t.counters_mutex

let request_counts t =
  Mutex.lock t.counters_mutex;
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] in
  Mutex.unlock t.counters_mutex;
  List.sort compare entries

let programs t = t.programs

let datasets t = t.datasets

let registry t = t.registry

let jobs t = t.jobs

let persist t = t.persist

let breaker t = t.breaker

(* ---- shared steps ------------------------------------------------------- *)

let dataset_key (payload : Codec.payload) =
  let open Codec in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (payload.options.name :: payload.csv
          :: List.concat_map
               (fun (a, c) -> [ a; c ])
               payload.options.categories)))

let ok_or_raise = function Ok v -> v | Error e -> raise (E.Error e)

(* The per-request work budget: the earlier of the response deadline the
   server stamped on the request and the client's own [budget_ms],
   capped by [max_facts]. [None] only when no constraint applies. *)
let budget_of (req : Http.request) (options : Codec.options) =
  let deadline_in =
    Option.map (fun ms -> float_of_int ms /. 1000.0) options.Codec.budget_ms
  in
  match (req.Http.deadline, deadline_in, options.Codec.max_facts) with
  | None, None, None -> None
  | deadline, deadline_in, max_facts ->
    Some (Budget.create ?deadline ?deadline_in ?max_facts ())

(* [budget_of] plus the server-wide fact ceiling ([serve --max-facts])
   when the request didn't bring its own. *)
let budget_for t req (options : Codec.options) =
  let options =
    match options.Codec.max_facts with
    | Some _ -> options
    | None -> { options with Codec.max_facts = t.default_max_facts }
  in
  budget_of req options

let microdata_for t payload =
  let key = dataset_key payload in
  (* The builder can fail (bad CSV, unresolved attributes); failures
     escape as [Error.Error] and are not cached. *)
  Cache.find_or_build t.datasets key (fun _ ->
      ok_or_raise (Codec.microdata_of_payload payload))

let payload_of_request req = ok_or_raise (Codec.parse_payload req)

let measure_of_options options = ok_or_raise (Codec.measure_of_options options)

let compile t source =
  Cache.find_or_build_hit t.programs source (fun src ->
      (* Parser/lexer/stratifier failures escape as typed [program.*]
         errors via [Codec.error_of_exn] in the guard. *)
      let program = V.Parser.parse src in
      {
        program;
        strat = V.Stratify.compute program;
        warded = V.Wardedness.is_warded program;
      })

(* ---- endpoints ---------------------------------------------------------- *)

let healthz t _req =
  Http.response ~status:200
    (Json.to_string
       (Json.Obj
          [
            ("status", Json.Str "ok");
            ( "uptime_s",
              Json.Float (Unix.gettimeofday () -. t.started_at) );
          ]))

let risk t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let threshold = options.Codec.threshold in
  let report = S.Risk.estimate measure md in
  if not options.Codec.reasoned then
    (* The exact string the CLI's [risk --json] prints: byte-identical. *)
    Http.response ~status:200 (Codec.risk_report_string ~threshold md report)
  else
    (* Reasoned cross-check: run the measure's program on the engine
       under the request budget. A chase cut short by the budget
       degrades to the native report plus partial-progress markers —
       still a 200, never a timeout error. *)
    match
      S.Vadalog_bridge.risk_via_engine ?budget:(budget_for t req options)
        ?pool:t.engine_pool ~threshold measure md
    with
    | _engine_risks ->
      Http.response ~status:200 (Codec.risk_report_string ~threshold md report)
    | exception V.Engine.Interrupted interrupt ->
      Http.response ~status:200
        (Codec.risk_report_degraded_string ~threshold md report interrupt)

let anonymize t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let semantics =
    match
      Vadasa_relational.Null_semantics.of_string options.Codec.semantics
    with
    | Some s -> s
    | None ->
      E.fail ~code:"semantics.unknown" E.Wardedness
        ("unknown semantics " ^ options.Codec.semantics)
        ~context:[ ("semantics", options.Codec.semantics) ]
  in
  let method_ =
    match options.Codec.method_ with
    | "suppress" -> S.Cycle.Local_suppression
    | "recode" ->
      S.Cycle.Recode_then_suppress (D.Generator.synthetic_hierarchy md)
    | other ->
      E.fail ~code:"method.unknown" E.Wardedness ("unknown method " ^ other)
        ~context:[ ("method", other) ]
  in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure;
      threshold = options.Codec.threshold;
      semantics;
      method_;
    }
  in
  let recorder = if options.Codec.audit then Some (S.Audit.recorder ()) else None in
  let outcome =
    S.Cycle.run ~config ?audit:recorder ?budget:(budget_for t req options) md
  in
  let audit = Option.map S.Audit.events recorder in
  Http.response ~status:200
    (Json.to_string ~indent:true (Codec.anonymize_outcome_json ?audit md outcome)
    ^ "\n")

(* Program + fact -> derivation tree. The program compiles through the
   same cache as /v1/reason; the chase runs under the request budget. A
   budget-cut chase may simply not have derived the fact yet — the 422
   then names the interruption so the client can tell "never derivable"
   from "ran out of budget". *)
let explain t req =
  let er = ok_or_raise (Codec.parse_explain_payload req) in
  let compiled, _cached = compile t er.Codec.explain_program in
  let engine =
    V.Engine.create ~strat:compiled.strat ?pool:t.engine_pool
      compiled.program
  in
  let budget =
    budget_for t req
      {
        Codec.default_options with
        Codec.budget_ms = er.Codec.explain_budget_ms;
        max_facts = er.Codec.explain_max_facts;
      }
  in
  let interrupted =
    match V.Engine.run ?budget engine with
    | () -> false
    | exception V.Engine.Interrupted _ -> true
  in
  match
    V.Engine.explain ?max_depth:er.Codec.explain_max_depth engine
      er.Codec.explain_pred er.Codec.explain_args
  with
  | Some tree -> Http.response ~status:200 (Codec.explain_string tree)
  | None ->
    let fact =
      er.Codec.explain_pred ^ "("
      ^ String.concat ", "
          (Array.to_list
             (Array.map Vadasa_base.Value.to_string er.Codec.explain_args))
      ^ ")"
    in
    E.fail ~code:"fact.not_found" E.Wardedness
      (Printf.sprintf "fact %s is not in the database" fact)
      ~context:
        (("fact", fact)
        :: (if interrupted then [ ("note", "chase interrupted by budget") ]
            else []))

let categorize _t req =
  let payload = payload_of_request req in
  let rel =
    Vadasa_relational.Csv.read_string ~name:payload.Codec.options.Codec.name
      payload.Codec.csv
  in
  let result, _ =
    S.Categorize.run ~experience:S.Categorize.builtin_experience
      (Vadasa_relational.Relation.schema rel)
  in
  Http.response ~status:200
    (Json.to_string ~indent:true (Codec.categorize_result_json result) ^ "\n")

let reason t req =
  let payload = payload_of_request req in
  let md = microdata_for t payload in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let threshold = options.Codec.threshold in
  let source = S.Vadalog_bridge.program_of_measure measure in
  let compiled, cached = compile t source in
  let program =
    V.Program.union compiled.program
      (V.Program.make ~facts:(S.Vadalog_bridge.microdata_facts md) [])
  in
  let engine =
    V.Engine.create ~strat:compiled.strat ?pool:t.engine_pool program
  in
  (* An interrupted chase still answers: [decode_risks] reads whatever
     riskoutput facts the partial saturation derived. *)
  let interrupt =
    match V.Engine.run ?budget:(budget_for t req options) engine with
    | () -> None
    | exception V.Engine.Interrupted i -> Some i
  in
  let risks = S.Vadalog_bridge.decode_risks engine (S.Microdata.cardinal md) in
  Http.response ~status:200
    (Json.to_string ~indent:true
       (Codec.reason_json ?interrupt ~cached ~warded:compiled.warded ~threshold
          md risks)
    ^ "\n")

(* ---- dataset registry endpoints ----------------------------------------- *)

(* The [{id}] segment of a matched dataset route. *)
let dataset_id ~pattern (req : Http.request) =
  match Router.path_param ~pattern req.Http.path "id" with
  | Some id -> id
  | None ->
    E.fail ~code:"dataset.bad_id" E.Parse
      ("cannot extract a dataset id from " ^ req.Http.path)

(* The LRU key of a registered dataset's union snapshot (see
   [dataset_risk ?mode=full]); appends remove it, so the cache never
   serves a pre-append snapshot. *)
let registry_cache_key id = "registry:" ^ id

(* PUT /v1/datasets/{id} — register the payload (same body formats as
   /v1/risk) as a persistent dataset. The microdata builds through the
   CSV-digest cache as usual, but the registry gets a copy: its relation
   grows in place on appends and must not alias the content-addressed
   cache entry. *)
let dataset_put t req =
  let id = dataset_id ~pattern:"/v1/datasets/{id}" req in
  let payload = payload_of_request req in
  let options = payload.Codec.options in
  let measure = measure_of_options options in
  let md = S.Microdata.copy (microdata_for t payload) in
  let compiled =
    (* The measure's program rides the compiled-program cache; measures
       outside the logic (Monte Carlo, SUDA is expressible but the
       bridge's closed-form exclusions are not) skip chase
       materialization and stay native-only. *)
    match S.Vadalog_bridge.program_of_measure measure with
    | source ->
      let compiled, _cached = compile t source in
      Some (compiled.program, compiled.strat)
    | exception S.Vadalog_bridge.Unsupported _ -> None
  in
  let { Registry.entry; created } =
    Registry.put t.registry ~id ~digest:(dataset_key payload)
      ~bytes:(String.length payload.Codec.csv)
      ~options ~measure ~compiled md
  in
  let body =
    match Registry.entry_json entry with
    | Json.Obj fields -> Json.Obj (fields @ [ ("created", Json.Bool created) ])
    | json -> json
  in
  Http.response
    ~status:(if created then 201 else 200)
    (Json.to_string ~indent:true body ^ "\n")

(* GET /v1/datasets — ids plus per-dataset metadata. *)
let dataset_list t _req =
  let entries =
    List.filter_map (Registry.find t.registry) (Registry.ids t.registry)
  in
  Http.response ~status:200
    (Json.to_string ~indent:true
       (Json.Obj
          [
            ("count", Json.Int (List.length entries));
            ("datasets", Json.List (List.map Registry.entry_json entries));
          ])
    ^ "\n")

(* GET /v1/datasets/{id} — metadata; [?include=csv] adds the current
   (base ∪ deltas) document, which is what a from-scratch evaluation
   must be fed to reproduce the dataset's reports (the CI smoke job
   diffs exactly that). *)
let dataset_get t req =
  let id = dataset_id ~pattern:"/v1/datasets/{id}" req in
  let entry = Registry.get t.registry id in
  let fields =
    match Registry.entry_json entry with Json.Obj f -> f | _ -> []
  in
  let fields =
    match Http.query_param req "include" with
    | Some "csv" -> fields @ [ ("csv", Json.Str (Registry.entry_csv entry)) ]
    | _ -> fields
  in
  Http.response ~status:200 (Json.to_string ~indent:true (Json.Obj fields) ^ "\n")

(* DELETE /v1/datasets/{id} *)
let dataset_delete t req =
  let id = dataset_id ~pattern:"/v1/datasets/{id}" req in
  if not (Registry.delete t.registry id) then
    raise (E.Error (Registry.not_found id));
  Cache.remove t.datasets (registry_cache_key id);
  Http.response ~status:200
    (Json.to_string (Json.Obj [ ("deleted", Json.Str id) ]) ^ "\n")

(* POST /v1/datasets/{id}/facts — delta ingestion: the body is a CSV
   document with the dataset's header. The registry re-scores risk
   incrementally and continues the chase from its fixpoint snapshot;
   the stale union snapshot (if cached) is dropped. *)
let dataset_append t req =
  let id = dataset_id ~pattern:"/v1/datasets/{id}/facts" req in
  let entry = Registry.get t.registry id in
  if String.trim req.Http.body = "" then
    E.fail ~code:"request.empty_body" E.Parse
      "empty request body (expected delta CSV)";
  let outcome = Registry.append t.registry entry ~csv:req.Http.body in
  Cache.remove t.datasets (registry_cache_key id);
  let report = Registry.entry_report entry in
  Http.response ~status:200
    (Json.to_string ~indent:true
       (Json.Obj
          [
            ("dataset", Json.Str id);
            ("rows_added", Json.Int outcome.Registry.rows_added);
            ("rows_total", Json.Int outcome.Registry.rows_total);
            ( "rows_rescored",
              Json.Int
                outcome.Registry.risk.S.Risk.Incremental.rows_rescored );
            ( "groups_touched",
              Json.Int
                outcome.Registry.risk.S.Risk.Incremental.groups_touched );
            ( "risk_fallback",
              match outcome.Registry.risk.S.Risk.Incremental.fallback with
              | None -> Json.Null
              | Some f -> Json.Str (S.Risk.Incremental.fallback_to_string f) );
            ("chase", Json.Str outcome.Registry.chase_mode);
            ("chase_facts", Json.Int outcome.Registry.chase_facts);
            ("global_risk", Json.Float (S.Risk.global_risk report));
          ])
    ^ "\n")

(* GET /v1/datasets/{id}/risk — the maintained incremental report,
   rendered byte-identically to [POST /v1/risk] over the union CSV.
   [?mode=full] instead re-estimates from scratch on the cached union
   snapshot (the snapshot is invalidated on every append): diffing the
   two bodies is the live incremental-vs-from-scratch check the CI
   smoke job runs. [?threshold=] overrides the registered threshold in
   both modes. *)
let dataset_risk t req =
  let id = dataset_id ~pattern:"/v1/datasets/{id}/risk" req in
  let entry = Registry.get t.registry id in
  let options = Registry.entry_options entry in
  let threshold =
    match Http.query_param req "threshold" with
    | None -> options.Codec.threshold
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None ->
        E.fail ~code:"request.bad_param" E.Parse
          "parameter threshold: expected a number"
          ~context:[ ("parameter", "threshold") ])
  in
  match Http.query_param req "mode" with
  | None | Some "incremental" ->
    let md = Registry.entry_md entry in
    let report = Registry.entry_report entry in
    Http.response ~status:200 (Codec.risk_report_string ~threshold md report)
  | Some "full" ->
    let md =
      Cache.find_or_build t.datasets (registry_cache_key id) (fun _ ->
          Registry.entry_md_snapshot entry)
    in
    let report =
      S.Risk.estimate
        ~semantics:(Registry.entry_semantics entry)
        (Registry.entry_measure entry) md
    in
    Http.response ~status:200 (Codec.risk_report_string ~threshold md report)
  | Some other ->
    E.fail ~code:"request.bad_param" E.Parse
      (Printf.sprintf
         "parameter mode: unknown value %s (expected incremental or full)"
         other)
      ~context:[ ("parameter", "mode") ]

(* ---- async jobs endpoints ------------------------------------------------ *)

(* The tenant of a jobs request: [X-Vadasa-Tenant] header, then
   [?tenant=], then "default". Validated (charset/length) in
   [Jobs.submit]; never a metric label. *)
let tenant_of req =
  match Http.header req "x-vadasa-tenant" with
  | Some tenant -> tenant
  | None -> (
    match Http.query_param req "tenant" with
    | Some tenant -> tenant
    | None -> "default")

(* POST /v1/jobs — submit an async job over a registered dataset:
   [{"dataset": "...", "op": "risk"|"anonymize", ...options}]. Admitted
   jobs answer 202 with the job object; quota/rate rejections are typed
   429s carrying Retry-After. *)
let job_submit t req =
  if String.trim req.Http.body = "" then
    E.fail ~code:"request.empty_body" E.Parse
      "empty request body (expected a JSON job submission)";
  let json =
    match Json.of_string req.Http.body with
    | Ok json -> json
    | Error msg ->
      E.fail ~code:"json.invalid" E.Parse ("request body: " ^ msg)
  in
  let field name =
    match Option.bind (Json.member name json) Json.to_string_opt with
    | Some v -> v
    | None ->
      E.fail ~code:"request.bad_field" E.Parse
        (Printf.sprintf "missing required string field %s" name)
        ~context:[ ("field", name) ]
  in
  let dataset = field "dataset" in
  let op = field "op" in
  let options = ok_or_raise (Codec.options_of_json json) in
  let job =
    Jobs.submit t.jobs ~tenant:(tenant_of req) ~dataset ~op ~options
  in
  Http.response ~status:202
    (Json.to_string ~indent:true (Jobs.job_json job) ^ "\n")

(* The [{id}] segment of a matched jobs route. *)
let job_id_of ~pattern (req : Http.request) =
  match Router.path_param ~pattern req.Http.path "id" with
  | Some id -> id
  | None ->
    E.fail ~code:"job.not_found" E.Wardedness
      ("cannot extract a job id from " ^ req.Http.path)

(* GET /v1/jobs — every known job, submission order. *)
let job_list t _req =
  let jobs = Jobs.list t.jobs in
  Http.response ~status:200
    (Json.to_string ~indent:true
       (Json.Obj
          [
            ("count", Json.Int (List.length jobs));
            ("jobs", Json.List (List.map Jobs.job_json jobs));
          ])
    ^ "\n")

(* GET /v1/jobs/{id} — status; terminal jobs carry their result/error. *)
let job_get t req =
  let id = job_id_of ~pattern:"/v1/jobs/{id}" req in
  Http.response ~status:200
    (Json.to_string ~indent:true (Jobs.job_json (Jobs.get t.jobs id)) ^ "\n")

(* DELETE /v1/jobs/{id} — cooperative cancel (see Jobs.cancel). *)
let job_cancel t req =
  let id = job_id_of ~pattern:"/v1/jobs/{id}" req in
  Http.response ~status:200
    (Json.to_string ~indent:true (Jobs.job_json (Jobs.cancel t.jobs id)) ^ "\n")

(* The labeled series living outside the telemetry registry: request
   counters, cache statistics, breaker states, uptime. The registry
   itself (engine/pool/latency instruments, merged across worker-domain
   shards) renders first via [Telemetry.Prometheus.render]. *)
let prometheus_body ?(extra_prom = fun () -> "") t =
  let buf = Buffer.create 4096 in
  (* Runtime-health gauges are sampled at capture time, so every scrape
     sees the capturing domain's current GC picture. *)
  Health.sample_gc ();
  Buffer.add_string buf
    (Telemetry.Prometheus.render
       (Telemetry.Report.capture Telemetry.global));
  Prom.family buf ~name:"vadasa_uptime_seconds"
    ~help:"Seconds since the handlers were created" ~typ:"gauge";
  Prom.sample_float buf ~name:"vadasa_uptime_seconds"
    (Unix.gettimeofday () -. t.started_at);
  Prom.family buf ~name:"vadasa_http_requests_total"
    ~help:"Guarded requests by method, path and status" ~typ:"counter";
  List.iter
    (fun (key, n) ->
      match String.split_on_char ' ' key with
      | [ meth; path; status ] ->
        Prom.sample_int buf ~name:"vadasa_http_requests_total"
          ~labels:[ ("method", meth); ("path", path); ("status", status) ]
          n
      | _ -> ())
    (request_counts t);
  let cache_series name help value_programs value_datasets =
    Prom.family buf ~name ~help ~typ:"counter";
    Prom.sample_int buf ~name
      ~labels:[ ("cache", Cache.name t.programs) ]
      value_programs;
    Prom.sample_int buf ~name
      ~labels:[ ("cache", Cache.name t.datasets) ]
      value_datasets
  in
  cache_series "vadasa_cache_hits_total" "Cache lookup hits"
    (Cache.hits t.programs) (Cache.hits t.datasets);
  cache_series "vadasa_cache_misses_total" "Cache lookup misses"
    (Cache.misses t.programs) (Cache.misses t.datasets);
  cache_series "vadasa_cache_evictions_total" "Cache LRU evictions"
    (Cache.evictions t.programs) (Cache.evictions t.datasets);
  Prom.family buf ~name:"vadasa_cache_size"
    ~help:"Entries currently cached" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_cache_size"
    ~labels:[ ("cache", Cache.name t.programs) ]
    (Cache.size t.programs);
  Prom.sample_int buf ~name:"vadasa_cache_size"
    ~labels:[ ("cache", Cache.name t.datasets) ]
    (Cache.size t.datasets);
  Prom.family buf ~name:"vadasa_breaker_state"
    ~help:"Circuit state per endpoint: 0 closed, 1 half-open, 2 open"
    ~typ:"gauge";
  (match Breaker.stats t.breaker with
  | Json.Obj circuits ->
    List.iter
      (fun (endpoint, circuit) ->
        let state =
          match circuit with
          | Json.Obj fields -> (
            match List.assoc_opt "state" fields with
            | Some (Json.Str s) -> s
            | _ -> "closed")
          | _ -> "closed"
        in
        let v =
          match state with "open" -> 2 | "half_open" -> 1 | _ -> 0
        in
        Prom.sample_int buf ~name:"vadasa_breaker_state"
          ~labels:[ ("endpoint", endpoint) ]
          v)
      circuits
  | _ -> ());
  (* Registry series are aggregates only — never labeled per dataset id
     (ids are client-chosen; series cardinality must stay bounded). *)
  let totals = Registry.totals t.registry in
  Prom.family buf ~name:"vadasa_datasets_registered"
    ~help:"Datasets live in the registry" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_datasets_registered"
    totals.Registry.registered;
  Prom.family buf ~name:"vadasa_datasets_rows"
    ~help:"Rows across live registered datasets (base + deltas)" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_datasets_rows" totals.Registry.rows;
  Prom.family buf ~name:"vadasa_datasets_bytes"
    ~help:"CSV bytes accepted by live registered datasets" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_datasets_bytes" totals.Registry.bytes;
  Prom.family buf ~name:"vadasa_datasets_appends_total"
    ~help:"Delta appends absorbed by the registry" ~typ:"counter";
  Prom.sample_int buf ~name:"vadasa_datasets_appends_total"
    totals.Registry.appends;
  Prom.family buf ~name:"vadasa_datasets_chase_rebuilds_total"
    ~help:"Appends whose chase continuation was invalidated (from-scratch \
           rebuild)" ~typ:"counter";
  Prom.sample_int buf ~name:"vadasa_datasets_chase_rebuilds_total"
    totals.Registry.rebuilds;
  Prom.family buf ~name:"vadasa_datasets_evictions_total"
    ~help:"Datasets evicted by the registry's LRU bound" ~typ:"counter";
  Prom.sample_int buf ~name:"vadasa_datasets_evictions_total"
    totals.Registry.evictions;
  (* Jobs series are aggregates only, like the dataset series — never
     labeled per job id or tenant (both are client-chosen). *)
  let jc = Jobs.counters t.jobs in
  let jobs_counter name help value =
    Prom.family buf ~name ~help ~typ:"counter";
    Prom.sample_int buf ~name value
  in
  jobs_counter "vadasa_jobs_submitted_total" "Jobs admitted and journaled"
    jc.Jobs.submitted;
  jobs_counter "vadasa_jobs_completed_total" "Jobs finished successfully"
    jc.Jobs.completed;
  jobs_counter "vadasa_jobs_failed_total"
    "Jobs that exhausted their retries or hit a non-retryable error"
    jc.Jobs.failed;
  jobs_counter "vadasa_jobs_cancelled_total" "Jobs cancelled by DELETE"
    jc.Jobs.cancelled;
  jobs_counter "vadasa_jobs_orphaned_total"
    "Jobs found mid-flight during crash recovery (faulted, not re-run)"
    jc.Jobs.orphaned;
  jobs_counter "vadasa_jobs_replayed_total"
    "Queued jobs re-run after crash recovery" jc.Jobs.replayed;
  jobs_counter "vadasa_jobs_pruned_total"
    "Terminal jobs dropped by the per-tenant retention cap" jc.Jobs.pruned;
  Prom.family buf ~name:"vadasa_jobs_rejected_total"
    ~help:"Submissions rejected before admission, by gate" ~typ:"counter";
  Prom.sample_int buf ~name:"vadasa_jobs_rejected_total"
    ~labels:[ ("gate", "quota") ]
    jc.Jobs.rejected_quota;
  Prom.sample_int buf ~name:"vadasa_jobs_rejected_total"
    ~labels:[ ("gate", "rate") ]
    jc.Jobs.rejected_rate;
  Prom.sample_int buf ~name:"vadasa_jobs_rejected_total"
    ~labels:[ ("gate", "queue") ]
    jc.Jobs.rejected_queue;
  Prom.family buf ~name:"vadasa_jobs_queued" ~help:"Jobs awaiting a worker"
    ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_jobs_queued" jc.Jobs.queued;
  Prom.family buf ~name:"vadasa_jobs_running"
    ~help:"Jobs currently executing" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_jobs_running" jc.Jobs.running;
  (match t.persist with
  | None -> ()
  | Some p ->
    let c = Journal.counters (Persist.journal p) in
    let recovery = Persist.recovery p in
    let journal_counter name help value =
      Prom.family buf ~name ~help ~typ:"counter";
      Prom.sample_int buf ~name value
    in
    journal_counter "vadasa_journal_appends_total"
      "Records durably appended to the journal" c.Journal.appends;
    journal_counter "vadasa_journal_bytes_total"
      "Framed bytes written to the journal" c.Journal.bytes;
    journal_counter "vadasa_journal_fsyncs_total"
      "Journal fsync calls (one per group-committed batch)"
      c.Journal.fsyncs;
    journal_counter "vadasa_journal_batches_total"
      "Group-committed journal batches" c.Journal.batches;
    journal_counter "vadasa_journal_errors_total"
      "Journal batches that failed and were rolled back" c.Journal.errors;
    journal_counter "vadasa_journal_snapshots_total"
      "Snapshots written (journal truncations)" recovery.Persist.snapshots;
    journal_counter "vadasa_journal_replayed_records_total"
      "Journal records re-applied during boot recovery"
      recovery.Persist.replayed;
    journal_counter "vadasa_journal_skipped_records_total"
      "Journal records skipped during boot recovery (stale or undecodable)"
      recovery.Persist.skipped;
    Prom.family buf ~name:"vadasa_journal_truncated_bytes"
      ~help:"Torn-tail bytes discarded by the boot-time CRC scan"
      ~typ:"gauge";
    Prom.sample_int buf ~name:"vadasa_journal_truncated_bytes"
      recovery.Persist.truncated);
  Buffer.add_string buf (extra_prom ());
  Buffer.contents buf

let metrics ?(extra = fun () -> []) ?extra_prom t req =
  if Prom.wants_prometheus req then
    Http.response ~content_type:Prom.content_type ~status:200
      (prometheus_body ?extra_prom t)
  else
    let requests =
      Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (request_counts t))
    in
    let body =
      Json.Obj
        ([
           ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started_at));
           ( "caches",
             Json.Obj
               [
                 ("programs", Cache.stats t.programs);
                 ("datasets", Cache.stats t.datasets);
               ] );
           ("registry", Registry.stats t.registry);
           ("jobs", Jobs.stats t.jobs);
           ("requests", requests);
           ("breaker", Breaker.stats t.breaker);
           ( "faults_armed",
             Json.List
               (List.map
                  (fun (name, action) -> Json.Str (name ^ ":" ^ action))
                  (Faultpoint.armed ())) );
         ]
        @ (match t.persist with
          | None -> []
          | Some p -> [ ("persist", Persist.stats p) ])
        @ extra ())
    in
    Http.response ~status:200 (Json.to_string ~indent:true body ^ "\n")

(* ---- router ------------------------------------------------------------- *)

(* Wraps every endpoint with the resilience plumbing: the
   [handler.dispatch] fault point, the per-endpoint circuit breaker
   (open circuit → 503 + Retry-After without running the handler), and
   the total exception→typed-error mapping. A 5xx response counts as a
   breaker failure; anything else closes the circuit.

   [route] is the "METHOD pattern" string from the route table — the
   breaker circuit and the request counters key on it, so the
   parameterized dataset routes stay one circuit and one counter family
   regardless of how many ids clients mint. *)
let guard t ~route handler req =
  let key = route in
  let resp =
    match Breaker.check t.breaker key with
    | Breaker.Rejected retry_after ->
      let resp =
        Http.json_error ~status:503 ~code:"breaker.open"
          (Printf.sprintf "circuit open for %s; retry later" key)
      in
      {
        resp with
        Http.resp_headers =
          resp.Http.resp_headers
          @ [
              ( "Retry-After",
                string_of_int (max 1 (int_of_float (Float.ceil retry_after)))
              );
            ];
      }
    | Breaker.Allow ->
      let resp =
        match
          Faultpoint.hit "handler.dispatch";
          handler req
        with
        | resp -> resp
        | exception e -> Codec.response_of_error (Codec.error_of_exn e)
      in
      if resp.Http.status >= 500 then Breaker.failure t.breaker key
      else Breaker.success t.breaker key;
      resp
  in
  count t ~route resp;
  resp

let router ?extra_metrics ?extra_prom t =
  let route meth pattern handler =
    ( meth,
      pattern,
      guard t ~route:(Http.meth_to_string meth ^ " " ^ pattern) handler )
  in
  Router.create
    [
      route Http.GET "/healthz" (healthz t);
      route Http.GET "/metrics" (metrics ?extra:extra_metrics ?extra_prom t);
      route Http.POST "/v1/risk" (risk t);
      route Http.POST "/v1/anonymize" (anonymize t);
      route Http.POST "/v1/categorize" (categorize t);
      route Http.POST "/v1/reason" (reason t);
      route Http.POST "/v1/explain" (explain t);
      route Http.GET "/v1/datasets" (dataset_list t);
      route Http.PUT "/v1/datasets/{id}" (dataset_put t);
      route Http.GET "/v1/datasets/{id}" (dataset_get t);
      route Http.DELETE "/v1/datasets/{id}" (dataset_delete t);
      route Http.POST "/v1/datasets/{id}/facts" (dataset_append t);
      route Http.GET "/v1/datasets/{id}/risk" (dataset_risk t);
      route Http.POST "/v1/jobs" (job_submit t);
      route Http.GET "/v1/jobs" (job_list t);
      route Http.GET "/v1/jobs/{id}" (job_get t);
      route Http.DELETE "/v1/jobs/{id}" (job_cancel t);
    ]
