(* Asynchronous anonymization/risk jobs over registered datasets —
   the machinery behind POST /v1/jobs.

   A submission is admitted through three gates, in order: the tenant's
   token bucket (rate), the tenant's active-job quota, and the worker
   pool's bounded queue. Only then is the job journaled and published —
   so a rejected submission (429/503, with a [retry_after_s] hint)
   never leaves a journal record behind. Admitted jobs run on a small
   dedicated pool (created lazily on first submission, so servers that
   never see a job never spawn its domains).

   Each work attempt fires the ["job.step"] fault point and runs under
   the job's {!Vadasa_base.Budget}: DELETE cancels the budget, which a
   queued job observes before starting and a running job observes at
   the chase/cycle poll points — a cancelled job always releases its
   pool slot and reports [job.cancelled]. Transient step failures are
   re-executed under a {!Vadasa_resilience.Retry} policy; only
   Io/Resource-category errors retry (a malformed request is not going
   to parse better the second time).

   Durability piggybacks on the registry's journal: [job.submit] /
   [job.start] / [job.finish] records replay through the same
   {!Persist} machinery. After recovery, {!resume} settles what the
   journal left open — a job that was still queued re-runs (marked
   [replayed]); a job that was mid-flight when the process died can't
   be trusted to re-run exactly once, so it faults terminally as
   [job.orphaned]. *)

module E = Vadasa_base.Error
module Json = Vadasa_base.Json
module Budget = Vadasa_base.Budget
module Faultpoint = Vadasa_resilience.Faultpoint
module Retry = Vadasa_resilience.Retry
module S = Vadasa_sdc
module D = Vadasa_datagen

type state = Queued | Running | Done | Failed | Cancelled | Orphaned

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Cancelled -> "cancelled"
  | Orphaned -> "orphaned"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | "orphaned" -> Some Orphaned
  | _ -> None

let terminal = function
  | Done | Failed | Cancelled | Orphaned -> true
  | Queued | Running -> false

type job = {
  id : string;
  tenant : string;
  op : string;  (* "risk" | "anonymize" *)
  dataset : string;
  options : Codec.options;
  submitted_at : float;
  budget : Budget.t;  (* the cancel handle; never expires on its own *)
  mutable state : state;
  mutable attempts : int;
  mutable result : string option;  (* the response body, on [Done] *)
  mutable error : (string * string) option;  (* (code, message) *)
  mutable finished_at : float option;
  mutable replayed : bool;  (* re-ran after crash recovery *)
  mutable linked : bool;  (* journaled + published; workers wait on it *)
}

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  registry : Registry.t;
  persist : Persist.t option;
  retry : Retry.policy;
  quota : int;  (* max queued+running jobs per tenant *)
  retain : int;  (* terminal jobs kept per tenant; older ones pruned *)
  rate : float;  (* submissions per second per tenant *)
  burst : float;
  domains : int;
  queue : int;
  mu : Mutex.t;
  cond : Condition.t;  (* linkage + state transitions *)
  table : (string, job) Hashtbl.t;
  buckets : (string, bucket) Hashtbl.t;
  mutable pool : Pool.t option;  (* lazily created on first submit *)
  mutable next_id : int;
  (* counters, guarded by [mu] *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled : int;
  mutable orphaned : int;
  mutable replayed : int;
  mutable rejected_quota : int;
  mutable rejected_rate : int;
  mutable rejected_queue : int;
  mutable pruned : int;
}

let create ?(domains = 2) ?(queue = 64) ?(quota = 16) ?(retain = 256)
    ?(rate = 50.0) ?(burst = 100.0)
    ?(retry = { Retry.default_policy with Retry.base_delay = 0.05 }) ?persist
    registry =
  if domains < 1 then invalid_arg "Jobs.create: domains must be >= 1";
  if quota < 1 then invalid_arg "Jobs.create: quota must be >= 1";
  if retain < 1 then invalid_arg "Jobs.create: retain must be >= 1";
  if rate <= 0.0 || burst < 1.0 then
    invalid_arg "Jobs.create: rate must be > 0 and burst >= 1";
  {
    registry;
    persist;
    retry;
    quota;
    retain;
    rate;
    burst;
    domains;
    queue;
    mu = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 16;
    buckets = Hashtbl.create 16;
    pool = None;
    next_id = 1;
    submitted = 0;
    completed = 0;
    failed = 0;
    cancelled = 0;
    orphaned = 0;
    replayed = 0;
    rejected_quota = 0;
    rejected_rate = 0;
    rejected_queue = 0;
    pruned = 0;
  }

let with_commit t ~record f =
  match t.persist with
  | None -> f (fun () -> ())
  | Some p -> Persist.commit p ~record f

let not_found id =
  E.make ~code:"job.not_found" E.Wardedness
    (Printf.sprintf "no job with id %s" id)
    ~context:[ ("job", id) ]

let find t id =
  Mutex.lock t.mu;
  let job = Hashtbl.find_opt t.table id in
  Mutex.unlock t.mu;
  job

let get t id =
  match find t id with
  | Some job -> job
  | None -> raise (E.Error (not_found id))

let list t =
  Mutex.lock t.mu;
  let jobs = Hashtbl.fold (fun _ j acc -> j :: acc) t.table [] in
  Mutex.unlock t.mu;
  List.sort (fun a b -> String.compare a.id b.id) jobs

let job_json job =
  Json.Obj
    ([
       ("id", Json.Str job.id);
       ("tenant", Json.Str job.tenant);
       ("op", Json.Str job.op);
       ("dataset", Json.Str job.dataset);
       ("state", Json.Str (state_to_string job.state));
       ("attempts", Json.Int job.attempts);
       ("replayed", Json.Bool job.replayed);
       ("submitted_at", Json.Float job.submitted_at);
       ( "finished_at",
         match job.finished_at with
         | Some f -> Json.Float f
         | None -> Json.Null );
     ]
    @ (match job.result with
      | Some body -> [ ("result", Json.Str body) ]
      | None -> [])
    @
    match job.error with
    | Some (code, message) ->
      [
        ( "error",
          Json.Obj
            [ ("code", Json.Str code); ("message", Json.Str message) ] );
      ]
    | None -> [])

(* ---- admission gates ----------------------------------------------------- *)

let rate_limited tenant wait =
  E.make ~code:"tenant.rate_limited" E.Resource
    (Printf.sprintf "tenant %s is over its job submission rate" tenant)
    ~context:
      [
        ("tenant", tenant); ("retry_after_s", Printf.sprintf "%.3f" wait);
      ]

let quota_exceeded tenant quota =
  E.make ~code:"tenant.quota_exceeded" E.Resource
    (Printf.sprintf
       "tenant %s already has %d queued or running jobs (the per-tenant \
        quota); wait for one to finish or cancel one"
       tenant quota)
    ~context:[ ("tenant", tenant); ("retry_after_s", "1") ]

let queue_full =
  E.make ~code:"jobs.queue_full" E.Resource
    "the job worker queue is full; retry later"
    ~context:[ ("retry_after_s", "1") ]

(* Caller holds [mu]. Token bucket per tenant. The table is bounded by
   evicting only buckets that have already refilled to full burst —
   forgetting one of those changes nothing (a fresh bucket starts at
   burst), so client-minted tenant names can't grow the table without
   bound *and* can't launder an active tenant's debt away: a bucket
   below burst keeps its exact fill level no matter how many fresh
   tenants churn past. *)
let take_token t tenant =
  let now = Unix.gettimeofday () in
  if Hashtbl.length t.buckets > 1024 && not (Hashtbl.mem t.buckets tenant)
  then begin
    let full =
      Hashtbl.fold
        (fun name b acc ->
          if b.tokens +. ((now -. b.last) *. t.rate) >= t.burst then
            name :: acc
          else acc)
        t.buckets []
    in
    List.iter (Hashtbl.remove t.buckets) full
  end;
  let b =
    match Hashtbl.find_opt t.buckets tenant with
    | Some b -> b
    | None ->
      let b = { tokens = t.burst; last = now } in
      Hashtbl.replace t.buckets tenant b;
      b
  in
  b.tokens <- Float.min t.burst (b.tokens +. ((now -. b.last) *. t.rate));
  b.last <- now;
  if b.tokens >= 1.0 then begin
    b.tokens <- b.tokens -. 1.0;
    None
  end
  else Some ((1.0 -. b.tokens) /. t.rate)

(* caller holds [mu] *)
let active_for t tenant =
  Hashtbl.fold
    (fun _ j acc ->
      if String.equal j.tenant tenant && not (terminal j.state) then acc + 1
      else acc)
    t.table 0

(* Caller holds [mu]. Retention: keep at most [t.retain] terminal jobs
   per tenant, dropping the oldest (lowest id = submission order)
   beyond that — so the table, every snapshot dump and GET /v1/jobs
   stay bounded over the server's lifetime. Pruning is deterministic
   (id order, fired on each terminal transition), so replaying the
   journal prunes exactly what the live run pruned. *)
let prune_terminal t tenant =
  let dead =
    Hashtbl.fold
      (fun _ j acc ->
        if String.equal j.tenant tenant && terminal j.state then j :: acc
        else acc)
      t.table []
  in
  let excess = List.length dead - t.retain in
  if excess > 0 then
    List.sort (fun a b -> String.compare a.id b.id) dead
    |> List.filteri (fun i _ -> i < excess)
    |> List.iter (fun j ->
           Hashtbl.remove t.table j.id;
           t.pruned <- t.pruned + 1)

(* ---- state transitions (journaled) --------------------------------------- *)

(* Terminal transition: journal [job.finish] and apply it under [mu] in
   one commit. Idempotent — a job already terminal stays exactly as it
   was (no record written), which settles the cancel-vs-complete race
   by whoever commits first. *)
let finish t job state ?result ?error () =
  let error_fields =
    match error with
    | Some (code, message) ->
      [ ("code", Json.Str code); ("message", Json.Str message) ]
    | None -> []
  in
  let record attempts =
    Json.Obj
      ([
         ("kind", Json.Str "job.finish");
         ("job", Json.Str job.id);
         ("state", Json.Str (state_to_string state));
         ("attempts", Json.Int attempts);
       ]
      @ (match result with
        | Some body -> [ ("result", Json.Str body) ]
        | None -> [])
      @ error_fields)
  in
  with_commit t ~record:(record job.attempts) @@ fun commit_now ->
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () ->
      Condition.broadcast t.cond;
      Mutex.unlock t.mu)
    (fun () ->
      if not (terminal job.state) then begin
        commit_now ();
        job.state <- state;
        job.result <- result;
        job.error <- error;
        job.finished_at <- Some (Unix.gettimeofday ());
        (match state with
        | Done -> t.completed <- t.completed + 1
        | Failed -> t.failed <- t.failed + 1
        | Cancelled -> t.cancelled <- t.cancelled + 1
        | Orphaned -> t.orphaned <- t.orphaned + 1
        | Queued | Running -> ());
        prune_terminal t job.tenant
      end)

(* Queued -> Running, journaled; [false] when the job was cancelled (or
   otherwise settled) before a worker picked it up. *)
let start t job =
  let record =
    Json.Obj [ ("kind", Json.Str "job.start"); ("job", Json.Str job.id) ]
  in
  with_commit t ~record @@ fun commit_now ->
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if job.state = Queued then begin
        commit_now ();
        job.state <- Running;
        true
      end
      else false)

(* ---- the work itself ----------------------------------------------------- *)

let cancelled_error job =
  ( "job.cancelled",
    Printf.sprintf "job %s was cancelled before completing" job.id )

let check_cancel job =
  match Budget.check job.budget ~facts:0 with
  | None -> ()
  | Some _ ->
    let code, message = cancelled_error job in
    E.fail ~code E.Resource message ~context:[ ("job", job.id) ]

let ok_or_raise = function Ok v -> v | Error e -> raise (E.Error e)

(* The maintained incremental report — the same bytes
   [GET /v1/datasets/{id}/risk] serves (the jobs e2e test diffs them). *)
let run_risk entry =
  let options = Registry.entry_options entry in
  let md = Registry.entry_md entry in
  let report = Registry.entry_report entry in
  Codec.risk_report_string ~threshold:options.Codec.threshold md report

(* Mirrors the synchronous /v1/anonymize handler, over a snapshot of
   the registered dataset, under the job's budget (which is how cancel
   interrupts a long cycle mid-flight). *)
let run_anonymize job entry =
  let options = job.options in
  let md = Registry.entry_md_snapshot entry in
  let measure = ok_or_raise (Codec.measure_of_options options) in
  let semantics =
    match
      Vadasa_relational.Null_semantics.of_string options.Codec.semantics
    with
    | Some s -> s
    | None ->
      E.fail ~code:"semantics.unknown" E.Wardedness
        ("unknown semantics " ^ options.Codec.semantics)
        ~context:[ ("semantics", options.Codec.semantics) ]
  in
  let method_ =
    match options.Codec.method_ with
    | "suppress" -> S.Cycle.Local_suppression
    | "recode" ->
      S.Cycle.Recode_then_suppress (D.Generator.synthetic_hierarchy md)
    | other ->
      E.fail ~code:"method.unknown" E.Wardedness ("unknown method " ^ other)
        ~context:[ ("method", other) ]
  in
  let config =
    {
      S.Cycle.default_config with
      S.Cycle.measure;
      threshold = options.Codec.threshold;
      semantics;
      method_;
    }
  in
  let outcome = S.Cycle.run ~config ~budget:job.budget md in
  Json.to_string ~indent:true (Codec.anonymize_outcome_json md outcome) ^ "\n"

let step t job () =
  Mutex.lock t.mu;
  job.attempts <- job.attempts + 1;
  Mutex.unlock t.mu;
  (* One fault-point firing per execution attempt: [job.step:fail@1]
     fails exactly the first attempt and lets the retry succeed. *)
  Faultpoint.hit "job.step";
  check_cancel job;
  let entry = Registry.get t.registry job.dataset in
  match job.op with
  | "risk" -> run_risk entry
  | "anonymize" -> run_anonymize job entry
  | other ->
    E.fail ~code:"job.bad_op" E.Parse
      (Printf.sprintf "unknown job op %s (expected risk or anonymize)" other)
      ~context:[ ("op", other) ]

(* Only failures that plausibly pass on re-execution retry; a cancelled
   budget never does (the retry loop must not outlive a DELETE). *)
let should_retry job ~attempt:_ = function
  | E.Error e
    when (e.E.category = E.Io || e.E.category = E.Resource)
         && e.E.code <> "job.cancelled"
         && Budget.check job.budget ~facts:0 = None ->
    Some None  (* no server-provided Retry-After; use the backoff *)
  | _ -> None

let execute t job () =
  (* The submit path publishes the job (journal + table) after the pool
     accepted it; don't run before that linkage is visible. *)
  Mutex.lock t.mu;
  while not job.linked do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu;
  if start t job then begin
    match
      Retry.run ~policy:t.retry ~should_retry:(should_retry job) (step t job)
    with
    | body ->
      (* A budget cancelled mid-run interrupts the cycle/chase at a poll
         point and still returns a (degraded) body; the job must report
         cancelled, not quietly complete. *)
      if Budget.check job.budget ~facts:0 = None then
        finish t job Done ~result:body ()
      else finish t job Cancelled ~error:(cancelled_error job) ()
    | exception E.Error e when e.E.code = "job.cancelled" ->
      finish t job Cancelled ~error:(cancelled_error job) ()
    | exception e ->
      let e = Codec.error_of_exn e in
      finish t job Failed ~error:(e.E.code, e.E.message) ()
  end

(* caller holds [mu] *)
let pool t =
  match t.pool with
  | Some p -> p
  | None ->
    let p = Pool.create ~domains:t.domains ~queue_capacity:t.queue () in
    t.pool <- Some p;
    p

let enqueue t job =
  let p =
    Mutex.lock t.mu;
    let p = pool t in
    Mutex.unlock t.mu;
    p
  in
  Pool.submit p
    ~expired:(fun () ->
      finish t job Failed
        ~error:("job.expired", "job expired before a worker picked it up")
        ())
    (execute t job)

(* ---- submission ---------------------------------------------------------- *)

let validate_op op =
  if op <> "risk" && op <> "anonymize" then
    E.fail ~code:"job.bad_op" E.Parse
      (Printf.sprintf "unknown job op %s (expected risk or anonymize)" op)
      ~context:[ ("op", op) ]

let validate_tenant tenant =
  let ok_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
    | _ -> false
  in
  if
    tenant = ""
    || String.length tenant > 64
    || not (String.for_all ok_char tenant)
  then
    E.fail ~code:"tenant.bad_id" E.Parse
      (Printf.sprintf
         "invalid tenant %S (want 1-64 chars of [A-Za-z0-9._-])" tenant)

let submit_record job =
  Json.Obj
    [
      ("kind", Json.Str "job.submit");
      ("job", Json.Str job.id);
      ("tenant", Json.Str job.tenant);
      ("op", Json.Str job.op);
      ("dataset", Json.Str job.dataset);
      ("options", Codec.options_to_json job.options);
      ("submitted_at", Json.Float job.submitted_at);
    ]

let submit t ~tenant ~dataset ~op ~options =
  validate_op op;
  validate_tenant tenant;
  (* Fail fast on an unregistered dataset (404), before spending a rate
     token on a submission that can't run. *)
  ignore (Registry.get t.registry dataset);
  let admitted =
    Mutex.lock t.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mu)
      (fun () ->
        match take_token t tenant with
        | Some wait ->
          t.rejected_rate <- t.rejected_rate + 1;
          Error (rate_limited tenant wait)
        | None ->
          if active_for t tenant >= t.quota then begin
            t.rejected_quota <- t.rejected_quota + 1;
            Error (quota_exceeded tenant t.quota)
          end
          else begin
            let id = Printf.sprintf "job-%06d" t.next_id in
            t.next_id <- t.next_id + 1;
            Ok id
          end)
  in
  let id = ok_or_raise admitted in
  let job =
    {
      id;
      tenant;
      op;
      dataset;
      options;
      submitted_at = Unix.gettimeofday ();
      budget = Budget.create ();
      state = Queued;
      attempts = 0;
      result = None;
      error = None;
      finished_at = None;
      replayed = false;
      linked = false;
    }
  in
  (* Reserve the pool slot before journaling: a queue-full 503 must not
     leave a journal record claiming the job exists. The worker blocks
     on [linked] until the record is durable and the job published. *)
  if not (enqueue t job) then begin
    Mutex.lock t.mu;
    t.rejected_queue <- t.rejected_queue + 1;
    Mutex.unlock t.mu;
    raise (E.Error queue_full)
  end;
  (match
     with_commit t ~record:(submit_record job) @@ fun commit_now ->
     Mutex.lock t.mu;
     Fun.protect
       ~finally:(fun () ->
         Condition.broadcast t.cond;
         Mutex.unlock t.mu)
       (fun () ->
         commit_now ();
         Hashtbl.replace t.table id job;
         t.submitted <- t.submitted + 1;
         job.linked <- true)
   with
  | () -> ()
  | exception e ->
    (* The journal refused the submit record: unblock the reserved
       worker slot with the job settled as failed (nothing durable, so
       a restart won't resurrect it either). *)
    Mutex.lock t.mu;
    job.state <- Failed;
    job.error <- Some ("jobs.journal", "could not journal the submission");
    job.finished_at <- Some (Unix.gettimeofday ());
    job.linked <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu;
    raise e);
  job

let cancel t id =
  let job = get t id in
  (* Cooperative: running work observes the budget at its poll points. *)
  Budget.cancel job.budget;
  (if job.state = Queued then
     (* Settle a not-yet-started job immediately; [finish] is a no-op if
        a worker won the race in the meantime. *)
     finish t job Cancelled ~error:(cancelled_error job) ());
  job

(* ---- persistence --------------------------------------------------------- *)

let bad_record detail =
  E.Error (E.make ~code:"persist.bad_record" E.Io ("journal record: " ^ detail))

let record_string json key =
  match Option.bind (Json.member key json) Json.to_string_opt with
  | Some s -> s
  | None -> raise (bad_record ("missing string field " ^ key))

let record_options json =
  match Json.member "options" json with
  | Some options_json -> (
    match Codec.options_of_json options_json with
    | Ok options -> options
    | Error e -> raise (E.Error e))
  | None -> raise (bad_record "missing options")

(* Track the id counter past every id ever seen, so post-recovery ids
   never collide with journaled ones. Caller holds [mu]. *)
let note_id t id =
  match String.index_opt id '-' with
  | Some i -> (
    match int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
    with
    | Some n -> t.next_id <- max t.next_id (n + 1)
    | None -> ())
  | None -> ()

let insert_restored t job =
  Mutex.lock t.mu;
  Hashtbl.replace t.table job.id job;
  note_id t job.id;
  t.submitted <- t.submitted + 1;
  Mutex.unlock t.mu

let job_of_record t json =
  let id = record_string json "job" in
  ignore t;
  {
    id;
    tenant = record_string json "tenant";
    op = record_string json "op";
    dataset = record_string json "dataset";
    options = record_options json;
    submitted_at =
      (match
         Option.bind (Json.member "submitted_at" json) Json.to_float_opt
       with
      | Some f -> f
      | None -> Unix.gettimeofday ());
    budget = Budget.create ();
    state = Queued;
    attempts = 0;
    result = None;
    error = None;
    finished_at = None;
    replayed = false;
    linked = true;  (* replayed jobs don't race a live submit *)
  }

let apply t json =
  match record_string json "kind" with
  | "job.submit" -> insert_restored t (job_of_record t json)
  | "job.start" ->
    let job = get t (record_string json "job") in
    Mutex.lock t.mu;
    if job.state = Queued then job.state <- Running;
    Mutex.unlock t.mu
  | "job.finish" ->
    let job = get t (record_string json "job") in
    let state =
      match state_of_string (record_string json "state") with
      | Some s when terminal s -> s
      | _ -> raise (bad_record "bad terminal state")
    in
    Mutex.lock t.mu;
    job.state <- state;
    (match Option.bind (Json.member "attempts" json) Json.to_int_opt with
    | Some n -> job.attempts <- n
    | None -> ());
    job.result <- Option.bind (Json.member "result" json) Json.to_string_opt;
    (match Option.bind (Json.member "code" json) Json.to_string_opt with
    | Some code ->
      job.error <-
        Some
          ( code,
            Option.value ~default:""
              (Option.bind (Json.member "message" json) Json.to_string_opt) )
    | None -> ());
    job.finished_at <- Some job.submitted_at;
    prune_terminal t job.tenant;
    Mutex.unlock t.mu
  | kind -> raise (bad_record ("unknown kind " ^ kind))

let dump_job job =
  Json.Obj
    ([
       ("job", Json.Str job.id);
       ("tenant", Json.Str job.tenant);
       ("op", Json.Str job.op);
       ("dataset", Json.Str job.dataset);
       ("options", Codec.options_to_json job.options);
       ("submitted_at", Json.Float job.submitted_at);
       ("state", Json.Str (state_to_string job.state));
       ("attempts", Json.Int job.attempts);
       ("replayed", Json.Bool job.replayed);
     ]
    @ (match job.result with
      | Some body -> [ ("result", Json.Str body) ]
      | None -> [])
    @
    match job.error with
    | Some (code, message) ->
      [ ("code", Json.Str code); ("message", Json.Str message) ]
    | None -> [])

let dump t =
  let jobs = list t in
  Mutex.lock t.mu;
  let next_id = t.next_id in
  Mutex.unlock t.mu;
  Json.Obj
    [
      ("next_id", Json.Int next_id);
      ("jobs", Json.List (List.map dump_job jobs));
    ]

let restore t json =
  (match Option.bind (Json.member "next_id" json) Json.to_int_opt with
  | Some n ->
    Mutex.lock t.mu;
    t.next_id <- max t.next_id n;
    Mutex.unlock t.mu
  | None -> ());
  match Option.bind (Json.member "jobs" json) Json.to_list_opt with
  | None -> ()
  | Some jobs ->
    List.iter
      (fun job_json ->
        let job = job_of_record t job_json in
        (match
           Option.bind (Json.member "state" job_json) Json.to_string_opt
           |> Fun.flip Option.bind state_of_string
         with
        | Some state -> job.state <- state
        | None -> ());
        (match
           Option.bind (Json.member "attempts" job_json) Json.to_int_opt
         with
        | Some n -> job.attempts <- n
        | None -> ());
        job.result <-
          Option.bind (Json.member "result" job_json) Json.to_string_opt;
        (match
           Option.bind (Json.member "code" job_json) Json.to_string_opt
         with
        | Some code ->
          job.error <-
            Some
              ( code,
                Option.value ~default:""
                  (Option.bind (Json.member "message" job_json)
                     Json.to_string_opt) )
        | None -> ());
        if terminal job.state then job.finished_at <- Some job.submitted_at;
        insert_restored t job;
        (* snapshots written under a larger [retain] still load bounded *)
        if terminal job.state then begin
          Mutex.lock t.mu;
          prune_terminal t job.tenant;
          Mutex.unlock t.mu
        end)
      jobs

(* Settle everything recovery left non-terminal. Queued jobs re-run
   (they were acknowledged but never started — exactly-once is still
   achievable); a job that was running when the process died may have
   had partial effects observed, so it faults as [job.orphaned] rather
   than risk a double execution the client didn't ask for. *)
let resume t =
  let pending =
    List.filter (fun job -> not (terminal job.state)) (list t)
  in
  List.iter
    (fun job ->
      match job.state with
      | Running ->
        Mutex.lock t.mu;
        job.state <- Queued;  (* so [finish]'s guard sees non-terminal *)
        Mutex.unlock t.mu;
        finish t job Orphaned
          ~error:
            ( "job.orphaned",
              "the server restarted while this job was running; verify and \
               resubmit" )
          ()
      | Queued ->
        Mutex.lock t.mu;
        job.replayed <- true;
        t.replayed <- t.replayed + 1;
        Mutex.unlock t.mu;
        if not (enqueue t job) then
          finish t job Failed
            ~error:("jobs.queue_full", "no worker slot at recovery")
            ()
      | _ -> ())
    pending

let register t =
  match t.persist with
  | None -> ()
  | Some p ->
    Persist.register p ~section:"jobs" ~prefix:"job." ~dump:(fun () -> dump t)
      ~restore:(restore t) ~apply:(apply t)

(* ---- accessors ----------------------------------------------------------- *)

let job_id job = job.id

let job_state job = job.state

let job_attempts job = job.attempts

let job_result job = job.result

let job_error job = job.error

let job_replayed (job : job) = job.replayed

(* ---- lifecycle / accounting ---------------------------------------------- *)

let stop t =
  let p =
    Mutex.lock t.mu;
    let p = t.pool in
    t.pool <- None;
    Mutex.unlock t.mu;
    p
  in
  match p with None -> () | Some p -> Pool.stop p

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  orphaned : int;
  replayed : int;
  rejected_quota : int;
  rejected_rate : int;
  rejected_queue : int;
  pruned : int;
  queued : int;
  running : int;
}

let counters t =
  Mutex.lock t.mu;
  let queued, running =
    Hashtbl.fold
      (fun _ j (q, r) ->
        match j.state with
        | Queued -> (q + 1, r)
        | Running -> (q, r + 1)
        | _ -> (q, r))
      t.table (0, 0)
  in
  let c =
    {
      submitted = t.submitted;
      completed = t.completed;
      failed = t.failed;
      cancelled = t.cancelled;
      orphaned = t.orphaned;
      replayed = t.replayed;
      rejected_quota = t.rejected_quota;
      rejected_rate = t.rejected_rate;
      rejected_queue = t.rejected_queue;
      pruned = t.pruned;
      queued;
      running;
    }
  in
  Mutex.unlock t.mu;
  c

let stats t =
  let c = counters t in
  Json.Obj
    [
      ("submitted", Json.Int c.submitted);
      ("completed", Json.Int c.completed);
      ("failed", Json.Int c.failed);
      ("cancelled", Json.Int c.cancelled);
      ("orphaned", Json.Int c.orphaned);
      ("replayed", Json.Int c.replayed);
      ("rejected_quota", Json.Int c.rejected_quota);
      ("rejected_rate", Json.Int c.rejected_rate);
      ("rejected_queue", Json.Int c.rejected_queue);
      ("pruned", Json.Int c.pruned);
      ("queued", Json.Int c.queued);
      ("running", Json.Int c.running);
      ("quota", Json.Int t.quota);
      ("retain", Json.Int t.retain);
      ("rate", Json.Float t.rate);
      ("burst", Json.Float t.burst);
    ]
