(* Append-only record journal with CRC-framed records and group commit.

   Frame layout (little-endian):

     magic "VJL1" (4) | seq (8) | len (4) | crc32(payload) (4) | payload

   Appenders enqueue payloads and block; a single writer domain drains
   everything pending into one [write] + one [fsync] (group commit), so
   N concurrent commits pay one durable round-trip between them. A
   batch that fails mid-flight — an injected ["journal.write"] /
   ["journal.fsync"] fault or a real I/O error — is rolled back with
   [ftruncate] to the pre-batch offset and every waiter in it gets the
   error: a failed append leaves no bytes behind, so commit-after-ack
   is exact. Torn tails from a crash mid-write are the reader's
   problem: [scan] stops at the first frame whose header, bounds or
   CRC doesn't check out and reports the discarded byte count. *)

module E = Vadasa_base.Error
module Json = Vadasa_base.Json
module Faultpoint = Vadasa_resilience.Faultpoint

let magic = "VJL1"

let header_bytes = 20

(* ---- CRC-32 (IEEE 802.3, reflected) ------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ---- framing ------------------------------------------------------------- *)

let frame ~seq payload =
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_int64_le b 4 (Int64.of_int seq);
  Bytes.set_int32_le b 12 (Int32.of_int len);
  Bytes.set_int32_le b 16 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b header_bytes len;
  b

type scan_result = {
  records : (int * string) list;  (* (seq, payload), file order *)
  truncated_bytes : int;  (* torn tail discarded by the CRC check *)
  next_seq : int;  (* 1 + the highest sequence number seen *)
}

let scan ~path =
  let raw =
    match open_in_bin path with
    | exception Sys_error _ -> ""
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
  in
  let total = String.length raw in
  let b = Bytes.unsafe_of_string raw in
  let rec go pos acc next_seq =
    if pos + header_bytes > total then (List.rev acc, total - pos, next_seq)
    else if not (String.equal (String.sub raw pos 4) magic) then
      (List.rev acc, total - pos, next_seq)
    else
      let seq = Int64.to_int (Bytes.get_int64_le b (pos + 4)) in
      let len = Int32.to_int (Bytes.get_int32_le b (pos + 12)) in
      let crc = Int32.to_int (Bytes.get_int32_le b (pos + 16)) land 0xFFFFFFFF in
      if len < 0 || pos + header_bytes + len > total then
        (List.rev acc, total - pos, next_seq)
      else
        let payload = String.sub raw (pos + header_bytes) len in
        if crc32 payload <> crc then (List.rev acc, total - pos, next_seq)
        else
          go
            (pos + header_bytes + len)
            ((seq, payload) :: acc)
            (max next_seq (seq + 1))
  in
  let records, truncated_bytes, next_seq = go 0 [] 1 in
  { records; truncated_bytes; next_seq }

(* ---- the append side ----------------------------------------------------- *)

type pending = {
  payload : string;
  mutable outcome : [ `Waiting | `Done of int | `Failed of exn ];
}

type t = {
  path : string;
  fd : Unix.file_descr;
  mu : Mutex.t;
  cond : Condition.t;  (* wakes both the writer and finished appenders *)
  queue : pending Queue.t;
  mutable next_seq : int;
  mutable stopping : bool;
  mutable writer : unit Domain.t option;
  (* counters, read under [mu] *)
  mutable appends : int;
  mutable bytes : int;
  mutable fsyncs : int;
  mutable batches : int;
  mutable errors : int;
}

let journal_error ~path fn err =
  E.Error
    (E.make ~code:"journal.io" E.Io
       (Printf.sprintf "%s: %s" fn (Unix.error_message err))
       ~context:[ ("journal", path) ])

(* One drained batch: frame everything, one write, one fsync. On any
   failure roll the file back to [start] so no half-durable record
   survives, then hand the error to every waiter. *)
let commit_batch t batch =
  let start = Unix.lseek t.fd 0 Unix.SEEK_END in
  let buf = Buffer.create 1024 in
  let seq0 = t.next_seq in
  List.iteri
    (fun i p -> Buffer.add_bytes buf (frame ~seq:(seq0 + i) p.payload))
    batch;
  match
    Faultpoint.hit "journal.write";
    let raw = Buffer.to_bytes buf in
    let off = ref 0 in
    while !off < Bytes.length raw do
      match Unix.write t.fd raw !off (Bytes.length raw - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error (err, fn, _) ->
        raise (journal_error ~path:t.path fn err)
    done;
    Faultpoint.hit "journal.fsync";
    (match Unix.fsync t.fd with
    | () -> ()
    | exception Unix.Unix_error (err, fn, _) ->
      raise (journal_error ~path:t.path fn err))
  with
  | () ->
    Mutex.lock t.mu;
    List.iteri (fun i p -> p.outcome <- `Done (seq0 + i)) batch;
    t.next_seq <- seq0 + List.length batch;
    t.appends <- t.appends + List.length batch;
    t.bytes <- t.bytes + Buffer.length buf;
    t.fsyncs <- t.fsyncs + 1;
    t.batches <- t.batches + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu
  | exception e ->
    (* Roll back whatever the failed batch left behind; if even that
       fails the torn frames stay and the CRC scan discards them. *)
    (try Unix.ftruncate t.fd start with Unix.Unix_error _ -> ());
    (try ignore (Unix.lseek t.fd 0 Unix.SEEK_END) with Unix.Unix_error _ -> ());
    Mutex.lock t.mu;
    List.iter (fun p -> p.outcome <- `Failed e) batch;
    t.errors <- t.errors + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mu

let writer_loop t =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.cond t.mu
    done;
    let batch = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    let stop = t.stopping && batch = [] in
    Mutex.unlock t.mu;
    if batch <> [] then commit_batch t batch;
    if not stop then loop ()
  in
  loop ()

let open_ ?(min_next_seq = 1) ~path () =
  let ({ next_seq; truncated_bytes; _ } : scan_result) = scan ~path in
  let fd =
    match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 with
    | fd -> fd
    | exception Unix.Unix_error (err, fn, _) ->
      raise (journal_error ~path fn err)
  in
  let size = Unix.lseek fd 0 Unix.SEEK_END in
  (* Cut the torn tail off the file, not just the scan: appending after
     the corrupt bytes would strand every later record behind the
     CRC-scan stop on the next recovery. *)
  if truncated_bytes > 0 then begin
    (match
       Unix.ftruncate fd (size - truncated_bytes);
       Unix.fsync fd
     with
    | () -> ()
    | exception Unix.Unix_error (err, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (journal_error ~path fn err));
    ignore (Unix.lseek fd 0 Unix.SEEK_END)
  end;
  let next_seq = max next_seq min_next_seq in
  let t =
    {
      path;
      fd;
      mu = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      next_seq;
      stopping = false;
      writer = None;
      appends = 0;
      bytes = 0;
      fsyncs = 0;
      batches = 0;
      errors = 0;
    }
  in
  t.writer <- Some (Domain.spawn (fun () -> writer_loop t));
  t

let append t payload =
  let p = { payload; outcome = `Waiting } in
  Mutex.lock t.mu;
  if t.stopping then begin
    Mutex.unlock t.mu;
    raise
      (E.Error
         (E.make ~code:"journal.closed" E.Io "journal is closed"
            ~context:[ ("journal", t.path) ]))
  end;
  Queue.add p t.queue;
  Condition.broadcast t.cond;
  while p.outcome = `Waiting do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu;
  match p.outcome with
  | `Done seq -> seq
  | `Failed e -> raise e
  | `Waiting -> assert false

let last_seq t =
  Mutex.lock t.mu;
  let n = t.next_seq - 1 in
  Mutex.unlock t.mu;
  n

(* Drop every durable record (the snapshot now owns them); sequence
   numbers keep counting so "seq <= snapshot.last_seq" stays the replay
   skip rule even for a crash between snapshot rename and truncate. *)
let truncate t =
  (match Unix.ftruncate t.fd 0 with
  | () -> ()
  | exception Unix.Unix_error (err, fn, _) ->
    raise (journal_error ~path:t.path fn err));
  ignore (Unix.lseek t.fd 0 Unix.SEEK_END);
  match Unix.fsync t.fd with
  | () -> ()
  | exception Unix.Unix_error (err, fn, _) ->
    raise (journal_error ~path:t.path fn err)

let close t =
  let join =
    Mutex.lock t.mu;
    if t.stopping then begin
      Mutex.unlock t.mu;
      None
    end
    else begin
      t.stopping <- true;
      Condition.broadcast t.cond;
      let w = t.writer in
      t.writer <- None;
      Mutex.unlock t.mu;
      w
    end
  in
  match join with
  | None -> ()
  | Some d ->
    Domain.join d;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())

type counters = {
  appends : int;
  bytes : int;
  fsyncs : int;
  batches : int;
  errors : int;
}

let counters t =
  Mutex.lock t.mu;
  let c =
    {
      appends = t.appends;
      bytes = t.bytes;
      fsyncs = t.fsyncs;
      batches = t.batches;
      errors = t.errors;
    }
  in
  Mutex.unlock t.mu;
  c

let stats t =
  let c = counters t in
  Json.Obj
    [
      ("appends", Json.Int c.appends);
      ("bytes", Json.Int c.bytes);
      ("fsyncs", Json.Int c.fsyncs);
      ("batches", Json.Int c.batches);
      ("errors", Json.Int c.errors);
      ("last_seq", Json.Int (last_seq t));
    ]
