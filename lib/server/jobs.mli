(** Asynchronous anonymization/risk jobs over registered datasets — the
    subsystem behind [POST /v1/jobs].

    Submissions pass three admission gates in order — the tenant's
    token-bucket rate limit, the tenant's active-job quota, and the
    worker pool's bounded queue — and only then are journaled and
    published, so a rejected submission leaves no durable trace. The
    typed rejections carry a [retry_after_s] context pair (rendered as
    a real [Retry-After] header by {!Codec.response_of_error}):
    [tenant.rate_limited] and [tenant.quota_exceeded] map to HTTP 429,
    [jobs.queue_full] to 503.

    Each work attempt fires the ["job.step"] fault point; transient
    (Io/Resource) failures re-execute under a
    {!Vadasa_resilience.Retry} policy. {!cancel} is cooperative: it
    cancels the job's {!Vadasa_base.Budget}, which queued jobs observe
    before starting and running jobs observe at the engine/cycle poll
    points — a cancelled job always releases its worker slot and
    reports [job.cancelled].

    With a {!Persist} store attached, [job.submit] / [job.start] /
    [job.finish] transitions are journaled ahead of becoming visible.
    After {!Persist.recover}, {!resume} settles what the journal left
    open: still-queued jobs re-run (marked [replayed] in their status),
    jobs that were mid-flight fault terminally as [job.orphaned] (they
    may have had observable effects; re-running them silently could
    double-apply). Terminal jobs survive restarts byte-identically,
    results included. See docs/JOBS.md. *)

type t

type job
(** A submitted job; handles stay valid after terminal transitions. *)

type state = Queued | Running | Done | Failed | Cancelled | Orphaned

val state_to_string : state -> string
(** ["queued"], ["running"], ["done"], ["failed"], ["cancelled"],
    ["orphaned"]. *)

val create :
  ?domains:int ->
  ?queue:int ->
  ?quota:int ->
  ?retain:int ->
  ?rate:float ->
  ?burst:float ->
  ?retry:Vadasa_resilience.Retry.policy ->
  ?persist:Persist.t ->
  Registry.t ->
  t
(** [domains] (default 2) and [queue] (default 64) size the worker
    pool, which is created lazily on first submission (a server that
    never sees a job never spawns it). [quota] (default 16) bounds each
    tenant's queued+running jobs; [retain] (default 256) bounds each
    tenant's {e terminal} jobs — once exceeded the oldest are pruned
    from the table (and hence from listings and snapshots), so a
    long-lived server's memory and snapshot size stay bounded.
    [rate]/[burst] (default 50/s, 100) parameterize the per-tenant
    submission token bucket. [retry] is the per-step re-execution
    policy. *)

val register : t -> unit
(** Register the jobs table with the [persist] store given at creation
    (section ["jobs"], record prefix ["job."]); no-op without one. Call
    before {!Persist.recover}. *)

val resume : t -> unit
(** Settle non-terminal jobs after {!Persist.recover}: re-run queued
    ones (counted and marked [replayed]), fault previously-running ones
    as [job.orphaned]. *)

val submit :
  t -> tenant:string -> dataset:string -> op:string -> options:Codec.options ->
  job
(** Admit, journal, publish and enqueue a job. [op] is ["risk"] (the
    dataset's maintained incremental report — byte-identical to
    [GET /v1/datasets/{id}/risk]) or ["anonymize"] (a suppression/
    recoding cycle over a snapshot, honouring [options]). Raises
    [job.bad_op], [tenant.bad_id], [dataset.not_found],
    [tenant.rate_limited], [tenant.quota_exceeded], [jobs.queue_full]. *)

val cancel : t -> string -> job
(** Cooperatively cancel: a still-queued job settles as [Cancelled]
    immediately; a running one is interrupted at its next budget poll
    point. Idempotent; terminal jobs are returned unchanged. Raises
    [job.not_found]. *)

val find : t -> string -> job option

val get : t -> string -> job
(** Raises [job.not_found]. *)

val list : t -> job list
(** Sorted by id (= submission order). *)

val job_json : job -> Vadasa_base.Json.t
(** The [GET /v1/jobs/{id}] body: id, tenant, op, dataset, state,
    attempts, replayed, timestamps, plus [result] (the Done body) or
    [error] ([{code; message}]). *)

(** {2 Job accessors} *)

val job_id : job -> string

val job_state : job -> state

val job_attempts : job -> int

val job_result : job -> string option
(** The response body the op produced, once [Done]. *)

val job_error : job -> (string * string) option
(** [(code, message)] for [Failed] / [Cancelled] / [Orphaned] jobs. *)

val job_replayed : job -> bool

(** {2 Lifecycle and accounting} *)

val stop : t -> unit
(** Stop the worker pool (drains queued jobs first). Idempotent. *)

type counters = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  orphaned : int;
  replayed : int;
  rejected_quota : int;
  rejected_rate : int;
  rejected_queue : int;
  pruned : int;  (** terminal jobs dropped by the per-tenant retention cap *)
  queued : int;
  running : int;
}

val counters : t -> counters

val stats : t -> Vadasa_base.Json.t
(** The [GET /metrics] ["jobs"] object. *)
