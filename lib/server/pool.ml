(* A fixed-size pool of OCaml 5 domains draining a bounded job queue.

   Backpressure is explicit: [submit] returns [false] when the queue is
   full (the accept loop answers 503 without blocking), and jobs carry a
   deadline — if a job has waited in the queue up to its deadline the
   worker runs its [expired] callback (the connection gets a 408)
   instead of the job body, so a burst cannot make the tail of the queue
   do work for clients that already gave up. Deadlines are compared
   against the non-decreasing [Vadasa_base.Clock], and the comparison is
   inclusive: a job dequeued exactly at its deadline is expired rather
   than run with a zero budget. [stop] drains outstanding jobs and joins
   every domain. *)

module Clock = Vadasa_base.Clock

let log_src = Logs.Src.create "vadasa.pool" ~doc:"server worker pool"

module Log = (val Logs.src_log log_src : Logs.LOG)

type job = {
  run : unit -> unit;
  expired : unit -> unit;
  deadline : float;  (* absolute Clock time; infinity = none *)
}

type state = Running | Stopping

type t = {
  queue : job Queue.t;
  capacity : int;
  size : int;  (* worker domains, fixed at creation *)
  mutex : Mutex.t;
  not_empty : Condition.t;
  mutable state : state;
  mutable domains : unit Domain.t list;
  (* counters, guarded by [mutex] *)
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable expired_jobs : int;
  mutable raised : int;
  mutable busy : int;  (* workers currently running a job *)
  mutable last_error : string option;  (* most recent job exception *)
}

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && t.state = Running do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then (
      (* Stopping and drained: exit. *)
      Mutex.unlock t.mutex)
    else begin
      let job = Queue.pop t.queue in
      t.busy <- t.busy + 1;
      Mutex.unlock t.mutex;
      if Clock.expired job.deadline then begin
        (try job.expired () with _ -> ());
        Mutex.lock t.mutex;
        t.expired_jobs <- t.expired_jobs + 1;
        t.busy <- t.busy - 1;
        Mutex.unlock t.mutex
      end
      else begin
        (* Supervisor: a raising job must never take the domain down —
           record the exception and keep draining the queue. *)
        (match job.run () with
        | () ->
          Mutex.lock t.mutex;
          t.completed <- t.completed + 1;
          t.busy <- t.busy - 1;
          Mutex.unlock t.mutex
        | exception e ->
          let msg = Printexc.to_string e in
          Log.warn (fun m -> m "job raised: %s" msg);
          Mutex.lock t.mutex;
          t.raised <- t.raised + 1;
          t.busy <- t.busy - 1;
          t.last_error <- Some msg;
          Mutex.unlock t.mutex)
      end;
      loop ()
    end
  in
  loop ()

let create ?(domains = 4) ?(queue_capacity = 128) () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue_capacity must be >= 1";
  let t =
    {
      queue = Queue.create ();
      capacity = queue_capacity;
      size = domains;
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      state = Running;
      domains = [];
      submitted = 0;
      rejected = 0;
      completed = 0;
      expired_jobs = 0;
      raised = 0;
      busy = 0;
      last_error = None;
    }
  in
  t.domains <- List.init domains (fun _ -> Domain.spawn (worker t));
  t

let submit t ?(deadline = infinity) ~expired run =
  (* An armed [pool.enqueue:fail] behaves exactly like a full queue:
     the submission is rejected and counted, nothing leaks. *)
  let injected =
    match Vadasa_resilience.Faultpoint.hit "pool.enqueue" with
    | () -> false
    | exception Vadasa_base.Error.Error _ -> true
  in
  Mutex.lock t.mutex;
  let accepted =
    (not injected) && t.state = Running && Queue.length t.queue < t.capacity
  in
  if accepted then begin
    Queue.push { run; expired; deadline } t.queue;
    t.submitted <- t.submitted + 1;
    Condition.signal t.not_empty
  end
  else t.rejected <- t.rejected + 1;
  Mutex.unlock t.mutex;
  accepted

let stop t =
  Mutex.lock t.mutex;
  let domains = t.domains in
  t.state <- Stopping;
  t.domains <- [];
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex;
  List.iter Domain.join domains

let queue_length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let size t = t.size

let busy t =
  Mutex.lock t.mutex;
  let n = t.busy in
  Mutex.unlock t.mutex;
  n

let counters t =
  Mutex.lock t.mutex;
  let c =
    ( t.submitted,
      t.rejected,
      t.completed,
      t.expired_jobs,
      t.raised )
  in
  Mutex.unlock t.mutex;
  c

let last_error t =
  Mutex.lock t.mutex;
  let e = t.last_error in
  Mutex.unlock t.mutex;
  e

let stats t =
  let submitted, rejected, completed, expired, raised = counters t in
  Vadasa_base.Json.Obj
    ([
       ("queue_length", Vadasa_base.Json.Int (queue_length t));
       ("queue_capacity", Vadasa_base.Json.Int t.capacity);
       ("domains", Vadasa_base.Json.Int t.size);
       ("busy", Vadasa_base.Json.Int (busy t));
       ("submitted", Vadasa_base.Json.Int submitted);
       ("rejected", Vadasa_base.Json.Int rejected);
       ("completed", Vadasa_base.Json.Int completed);
       ("expired", Vadasa_base.Json.Int expired);
       ("raised", Vadasa_base.Json.Int raised);
     ]
    @
    match last_error t with
    | None -> []
    | Some msg -> [ ("last_error", Vadasa_base.Json.Str msg) ])
