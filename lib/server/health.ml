module Telemetry = Vadasa_telemetry.Telemetry

let sample_gc () =
  if Telemetry.enabled () then begin
    let s = Gc.quick_stat () in
    let d = (Domain.self () :> int) in
    let dg suffix v =
      Telemetry.gauge (Printf.sprintf "gc.domain%d.%s" d suffix) v
    in
    dg "minor_words" s.Gc.minor_words;
    dg "major_words" s.Gc.major_words;
    dg "promoted_words" s.Gc.promoted_words;
    (* The major heap is shared across domains: last writer wins is the
       right merge for these. *)
    Telemetry.gauge "gc.heap_words" (float_of_int s.Gc.heap_words);
    Telemetry.gauge "gc.top_heap_words" (float_of_int s.Gc.top_heap_words);
    Telemetry.gauge "gc.minor_collections" (float_of_int s.Gc.minor_collections);
    Telemetry.gauge "gc.major_collections" (float_of_int s.Gc.major_collections);
    Telemetry.gauge "gc.compactions" (float_of_int s.Gc.compactions)
  end

let pool_prom pool buf =
  let domains = Pool.size pool in
  let busy = Pool.busy pool in
  Prom.family buf ~name:"vadasa_pool_domains"
    ~help:"Worker domains in the HTTP pool" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_pool_domains" domains;
  Prom.family buf ~name:"vadasa_pool_busy_domains"
    ~help:"Worker domains currently executing a job" ~typ:"gauge";
  Prom.sample_int buf ~name:"vadasa_pool_busy_domains" busy;
  Prom.family buf ~name:"vadasa_pool_utilization"
    ~help:"Busy fraction of the HTTP worker pool (0..1)" ~typ:"gauge";
  Prom.sample_float buf ~name:"vadasa_pool_utilization"
    (if domains = 0 then 0.0 else float_of_int busy /. float_of_int domains)
