(** Minimal, dependency-free HTTP/1.1 over [Unix] file descriptors.

    One request per connection: the parser reads a single request
    (request line, headers, [Content-Length] body) and the serializer
    always answers with [Connection: close]. Chunked transfer encoding
    is rejected with 501; request line, header block and body size are
    bounded by {!limits} (413 on an oversized body, 400 on everything
    malformed). The parser is pure over a {!reader} function, so tests
    drive it from strings while the server drives it from sockets. *)

type meth = GET | POST | HEAD | PUT | DELETE | Other of string

val meth_of_string : string -> meth

val meth_to_string : meth -> string

type request = {
  meth : meth;
  target : string;  (** raw request target, e.g. ["/v1/risk?k=3"] *)
  path : string;  (** decoded path component *)
  query : (string * string) list;  (** decoded key–value pairs *)
  version : string;  (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
  mutable deadline : float option;
      (** absolute {!Vadasa_base.Clock} time by which the response
          should be written; [None] until the server stamps it after
          parsing — handlers derive their work budget from it *)
}

type error =
  | Bad_request of string  (** 400 *)
  | Payload_too_large of int  (** 413; carries the limit in bytes *)
  | Not_implemented of string  (** 501 (chunked transfer encoding) *)
  | Timeout  (** 408: socket read deadline expired mid-request *)
  | Closed  (** peer closed before sending a complete request *)

type limits = {
  max_request_line : int;
  max_header_bytes : int;
  max_body_bytes : int;
}

val default_limits : limits
(** 8 KiB request line, 64 KiB header block, 16 MiB body. *)

type reader = bytes -> int -> int -> int
(** [read buf off len] semantics of [Unix.read]: 0 at end of input. *)

exception Read_timeout
(** Raised by {!reader_of_fd} when [SO_RCVTIMEO] expires. *)

val reader_of_fd : Unix.file_descr -> reader

val reader_of_string : string -> reader

val read_request : ?limits:limits -> reader -> (request, error) result

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val percent_decode : string -> string

type response = {
  status : int;
  resp_headers : (string * string) list;
  resp_body : string;
}

val response :
  ?content_type:string ->
  ?headers:(string * string) list ->
  status:int ->
  string ->
  response
(** Defaults to [application/json]. *)

val json_error : status:int -> ?code:string -> string -> response
(** [{"error": {"code": …, "message": …}}] with the given status.
    Without [code] a stable default derived from the status is used
    (e.g. 404 → ["http.not_found"]); see [docs/RESILIENCE.md] for the
    code registry. *)

val error_response : error -> response

val reason_phrase : int -> string

val response_to_string : response -> string
(** Full wire form: status line, headers, [content-length],
    [connection: close], body. *)

val write_response : Unix.file_descr -> response -> int
(** Write the wire form, swallowing [EPIPE]/[ECONNRESET] (the client may
    have gone away); returns the bytes written. Fault point
    ["http.write"]: when armed to fail it raises the injected typed
    error before writing anything. *)
