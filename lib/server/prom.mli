(** Prometheus text-exposition helpers for [/metrics] content
    negotiation.

    [Telemetry.Prometheus.render] covers the telemetry registry; these
    helpers render everything that lives outside it (request counters,
    cache/breaker/pool statistics) as labeled series appended to the
    same body. See [docs/SERVER.md] for the resulting series. *)

val content_type : string
(** ["text/plain; version=0.0.4; charset=utf-8"]. *)

val wants_prometheus : Http.request -> bool
(** [true] when the request's [Accept] header lists [text/plain] or
    [application/openmetrics-text] as an acceptable media type (e.g.
    [text/plain; version=0.0.4]). Entries are parsed per RFC 9110: the
    media type is matched as a token (not a substring) and an entry
    with [q=0] is explicitly not acceptable; a missing header or a bare
    [*/*] keeps the JSON body. *)

val label_escape : string -> string
(** Escape a label value: backslash, double quote and newline. *)

val family : Buffer.t -> name:string -> help:string -> typ:string -> unit
(** Append the [# HELP]/[# TYPE] preamble of one metric family. The
    caller is responsible for [name] already being a valid Prometheus
    metric name (see [Telemetry.prometheus_name]). *)

val sample_int :
  Buffer.t -> name:string -> ?labels:(string * string) list -> int -> unit
(** Append one sample line, e.g.
    [vadasa_http_requests_total{path="/v1/risk"} 7]. *)

val sample_float :
  Buffer.t -> name:string -> ?labels:(string * string) list -> float -> unit
