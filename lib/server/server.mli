(** The [vadasa serve] daemon: listener, accept loop, worker pool.

    Lifecycle: {!create} binds and listens (port 0 picks an ephemeral
    port, read back with {!port}); {!run} blocks in the accept loop
    until {!stop}; {!start} runs the loop on its own domain for
    in-process use (tests). {!stop} is async-signal-safe — it flips a
    flag and writes one byte to a self-pipe — so it is exactly what
    {!install_signal_handlers} wires to SIGINT/SIGTERM. Shutdown is
    graceful: the listener closes, queued requests drain, worker domains
    are joined.

    Every request carries a correlation id: the client's
    [X-Vadasa-Request-Id] header if present, a generated one otherwise.
    The id is echoed in the response headers and in the access-log line,
    and — when [trace_sample] is set and telemetry is enabled — keys the
    sampled span-tree lines dumped on the same sink (schema in
    [docs/SERVER.md]). Every request feeds a per-endpoint
    [http.latency.*] histogram on the worker domain's registry shard;
    endpoint names come from the route table only (a path no route
    serves collapses into the single "unmatched" endpoint, so
    client-controlled paths can never grow the instrument set). The
    [http.request/<endpoint>] span tree is recorded only for sampled
    requests, through the retention-independent local trace collector —
    sampling keeps working however long the daemon runs. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  domains : int;  (** worker pool size *)
  queue_capacity : int;
  request_timeout : float;
      (** seconds — socket read deadline and maximum queue wait *)
  max_body_bytes : int;
  access_log : (string -> unit) option;
      (** called with one JSON line per finished request *)
  trace_sample : int option;
      (** [Some n]: every [n]th request also dumps its full span tree
          as a JSON line on [access_log] (requires telemetry enabled);
          [None] disables sampling *)
  slow_ms : int option;
      (** [Some ms]: any request slower than [ms] milliseconds dumps
          its full span tree on [access_log] — independently of
          [trace_sample], so the tail-latency lens is always on. Slow
          trace lines carry ["slow": true] and ["latency_ms"]; each
          slow request also bumps the [http.slow_requests] counter.
          Arming it makes every request collect its local trace
          (whether a request was slow is only known once it finished). *)
}

val default_config : config
(** 127.0.0.1:8080, 4 domains, 128-deep queue, 30 s timeout, 16 MiB
    bodies, no access log, no trace sampling, no slow-request log. *)

type t

val create : ?config:config -> ?router:Router.t -> Handlers.t -> t
(** Binds and listens; raises [Unix.Unix_error] when the address is
    taken. The default router is {!Handlers.router} with pool statistics
    grafted onto [GET /metrics]; tests can pass their own. *)

val port : t -> int
(** The actually bound port. *)

val handlers : t -> Handlers.t

val pool : t -> Pool.t

val run : t -> unit
(** Block in the accept loop until {!stop}; then drain and join the
    pool. *)

val start : t -> unit
(** {!run} on a fresh domain. *)

val stop : t -> unit
(** Signal the accept loop to finish (async-signal-safe, idempotent). *)

val join : t -> unit
(** Wait for a {!start}ed server to finish. *)

val shutdown : t -> unit
(** [stop], [join], close the self-pipe. *)

val install_signal_handlers : t -> unit
(** SIGINT and SIGTERM → {!stop}. *)
