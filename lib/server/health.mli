(** Runtime-health gauges: per-domain GC statistics and worker-pool
    utilization.

    GC statistics in OCaml 5 are largely per-domain ([Gc.quick_stat]
    reports the calling domain's minor-heap counters), so sampling
    happens where the work happens: every finished request samples its
    worker domain ({!sample_gc} from the connection loop), and a
    [/metrics] capture samples the scraping domain — the exposition
    always carries at least the capturing domain's current picture.
    Gauge names embed the domain id ([gc.domain<i>.minor_words]);
    cardinality is bounded by the pool size fixed at startup.

    Pool gauges ([vadasa_pool_domains] / [_busy_domains] /
    [_utilization]) render at scrape time via {!pool_prom} — see
    [docs/OBSERVABILITY.md] for the full metric tables. *)

val sample_gc : unit -> unit
(** Publish the calling domain's [Gc.quick_stat] into the global
    telemetry registry: per-domain [gc.domain<i>.minor_words] /
    [.major_words] / [.promoted_words] plus process-wide
    [gc.heap_words], [gc.top_heap_words], [gc.minor_collections],
    [gc.major_collections] and [gc.compactions]. No-op while telemetry
    is disabled. *)

val pool_prom : Pool.t -> Buffer.t -> unit
(** Append the pool-utilization exposition: total domains, busy
    domains, queue depth and the busy fraction, sampled at call time. *)
