(** Per-endpoint circuit breaker.

    Tracks consecutive failures per key (an endpoint like
    ["POST /v1/risk"]). After [threshold] consecutive failures the
    circuit {e opens}: {!check} rejects requests (the caller answers
    503 with a [Retry-After]) without running the handler. Once the
    [cooldown] has elapsed the circuit {e half-opens}: exactly one
    probe request is let through — its success closes the circuit, its
    failure re-opens it for another cooldown. All timing uses the
    non-decreasing {!Vadasa_base.Clock}. Thread-safe. *)

type t

val create : ?threshold:int -> ?cooldown:float -> unit -> t
(** Defaults: 5 consecutive failures to open, 10 s cooldown. *)

type decision =
  | Allow  (** closed, or the half-open probe slot *)
  | Rejected of float  (** open; seconds until a retry makes sense *)

val check : t -> string -> decision
(** Must be called once per request before running the handler; the
    half-open probe slot is claimed by the [check] call itself. *)

val success : t -> string -> unit
(** Report the request outcome. Success closes the circuit and resets
    the failure count. *)

val failure : t -> string -> unit
(** A failure (5xx or an escaped exception). In half-open state it
    re-opens the circuit immediately. *)

val state : t -> string -> string
(** ["closed" | "open" | "half_open"] — for metrics/tests. *)

val stats : t -> Vadasa_base.Json.t
(** Per-key state and consecutive-failure counts. *)
