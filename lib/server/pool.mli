(** Bounded worker pool over OCaml 5 domains.

    [submit] enqueues a job and returns [false] immediately when the
    queue is at capacity or the pool is stopping — the caller answers
    503 without blocking the accept loop. Jobs carry an absolute
    deadline on the non-decreasing {!Vadasa_base.Clock}: a job still
    queued at or past its deadline (inclusive comparison) has its
    [expired] callback run instead of its body. A raising job is
    supervised: the exception is recorded and logged, the worker domain
    survives. [stop] drains the queue and joins every domain. *)

type t

val create : ?domains:int -> ?queue_capacity:int -> unit -> t
(** Defaults: 4 domains, 128 queued jobs. *)

val submit : t -> ?deadline:float -> expired:(unit -> unit) -> (unit -> unit) -> bool
(** [submit t ~deadline ~expired run] — [deadline] is an absolute
    {!Vadasa_base.Clock} timestamp (default: no deadline). Returns
    [false] (and counts a rejection) when the queue is full. Fault
    point ["pool.enqueue"]: armed to fail, the submission is rejected
    exactly like a full queue. *)

val stop : t -> unit
(** Drain outstanding jobs, then join all worker domains. Idempotent. *)

val queue_length : t -> int

val size : t -> int
(** Worker domains, fixed at creation. *)

val busy : t -> int
(** Workers currently executing a job (or an expiry callback) — with
    {!size}, the utilization gauge pair sampled on metrics capture. *)

val counters : t -> int * int * int * int * int
(** [(submitted, rejected, completed, expired, raised)]. *)

val last_error : t -> string option
(** Rendering of the most recent exception a job raised, if any. *)

val stats : t -> Vadasa_base.Json.t
