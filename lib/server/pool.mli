(** Bounded worker pool over OCaml 5 domains.

    [submit] enqueues a job and returns [false] immediately when the
    queue is at capacity or the pool is stopping — the caller answers
    503 without blocking the accept loop. Jobs carry an absolute
    deadline: a job still queued past its deadline has its [expired]
    callback run instead of its body. [stop] drains the queue and joins
    every domain. *)

type t

val create : ?domains:int -> ?queue_capacity:int -> unit -> t
(** Defaults: 4 domains, 128 queued jobs. *)

val submit : t -> ?deadline:float -> expired:(unit -> unit) -> (unit -> unit) -> bool
(** [submit t ~deadline ~expired run] — [deadline] is an absolute
    [Unix.gettimeofday] timestamp (default: no deadline). Returns
    [false] (and counts a rejection) when the queue is full. *)

val stop : t -> unit
(** Drain outstanding jobs, then join all worker domains. Idempotent. *)

val queue_length : t -> int

val counters : t -> int * int * int * int * int
(** [(submitted, rejected, completed, expired, raised)]. *)

val stats : t -> Vadasa_base.Json.t
