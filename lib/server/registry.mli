(** The persistent dataset registry behind [/v1/datasets]: named
    datasets that survive across requests, grow by appended rows, and
    carry materialized SDC state so a delta is absorbed incrementally —

    - a {!Vadasa_sdc.Risk.Incremental} scorer over the live microdata
      (only the quasi-identifier combinations the delta touches are
      re-scored; see its fallback conditions), and
    - when the measure is expressible as a Vadalog program, a saturated
      reasoning engine plus the {!Vadasa_vadalog.Engine.Snapshot} that
      lets {!append} continue the chase from the previous fixpoint
      instead of recomputing it ({e reuse-the-fixpoint}); a delta that
      invalidates a non-monotone stratum falls back to a from-scratch
      rebuild over the full data, transparently.

    Entries only ever move between consistent states: {!append}
    validates the delta and fires the ["dataset.append"] fault point
    before touching anything, and a failed chase continuation is
    replaced by a fresh fixpoint, never exposed. All operations are
    safe to call from concurrent worker domains. Capacity is bounded
    with least-recently-used eviction.

    Errors are typed {!Vadasa_base.Error} values: [dataset.not_found]
    (unknown id), [dataset.conflict] (re-PUT with different content,
    delta schema mismatch), [dataset.bad_id], [dataset.bad_delta].
    See docs/STREAMING.md. *)

type t

type entry
(** A registered dataset. The handle stays valid after eviction or
    deletion (operations on it still work); it just no longer resolves
    via {!find}. *)

val create :
  ?capacity:int ->
  ?audit:(string -> unit) ->
  ?pool:Vadasa_base.Task_pool.t ->
  ?persist:Persist.t ->
  unit ->
  t
(** [capacity] (default 16) bounds registered datasets, LRU-evicted.
    [audit] receives one compact JSONL line per register / append /
    delete (the registry's decision trail — same conventions as the
    anonymization cycle's audit events). [pool] is shared with the
    entries' chase engines.

    [persist] makes the registry crash-safe: every successful put /
    append / delete is journaled {e before} it becomes visible (the
    record is durable by the time the HTTP response acks it), and the
    registry registers itself as the ["datasets"] snapshot section /
    ["dataset.*"] replay applier, so {!Persist.recover} rebuilds every
    committed dataset — reports byte-identical to the pre-crash state.
    Without it (the default) the registry is memory-only, as before. *)

type put_outcome = { entry : entry; created : bool }

val put :
  t ->
  id:string ->
  digest:string ->
  bytes:int ->
  options:Codec.options ->
  measure:Vadasa_sdc.Risk.measure ->
  compiled:(Vadasa_vadalog.Program.t * Vadasa_vadalog.Stratify.t) option ->
  Vadasa_sdc.Microdata.t ->
  put_outcome
(** Register [md] under [id]. [digest] identifies the base payload:
    re-PUTting the identical payload is idempotent ([created = false]),
    a different payload under a live id raises [dataset.conflict].
    [compiled] is the measure's parsed/stratified program (rule ids must
    be stable under a facts-only union — the compiled-program cache's
    contract); [None] skips chase materialization (measure outside the
    logic). [bytes] is the base document size, for accounting. *)

val find : t -> string -> entry option

val get : t -> string -> entry
(** Raises [dataset.not_found]. *)

val delete : t -> string -> bool
(** [false] when the id was not registered. *)

val not_found : string -> Vadasa_base.Error.t
(** The [dataset.not_found] error value for an id (handlers raise it
    when {!delete} reports [false]). *)

val ids : t -> string list
(** Sorted. *)

type append_outcome = {
  rows_added : int;
  rows_total : int;
  risk : Vadasa_sdc.Risk.Incremental.outcome;
  chase_mode : string;
      (** ["incremental"] — continued from the snapshot; ["rebuild"] —
          the continuation was invalidated and a fresh fixpoint was
          computed; ["none"] — no chase is materialized *)
  chase_facts : int;  (** saturated database size after the append *)
}

val append : t -> entry -> csv:string -> append_outcome
(** Absorb a delta CSV (same header as the base document) into the
    dataset: rows join the live relation, the risk report is delta-
    maintained, and the chase continues from its snapshot. After
    [append], the entry's report and chase are byte-/set-identical to
    from-scratch evaluation over the unioned data (the test suite and
    the CI smoke job assert this). Raises [dataset.conflict] on a
    schema-mismatched delta, [dataset.bad_delta] on unparseable CSV —
    both before any state changes. *)

(** {2 Entry accessors} *)

val entry_md : entry -> Vadasa_sdc.Microdata.t

val entry_options : entry -> Codec.options

val entry_measure : entry -> Vadasa_sdc.Risk.measure

val entry_semantics : entry -> Vadasa_relational.Null_semantics.t

val entry_report : entry -> Vadasa_sdc.Risk.report
(** The maintained risk report — equals a fresh
    {!Vadasa_sdc.Risk.estimate} over the current data, byte-for-byte. *)

val entry_csv : entry -> string
(** The current (base ∪ deltas) relation as a CSV document — what a
    from-scratch run must be fed to reproduce the dataset's reports. *)

val entry_md_snapshot : entry -> Vadasa_sdc.Microdata.t
(** A deep copy of the live microdata at this instant; safe to hold
    across later appends (and therefore cacheable — the handlers' LRU
    invalidates it on append). *)

val entry_engine : entry -> Vadasa_vadalog.Engine.t option
(** The saturated chase engine, when materialized. Treat as read-only
    and quiescent; it is replaced (not mutated) on rebuilds. *)

val entry_json : entry -> Vadasa_base.Json.t
(** Deterministic metadata object (id, rows, bytes, measure, appends,
    chase counters, timestamps); the [GET /v1/datasets/{id}] body. *)

(** {2 Registry-wide accounting} *)

type totals = {
  registered : int;
  bytes : int;
  rows : int;
  appends : int;  (** lifetime — survives delete/evict *)
  rebuilds : int;  (** lifetime chase rebuilds *)
  evictions : int;
}

val totals : t -> totals

val stats : t -> Vadasa_base.Json.t
(** The [GET /metrics] JSON object. *)
