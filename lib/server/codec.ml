(* Request decoding and canonical JSON rendering of SDC results.

   The CLI's [risk --json] and the server's [POST /v1/risk] both render
   through [risk_report_string], so a byte-compare between the two is a
   meaningful integration check (the CI smoke job does exactly that). *)

module Json = Vadasa_base.Json
module E = Vadasa_base.Error
module R = Vadasa_relational
module S = Vadasa_sdc
module V = Vadasa_vadalog

(* ---- request decoding --------------------------------------------------- *)

type options = {
  name : string;  (* dataset name used for the relation *)
  measure : string;
  k : int;
  threshold : float;
  msu_threshold : int;
  categories : (string * string) list;  (* attr -> category string *)
  reasoned : bool;
  method_ : string;  (* anonymize: "suppress" | "recode" *)
  semantics : string;  (* anonymize: "maybe-match" | "standard" *)
  budget_ms : int option;  (* per-request chase/cycle wall-clock budget *)
  max_facts : int option;  (* per-request derived-fact ceiling *)
  audit : bool;  (* anonymize: embed the per-round audit trail *)
}

let default_options =
  {
    name = "request";
    measure = "k-anonymity";
    k = 2;
    threshold = 0.5;
    msu_threshold = 3;
    categories = [];
    reasoned = false;
    method_ = "suppress";
    semantics = "maybe-match";
    budget_ms = None;
    max_facts = None;
    audit = false;
  }

type payload = { csv : string; options : options }

let ( let* ) = Result.bind

let bad_param name detail =
  E.make ~code:"request.bad_param" E.Parse
    (Printf.sprintf "parameter %s: %s" name detail)
    ~context:[ ("parameter", name) ]

let parse_category_pair s =
  match String.index_opt s '=' with
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None ->
    Error
      (bad_param "category"
         (Printf.sprintf "bad value %S (expected attr=category)" s))

let options_of_query (req : Http.request) =
  let get name = Http.query_param req name in
  let* categories =
    List.fold_left
      (fun acc (key, value) ->
        let* acc = acc in
        if String.equal key "category" then
          let* pair = parse_category_pair value in
          Ok (pair :: acc)
        else Ok acc)
      (Ok []) req.query
    |> Result.map List.rev
  in
  let int_param name default =
    match get name with
    | None -> Ok default
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (bad_param name "expected an integer"))
  in
  let int_opt_param name =
    match get name with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error (bad_param name "expected a positive integer"))
  in
  let float_param name default =
    match get name with
    | None -> Ok default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (bad_param name "expected a number"))
  in
  let* k = int_param "k" default_options.k in
  let* msu_threshold = int_param "msu-threshold" default_options.msu_threshold in
  let* threshold = float_param "threshold" default_options.threshold in
  let* budget_ms = int_opt_param "budget-ms" in
  let* max_facts = int_opt_param "max-facts" in
  Ok
    {
      name = Option.value ~default:default_options.name (get "name");
      measure = Option.value ~default:default_options.measure (get "measure");
      k;
      threshold;
      msu_threshold;
      categories;
      reasoned = get "reasoned" = Some "true";
      method_ = Option.value ~default:default_options.method_ (get "method");
      semantics = Option.value ~default:default_options.semantics (get "semantics");
      budget_ms;
      max_facts;
      audit = get "audit" = Some "true";
    }

let bad_field name detail =
  E.make ~code:"request.bad_field" E.Parse
    (Printf.sprintf "field %s: %s" name detail)
    ~context:[ ("field", name) ]

let options_of_json json =
  let str name default =
    match Json.member name json with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error (bad_field name "expected a string")
    | None -> Ok default
  in
  let int_field name default =
    match Json.member name json with
    | Some j -> (
      match Json.to_int_opt j with
      | Some n -> Ok n
      | None -> Error (bad_field name "expected an integer"))
    | None -> Ok default
  in
  let int_opt_field name =
    match Json.member name json with
    | Some j -> (
      match Json.to_int_opt j with
      | Some n when n >= 1 -> Ok (Some n)
      | _ -> Error (bad_field name "expected a positive integer"))
    | None -> Ok None
  in
  let float_field name default =
    match Json.member name json with
    | Some j -> (
      match Json.to_float_opt j with
      | Some f -> Ok f
      | None -> Error (bad_field name "expected a number"))
    | None -> Ok default
  in
  let bool_field name default =
    match Json.member name json with
    | Some j -> (
      match Json.to_bool_opt j with
      | Some b -> Ok b
      | None -> Error (bad_field name "expected a boolean"))
    | None -> Ok default
  in
  let* categories =
    match Json.member "categories" json with
    | None -> Ok []
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (attr, v) ->
          let* acc = acc in
          match v with
          | Json.Str cat -> Ok ((attr, cat) :: acc)
          | _ ->
            Error
              (bad_field ("categories." ^ attr) "expected a category string"))
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error (bad_field "categories" "expected an object of attr: category")
  in
  let* name = str "name" default_options.name in
  let* measure = str "measure" default_options.measure in
  let* k = int_field "k" default_options.k in
  let* threshold = float_field "threshold" default_options.threshold in
  let* msu_threshold = int_field "msu_threshold" default_options.msu_threshold in
  let* reasoned = bool_field "reasoned" default_options.reasoned in
  let* method_ = str "method" default_options.method_ in
  let* semantics = str "semantics" default_options.semantics in
  let* budget_ms = int_opt_field "budget_ms" in
  let* max_facts = int_opt_field "max_facts" in
  let* audit = bool_field "audit" default_options.audit in
  Ok
    {
      name;
      measure;
      k;
      threshold;
      msu_threshold;
      categories;
      reasoned;
      method_;
      semantics;
      budget_ms;
      max_facts;
      audit;
    }

(* The exact inverse of [options_of_json] (same field names), so the
   registry journal can record a request's options and replay rebuilds
   identical state. Optional fields are omitted when unset. *)
let options_to_json (o : options) =
  Json.Obj
    ([
       ("name", Json.Str o.name);
       ("measure", Json.Str o.measure);
       ("k", Json.Int o.k);
       ("threshold", Json.Float o.threshold);
       ("msu_threshold", Json.Int o.msu_threshold);
       ( "categories",
         Json.Obj (List.map (fun (a, c) -> (a, Json.Str c)) o.categories) );
       ("reasoned", Json.Bool o.reasoned);
       ("method", Json.Str o.method_);
       ("semantics", Json.Str o.semantics);
       ("audit", Json.Bool o.audit);
     ]
    @ (match o.budget_ms with
      | None -> []
      | Some ms -> [ ("budget_ms", Json.Int ms) ])
    @
    match o.max_facts with
    | None -> []
    | Some n -> [ ("max_facts", Json.Int n) ])

let content_type (req : Http.request) =
  match Http.header req "content-type" with
  | None -> ""
  | Some v -> (
    (* strip parameters like "; charset=utf-8" *)
    match String.index_opt v ';' with
    | None -> String.trim (String.lowercase_ascii v)
    | Some i -> String.trim (String.lowercase_ascii (String.sub v 0 i)))

let parse_payload (req : Http.request) =
  match content_type req with
  | "application/json" -> (
    match Json.of_string req.body with
    | Error msg ->
      Error (E.make ~code:"json.invalid" E.Parse ("invalid JSON body: " ^ msg))
    | Ok json -> (
      match Json.member "csv" json with
      | Some (Json.Str csv) ->
        let* options = options_of_json json in
        Ok { csv; options }
      | Some _ -> Error (bad_field "csv" "expected the CSV document as a string")
      | None ->
        Error (E.make ~code:"request.missing_csv" E.Parse "missing field csv")))
  | "" | "text/csv" | "text/plain" | "application/csv"
  | "application/octet-stream" ->
    if String.trim req.body = "" then
      Error
        (E.make ~code:"request.empty_body" E.Parse
           "empty request body (expected CSV)")
    else
      let* options = options_of_query req in
      Ok { csv = req.body; options }
  | other ->
    Error
      (E.make ~code:"request.unsupported_media" E.Parse
         (Printf.sprintf "unsupported content-type %s" other)
         ~context:[ ("content_type", other) ])

(* ---- explain requests ---------------------------------------------------- *)

(* A ground fact written in Vadalog syntax — "p(a, 1)". Reusing the
   program parser keeps the accepted value syntax (strings, numbers,
   quoting) exactly the one programs use, so the fact a client asks
   about is spelled like the fact the engine printed. *)
let parse_fact s =
  let text = String.trim s in
  let text =
    if String.length text > 0 && text.[String.length text - 1] = '.' then text
    else text ^ "."
  in
  let invalid detail =
    Error
      (E.make ~code:"fact.invalid" E.Parse
         (Printf.sprintf "cannot parse fact %S: %s" s detail)
         ~context:[ ("fact", s) ])
  in
  match V.Parser.parse text with
  | exception V.Parser.Error { message; _ } -> invalid message
  | exception V.Lexer.Error { message; _ } -> invalid message
  | program -> (
    match (program.V.Program.rules, program.V.Program.facts) with
    | [], [ (pred, args) ] -> Ok (pred, args)
    | _ -> invalid "expected exactly one ground fact, e.g. p(a, 1)")

type explain_request = {
  explain_program : string;
  explain_pred : string;
  explain_args : Vadasa_base.Value.t array;
  explain_max_depth : int option;
  explain_budget_ms : int option;
  explain_max_facts : int option;
}

let parse_explain_payload (req : Http.request) =
  match content_type req with
  | "application/json" | "" -> (
    match Json.of_string req.body with
    | Error msg ->
      Error (E.make ~code:"json.invalid" E.Parse ("invalid JSON body: " ^ msg))
    | Ok json ->
      let str_field name =
        match Json.member name json with
        | Some (Json.Str s) -> Ok s
        | Some _ -> Error (bad_field name "expected a string")
        | None ->
          Error
            (E.make
               ~code:("request.missing_" ^ name)
               E.Parse ("missing field " ^ name))
      in
      let int_opt_field name =
        match Json.member name json with
        | Some j -> (
          match Json.to_int_opt j with
          | Some n when n >= 1 -> Ok (Some n)
          | _ -> Error (bad_field name "expected a positive integer"))
        | None -> Ok None
      in
      let* program = str_field "program" in
      let* fact = str_field "fact" in
      let* pred, args = parse_fact fact in
      let* max_depth = int_opt_field "max_depth" in
      let* budget_ms = int_opt_field "budget_ms" in
      let* max_facts = int_opt_field "max_facts" in
      Ok
        {
          explain_program = program;
          explain_pred = pred;
          explain_args = args;
          explain_max_depth = max_depth;
          explain_budget_ms = budget_ms;
          explain_max_facts = max_facts;
        })
  | other ->
    Error
      (E.make ~code:"request.unsupported_media" E.Parse
         (Printf.sprintf "unsupported content-type %s (expected application/json)"
            other)
         ~context:[ ("content_type", other) ])

let explain_string tree =
  Json.to_string ~indent:true (V.Provenance.to_json tree) ^ "\n"

(* ---- semantic decoding --------------------------------------------------- *)

let measure_of_options o =
  match o.measure with
  | "k-anonymity" -> Ok (S.Risk.K_anonymity { k = o.k })
  | "re-identification" -> Ok S.Risk.Re_identification
  | "individual" -> Ok (S.Risk.Individual S.Risk.Benedetti_franconi)
  | "individual-naive" -> Ok (S.Risk.Individual S.Risk.Naive)
  | "suda" ->
    Ok (S.Risk.Suda { max_msu_size = 3; threshold_size = o.msu_threshold })
  | other ->
    Error
      (E.make ~code:"measure.unknown" E.Wardedness
         (Printf.sprintf "unknown measure %s" other)
         ~context:[ ("measure", other) ])

let microdata_of_payload { csv; options } =
  let* rel =
    match R.Csv.read_string ~name:options.name csv with
    | rel -> Ok rel
    | exception E.Error e -> Error e
  in
  let* overrides =
    List.fold_left
      (fun acc (attr, cat) ->
        let* acc = acc in
        match S.Microdata.category_of_string cat with
        | Some c -> Ok ((attr, c) :: acc)
        | None ->
          Error
            (E.make ~code:"category.unknown" E.Wardedness
               (Printf.sprintf "unknown category %s for %s" cat attr)
               ~context:[ ("attr", attr); ("category", cat) ]))
      (Ok []) options.categories
    |> Result.map List.rev
  in
  match S.Categorize.categorize_microdata ~overrides rel with
  | Ok md -> Ok md
  | Error msg -> Error (E.make ~code:"categorize.failed" E.Wardedness msg)

(* ---- typed errors on the wire -------------------------------------------- *)

let status_of_category = function
  | E.Parse -> 400
  | E.Wardedness -> 422
  | E.Resource -> 503
  | E.Io -> 500
  | E.Internal -> 500

let error_of_exn = function
  | E.Error e -> e
  | V.Parser.Error { line; message } ->
    E.make ~code:"program.parse" E.Wardedness
      (Printf.sprintf "line %d: %s" line message)
      ~context:[ ("line", string_of_int line) ]
  | V.Lexer.Error { line; message } ->
    E.make ~code:"program.lex" E.Wardedness
      (Printf.sprintf "line %d: %s" line message)
      ~context:[ ("line", string_of_int line) ]
  | V.Stratify.Not_stratifiable msg ->
    E.make ~code:"program.not_stratifiable" E.Wardedness msg
  | V.Engine.Limit msg -> E.make ~code:"engine.limit" E.Resource msg
  | S.Vadalog_bridge.Unsupported msg ->
    E.make ~code:"measure.unsupported" E.Wardedness msg
  | Unix.Unix_error (err, fn, arg) ->
    E.make ~code:"io.unix" E.Io
      (Printf.sprintf "%s: %s" fn (Unix.error_message err))
      ~context:(if arg = "" then [] else [ ("arg", arg) ])
  | Invalid_argument msg -> E.make ~code:"internal.invalid_arg" E.Internal msg
  | Failure msg -> E.make ~code:"internal.failure" E.Internal msg
  | exn -> E.make ~code:"internal.exception" E.Internal (Printexc.to_string exn)

(* Registry and jobs errors want statuses the category lattice can't
   express: an unknown dataset or job is 404, a clashing registration
   is 409, a tenant over its quota or rate limit is 429. Keyed on the
   stable error code so only these escape the category mapping. *)
let status_of_error (e : E.t) =
  match e.E.code with
  | "dataset.not_found" | "job.not_found" -> 404
  | "dataset.conflict" -> 409
  | "tenant.quota_exceeded" | "tenant.rate_limited" -> 429
  | _ -> status_of_category e.E.category

(* Errors that carry a [retry_after_s] context pair (quota, rate-limit
   and queue-full rejections) surface it as a real Retry-After header,
   the same convention the circuit breaker uses — retrying clients
   need only one code path. *)
let response_of_error (e : E.t) =
  let headers =
    match List.assoc_opt "retry_after_s" e.E.context with
    | Some s -> (
      match float_of_string_opt s with
      | Some f ->
        [ ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil f)))) ]
      | None -> [])
    | None -> []
  in
  Http.response ~headers ~status:(status_of_error e)
    (Json.to_string (Json.Obj [ ("error", E.to_json e) ]) ^ "\n")

(* ---- canonical renderings ------------------------------------------------ *)

let float_list a = Json.List (List.map (fun f -> Json.Float f) (Array.to_list a))

let int_list a = Json.List (List.map (fun i -> Json.Int i) (Array.to_list a))

let risk_report_json ~threshold md (report : S.Risk.report) =
  let risky = S.Risk.risky report ~threshold in
  Json.Obj
    [
      ("dataset", Json.Str (S.Microdata.name md));
      ("tuples", Json.Int (S.Microdata.cardinal md));
      ("measure", Json.Str (S.Risk.measure_to_string report.S.Risk.measure));
      ("threshold", Json.Float threshold);
      ("global_risk", Json.Float (S.Risk.global_risk report));
      ("risky_count", Json.Int (List.length risky));
      ("risky", Json.List (List.map (fun i -> Json.Int i) risky));
      ("risk", float_list report.S.Risk.risk);
      ("freq", int_list report.S.Risk.freq);
      ("weight_sum", float_list report.S.Risk.weight_sum);
    ]

let risk_report_string ~threshold md report =
  Json.to_string ~indent:true (risk_report_json ~threshold md report) ^ "\n"

(* ---- degraded renderings -------------------------------------------------- *)

(* The partial-progress object attached to every degraded response. *)
let interrupt_json (i : V.Engine.interrupt) =
  Json.Obj
    [
      ("reason", Json.Str (Vadasa_base.Budget.reason_code i.V.Engine.reason));
      ("stratum", Json.Int i.V.Engine.stratum);
      ("iteration", Json.Int i.V.Engine.iteration);
      ("facts_derived", Json.Int i.V.Engine.facts_derived);
    ]

let degrade_fields interrupt =
  [ ("degraded", Json.Bool true); ("partial", interrupt_json interrupt) ]

let risk_report_degraded_string ~threshold md report interrupt =
  match risk_report_json ~threshold md report with
  | Json.Obj fields ->
    (* Baseline fields first, degraded markers appended: an unbudgeted
       response stays byte-identical to [risk_report_string]. *)
    Json.to_string ~indent:true (Json.Obj (fields @ degrade_fields interrupt))
    ^ "\n"
  | json -> Json.to_string ~indent:true json ^ "\n"

let anonymize_outcome_json ?audit md (outcome : S.Cycle.outcome) =
  ignore md;
  Json.Obj
    ([
       ("dataset", Json.Str (S.Microdata.name outcome.S.Cycle.anonymized));
       ("rounds", Json.Int outcome.S.Cycle.rounds);
       ("converged", Json.Bool outcome.S.Cycle.converged);
       ("nulls_injected", Json.Int outcome.S.Cycle.nulls_injected);
       ("recoded_cells", Json.Int outcome.S.Cycle.recoded_cells);
       ("risky_initial", Json.Int outcome.S.Cycle.risky_initial);
       ( "unresolved",
         Json.List (List.map (fun i -> Json.Int i) outcome.S.Cycle.unresolved)
       );
       ("info_loss", Json.Float outcome.S.Cycle.info_loss);
       ("actions", Json.Int (List.length outcome.S.Cycle.trace));
       ( "csv",
         Json.Str
           (R.Csv.write_string (S.Microdata.relation outcome.S.Cycle.anonymized))
       );
     ]
    (* The opt-in audit trail rides along as the same event objects the
       CLI's --audit JSONL writes, one per round. *)
    @ (match audit with
      | None -> []
      | Some events ->
        [ ("audit", Json.List (List.map S.Audit.event_to_json events)) ])
    @
    (* Degraded markers only when the budget interrupted the cycle: an
       unbudgeted outcome renders exactly as before. *)
    match outcome.S.Cycle.interrupted with
    | None -> []
    | Some reason ->
      [
        ("degraded", Json.Bool true);
        ("interrupt_reason", Json.Str (Vadasa_base.Budget.reason_code reason));
      ])

let categorize_result_json (result : S.Categorize.result) =
  Json.Obj
    [
      ( "assigned",
        Json.List
          (List.map
             (fun (a : S.Categorize.assignment) ->
               Json.Obj
                 [
                   ("attr", Json.Str a.S.Categorize.attr);
                   ( "category",
                     Json.Str
                       (S.Microdata.category_to_string a.S.Categorize.category)
                   );
                   ("matched", Json.Str a.S.Categorize.matched);
                   ("score", Json.Float a.S.Categorize.score);
                 ])
             result.S.Categorize.assigned) );
      ( "unresolved",
        Json.List
          (List.map (fun s -> Json.Str s) result.S.Categorize.unresolved) );
      ( "conflicts",
        Json.List
          (List.map
             (fun (c : S.Categorize.conflict) ->
               Json.Obj
                 [
                   ("attr", Json.Str c.S.Categorize.conflict_attr);
                   ( "candidates",
                     Json.List
                       (List.map
                          (fun (cat, name, score) ->
                            Json.Obj
                              [
                                ( "category",
                                  Json.Str (S.Microdata.category_to_string cat)
                                );
                                ("via", Json.Str name);
                                ("score", Json.Float score);
                              ])
                          c.S.Categorize.candidates) );
                 ])
             result.S.Categorize.conflicts) );
    ]

let reason_json ?interrupt ~cached ~warded ~threshold md risks =
  let n = Array.length risks in
  let risky = ref [] in
  for i = n - 1 downto 0 do
    if risks.(i) > threshold then risky := i :: !risky
  done;
  Json.Obj
    ([
       ("dataset", Json.Str (S.Microdata.name md));
       ("tuples", Json.Int (S.Microdata.cardinal md));
       ("threshold", Json.Float threshold);
       ("program_cache_hit", Json.Bool cached);
       ("warded", Json.Bool warded);
       ("risky_count", Json.Int (List.length !risky));
       ("risky", Json.List (List.map (fun i -> Json.Int i) !risky));
       ("risk", float_list risks);
     ]
    @ match interrupt with None -> [] | Some i -> degrade_fields i)
