(** Mutex-guarded LRU cache shared by the server's worker domains.

    Used for the compiled-program cache (program text → parsed,
    stratified, wardedness-checked program) and the dataset cache
    (content digest → loaded relation). Values are built outside the
    lock; when two domains race to fill the same key, the first insert
    wins and the loser's value is discarded, so all callers observe one
    canonical value per key. *)

type ('k, 'v) t

val create : ?capacity:int -> string -> ('k, 'v) t
(** [create ~capacity name] — [name] labels the cache in [/metrics];
    capacity defaults to 64 entries, least-recently-used eviction. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit or a miss. *)

val find_or_build : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** Cache lookup, building (outside the lock) and inserting on miss. *)

val find_or_build_hit : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v * bool
(** Like {!find_or_build}; the boolean reports whether this caller hit
    the cache (losing a build race still counts as a miss). *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop the entry (no-op when absent). Used to invalidate a cached
    value whose source data changed — a registered dataset that
    absorbed appended rows must not keep serving its pre-append
    microdata. *)

val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int

val size : ('k, 'v) t -> int

val name : ('k, 'v) t -> string

val capacity : ('k, 'v) t -> int

val clear : ('k, 'v) t -> unit

val stats : ('k, 'v) t -> Vadasa_base.Json.t
(** Object with [size], [capacity], [hits], [misses], [evictions]. *)
