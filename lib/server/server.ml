(* The daemon: a listening socket, an accept loop, and the worker pool.

   The accept loop is the only place that blocks on the network; it
   multiplexes the listener against a self-pipe with [Unix.select] so a
   signal handler can interrupt a blocked accept portably (the handler
   just writes one byte — the only async-signal-safe thing it does).
   Accepted connections are handed to the pool with an absolute
   deadline; when the queue is full the loop answers 503 itself, so
   overload never blocks accepting (and never makes a client wait for a
   rejection). Workers own the whole request lifecycle: read (bounded by
   SO_RCVTIMEO), dispatch, write, close. *)

module Json = Vadasa_base.Json
module Clock = Vadasa_base.Clock
module Telemetry = Vadasa_telemetry.Telemetry

type config = {
  host : string;
  port : int;  (* 0 picks an ephemeral port; see [port] *)
  domains : int;
  queue_capacity : int;
  request_timeout : float;  (* seconds, read deadline + max queue wait *)
  max_body_bytes : int;
  access_log : (string -> unit) option;  (* one JSON line per request *)
  trace_sample : int option;
      (* every Nth request dumps its span tree to [access_log] *)
  slow_ms : int option;
      (* any request slower than this dumps its span tree to
         [access_log], independently of [trace_sample] *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    domains = 4;
    queue_capacity = 128;
    request_timeout = 30.0;
    max_body_bytes = Http.default_limits.Http.max_body_bytes;
    access_log = None;
    trace_sample = None;
    slow_ms = None;
  }

type t = {
  config : config;
  handlers : Handlers.t;
  router : Router.t;
  pool : Pool.t;
  listener : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;  (* self-pipe: handlers write, accept loop reads *)
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  request_seq : int Atomic.t;  (* drives generated request ids *)
  trace_seq : int Atomic.t;
      (* drives [--trace-sample]: bumps exactly once per parsed request,
         so "every Nth request" means exactly that — [request_seq] can't
         serve double duty because id generation also advances it *)
  mutable accept_domain : unit Domain.t option;
}

let port t = t.bound_port

let handlers t = t.handlers

let pool t = t.pool

let create ?(config = default_config) ?router handlers =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t =
    try
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      let addr =
        Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
      in
      Unix.bind listener addr;
      Unix.listen listener 128;
      let bound_port =
        match Unix.getsockname listener with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      let pool =
        Pool.create ~domains:config.domains
          ~queue_capacity:config.queue_capacity ()
      in
      let stop_r, stop_w = Unix.pipe () in
      let pool_prom () =
        let buf = Buffer.create 512 in
        Prom.family buf ~name:"vadasa_pool_queue_depth"
          ~help:"Jobs waiting in the HTTP worker pool queue" ~typ:"gauge";
        Prom.sample_int buf ~name:"vadasa_pool_queue_depth"
          (Pool.queue_length pool);
        let submitted, rejected, completed, expired, raised =
          Pool.counters pool
        in
        Prom.family buf ~name:"vadasa_pool_jobs_total"
          ~help:"HTTP worker pool jobs by outcome" ~typ:"counter";
        List.iter
          (fun (outcome, v) ->
            Prom.sample_int buf ~name:"vadasa_pool_jobs_total"
              ~labels:[ ("outcome", outcome) ]
              v)
          [
            ("submitted", submitted);
            ("rejected", rejected);
            ("completed", completed);
            ("expired", expired);
            ("raised", raised);
          ];
        Health.pool_prom pool buf;
        Buffer.contents buf
      in
      let router =
        match router with
        | Some r -> r
        | None ->
          Handlers.router
            ~extra_metrics:(fun () -> [ ("pool", Pool.stats pool) ])
            ~extra_prom:pool_prom handlers
      in
      {
        config;
        handlers;
        router;
        pool;
        listener;
        bound_port;
        stop_r;
        stop_w;
        stopping = Atomic.make false;
        request_seq = Atomic.make 0;
        trace_seq = Atomic.make 0;
        accept_domain = None;
      }
    with e ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      raise e
  in
  t

(* Async-signal-safe: a flag flip and a single pipe write. *)
let stop t =
  if not (Atomic.exchange t.stopping true) then
    ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)

let install_signal_handlers t =
  let handle = Sys.Signal_handle (fun _signum -> stop t) in
  Sys.set_signal Sys.sigint handle;
  Sys.set_signal Sys.sigterm handle

(* One JSONL access-log line per request; the field schema is
   documented in docs/SERVER.md (keep the two in sync). *)
let log_request t ~(req : Http.request option) ~request_id ~status ~bytes
    ~elapsed =
  match t.config.access_log with
  | None -> ()
  | Some sink ->
    let meth, path =
      match req with
      | Some r -> (Http.meth_to_string r.Http.meth, r.Http.path)
      | None -> ("-", "-")
    in
    let endpoint = if meth = "-" then "-" else meth ^ " " ^ path in
    sink
      (Json.to_string
         (Json.Obj
            [
              ("ts", Json.Float (Unix.gettimeofday ()));
              ("request_id", Json.Str (Option.value ~default:"-" request_id));
              ("method", Json.Str meth);
              ("path", Json.Str path);
              ("endpoint", Json.Str endpoint);
              ("status", Json.Int status);
              ("bytes", Json.Int bytes);
              ("elapsed_s", Json.Float elapsed);
              ("latency_ms", Json.Float (elapsed *. 1000.0));
            ]))

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A write can fail with an injected typed error (the [http.write]
   fault point): answer with the error body if the socket still takes
   it, otherwise give up on this connection. *)
let write_guarded fd resp =
  match Http.write_response fd resp with
  | bytes -> (resp.Http.status, bytes)
  | exception Vadasa_base.Error.Error e -> (
    let fallback = Codec.response_of_error e in
    match Http.write_response fd fallback with
    | bytes -> (fallback.Http.status, bytes)
    | exception Vadasa_base.Error.Error _ -> (fallback.Http.status, 0))

(* Correlation ids: the client's [X-Vadasa-Request-Id] wins (so a
   gateway's id threads through); otherwise µs timestamp + process-wide
   sequence — unique within a process and sortable across one. *)
let gen_request_id t =
  Printf.sprintf "%012x-%04x"
    (Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e6))
    land 0xffff_ffff_ffff)
    (Atomic.fetch_and_add t.request_seq 1 land 0xffff)

let request_id_header = "x-vadasa-request-id"

(* The span name for an endpoint: "POST v1.risk" — slashes become dots
   so the slash-joined span *path* hierarchy stays intact. *)
let endpoint_span_name meth path =
  let dotted =
    String.split_on_char '/' path
    |> List.filter (fun s -> s <> "")
    |> String.concat "."
  in
  if dotted = "" then meth else meth ^ " " ^ dotted

let trace_line ?slow_latency_ms ~request_id events =
  Json.to_string
    (Json.Obj
       ([
          ("trace", Json.Str "request");
          ("request_id", Json.Str request_id);
        ]
       @ (match slow_latency_ms with
         | None -> []
         | Some ms -> [ ("slow", Json.Bool true); ("latency_ms", Json.Float ms) ])
       @ [
         ( "spans",
           Json.List
             (List.map
                (fun (ev : Telemetry.Span.info) ->
                  Json.Obj
                    [
                      ("name", Json.Str ev.Telemetry.Span.sp_name);
                      ("path", Json.Str ev.Telemetry.Span.sp_path);
                      ("start_s", Json.Float ev.Telemetry.Span.sp_start);
                      ("duration_s", Json.Float ev.Telemetry.Span.sp_duration);
                      ("depth", Json.Int ev.Telemetry.Span.sp_depth);
                    ])
                events) );
       ]))

(* Runs on a worker domain: one whole request lifecycle. [deadline] is
   the absolute Clock time by which the response should be written —
   stamped on the request so handlers can derive their work budget.

   Telemetry rides on the worker's registry shard, with two bounds that
   keep an unauthenticated client from growing server memory:

   - Metric and span names only ever come from the route table: a path
     [Router.dispatch] would 404 collapses into the single "unmatched"
     endpoint instead of interning a per-path histogram (request paths
     are client-controlled, instrument interning is forever).
   - The [http.request/<endpoint>] span tree is recorded only for
     [--trace-sample]d requests, via the retention-independent local
     trace collector — so sampled trace lines keep flowing after the
     registry's span limit fills, and unsampled requests add no span
     events at all. Every request still lands in the per-endpoint
     [http.latency.*] histogram. *)
let serve_connection t ~deadline fd =
  let started = Unix.gettimeofday () in
  let limits =
    { Http.default_limits with Http.max_body_bytes = t.config.max_body_bytes }
  in
  match Http.read_request ~limits (Http.reader_of_fd fd) with
  | Error err ->
    let status, bytes = write_guarded fd (Http.error_response err) in
    close_quietly fd;
    log_request t ~req:None ~request_id:None ~status ~bytes
      ~elapsed:(Unix.gettimeofday () -. started)
  | Ok req ->
    req.Http.deadline <- Some deadline;
    let request_id =
      match Http.header req request_id_header with
      | Some id when id <> "" -> id
      | _ -> gen_request_id t
    in
    let seq = 1 + Atomic.fetch_and_add t.trace_seq 1 in
    let sampled =
      match t.config.trace_sample with
      | Some n when n > 0 -> seq mod n = 0
      | _ -> false
    in
    (* Telemetry names come from the route *pattern*, not the request
       path: "/v1/datasets/band42" collapses into "/v1/datasets/{id}",
       so client-chosen ids never intern new instruments. *)
    let endpoint =
      match Router.endpoint_path t.router req.Http.path with
      | Some pattern ->
        endpoint_span_name (Http.meth_to_string req.Http.meth) pattern
      | None -> "unmatched"
    in
    (* [--slow-ms] needs the span tree of every request — whether a
       request was slow is only known after it finished — so an armed
       slow log collects the local trace unconditionally and discards
       it for requests that came in under the bar unsampled. *)
    let slow_armed = t.config.slow_ms <> None in
    let resp, trace =
      if (sampled || slow_armed) && Telemetry.enabled () then
        let resp, events =
          Telemetry.with_local_trace (fun () ->
              Telemetry.span "http.request" (fun () ->
                  Telemetry.span endpoint (fun () ->
                      Router.dispatch t.router req)))
        in
        (resp, Some events)
      else (Router.dispatch t.router req, None)
    in
    let resp =
      {
        resp with
        Http.resp_headers =
          resp.Http.resp_headers @ [ ("X-Vadasa-Request-Id", request_id) ];
      }
    in
    let status, bytes = write_guarded fd resp in
    close_quietly fd;
    let elapsed = Unix.gettimeofday () -. started in
    Telemetry.observe ("http.latency." ^ endpoint) elapsed;
    let slow =
      match t.config.slow_ms with
      | Some ms -> elapsed *. 1000.0 > float_of_int ms
      | None -> false
    in
    if slow then Telemetry.count "http.slow_requests" 1;
    (match (trace, t.config.access_log) with
    | Some events, Some sink when events <> [] && (sampled || slow) ->
      sink
        (trace_line
           ?slow_latency_ms:(if slow then Some (elapsed *. 1000.0) else None)
           ~request_id events)
    | _ -> ());
    (* Keep the worker domain's GC gauges fresh: quick_stat is cheap and
       the sample lands on this domain's registry shard. *)
    Health.sample_gc ();
    log_request t ~req:(Some req) ~request_id:(Some request_id) ~status ~bytes
      ~elapsed

let reject t fd status ?code message =
  let resp = Http.json_error ~status ?code message in
  let status, bytes = write_guarded fd resp in
  close_quietly fd;
  log_request t ~req:None ~request_id:None ~status ~bytes ~elapsed:0.0

let run t =
  (* A worker writing to a peer that hung up must get EPIPE, not die. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ t.listener; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        if List.mem t.stop_r readable then ()
        else begin
          (match Unix.accept t.listener with
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
            ->
            ()
          | fd, _addr ->
            (* The read deadline rides on the socket itself. *)
            (try
               Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.request_timeout;
               Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.request_timeout
             with Unix.Unix_error _ -> ());
            let deadline = Clock.deadline_in t.config.request_timeout in
            let accepted =
              Pool.submit t.pool ~deadline
                ~expired:(fun () ->
                  reject t fd 408 ~code:"queue.expired"
                    "request expired while queued")
                (fun () -> serve_connection t ~deadline fd)
            in
            if not accepted then
              (* Backpressure: answer 503 from the accept loop itself. *)
              reject t fd 503 ~code:"queue.full" "server saturated (queue full)");
          loop ()
        end
  in
  loop ();
  close_quietly t.listener;
  Pool.stop t.pool

let start t =
  match t.accept_domain with
  | Some _ -> invalid_arg "Server.start: already started"
  | None -> t.accept_domain <- Some (Domain.spawn (fun () -> run t))

let join t =
  match t.accept_domain with
  | None -> ()
  | Some d ->
    t.accept_domain <- None;
    Domain.join d

let shutdown t =
  stop t;
  join t;
  close_quietly t.stop_r;
  close_quietly t.stop_w
