(** The SDC service endpoints over the two shared caches.

    - [GET /healthz] — liveness.
    - [GET /metrics] — uptime, cache statistics, per-endpoint request
      counters (plus whatever the server grafts on: pool stats).
    - [POST /v1/risk] — native risk estimation; the response body is the
      exact string the CLI's [risk --json] prints.
    - [POST /v1/anonymize] — anonymization cycle; counters + output CSV.
    - [POST /v1/categorize] — Algorithm 1 over the CSV's header.
    - [POST /v1/reason] — the measure as a Vadalog program on the
      reasoning engine, through the compiled-program cache.

    Handler state is shared by all worker domains: both caches are
    internally synchronized, and cached microdata is only ever read
    ([Cycle.run] transforms a copy). *)

type compiled = {
  program : Vadasa_vadalog.Program.t;
  strat : Vadasa_vadalog.Stratify.t;
  warded : bool;
}
(** The program cache's value: one parse + stratification + wardedness
    analysis per distinct program text. *)

type t

val create : ?program_capacity:int -> ?dataset_capacity:int -> unit -> t

val programs : t -> (string, compiled) Cache.t

val datasets : t -> (string, Vadasa_sdc.Microdata.t) Cache.t

val request_counts : t -> (string * int) list
(** Sorted ["METHOD path status" → count] pairs. *)

val router :
  ?extra_metrics:(unit -> (string * Vadasa_base.Json.t) list) ->
  t ->
  Router.t
(** The standard endpoint surface; [extra_metrics] lets the server add
    pool statistics to [GET /metrics]. *)
