(** The SDC service endpoints over the two shared caches.

    - [GET /healthz] — liveness.
    - [GET /metrics] — uptime, cache statistics, per-endpoint request
      counters, circuit-breaker states, armed fault points (plus
      whatever the server grafts on: pool stats).
    - [POST /v1/risk] — native risk estimation; the response body is the
      exact string the CLI's [risk --json] prints. With
      [reasoned=true] the measure also runs as a Vadalog program under
      the request budget; an interrupted chase degrades to the native
      report plus ["degraded": true].
    - [POST /v1/anonymize] — anonymization cycle; counters + output CSV.
      With ["audit": true] the response embeds the per-round decision
      trail (one {!Vadasa_sdc.Audit} event per cycle iteration).
    - [POST /v1/categorize] — Algorithm 1 over the CSV's header.
    - [POST /v1/reason] — the measure as a Vadalog program on the
      reasoning engine, through the compiled-program cache; an
      interrupted chase answers with the partial risk decode and
      ["degraded": true].
    - [POST /v1/explain] — program + fact → provenance derivation tree,
      byte-identical to [vadasa explain --json] for the same input; a
      fact the chase never derived answers 422 [fact.not_found].

    The dataset registry ({!Registry}) adds the streaming surface
    (docs/STREAMING.md):

    - [PUT /v1/datasets/{id}] — register the payload as a persistent
      dataset (201; idempotent re-PUT 200; clashing content 409
      [dataset.conflict]).
    - [GET /v1/datasets] — registered datasets with metadata.
    - [GET /v1/datasets/{id}] — metadata; [?include=csv] adds the
      current (base ∪ deltas) CSV document.
    - [POST /v1/datasets/{id}/facts] — append a delta CSV: incremental
      risk re-scoring plus a chase continuation from the dataset's
      fixpoint snapshot (from-scratch rebuild when invalidated). Fault
      point ["dataset.append"] fires after validation, before any state
      is committed.
    - [GET /v1/datasets/{id}/risk] — the maintained risk report,
      byte-identical to [POST /v1/risk] over the union CSV;
      [?mode=full] re-estimates from scratch on a cached union snapshot
      (invalidated on every append), [?threshold=] overrides.
    - [DELETE /v1/datasets/{id}] — unregister.

    The jobs API ({!Jobs}, docs/JOBS.md) runs anonymize/risk work
    asynchronously over registered datasets:

    - [POST /v1/jobs] — submit [{"dataset", "op", ...options}] (202).
      Per-tenant token-bucket rate limits and active-job quotas answer
      typed 429s ([tenant.rate_limited] / [tenant.quota_exceeded]) with
      a [Retry-After] header; a full worker queue answers 503
      [jobs.queue_full]. The tenant comes from the [X-Vadasa-Tenant]
      header (or [?tenant=], default ["default"]).
    - [GET /v1/jobs] / [GET /v1/jobs/{id}] — status; terminal jobs
      carry their result body or [{code; message}] error.
    - [DELETE /v1/jobs/{id}] — cooperative cancel ([job.cancelled]).

    Every failure renders through {!Codec.response_of_error}: the body
    carries a stable [error.code] and the status follows the error's
    category. Each endpoint sits behind a per-endpoint circuit breaker
    — consecutive 5xx responses open the circuit and subsequent
    requests get 503 [breaker.open] with a [Retry-After] until the
    cooldown lets a probe through. Fault point ["handler.dispatch"]
    fires on every guarded request.

    Handler state is shared by all worker domains: both caches are
    internally synchronized, and cached microdata is only ever read
    ([Cycle.run] transforms a copy). *)

type compiled = {
  program : Vadasa_vadalog.Program.t;
  strat : Vadasa_vadalog.Stratify.t;
  warded : bool;
}
(** The program cache's value: one parse + stratification + wardedness
    analysis per distinct program text. *)

type t

val create :
  ?program_capacity:int ->
  ?dataset_capacity:int ->
  ?registry_capacity:int ->
  ?dataset_audit:(string -> unit) ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?default_max_facts:int ->
  ?engine_pool:Vadasa_base.Task_pool.t ->
  ?persist:Persist.t ->
  ?job_domains:int ->
  ?job_queue:int ->
  ?tenant_quota:int ->
  ?job_retain:int ->
  ?tenant_rate:float ->
  ?tenant_burst:float ->
  unit ->
  t
(** Breaker defaults as {!Breaker.create}: 5 consecutive failures to
    open, 10 s cooldown. [default_max_facts] is a server-wide
    derived-fact ceiling ([serve --max-facts]) applied to requests that
    don't carry their own. [engine_pool] is a shared chase worker pool
    ([serve --engine-domains]): request engines borrow it for parallel
    evaluation instead of spawning domains per request, so the
    process-wide domain count stays [--domains + --engine-domains - 1].
    The caller owns the pool's lifecycle (stop it after the server
    drains). [registry_capacity] bounds the dataset registry (default
    16, LRU eviction); [dataset_audit] receives the registry's JSONL
    decision trail ([serve --dataset-audit], one line per
    register/append/delete).

    [persist] ([serve --data-dir]) makes the registry and the jobs
    table crash-safe: both register their snapshot sections and replay
    appliers, then [create] runs {!Persist.recover} and {!Jobs.resume}
    — a freshly created handler set already holds every committed
    dataset and job. Call {!shutdown} when done with it.

    [job_domains]/[job_queue] size the async job worker pool (defaults
    2/64; created lazily on first submission);
    [tenant_quota]/[tenant_rate]/[tenant_burst] parameterize per-tenant
    admission (defaults 16 active jobs, 50 submissions/s, burst 100);
    [job_retain] (default 256) caps the terminal jobs kept per tenant
    — older ones are pruned so the table and snapshots stay bounded. *)

val shutdown : t -> unit
(** Stop the job workers (draining queued jobs) and close the
    persistence store (final snapshot + journal shutdown). Idempotent.
    The HTTP accept loop has its own [Server.shutdown]; call that
    first so no request races the closing journal. *)

val programs : t -> (string, compiled) Cache.t

val datasets : t -> (string, Vadasa_sdc.Microdata.t) Cache.t

val registry : t -> Registry.t

val jobs : t -> Jobs.t

val persist : t -> Persist.t option

val breaker : t -> Breaker.t

val request_counts : t -> (string * int) list
(** Sorted ["METHOD route-pattern status" → count] pairs — keyed on the
    route pattern (["PUT /v1/datasets/{id} 201"]), never the raw path,
    so client-chosen dataset ids don't grow the table. *)

val budget_of : Http.request -> Codec.options -> Vadasa_base.Budget.t option
(** The per-request work budget: the earlier of the deadline the server
    stamped on the request and the request's own [budget_ms], capped by
    [max_facts]; [None] when no constraint applies. *)

val router :
  ?extra_metrics:(unit -> (string * Vadasa_base.Json.t) list) ->
  ?extra_prom:(unit -> string) ->
  t ->
  Router.t
(** The standard endpoint surface; [extra_metrics] lets the server add
    pool statistics to the JSON [GET /metrics] body, [extra_prom]
    appends extra exposition text (pool series) to the Prometheus body.

    [GET /metrics] content-negotiates: an [Accept] header naming
    [text/plain] (e.g. [text/plain; version=0.0.4]) or an OpenMetrics
    type selects Prometheus text exposition — the telemetry registry
    merged across worker-domain shards, plus request counters, cache
    and breaker series; anything else keeps the JSON body. *)
