(** Monotonic-enough wall clock.

    The runtime has no direct binding for [CLOCK_MONOTONIC] without C
    stubs, so this module wraps [Unix.gettimeofday] behind an atomic
    high-water mark: [now] never goes backwards within a process even
    if the system clock is stepped. Values stay on the Unix epoch so
    they can be mixed with absolute deadlines computed elsewhere.

    Used for every deadline comparison in the worker pool, the HTTP
    request timeouts and {!Budget} — a single clock means a job
    dequeued exactly at its deadline is consistently treated as
    expired. *)

val now : unit -> float
(** Current time in seconds since the Unix epoch, never decreasing
    across calls within this process (thread-safe). *)

val deadline_in : float -> float
(** [deadline_in s] is the absolute deadline [s] seconds from now. *)

val expired : ?now:float -> float -> bool
(** [expired d] is true iff the deadline [d] has been reached —
    deadline comparisons are inclusive: a job observed exactly at its
    deadline is expired, not "zero budget left". *)
