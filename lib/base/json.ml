(* Minimal JSON values shared across the stack: the telemetry reports,
   the bench regression-guard reader and the server codec all speak this
   one encoder/decoder, so their renderings can never drift apart.
   Dependency-free beyond the stdlib. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that round-trips; JSON has no nan/inf, so
   clamp them to null-safe literals. *)
let float_repr f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if !pos >= n then fail "truncated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let cp = hex4 () in
           let cp =
             (* surrogate pair *)
             if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
                && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
             end
             else cp
           in
           utf8 buf cp
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None ->
        (match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          expect '"';
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' ->
      advance ();
      Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List items -> Some items | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
