type category = Parse | Wardedness | Resource | Io | Internal

type t = {
  code : string;
  category : category;
  message : string;
  context : (string * string) list;
}

exception Error of t

let make ?(context = []) ~code category message =
  { code; category; message; context }

let fail ?context ~code category message =
  raise (Error (make ?context ~code category message))

let failf ?context ~code category fmt =
  Format.kasprintf (fun message -> fail ?context ~code category message) fmt

let add_context t pairs =
  (* context recorded closer to the failure site stays first and wins
     on lookup *)
  let fresh = List.filter (fun (k, _) -> not (List.mem_assoc k t.context)) pairs in
  { t with context = t.context @ fresh }

let context_value t key = List.assoc_opt key t.context

let category_to_string = function
  | Parse -> "parse"
  | Wardedness -> "wardedness"
  | Resource -> "resource"
  | Io -> "io"
  | Internal -> "internal"

let category_of_string = function
  | "parse" -> Some Parse
  | "wardedness" -> Some Wardedness
  | "resource" -> Some Resource
  | "io" -> Some Io
  | "internal" -> Some Internal
  | _ -> None

let to_string t =
  let ctx =
    match t.context with
    | [] -> ""
    | pairs ->
      let kvs = List.map (fun (k, v) -> k ^ "=" ^ v) pairs in
      " (" ^ String.concat ", " kvs ^ ")"
  in
  Printf.sprintf "%s: %s%s" t.code t.message ctx

let to_json t =
  Json.Obj
    [
      ("code", Json.Str t.code);
      ("category", Json.Str (category_to_string t.category));
      ("message", Json.Str t.message);
      ("context", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) t.context));
    ]

let () =
  Printexc.register_printer (function
    | Error t -> Some ("Vadasa_base.Error.Error: " ^ to_string t)
    | _ -> None)
