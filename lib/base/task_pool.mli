(** A reusable fork-join scheduler over a fixed set of OCaml 5 domains.

    This is the compute-side sibling of the server's job pool
    ([lib/server/pool.ml]): where that pool is a fire-and-forget queue
    with backpressure and deadlines for independent requests, this one
    is a {e fork-join} primitive — {!run_all} submits a batch of
    closures, the calling domain {e participates} in draining it, and
    the call returns only when every closure has finished, with the
    results in submission order.

    Several domains may call {!run_all} on the same pool concurrently:
    batches are queued and workers claim tasks from the oldest live
    batch first, so a shared pool composes with the server's worker
    pool without spawning domains per request (no oversubscription —
    the process-wide domain count is fixed at creation time).

    Because the caller always participates, a pool created with
    [~domains:1] spawns {e no} worker domains and [run_all] degenerates
    to a plain sequential [Array.map] — callers can treat "no
    parallelism" and "parallelism" uniformly. *)

type t

val create : ?name:string -> ?on_wait:(float -> unit) -> domains:int -> unit -> t
(** Spawn [domains - 1] worker domains ([domains] must be >= 1; the
    calling domain is the remaining unit of parallelism). [name] only
    labels log lines. [on_wait] observes per-task queue wait: it is
    called once per task that runs through a parallel {!run_all}, with
    the seconds elapsed between the batch's submission and that task's
    start, on the domain that runs the task — inject a telemetry probe
    here ([lib/base] itself stays dependency-free). It is not called on
    the sequential path (one domain, one task, or a stopped pool).
    Raises [Invalid_argument] when [domains < 1]. *)

val domains : t -> int
(** The parallelism the pool was created with (workers + the
    participating caller), i.e. the [~domains] given to {!create}. *)

val recommended : unit -> int
(** The parallelism this host can actually deliver:
    [Domain.recommended_domain_count ()], floored at 1. Honours cgroup
    and CPU-affinity limits, so a CI container pinned to one core
    reports 1 regardless of the machine's core count. Domains beyond
    this number buy no throughput and cost garbage-collector
    synchronization — see {!effective}. *)

val effective : requested:int -> int
(** [min requested (recommended ())], floored at 1 — the width a
    consumer should size a pool to when [requested] comes from
    configuration rather than measurement. The engine applies this cap
    by default ([Engine.create ~cap_domains]); callers that want to
    oversubscribe deliberately (scheduler tests, fairness experiments)
    can bypass it by building the pool themselves. *)

val run_all : t -> (unit -> 'a) array -> ('a, exn) result array
(** Execute every closure, returning per-task results in input order.
    Tasks may run on any worker domain or on the calling domain; the
    call blocks until all of them completed. A raising task yields
    [Error exn] in its slot and never takes a domain down; deciding
    which error wins is the caller's job (task order is stable, so
    "first [Error] in the array" is deterministic given deterministic
    tasks). Safe to call from several domains concurrently; do {e not}
    call it from inside one of the pool's own tasks (the nested batch
    would wait on the domain executing it). *)

val stop : t -> unit
(** Drain queued batches, join every worker domain, and mark the pool
    stopped. Idempotent. After [stop], {!run_all} still works but runs
    everything on the calling domain. *)

val stopped : t -> bool
