(** Cooperative cancellation budget.

    A budget bundles the three ways a long computation can be told to
    stop: an absolute wall-clock {!Clock} deadline, a ceiling on
    derived facts, and an externally settable cancel flag. The holder
    (the chase engine, the anonymization cycle) polls {!check} at
    natural iteration boundaries and raises a structured exception
    carrying partial progress when the budget is exhausted.

    A budget is cheap to poll (one or two atomic/float loads) and safe
    to share across domains: [cancel] may be called from any thread
    while the worker polls [check]. *)

type t

type reason = Cancelled | Deadline | Fact_ceiling

val create : ?deadline_in:float -> ?deadline:float -> ?max_facts:int -> unit -> t
(** [create ~deadline_in:s ()] expires [s] seconds from now;
    [~deadline] gives an absolute {!Clock} time instead (if both are
    set, the earlier wins). [~max_facts] caps the number of derived
    facts reported to {!check}. With no argument the budget only
    responds to {!cancel}. *)

val cancel : t -> unit
(** Request cooperative cancellation; idempotent, thread-safe. *)

val cancelled : t -> bool

val deadline : t -> float option
val max_facts : t -> int option

val remaining_s : t -> float option
(** Seconds until the deadline (clamped at 0), or [None] if the
    budget has no deadline. *)

val check : t -> facts:int -> reason option
(** [check b ~facts] is [Some reason] when the budget is exhausted:
    cancel flag set, deadline reached (inclusive, see
    {!Clock.expired}), or [facts] at/over the ceiling. Priority when
    several are exceeded: cancel, then deadline, then fact ceiling. *)

val reason_to_string : reason -> string
(** ["cancelled" | "deadline" | "fact_ceiling"] *)

val reason_code : reason -> string
(** Error-taxonomy code: ["budget.cancelled" | "budget.deadline" |
    "budget.fact_ceiling"]. *)
