(** Typed error taxonomy.

    Every user-visible failure in the pipeline carries a stable
    machine-readable [code] (e.g. ["csv.ragged_row"]), a coarse
    [category] that callers map to an exit status or HTTP status, a
    human-readable [message] and a list of [context] key/value pairs
    (file, line, column, stratum, …).

    The categories and the HTTP mapping used by the server codec:

    - [Parse]      — the request/input envelope is malformed (400)
    - [Wardedness] — the payload is well-formed but semantically
                     invalid: program does not parse, is not warded or
                     stratifiable, unknown measure/method (422)
    - [Resource]   — a budget, queue or engine limit was hit (503)
    - [Io]         — the outside world failed: file system, sockets,
                     injected faults (500)
    - [Internal]   — a bug: invariants violated, unexpected exception
                     (500)

    See [docs/RESILIENCE.md] for the full code registry. *)

type category = Parse | Wardedness | Resource | Io | Internal

type t = {
  code : string;  (** stable machine-readable identifier, dotted *)
  category : category;
  message : string;  (** human-readable, one line *)
  context : (string * string) list;  (** e.g. [("file", …); ("line", …)] *)
}

exception Error of t
(** The single exception used to propagate typed errors. *)

val make :
  ?context:(string * string) list -> code:string -> category -> string -> t

val fail :
  ?context:(string * string) list -> code:string -> category -> string -> 'a
(** [fail ~code category message] raises {!Error}. *)

val failf :
  ?context:(string * string) list ->
  code:string ->
  category ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Like {!fail} with a format string for the message. *)

val add_context : t -> (string * string) list -> t
(** Appends context pairs (existing keys win — context closer to the
    failure site is more precise). *)

val context_value : t -> string -> string option

val category_to_string : category -> string
(** ["parse" | "wardedness" | "resource" | "io" | "internal"] *)

val category_of_string : string -> category option

val to_string : t -> string
(** ["code: message (k=v, k=v)"] — for logs and stderr. *)

val to_json : t -> Json.t
(** [{"code": …, "category": …, "message": …, "context": {…}}] *)
