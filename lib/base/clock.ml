(* Non-decreasing wall clock: an atomic high-water mark over
   [Unix.gettimeofday]. The CAS loop only retries when another domain
   published a larger watermark concurrently, so the fast path is one
   load + one compare-and-set. *)

let watermark = Atomic.make 0.0

let rec now () =
  let t = Unix.gettimeofday () in
  let seen = Atomic.get watermark in
  if t >= seen then
    if Atomic.compare_and_set watermark seen t then t
    else now ()
  else seen

let deadline_in s = now () +. s
let expired ?now:(t = now ()) deadline = t >= deadline
