(** Minimal JSON values shared across the stack.

    One encoder and one parser for everything that speaks JSON — the
    telemetry reports ({!Vadasa_telemetry}), the bench regression-guard
    reader and the server codec — so renderings cannot drift between
    subsystems. Encoding is deterministic: object fields print in the
    order given, floats use the shortest representation that
    round-trips, and [nan]/[inf] are clamped to finite literals. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Compact by default; [~indent:true] pretty-prints with two-space
    indentation. *)

val of_string : string -> (t, string) result
(** Full JSON parser (strings with escapes and surrogate pairs, numbers,
    nested containers). The error carries the byte offset. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing fields and non-objects. *)

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** [Int] widens to float. *)

val to_string_opt : t -> string option

val to_list_opt : t -> t list option

val to_bool_opt : t -> bool option
