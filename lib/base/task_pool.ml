(* Fork-join domain pool.

   Shape: a single FIFO of [batch] views shared by all worker domains.
   A batch is represented only by its [claim] function — an existential
   package over the submitting [run_all]'s typed state (tasks, results
   slice, completion latch) so the pool itself stays monomorphic.

   Claiming is an atomic counter bump, so workers and the submitting
   caller race for tasks without holding the pool mutex while running
   them.  Each task writes its own result slot (single writer per
   index), then decrements the batch's remaining-count under the
   batch-local mutex; the final decrement broadcasts the batch's
   condition variable, releasing the caller.  That mutex pairing is
   also what makes the result slots visible to the caller under the
   OCaml 5 memory model: every slot write is sequenced before the
   worker's unlock, which synchronizes with the caller's final lock. *)

type batch = {
  claim : unit -> (unit -> unit) option;
      (* Next ready task of this batch, or [None] once exhausted.
         Tasks never raise: exceptions are captured into result slots. *)
}

type t = {
  name : string;
  n_domains : int;
  mutex : Mutex.t; (* guards [pending] and [workers] *)
  cond : Condition.t; (* signalled on submit and on stop *)
  pending : batch Queue.t;
  stop_flag : bool Atomic.t;
  mutable workers : unit Domain.t list;
  on_wait : (float -> unit) option;
      (* Queue-wait observer: seconds between a batch's submission and
         each task's start, invoked on the domain that runs the task.
         Injected as a callback so [lib/base] stays telemetry-free. *)
}

let domains t = t.n_domains
let stopped t = Atomic.get t.stop_flag

(* The host's useful parallelism. [Domain.recommended_domain_count]
   reads the cgroup/CPU-affinity limits, so a container pinned to one
   core reports 1 even when the machine has more. *)
let recommended () = max 1 (Domain.recommended_domain_count ())

let effective ~requested = max 1 (min requested (recommended ()))

(* Pull one runnable task off the shared queue, pruning exhausted
   batches as they are discovered at the head.  Returns [None] only
   when the pool is stopping and nothing is left to run. *)
let next_task t =
  Mutex.lock t.mutex;
  let rec get () =
    match Queue.peek_opt t.pending with
    | Some b -> (
        match b.claim () with
        | Some _ as task -> task
        | None ->
            (* Exhausted; drop it if it is still the head (another
               worker may have pruned it while we ran [claim]). *)
            (match Queue.peek_opt t.pending with
            | Some b' when b' == b -> ignore (Queue.pop t.pending)
            | _ -> ());
            get ())
    | None ->
        if Atomic.get t.stop_flag then None
        else (
          Condition.wait t.cond t.mutex;
          get ())
  in
  let task = get () in
  Mutex.unlock t.mutex;
  task

let rec worker_loop t =
  match next_task t with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let create ?(name = "task-pool") ?on_wait ~domains () =
  if domains < 1 then
    invalid_arg (Printf.sprintf "Task_pool.create (%s): domains must be >= 1" name);
  let t =
    {
      name;
      n_domains = domains;
      mutex = Mutex.create ();
      cond = Condition.create ();
      pending = Queue.create ();
      stop_flag = Atomic.make false;
      workers = [];
      on_wait;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let run_seq tasks =
  Array.map (fun f -> match f () with v -> Ok v | exception e -> Error e) tasks

let run_all t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.n_domains = 1 || n = 1 || stopped t then run_seq tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Batch-local latch, so concurrent [run_all] calls do not contend
       on one pool-wide completion lock. *)
    let bm = Mutex.create () in
    let bc = Condition.create () in
    let remaining = ref n in
    let submitted = Unix.gettimeofday () in
    let run_one i =
      (match t.on_wait with
      | Some f -> f (Unix.gettimeofday () -. submitted)
      | None -> ());
      let r = (match tasks.(i) () with v -> Ok v | exception e -> Error e) in
      results.(i) <- Some r;
      Mutex.lock bm;
      decr remaining;
      if !remaining = 0 then Condition.broadcast bc;
      Mutex.unlock bm
    in
    let claim () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then Some (fun () -> run_one i) else None
    in
    Mutex.lock t.mutex;
    Queue.push { claim } t.pending;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    (* The caller is a full participant: race the workers for tasks,
       then wait out whatever stragglers the workers claimed. *)
    let rec drain () =
      match claim () with
      | Some task ->
          task ();
          drain ()
      | None -> ()
    in
    drain ();
    Mutex.lock bm;
    while !remaining > 0 do
      Condition.wait bc bm
    done;
    Mutex.unlock bm;
    Array.map (function Some r -> r | None -> assert false) results
  end

let stop t =
  if not (Atomic.exchange t.stop_flag true) then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    List.iter Domain.join workers
  end
