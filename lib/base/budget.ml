type t = {
  deadline : float option;  (* absolute, Clock time *)
  max_facts : int option;
  cancelled : bool Atomic.t;
}

type reason = Cancelled | Deadline | Fact_ceiling

let create ?deadline_in ?deadline ?max_facts () =
  let deadline =
    match (deadline, deadline_in) with
    | None, None -> None
    | Some d, None -> Some d
    | None, Some s -> Some (Clock.deadline_in s)
    | Some d, Some s -> Some (Float.min d (Clock.deadline_in s))
  in
  { deadline; max_facts; cancelled = Atomic.make false }

let cancel t = Atomic.set t.cancelled true
let cancelled t = Atomic.get t.cancelled
let deadline t = t.deadline
let max_facts t = t.max_facts

let remaining_s t =
  Option.map (fun d -> Float.max 0.0 (d -. Clock.now ())) t.deadline

let check t ~facts =
  if Atomic.get t.cancelled then Some Cancelled
  else
    match t.deadline with
    | Some d when Clock.expired d -> Some Deadline
    | _ -> (
      match t.max_facts with
      | Some cap when facts >= cap -> Some Fact_ceiling
      | _ -> None)

let reason_to_string = function
  | Cancelled -> "cancelled"
  | Deadline -> "deadline"
  | Fact_ceiling -> "fact_ceiling"

let reason_code r = "budget." ^ reason_to_string r
