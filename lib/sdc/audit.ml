module Json = Vadasa_base.Json

type event = {
  round : int;
  risky_before : int;
  max_risk_before : float;
  mean_risk_before : float;
  suppressed : int;
  recoded : int;
  blocked : int;
  skipped : int;
  info_loss_before : float;
  info_loss_after : float;
  violations_after : int option;
  max_risk_after : float option;
}

let method_of_event e =
  match (e.suppressed > 0, e.recoded > 0) with
  | true, true -> "mixed"
  | true, false -> "suppress"
  | false, true -> "recode"
  | false, false -> "none"

(* Events accumulate newest-first; [begin_round] patches the previous
   head with the post-state its own estimate just revealed. *)
type recorder = { mutable events : event list }

let recorder () = { events = [] }

let patch_after r ~violations ~max_risk =
  match r.events with
  | [] -> ()
  | e :: rest ->
    r.events <-
      { e with violations_after = Some violations; max_risk_after = Some max_risk }
      :: rest

let begin_round r ~round ~risky ~max_risk ~mean_risk ~info_loss =
  patch_after r ~violations:risky ~max_risk;
  r.events <-
    {
      round;
      risky_before = risky;
      max_risk_before = max_risk;
      mean_risk_before = mean_risk;
      suppressed = 0;
      recoded = 0;
      blocked = 0;
      skipped = 0;
      info_loss_before = info_loss;
      info_loss_after = info_loss;
      violations_after = None;
      max_risk_after = None;
    }
    :: r.events

let end_round r ~suppressed ~recoded ~blocked ~skipped ~info_loss =
  match r.events with
  | [] -> ()
  | e :: rest ->
    r.events <-
      { e with suppressed; recoded; blocked; skipped; info_loss_after = info_loss }
      :: rest

let finish r =
  (* A final round with no action (convergence, stall) left the data in
     the exact state its own estimate measured. *)
  match r.events with
  | e :: rest
    when e.violations_after = None && e.suppressed = 0 && e.recoded = 0 ->
    r.events <-
      {
        e with
        violations_after = Some e.risky_before;
        max_risk_after = Some e.max_risk_before;
      }
      :: rest
  | _ -> ()

let events r = List.rev r.events

let opt_int = function None -> Json.Null | Some n -> Json.Int n

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let event_to_json e =
  Json.Obj
    [
      ("event", Json.Str "cycle.round");
      ("round", Json.Int e.round);
      ("risky_before", Json.Int e.risky_before);
      ("max_risk_before", Json.Float e.max_risk_before);
      ("mean_risk_before", Json.Float e.mean_risk_before);
      ("method", Json.Str (method_of_event e));
      ("suppressed", Json.Int e.suppressed);
      ("recoded", Json.Int e.recoded);
      ("cells_affected", Json.Int (e.suppressed + e.recoded));
      ("blocked", Json.Int e.blocked);
      ("skipped", Json.Int e.skipped);
      ("violations_after", opt_int e.violations_after);
      ("max_risk_after", opt_float e.max_risk_after);
      ("info_loss_before", Json.Float e.info_loss_before);
      ("info_loss_after", Json.Float e.info_loss_after);
      ( "info_loss_delta",
        Json.Float (e.info_loss_after -. e.info_loss_before) );
    ]

let to_jsonl events =
  String.concat ""
    (List.map (fun e -> Json.to_string (event_to_json e) ^ "\n") events)
