(** Statistical disclosure risk estimation — the [#risk] plug-in point of
    the anonymization cycle (paper, Section 4.2).

    All measures instantiate the same scheme ρ_q̂ = 1/λ(σ_{q=q̂} M): an
    aggregate λ over the tuples sharing a quasi-identifier combination,
    turned into a per-tuple risk in [\[0, 1\]]. The polymorphic {!measure}
    selects the λ:

    - {!Re_identification}: λ = Σ W over the combination's tuples
      (Algorithm 3);
    - {!K_anonymity}: risky iff the combination's frequency < k
      (Algorithm 4);
    - {!Individual}: Benedetti–Franconi-style estimation of E[1/F | f]
      (Algorithm 5), with the estimator variants of
      {!Vadasa_stats.Estimator};
    - {!Suda}: risky iff some minimal sample unique is smaller than a
      threshold (Algorithm 6, see {!Risk_suda}). *)

type estimator =
  | Naive  (** f/Σw, the paper's λ = ΣW_t/f *)
  | Benedetti_franconi  (** closed-form posterior mean *)
  | Monte_carlo of { samples : int; seed : int }
      (** sampling from the negative-binomial posterior — the "off-the-shelf
          statistical library" plug-in whose cost dominates Figure 7e *)

type measure =
  | Re_identification
  | K_anonymity of { k : int }
  | Individual of estimator
  | Suda of { max_msu_size : int; threshold_size : int }
  | Custom of {
      name : string;
      score : freq:int -> weight_sum:float -> float;
    }
      (** user-delegated measure (paper desideratum vii): any risk-weight
          function λ over the combination's frequency and weight sum, i.e.
          an instance of ρ_q̂ = 1/λ(σ_{q=q̂} M); must land in [0,1] *)

type report = {
  measure : measure;
  risk : float array;  (** per tuple, in [\[0,1\]] *)
  freq : int array;  (** sample frequency of each tuple's combination *)
  weight_sum : float array;  (** estimated population frequency *)
}

val group_stats :
  ?semantics:Vadasa_relational.Null_semantics.t ->
  Microdata.t ->
  Vadasa_relational.Algebra.Group_stats.t
(** Frequency and weight sum of every tuple's quasi-identifier combination;
    default semantics is [Maybe_match] so anonymized tuples are credited. *)

val estimate :
  ?semantics:Vadasa_relational.Null_semantics.t ->
  measure ->
  Microdata.t ->
  report

val risky : report -> threshold:float -> int list
(** Tuple positions whose risk strictly exceeds the threshold, ascending. *)

val global_risk : report -> float
(** Expected number of re-identifications (sum of per-tuple risks). *)

val measure_to_string : measure -> string

(** {2 Incremental re-scoring}

    Delta-aware maintenance of a {!report} for datasets that grow by
    appended rows (the server's dataset registry). Per-tuple risk is a
    pure function of the tuple's combination statistics, so an append
    only re-scores the members of the quasi-identifier combinations the
    new rows land in; the maintained buckets replay [Group_stats]'s
    accumulation order, keeping the arrays float-bit-identical to a full
    {!estimate} over the grown relation — asserted by the test suite.

    When that equivalence cannot hold, {!Incremental.append} silently
    performs a full re-estimate instead and reports which fallback
    fired: maybe-match semantics with labelled nulls present (groups
    overlap), or an order-dependent measure (SUDA, Monte-Carlo,
    custom closures). Either way the resulting report is exactly what
    {!estimate} returns on the current data. *)
module Incremental : sig
  type t

  type fallback =
    | Measure_order
        (** SUDA / Monte-Carlo / custom: scores depend on whole-dataset
            evaluation order, not just per-group statistics *)
    | Null_semantics
        (** maybe-match with labelled nulls in a quasi-identifier
            projection: groups overlap, delta maintenance is invalid *)

  val fallback_to_string : fallback -> string
  (** ["measure-order"] / ["null-semantics"] (metric label values). *)

  type outcome = {
    rows_added : int;
    rows_rescored : int;
        (** members of touched combinations — the whole relation when a
            fallback fired *)
    groups_touched : int;  (** [0] when a fallback fired *)
    fallback : fallback option;
  }

  val create :
    ?semantics:Vadasa_relational.Null_semantics.t -> measure -> Microdata.t -> t
  (** Scores the whole dataset once ({!estimate}) and indexes its
      combinations. The microdata is shared, not copied: the caller
      appends rows to its relation in place, then calls {!append}. *)

  val append : t -> outcome
  (** Re-score after rows were appended to the microdata's relation.
      After [append], {!report} equals [estimate measure md] on the
      grown data byte-for-byte. *)

  val report : t -> report

  val microdata : t -> Microdata.t

  val appends : t -> int
  (** {!append} calls so far. *)

  val full_rescores : t -> int
  (** How many of them fell back to a full re-estimate. *)
end

val pp_report :
  ?limit:int -> Format.formatter -> Microdata.t * report -> unit
(** Human-readable top-risk table (explainability surface). *)
