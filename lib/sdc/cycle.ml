module Value = Vadasa_base.Value
module Ids = Vadasa_base.Ids
module Budget = Vadasa_base.Budget
module Relational = Vadasa_relational
module Telemetry = Vadasa_telemetry.Telemetry
module Faultpoint = Vadasa_resilience.Faultpoint

let log_src = Logs.Src.create "vadasa.cycle" ~doc:"anonymization cycle"

module Log = (val Logs.src_log log_src : Logs.LOG)

type anonymization_method =
  | Local_suppression
  | Global_recoding of Hierarchy.t
  | Recode_then_suppress of Hierarchy.t

type action_kind =
  | Suppressed of Value.t
  | Recoded of Value.t * Value.t

type action = {
  round : int;
  tuple : int;
  attr : string;
  kind : action_kind;
  risk_before : float;
  freq_before : int;
}

type config = {
  measure : Risk.measure;
  threshold : float;
  semantics : Relational.Null_semantics.t;
  tuple_order : Heuristics.tuple_order;
  qi_choice : Heuristics.qi_choice;
  method_ : anonymization_method;
  max_rounds : int;
  per_round_limit : int option;
  share_nulls : bool;
  risk_transform : (Microdata.t -> float array -> float array) option;
}

let default_config =
  {
    measure = Risk.K_anonymity { k = 2 };
    threshold = 0.5;
    semantics = Relational.Null_semantics.Maybe_match;
    tuple_order = Heuristics.Less_significant_first;
    qi_choice = Heuristics.Most_risky_qi;
    method_ = Local_suppression;
    max_rounds = 100;
    per_round_limit = None;
    share_nulls = true;
    risk_transform = None;
  }

type outcome = {
  anonymized : Microdata.t;
  rounds : int;
  nulls_injected : int;
  recoded_cells : int;
  risky_initial : int;
  unresolved : int list;
  info_loss : float;
  trace : action list;
  converged : bool;
  interrupted : Budget.reason option;
}

(* Attributes of [tuple] on which the configured method can still act. *)
let candidates config md ~tuple =
  let non_null = Suppression.suppressible md ~tuple in
  match config.method_ with
  | Local_suppression | Recode_then_suppress _ -> non_null
  | Global_recoding hierarchy ->
    let rel = Microdata.relation md in
    let schema = Microdata.schema md in
    List.filter
      (fun attr ->
        let pos = Relational.Schema.index_of schema attr in
        let v = Relational.Tuple.get (Relational.Relation.get rel tuple) pos in
        Hierarchy.parent hierarchy v <> None)
      non_null

let apply_action config ids md ~tuple ~attr =
  match config.method_ with
  | Local_suppression ->
    (match Suppression.suppress ids md ~tuple ~attr with
    | Some old -> Some (Suppressed old)
    | None -> None)
  | Global_recoding hierarchy ->
    (match Recoding.recode_tuple hierarchy md ~tuple ~attr with
    | Some step -> Some (Recoded (step.Recoding.from_value, step.Recoding.to_value))
    | None -> None)
  | Recode_then_suppress hierarchy ->
    (match Recoding.recode_tuple hierarchy md ~tuple ~attr with
    | Some step -> Some (Recoded (step.Recoding.from_value, step.Recoding.to_value))
    | None ->
      (match Suppression.suppress ids md ~tuple ~attr with
      | Some old -> Some (Suppressed old)
      | None -> None))

(* Within-round bookkeeping of this round's suppressions, so one labelled
   null can rescue several pending tuples (the paper's "wider risk
   reduction effect", Figure 7b). Each suppression event is recorded as the
   suppressed tuple's new projection: null-position mask plus the canonical
   key of its constant positions. A pending tuple gains one maybe-match per
   recorded event agreeing with it on the event's constant positions. The
   gain is an over-approximation (it may recount tuples that already
   matched), which is safe: a skipped tuple is re-examined by the next
   round's exact risk evaluation. *)
module Round_gains = struct
  type t = {
    qi : int array;
    tables : (int, (string, int) Hashtbl.t) Hashtbl.t;  (* mask -> key -> count *)
  }

  let create qi = { qi; tables = Hashtbl.create 8 }

  let projection md tuple qi =
    Relational.Tuple.project
      (Relational.Relation.get (Microdata.relation md) tuple)
      qi

  let constant_positions proj =
    let acc = ref [] in
    for p = Array.length proj - 1 downto 0 do
      if not (Value.is_null proj.(p)) then acc := p :: !acc
    done;
    Array.of_list !acc

  let record t md ~tuple =
    let proj = projection md tuple t.qi in
    let mask = Relational.Tuple.null_mask proj in
    let positions = constant_positions proj in
    let key = Relational.Tuple.key (Relational.Tuple.project proj positions) in
    let table =
      match Hashtbl.find_opt t.tables mask with
      | Some table -> table
      | None ->
        let table = Hashtbl.create 64 in
        Hashtbl.add t.tables mask table;
        table
    in
    let current = try Hashtbl.find table key with Not_found -> 0 in
    Hashtbl.replace table key (current + 1)

  let gained t md ~tuple =
    let proj = projection md tuple t.qi in
    Hashtbl.fold
      (fun mask table acc ->
        let positions =
          let keep = ref [] in
          for p = Array.length proj - 1 downto 0 do
            if mask land (1 lsl p) = 0 then keep := p :: !keep
          done;
          Array.of_list !keep
        in
        (* Conservative: only count events whose constant positions are all
           constant in the pending tuple too. *)
        if Array.exists (fun p -> Value.is_null proj.(p)) positions then acc
        else
          let key =
            Relational.Tuple.key (Relational.Tuple.project proj positions)
          in
          acc + (try Hashtbl.find table key with Not_found -> 0))
      t.tables 0
end

let run_body ?(config = default_config) ?audit ?budget input =
  let md = Microdata.copy input in
  let ids = Ids.create () in
  let trace = ref [] in
  let recoded_cells = ref 0 in
  let risky_initial = ref (-1) in
  let unresolved = ref [] in
  let converged = ref false in
  let interrupted = ref None in
  let round = ref 0 in
  let continue = ref true in
  let qi_count = Array.length (Microdata.qi_positions md) in
  (* Figure 7b's loss metric as of now — pure arithmetic on the running
     counters, cheap enough to evaluate per audit event. *)
  let info_loss_now () =
    Info_loss.suppression_loss ~nulls_injected:(Ids.count ids)
      ~risky_tuples:(max 0 !risky_initial) ~qi_count
  in
  let risk_stats risk =
    let max_r = ref 0.0 and sum = ref 0.0 in
    Array.iter
      (fun r ->
        if r > !max_r then max_r := r;
        sum := !sum +. r)
      risk;
    let n = Array.length risk in
    (!max_r, if n = 0 then 0.0 else !sum /. float_of_int n)
  in
  (* The budget is polled at round boundaries: every completed round
     leaves the working copy strictly safer than the round before, so
     stopping between rounds yields a usable (if unfinished) DB. *)
  let budget_exhausted () =
    match budget with
    | None -> false
    | Some b -> (
      match Budget.check b ~facts:(Ids.count ids) with
      | None -> false
      | Some reason ->
        interrupted := Some reason;
        Log.debug (fun m ->
            m "cycle interrupted (%s) after round %d"
              (Budget.reason_to_string reason)
              !round);
        true)
  in
  while !continue && !round < config.max_rounds && not (budget_exhausted ()) do
    incr round;
    Faultpoint.hit "cycle.round";
    Telemetry.count "sdc.cycle.rounds" 1;
    let report =
      Telemetry.span "sdc.cycle.risk" (fun () ->
          Risk.estimate ~semantics:config.semantics config.measure md)
    in
    let risk =
      match config.risk_transform with
      | Some f -> f md report.Risk.risk
      | None -> report.Risk.risk
    in
    let risky =
      let acc = ref [] in
      Array.iteri (fun i r -> if r > config.threshold then acc := i :: !acc) risk;
      List.rev !acc
    in
    if !risky_initial < 0 then risky_initial := List.length risky;
    (match audit with
    | Some recorder ->
      let max_risk, mean_risk = risk_stats risk in
      Audit.begin_round recorder ~round:!round ~risky:(List.length risky)
        ~max_risk ~mean_risk ~info_loss:(info_loss_now ())
    | None -> ());
    Telemetry.observe "sdc.cycle.risky_per_round"
      (float_of_int (List.length risky));
    Log.debug (fun m ->
        m "round %d: %d risky tuples under %s (T=%.2f)" !round
          (List.length risky)
          (Risk.measure_to_string config.measure)
          config.threshold);
    if risky = [] then begin
      converged := true;
      continue := false;
      match audit with
      | Some recorder ->
        Audit.end_round recorder ~suppressed:0 ~recoded:0 ~blocked:0 ~skipped:0
          ~info_loss:(info_loss_now ())
      | None -> ()
    end
    else begin
      let ordered = Heuristics.order_tuples config.tuple_order md ~risk risky in
      let ordered =
        match config.per_round_limit with
        | Some limit -> List.filteri (fun i _ -> i < limit) ordered
        | None -> ordered
      in
      let cache = Heuristics.build_cache md in
      let progressed = ref false in
      let blocked = ref [] in
      let round_suppressed = ref 0 in
      let round_recoded = ref 0 in
      let round_skipped = ref 0 in
      (* Under maybe-match semantics with k-anonymity, a suppression made
         earlier in this round may already have rescued a pending tuple:
         skip it when its frequency plus the maybe-matches gained so far
         reaches k (it is re-checked exactly next round). *)
      let gains =
        match config.semantics with
        | Relational.Null_semantics.Maybe_match when config.share_nulls ->
          Some (Round_gains.create (Microdata.qi_positions md))
        | Relational.Null_semantics.Maybe_match
        | Relational.Null_semantics.Standard ->
          None
      in
      (* The skip only applies when the tuple's own scarcity is what makes
         it risky; a tuple flagged through a risk transform (Algorithm 9's
         cluster propagation) while its own frequency is fine must be
         anonymized now — its risk comes from elsewhere. *)
      let satisfied_by_gains tuple =
        match gains, config.measure with
        | Some g, Risk.K_anonymity { k } ->
          report.Risk.freq.(tuple) < k
          && report.Risk.freq.(tuple) + Round_gains.gained g md ~tuple >= k
        | Some g, Risk.Re_identification ->
          let base = report.Risk.weight_sum.(tuple) in
          let scarcity_bound = base <= 1.0 || 1.0 /. base > config.threshold in
          scarcity_bound
          &&
          (* Gained matches contribute at least weight 1 each. *)
          let w =
            base +. float_of_int (Round_gains.gained g md ~tuple)
          in
          w > 1.0 && 1.0 /. w <= config.threshold
        | Some _, (Risk.Individual _ | Risk.Suda _ | Risk.Custom _)
        | None, _ ->
          false
      in
      Telemetry.span "sdc.cycle.actions" (fun () ->
          List.iter
            (fun tuple ->
              if satisfied_by_gains tuple then incr round_skipped
              else
                let cands = candidates config md ~tuple in
                match Heuristics.choose_qi config.qi_choice cache md ~tuple ~candidates:cands with
                | None -> blocked := tuple :: !blocked
                | Some attr ->
                  (match apply_action config ids md ~tuple ~attr with
                  | None -> blocked := tuple :: !blocked
                  | Some kind ->
                    (match kind, gains with
                    | Recoded _, _ ->
                      incr recoded_cells;
                      incr round_recoded;
                      Telemetry.count "sdc.cycle.recodings" 1
                    | Suppressed _, Some g ->
                      incr round_suppressed;
                      Telemetry.count "sdc.cycle.suppressions" 1;
                      Round_gains.record g md ~tuple
                    | Suppressed _, None ->
                      incr round_suppressed;
                      Telemetry.count "sdc.cycle.suppressions" 1);
                    progressed := true;
                    trace :=
                      {
                        round = !round;
                        tuple;
                        attr;
                        kind;
                        risk_before = risk.(tuple);
                        freq_before = report.Risk.freq.(tuple);
                      }
                      :: !trace))
            ordered);
      Telemetry.count "sdc.cycle.blocked" (List.length !blocked);
      (match audit with
      | Some recorder ->
        Audit.end_round recorder ~suppressed:!round_suppressed
          ~recoded:!round_recoded
          ~blocked:(List.length !blocked)
          ~skipped:!round_skipped
          ~info_loss:(info_loss_now ())
      | None -> ());
      Log.debug (fun m ->
          m "round %d: %d actions, %d blocked" !round
            (List.length !trace) (List.length !blocked));
      if not !progressed then begin
        (* No move left for any risky tuple: report them and stop. *)
        unresolved := List.rev !blocked;
        continue := false
      end
    end
  done;
  (match audit with
  | Some recorder -> Audit.finish recorder
  | None -> ());
  let outcome =
    {
      anonymized = md;
      rounds = !round;
      nulls_injected = Ids.count ids;
      recoded_cells = !recoded_cells;
      risky_initial = max 0 !risky_initial;
      unresolved = !unresolved;
      info_loss =
        Info_loss.suppression_loss ~nulls_injected:(Ids.count ids)
          ~risky_tuples:(max 0 !risky_initial) ~qi_count;
      trace = List.rev !trace;
      converged = !converged;
      interrupted = !interrupted;
    }
  in
  if Telemetry.enabled () then begin
    Telemetry.gauge "sdc.cycle.nulls_injected" (float_of_int outcome.nulls_injected);
    Telemetry.gauge "sdc.cycle.info_loss" outcome.info_loss;
    Telemetry.gauge "sdc.cycle.unresolved"
      (float_of_int (List.length outcome.unresolved));
    (* The audit trail's telemetry mirror: run-level totals as their own
       sdc.* families (counters sum across runs, histograms distribute
       per-run), whether or not a recorder was attached. *)
    Telemetry.count "sdc.cells_suppressed" outcome.nulls_injected;
    Telemetry.count "sdc.cells_recoded" outcome.recoded_cells;
    Telemetry.observe "sdc.info_loss" outcome.info_loss;
    Telemetry.observe "sdc.iterations" (float_of_int outcome.rounds)
  end;
  outcome

let run ?config ?audit ?budget input =
  Telemetry.span "sdc.cycle.run" (fun () -> run_body ?config ?audit ?budget input)

let pp_outcome ppf o =
  Format.fprintf ppf
    "anonymization cycle: %d rounds, %s@.  initial risky tuples: %d@.  nulls \
     injected: %d@.  cells recoded: %d@.  information loss: %.3f@.  \
     unresolved: %d@."
    o.rounds
    (match o.interrupted with
    | Some reason -> "interrupted (" ^ Budget.reason_to_string reason ^ ")"
    | None -> if o.converged then "converged" else "stopped")
    o.risky_initial o.nulls_injected o.recoded_cells o.info_loss
    (List.length o.unresolved);
  if List.length o.trace <= 25 then
    List.iter
      (fun a ->
        Format.fprintf ppf "  round %d: tuple %d, %s %s (risk %.3f, freq %d)@."
          a.round a.tuple a.attr
          (match a.kind with
          | Suppressed v -> "suppressed " ^ Value.to_string v
          | Recoded (f, t) ->
            "recoded " ^ Value.to_string f ^ " -> " ^ Value.to_string t)
          a.risk_before a.freq_before)
      o.trace
  else Format.fprintf ppf "  (%d actions)@." (List.length o.trace)
