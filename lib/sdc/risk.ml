module Relational = Vadasa_relational
module Stats = Vadasa_stats
module Algebra = Relational.Algebra
module Telemetry = Vadasa_telemetry.Telemetry

type estimator =
  | Naive
  | Benedetti_franconi
  | Monte_carlo of { samples : int; seed : int }

type measure =
  | Re_identification
  | K_anonymity of { k : int }
  | Individual of estimator
  | Suda of { max_msu_size : int; threshold_size : int }
  | Custom of {
      name : string;
      score : freq:int -> weight_sum:float -> float;
    }

type report = {
  measure : measure;
  risk : float array;
  freq : int array;
  weight_sum : float array;
}

let group_stats ?(semantics = Relational.Null_semantics.Maybe_match) md =
  Telemetry.span "sdc.risk.group_stats" (fun () ->
      let rel = Microdata.relation md in
      let qi = Microdata.qi_positions md in
      match Microdata.weight_position md with
      | Some weight -> Algebra.Group_stats.compute ~semantics ~rel ~qi ~weight ()
      | None -> Algebra.Group_stats.compute ~semantics ~rel ~qi ())

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let estimate_body ?semantics measure md =
  let stats = group_stats ?semantics md in
  let freq = stats.Algebra.Group_stats.freq in
  let weight_sum = stats.Algebra.Group_stats.weight_sum in
  let risk =
    match measure with
    | Re_identification ->
      Array.map
        (fun w -> if w <= 1.0 then 1.0 else clamp01 (1.0 /. w))
        weight_sum
    | K_anonymity { k } ->
      Array.map (fun f -> if f < k then 1.0 else 0.0) freq
    | Individual estimator ->
      let estimate_one =
        match estimator with
        | Naive -> fun f w -> Stats.Estimator.naive ~freq:f ~weight_sum:w
        | Benedetti_franconi ->
          fun f w -> Stats.Estimator.benedetti_franconi ~freq:f ~weight_sum:w
        | Monte_carlo { samples; seed } ->
          let rng = Stats.Rng.create ~seed in
          fun f w ->
            Stats.Estimator.monte_carlo rng ~samples ~freq:f ~weight_sum:w
      in
      Array.init (Array.length freq) (fun i ->
          estimate_one freq.(i) weight_sum.(i))
    | Suda { max_msu_size; threshold_size } ->
      Risk_suda.estimate ~max_msu_size ~threshold_size md
    | Custom { score; _ } ->
      Array.init (Array.length freq) (fun i ->
          clamp01 (score ~freq:freq.(i) ~weight_sum:weight_sum.(i)))
  in
  { measure; risk; freq; weight_sum }

let estimate ?semantics measure md =
  Telemetry.span "sdc.risk.estimate" (fun () ->
      let report = estimate_body ?semantics measure md in
      if Telemetry.enabled () then begin
        Telemetry.count "sdc.risk.estimates" 1;
        Telemetry.gauge "sdc.risk.global"
          (Array.fold_left ( +. ) 0.0 report.risk);
        Telemetry.observe "sdc.risk.tuples"
          (float_of_int (Array.length report.risk))
      end;
      report)

let risky report ~threshold =
  let out = ref [] in
  Array.iteri
    (fun i r -> if r > threshold then out := i :: !out)
    report.risk;
  List.rev !out

let global_risk report = Array.fold_left ( +. ) 0.0 report.risk

let measure_to_string = function
  | Re_identification -> "re-identification"
  | K_anonymity { k } -> Printf.sprintf "k-anonymity (k=%d)" k
  | Individual Naive -> "individual risk (naive f/w)"
  | Individual Benedetti_franconi -> "individual risk (Benedetti-Franconi)"
  | Individual (Monte_carlo { samples; _ }) ->
    Printf.sprintf "individual risk (Monte Carlo, %d samples)" samples
  | Suda { max_msu_size; threshold_size } ->
    Printf.sprintf "SUDA (MSU size <= %d, threshold %d)" max_msu_size
      threshold_size
  | Custom { name; _ } -> Printf.sprintf "custom (%s)" name

let pp_report ?(limit = 10) ppf (md, report) =
  Format.fprintf ppf "risk report: %s over %s (%d tuples)@."
    (measure_to_string report.measure)
    (Microdata.name md) (Microdata.cardinal md);
  Format.fprintf ppf "global risk (expected re-identifications): %.3f@."
    (global_risk report);
  let order = Array.init (Array.length report.risk) (fun i -> i) in
  Array.sort (fun a b -> Float.compare report.risk.(b) report.risk.(a)) order;
  let shown = min limit (Array.length order) in
  Format.fprintf ppf "top %d tuples by risk:@." shown;
  for rank = 0 to shown - 1 do
    let i = order.(rank) in
    Format.fprintf ppf "  tuple %-6d risk %.4f  freq %-4d  weight sum %.1f  qi %s@."
      i report.risk.(i) report.freq.(i) report.weight_sum.(i)
      (Relational.Tuple.to_string (Microdata.qi_projection md i))
  done
