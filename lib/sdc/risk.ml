module Relational = Vadasa_relational
module Stats = Vadasa_stats
module Algebra = Relational.Algebra
module Telemetry = Vadasa_telemetry.Telemetry

type estimator =
  | Naive
  | Benedetti_franconi
  | Monte_carlo of { samples : int; seed : int }

type measure =
  | Re_identification
  | K_anonymity of { k : int }
  | Individual of estimator
  | Suda of { max_msu_size : int; threshold_size : int }
  | Custom of {
      name : string;
      score : freq:int -> weight_sum:float -> float;
    }

type report = {
  measure : measure;
  risk : float array;
  freq : int array;
  weight_sum : float array;
}

let group_stats ?(semantics = Relational.Null_semantics.Maybe_match) md =
  Telemetry.span "sdc.risk.group_stats" (fun () ->
      let rel = Microdata.relation md in
      let qi = Microdata.qi_positions md in
      match Microdata.weight_position md with
      | Some weight -> Algebra.Group_stats.compute ~semantics ~rel ~qi ~weight ()
      | None -> Algebra.Group_stats.compute ~semantics ~rel ~qi ())

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let estimate_body ?semantics measure md =
  let stats = group_stats ?semantics md in
  let freq = stats.Algebra.Group_stats.freq in
  let weight_sum = stats.Algebra.Group_stats.weight_sum in
  let risk =
    match measure with
    | Re_identification ->
      Array.map
        (fun w -> if w <= 1.0 then 1.0 else clamp01 (1.0 /. w))
        weight_sum
    | K_anonymity { k } ->
      Array.map (fun f -> if f < k then 1.0 else 0.0) freq
    | Individual estimator ->
      let estimate_one =
        match estimator with
        | Naive -> fun f w -> Stats.Estimator.naive ~freq:f ~weight_sum:w
        | Benedetti_franconi ->
          fun f w -> Stats.Estimator.benedetti_franconi ~freq:f ~weight_sum:w
        | Monte_carlo { samples; seed } ->
          let rng = Stats.Rng.create ~seed in
          fun f w ->
            Stats.Estimator.monte_carlo rng ~samples ~freq:f ~weight_sum:w
      in
      Array.init (Array.length freq) (fun i ->
          estimate_one freq.(i) weight_sum.(i))
    | Suda { max_msu_size; threshold_size } ->
      Risk_suda.estimate ~max_msu_size ~threshold_size md
    | Custom { score; _ } ->
      Array.init (Array.length freq) (fun i ->
          clamp01 (score ~freq:freq.(i) ~weight_sum:weight_sum.(i)))
  in
  { measure; risk; freq; weight_sum }

let estimate ?semantics measure md =
  Telemetry.span "sdc.risk.estimate" (fun () ->
      let report = estimate_body ?semantics measure md in
      if Telemetry.enabled () then begin
        Telemetry.count "sdc.risk.estimates" 1;
        Telemetry.gauge "sdc.risk.global"
          (Array.fold_left ( +. ) 0.0 report.risk);
        Telemetry.observe "sdc.risk.tuples"
          (float_of_int (Array.length report.risk))
      end;
      report)

let risky report ~threshold =
  let out = ref [] in
  Array.iteri
    (fun i r -> if r > threshold then out := i :: !out)
    report.risk;
  List.rev !out

let global_risk report = Array.fold_left ( +. ) 0.0 report.risk

let measure_to_string = function
  | Re_identification -> "re-identification"
  | K_anonymity { k } -> Printf.sprintf "k-anonymity (k=%d)" k
  | Individual Naive -> "individual risk (naive f/w)"
  | Individual Benedetti_franconi -> "individual risk (Benedetti-Franconi)"
  | Individual (Monte_carlo { samples; _ }) ->
    Printf.sprintf "individual risk (Monte Carlo, %d samples)" samples
  | Suda { max_msu_size; threshold_size } ->
    Printf.sprintf "SUDA (MSU size <= %d, threshold %d)" max_msu_size
      threshold_size
  | Custom { name; _ } -> Printf.sprintf "custom (%s)" name

(* ---- incremental re-scoring ------------------------------------------- *)

(* Delta-aware risk maintenance for the dataset registry's append path.

   The per-tuple risk of every measure above is a pure function of the
   tuple's combination statistics (freq, weight sum), and appending rows
   only changes the statistics of the combinations those rows land in —
   so after an append, only the members of touched combinations need
   re-scoring. The maintained buckets mirror [Group_stats]'s exact
   (standard-semantics) grouping, accumulating each group's weight sum
   in row order, so the rebuilt arrays are float-bit-identical to a full
   [estimate] over the grown relation.

   Where that equivalence breaks, [append] falls back to a full
   re-estimate (the outcome says so):
   - maybe-match semantics with labelled nulls in some quasi-identifier
     projection — groups then overlap and an appended null-bearing row
     can touch every compatible combination (without nulls, maybe-match
     grouping degenerates to the exact grouping, so maintenance stays
     valid under the default semantics);
   - SUDA (minimal sample uniques are a global property), Monte-Carlo
     estimation (one RNG sequenced across tuples in index order) and
     custom measures (caller-supplied closures may carry state). *)
module Incremental = struct
  module Relation = Relational.Relation
  module Tuple = Relational.Tuple

  type fallback =
    | Measure_order  (* measure scores depend on whole-dataset order *)
    | Null_semantics  (* maybe-match with labelled nulls present *)

  let fallback_to_string = function
    | Measure_order -> "measure-order"
    | Null_semantics -> "null-semantics"

  type outcome = {
    rows_added : int;
    rows_rescored : int;  (* the whole relation when falling back *)
    groups_touched : int;  (* 0 when falling back *)
    fallback : fallback option;
  }

  type t = {
    measure : measure;
    semantics : Relational.Null_semantics.t;
    md : Microdata.t;  (* shared with the caller, rows appended in place *)
    score : (freq:int -> weight_sum:float -> float) option;
        (* per-tuple scorer; [None] = measure needs full re-estimation *)
    groups : (string, int list * float) Hashtbl.t;
        (* QI key -> (members, reversed; weight sum in row order) *)
    mutable scored : int;  (* rows covered by [report] *)
    mutable has_null : bool;  (* some scored row has a QI null *)
    mutable report : report;
    mutable appends : int;
    mutable full_rescores : int;
  }

  let scorer = function
    | Re_identification ->
      Some
        (fun ~freq:_ ~weight_sum:w ->
          if w <= 1.0 then 1.0 else clamp01 (1.0 /. w))
    | K_anonymity { k } ->
      Some (fun ~freq:f ~weight_sum:_ -> if f < k then 1.0 else 0.0)
    | Individual Naive ->
      Some (fun ~freq ~weight_sum -> Stats.Estimator.naive ~freq ~weight_sum)
    | Individual Benedetti_franconi ->
      Some
        (fun ~freq ~weight_sum ->
          Stats.Estimator.benedetti_franconi ~freq ~weight_sum)
    | Individual (Monte_carlo _) | Suda _ | Custom _ -> None

  let qi_key md rel i =
    Tuple.key (Tuple.project (Relation.get rel i) (Microdata.qi_positions md))

  (* Fold rows [lo, hi) into the buckets, returning the touched keys. *)
  let absorb t lo hi =
    let rel = Microdata.relation t.md in
    let qi = Microdata.qi_positions t.md in
    let touched = Hashtbl.create 16 in
    for i = lo to hi - 1 do
      if Tuple.has_null (Tuple.project (Relation.get rel i) qi) then
        t.has_null <- true;
      let key = qi_key t.md rel i in
      let members, ws =
        try Hashtbl.find t.groups key with Not_found -> ([], 0.0)
      in
      Hashtbl.replace t.groups key
        (i :: members, ws +. Microdata.weight_of t.md i);
      if not (Hashtbl.mem touched key) then Hashtbl.add touched key ()
    done;
    touched

  let create ?(semantics = Relational.Null_semantics.Maybe_match) measure md =
    let t =
      {
        measure;
        semantics;
        md;
        score = scorer measure;
        groups = Hashtbl.create 64;
        scored = 0;
        has_null = false;
        report = estimate ~semantics measure md;
        appends = 0;
        full_rescores = 0;
      }
    in
    ignore (absorb t 0 (Microdata.cardinal md));
    t.scored <- Microdata.cardinal md;
    t

  let append t =
    Telemetry.span "sdc.risk.append" @@ fun () ->
    let n = Microdata.cardinal t.md in
    let rows_added = n - t.scored in
    let lo = t.scored in
    t.appends <- t.appends + 1;
    let touched = absorb t lo n in
    t.scored <- n;
    let fallback =
      if Option.is_none t.score then Some Measure_order
      else if
        t.semantics = Relational.Null_semantics.Maybe_match && t.has_null
      then Some Null_semantics
      else None
    in
    match fallback with
    | Some reason ->
      t.full_rescores <- t.full_rescores + 1;
      t.report <- estimate ~semantics:t.semantics t.measure t.md;
      {
        rows_added;
        rows_rescored = n;
        groups_touched = 0;
        fallback = Some reason;
      }
    | None ->
      let old = t.report in
      let freq = Array.make n 0 in
      let weight_sum = Array.make n 0.0 in
      let risk = Array.make n 0.0 in
      Array.blit old.freq 0 freq 0 lo;
      Array.blit old.weight_sum 0 weight_sum 0 lo;
      Array.blit old.risk 0 risk 0 lo;
      let score = Option.get t.score in
      let rescored = ref 0 in
      Hashtbl.iter
        (fun key () ->
          let members, ws = Hashtbl.find t.groups key in
          let size = List.length members in
          List.iter
            (fun i ->
              freq.(i) <- size;
              weight_sum.(i) <- ws;
              risk.(i) <- score ~freq:size ~weight_sum:ws;
              incr rescored)
            members)
        touched;
      t.report <- { old with freq; weight_sum; risk };
      {
        rows_added;
        rows_rescored = !rescored;
        groups_touched = Hashtbl.length touched;
        fallback = None;
      }

  let report t = t.report

  let microdata t = t.md

  let appends t = t.appends

  let full_rescores t = t.full_rescores
end

let pp_report ?(limit = 10) ppf (md, report) =
  Format.fprintf ppf "risk report: %s over %s (%d tuples)@."
    (measure_to_string report.measure)
    (Microdata.name md) (Microdata.cardinal md);
  Format.fprintf ppf "global risk (expected re-identifications): %.3f@."
    (global_risk report);
  let order = Array.init (Array.length report.risk) (fun i -> i) in
  Array.sort (fun a b -> Float.compare report.risk.(b) report.risk.(a)) order;
  let shown = min limit (Array.length order) in
  Format.fprintf ppf "top %d tuples by risk:@." shown;
  for rank = 0 to shown - 1 do
    let i = order.(rank) in
    Format.fprintf ppf "  tuple %-6d risk %.4f  freq %-4d  weight sum %.1f  qi %s@."
      i report.risk.(i) report.freq.(i) report.weight_sum.(i)
      (Relational.Tuple.to_string (Microdata.qi_projection md i))
  done
