(** The anonymization cycle — the core of the Vada-SA architecture
    (paper, Algorithm 2; enhanced form, Algorithm 9).

    Disclosure-risk evaluation and anonymization alternate until every
    tuple's risk falls under the threshold T: each round estimates risk
    with the configured polymorphic measure, selects the violating tuples,
    and greedily removes a minimal amount of information (one suppression
    or recoding per risky tuple per round), in the order given by the
    runtime heuristics. The cycle is {e preemptive} (risk is known before
    sharing), {e active} (it transforms the data), {e statistics
    preserving} (minimal, utility-ordered removal) and {e fully explained}
    (every action carries the binding that motivated it). *)

type anonymization_method =
  | Local_suppression  (** Algorithm 7: fresh labelled nulls *)
  | Global_recoding of Hierarchy.t  (** Algorithm 8: hierarchy roll-up *)
  | Recode_then_suppress of Hierarchy.t
      (** try the hierarchy first, fall back to suppression when the value
          has no coarser parent *)

type action_kind =
  | Suppressed of Vadasa_base.Value.t  (** the erased value *)
  | Recoded of Vadasa_base.Value.t * Vadasa_base.Value.t  (** from, to *)

type action = {
  round : int;
  tuple : int;
  attr : string;
  kind : action_kind;
  risk_before : float;
  freq_before : int;
}

type config = {
  measure : Risk.measure;
  threshold : float;  (** T *)
  semantics : Vadasa_relational.Null_semantics.t;
  tuple_order : Heuristics.tuple_order;
  qi_choice : Heuristics.qi_choice;
  method_ : anonymization_method;
  max_rounds : int;
  per_round_limit : int option;
      (** anonymize at most this many tuples per round (finer greed) *)
  share_nulls : bool;
      (** within-round gain bookkeeping: skip a pending risky tuple once
          earlier suppressions of the round already gave it enough
          maybe-matches — the paper's "wider risk reduction effect"
          (default true; disable for ablation) *)
  risk_transform : (Microdata.t -> float array -> float array) option;
      (** Algorithm 9 hook: e.g. propagate risk along business clusters *)
}

val default_config : config
(** k-anonymity (k=2), T=0.5, maybe-match semantics, less-significant-first,
    most-risky-qi, local suppression, 100 rounds. *)

type outcome = {
  anonymized : Microdata.t;  (** a transformed copy; the input is untouched *)
  rounds : int;
  nulls_injected : int;
  recoded_cells : int;
  risky_initial : int;
  unresolved : int list;
      (** tuples still over threshold with no anonymization move left *)
  info_loss : float;  (** Figure 7b's metric *)
  trace : action list;  (** chronological *)
  converged : bool;
  interrupted : Vadasa_base.Budget.reason option;
      (** [Some _] when a budget stopped the cycle at a round boundary:
          the outcome is degraded — [anonymized] holds every action
          applied so far but tuples may remain over threshold *)
}

val run :
  ?config:config ->
  ?audit:Audit.recorder ->
  ?budget:Vadasa_base.Budget.t ->
  Microdata.t ->
  outcome
(** [budget] is polled between rounds (the derived-fact ceiling counts
    injected nulls); on exhaustion the cycle stops cleanly and reports
    [interrupted = Some reason] instead of raising.

    [audit] receives exactly one {!Audit.event} per executed round
    (including a final converging round that applied no action), so the
    trail's length always equals the outcome's [rounds]. Run-level
    totals additionally mirror into telemetry whether or not a recorder
    is attached: counters [sdc.cells_suppressed]/[sdc.cells_recoded]
    and histograms [sdc.info_loss]/[sdc.iterations]. *)

val pp_outcome : Format.formatter -> outcome -> unit
