(** Decision-level audit trail of the anonymization cycle.

    The paper's desideratum (vi) is full explainability: every
    anonymization decision must be traceable. {!Cycle.run} accepts an
    optional {!recorder} and emits exactly one {!event} per iteration of
    the Algorithm 2 loop — the risk picture when the round's estimate
    ran, the method the round actually applied, how many cells it
    touched, and the information-loss delta the actions cost. The
    post-round risk picture ([violations_after]/[max_risk_after]) is
    patched in when the next round's estimate reveals it; a round whose
    post-state was never re-estimated (budget interruption, max-rounds
    stop after actions) leaves them unknown and they render as JSON
    [null].

    Events render as one JSON object per line ({!to_jsonl}); the schema
    is documented in [docs/OBSERVABILITY.md] and validated by
    [tools/auditcheck]. *)

type event = {
  round : int;  (** 1-based cycle iteration *)
  risky_before : int;  (** tuples over threshold at this round's estimate *)
  max_risk_before : float;
  mean_risk_before : float;
  suppressed : int;  (** cells suppressed by this round's actions *)
  recoded : int;  (** cells recoded by this round's actions *)
  blocked : int;  (** risky tuples with no anonymization move left *)
  skipped : int;
      (** risky tuples skipped because earlier suppressions of the same
          round already rescued them (the wider risk reduction effect) *)
  info_loss_before : float;
  info_loss_after : float;
  violations_after : int option;  (** [None] until the post-state is known *)
  max_risk_after : float option;
}

val method_of_event : event -> string
(** ["suppress"], ["recode"], ["mixed"] (both kinds fired) or ["none"]
    (the round applied no action — convergence or stall). *)

type recorder

val recorder : unit -> recorder

val begin_round :
  recorder ->
  round:int ->
  risky:int ->
  max_risk:float ->
  mean_risk:float ->
  info_loss:float ->
  unit
(** Opens round [round]'s event. Also patches the previous round's
    [violations_after]/[max_risk_after] from this estimate — the cycle
    re-evaluates risk at the top of every round, so round [N]'s
    post-state {e is} round [N+1]'s pre-state. *)

val end_round :
  recorder ->
  suppressed:int ->
  recoded:int ->
  blocked:int ->
  skipped:int ->
  info_loss:float ->
  unit
(** Completes the open round's action counts and post-action loss. *)

val finish : recorder -> unit
(** Closes the trail: a final round that applied no action left the data
    exactly as its own estimate saw it, so its post-state fields are
    patched from its pre-state. A final round that did act (budget or
    max-rounds stop) keeps them unknown. *)

val events : recorder -> event list
(** Chronological. *)

val event_to_json : event -> Vadasa_base.Json.t
(** Deterministic field order; unknown post-state fields are [null]. *)

val to_jsonl : event list -> string
(** One compact JSON object per line, trailing newline per line. *)
