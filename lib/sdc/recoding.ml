module Value = Vadasa_base.Value
module Relation = Vadasa_relational.Relation
module Tuple = Vadasa_relational.Tuple
module Schema = Vadasa_relational.Schema

type step = {
  recoded_attr : string;
  from_value : Value.t;
  to_value : Value.t;
  cells_changed : int;
}

let recode_value hierarchy md ~attr value =
  (match Microdata.category_of md attr with
  | Microdata.Quasi_identifier -> ()
  | _ ->
    invalid_arg ("Recoding.recode_value: " ^ attr ^ " is not a quasi-identifier"));
  match Hierarchy.parent hierarchy value with
  | None -> None
  | Some target ->
    let rel = Microdata.relation md in
    let pos = Schema.index_of (Microdata.schema md) attr in
    let changed = ref 0 in
    Relation.iteri
      (fun i t ->
        if Value.equal (Tuple.get t pos) value then begin
          Relation.set rel i (Tuple.set t pos target);
          incr changed
        end)
      rel;
    Vadasa_telemetry.Telemetry.count "sdc.recoding.cells" !changed;
    Some
      {
        recoded_attr = attr;
        from_value = value;
        to_value = target;
        cells_changed = !changed;
      }

let recode_tuple hierarchy md ~tuple ~attr =
  let pos = Schema.index_of (Microdata.schema md) attr in
  let value = Tuple.get (Relation.get (Microdata.relation md) tuple) pos in
  if Value.is_null value then None
  else recode_value hierarchy md ~attr value

let recode_attr_fully hierarchy md ~attr =
  let pos = Schema.index_of (Microdata.schema md) attr in
  let rel = Microdata.relation md in
  let distinct = Hashtbl.create 32 in
  Relation.iter
    (fun t ->
      let v = Tuple.get t pos in
      if not (Value.is_null v) then Hashtbl.replace distinct (Value.to_string v) v)
    rel;
  Hashtbl.fold
    (fun _ v acc ->
      match recode_value hierarchy md ~attr v with
      | Some step -> step :: acc
      | None -> acc)
    distinct []

let program =
  {|
% Algorithm 8 - global recoding: climb the attribute's type hierarchy one
% level and replace the value with its coarser parent Z.
@label("global_recoding").
tuple_r(I, union(remove_key(VS, A), coll((A, Z)))) :-
  tuple(I, VS), anonymize(I, A),
  type_of(A, X), sub_type_of(X, Y),
  is_a(V, Z), V = get(VS, A), inst_of(Z, Y).
@output("tuple_r").
|}
