module Value = Vadasa_base.Value
module Ids = Vadasa_base.Ids
module Relation = Vadasa_relational.Relation
module Tuple = Vadasa_relational.Tuple
module Schema = Vadasa_relational.Schema

let suppress ids md ~tuple ~attr =
  (match Microdata.category_of md attr with
  | Microdata.Quasi_identifier -> ()
  | _ ->
    invalid_arg
      ("Suppression.suppress: " ^ attr ^ " is not a quasi-identifier"));
  let rel = Microdata.relation md in
  let pos = Schema.index_of (Microdata.schema md) attr in
  let current = Relation.get rel tuple in
  let old_value = Tuple.get current pos in
  if Value.is_null old_value then None
  else begin
    Relation.set rel tuple (Tuple.set current pos (Ids.fresh_null ids));
    Vadasa_telemetry.Telemetry.count "sdc.suppression.cells" 1;
    Some old_value
  end

let suppressible md ~tuple =
  let rel = Microdata.relation md in
  let schema = Microdata.schema md in
  let t = Relation.get rel tuple in
  List.filter
    (fun attr -> not (Value.is_null (Tuple.get t (Schema.index_of schema attr))))
    (Microdata.quasi_identifiers md)

let program =
  {|
% Algorithm 7 - local suppression: the existential Z becomes a fresh
% labelled null replacing the suppressed quasi-identifier value.
@label("local_suppression").
tuple_s(I, union(remove_key(VS, A), coll((A, Z)))) :-
  tuple(I, VS), anonymize(I, A), not(is_null(get(VS, A))).
@output("tuple_s").
|}
