module Value = Vadasa_base.Value
module Relational = Vadasa_relational
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Schema = Relational.Schema
module V = Vadasa_vadalog

exception Unsupported of string

let category_constant = function
  | Microdata.Identifier -> "identifier"
  | Microdata.Quasi_identifier -> "quasi_identifier"
  | Microdata.Non_identifying -> "non_identifying"
  | Microdata.Weight -> "weight"

let microdata_facts md =
  let name = Microdata.name md in
  let rel = Microdata.relation md in
  let schema = Microdata.schema md in
  let cat_facts =
    List.filter_map
      (fun (attr, cat) ->
        match cat with
        | Microdata.Quasi_identifier | Microdata.Weight ->
          Some
            ( "cat",
              [| Value.Str name; Value.Str attr; Value.Str (category_constant cat) |]
            )
        | Microdata.Identifier | Microdata.Non_identifying -> None)
      (Microdata.categories md)
  in
  let val_facts = ref [] in
  let interesting =
    List.filter_map
      (fun (attr, cat) ->
        match cat with
        | Microdata.Quasi_identifier | Microdata.Weight ->
          Some (attr, Schema.index_of schema attr)
        | Microdata.Identifier | Microdata.Non_identifying -> None)
      (Microdata.categories md)
  in
  Relation.iteri
    (fun i t ->
      List.iter
        (fun (attr, pos) ->
          val_facts :=
            ( "val",
              [| Value.Str name; Value.Int i; Value.Str attr; Tuple.get t pos |] )
            :: !val_facts)
        interesting)
    rel;
  cat_facts @ List.rev !val_facts

(* The delta slice of the encoding: [val] facts for rows [lo, hi) only.
   The [cat] facts are schema-level and already loaded by the base
   upload, so an append ships just the new rows' values — in the same
   row-major order [microdata_facts] uses, which keeps an incremental
   engine's insertion order aligned with the from-scratch encoding. *)
let microdata_facts_range md ~lo ~hi =
  let name = Microdata.name md in
  let rel = Microdata.relation md in
  let schema = Microdata.schema md in
  let interesting =
    List.filter_map
      (fun (attr, cat) ->
        match cat with
        | Microdata.Quasi_identifier | Microdata.Weight ->
          Some (attr, Schema.index_of schema attr)
        | Microdata.Identifier | Microdata.Non_identifying -> None)
      (Microdata.categories md)
  in
  let facts = ref [] in
  for i = lo to hi - 1 do
    let t = Relation.get rel i in
    List.iter
      (fun (attr, pos) ->
        facts :=
          ( "val",
            [| Value.Str name; Value.Int i; Value.Str attr; Tuple.get t pos |] )
          :: !facts)
      interesting
  done;
  List.rev !facts

let base_program =
  {|
% Algorithm 2, Rule 1: collect quasi-identifier name-value pairs per tuple
% and extract the sampling weight.
@label("assemble_tuple").
qset(I, QS) :- val(M, I, A, V1), cat(M, A, quasi_identifier),
               QS = munion((A, V1), <A>).
@label("weight").
wval(I, W) :- val(M, I, A, W), cat(M, A, weight).
|}

let k_anonymity_program ~k =
  base_program
  ^ {|
% Algorithm 4 - k-anonymity: a combination shared by fewer than k tuples
% is dangerous.
@label("combination_frequency").
grp(QS, F) :- qset(I, QS), F = mcount(<I>).
@label("k_anonymity_risk").
riskoutput(I, R) :- qset(I, QS), grp(QS, F), R = ite(F < |}
  ^ string_of_int k
  ^ {|, 1.0, 0.0).
@output("riskoutput").
|}

let k_anonymity_maybe_program ~k =
  base_program
  ^ {|
% Algorithm 4 under the maybe-match semantics of Section 4.3: a labelled
% null matches any value, so a suppressed tuple joins every compatible
% combination. Frequencies are counted over the =⊥ relation pairwise.
@label("maybe_match").
mm(I, J) :- qset(I, V1), qset(J, V2), maybe_eq(V1, V2).
@label("combination_frequency").
grp(I, F) :- mm(I, J), F = mcount(<J>).
@label("k_anonymity_risk").
riskoutput(I, R) :- grp(I, F), R = ite(F < |}
  ^ string_of_int k
  ^ {|, 1.0, 0.0).
@output("riskoutput").
|}

let reidentification_program =
  base_program
  ^ {|
% Algorithm 3 - re-identification risk: 1 over the summed sampling weights
% of the combination (the estimated population frequency).
@label("combination_weight").
grpw(QS, S) :- qset(I, QS), wval(I, W), S = msum(W, <I>).
@label("reidentification_risk").
riskoutput(I, R) :- qset(I, QS), grpw(QS, S), R = ite(S <= 1.0, 1.0, 1 / S).
@output("riskoutput").
|}

let individual_program =
  base_program
  ^ {|
% Algorithm 5 - individual risk: sample frequency over estimated population
% frequency (negative-binomial posterior, naive lambda = sum(W)/f).
@label("combination_frequency").
grp(QS, F) :- qset(I, QS), F = mcount(<I>).
@label("combination_weight").
grpw(QS, S) :- qset(I, QS), wval(I, W), S = msum(W, <I>).
@label("individual_risk").
riskoutput(I, R) :- qset(I, QS), grp(QS, F), grpw(QS, S),
                    R = min(1.0, F / max(S, 1.0)).
@output("riskoutput").
|}

let suda_program ~max_size ~threshold_size =
  {|
% Algorithm 6 - SUDA: generate combinations of quasi-identifiers, find
% sample uniques, keep the minimal ones, flag small MSUs.
@label("element").
elem(I, P) :- val(M, I, A, V1), cat(M, A, quasi_identifier), P = (A, V1).
@label("singleton").
sub(I, S) :- elem(I, P), S = coll(P).
@label("extend").
sub(I, S2) :- sub(I, S), elem(I, P), not(member(S, P)),
              size(S) < |}
  ^ string_of_int max_size
  ^ {|, S2 = union(S, coll(P)).
@label("combination_count").
cnt(S, F) :- sub(I, S), F = mcount(<I>).
@label("sample_unique").
su(I, S) :- sub(I, S), cnt(S, F), F = 1.
@label("non_minimal").
smaller(I, S) :- su(I, S), su(I, S2), S2 != S, subset(S2, S).
@label("minimal_sample_unique").
msu(I, S) :- su(I, S), not smaller(I, S).
@label("suda_risk").
riskoutput(I, R) :- msu(I, S), size(S) < |}
  ^ string_of_int threshold_size
  ^ {|, R = 1.0.
@output("riskoutput").
|}

let enhanced_k_anonymity_program ~k =
  k_anonymity_program ~k
  ^ Business.program
  ^ {|
% Algorithm 9 - risk propagation along linked entities: every member of a
% cluster carries the risk that at least one member is re-identified,
% 1 - mprod(1 - rho). Links are the symmetric-transitive closure of the
% control relation.
@label("link_fwd").
link(X, Y) :- rel(X, Y), X != Y.
@label("link_bwd").
link(Y, X) :- rel(X, Y), X != Y.
@label("link_trans").
link(X, Z) :- link(X, Y), link(Y, Z), X != Z.
@label("self_link").
linked(X, X) :- ident(I, X).
@label("cluster_member").
linked(X, Y) :- link(X, Y).
@label("cluster_risk").
risk_prop(I1, RC) :- ident(I1, E1), linked(E1, E2), ident(I2, E2),
                     riskoutput(I2, R), S = mprod(1 - R, <I2>),
                     RC = 1 - S.
@label("enhanced_own").
enhancedrisk(I, R) :- riskoutput(I, R).
@label("enhanced_cluster").
enhancedrisk(I, RC) :- risk_prop(I, RC).
@output("enhancedrisk").
|}

(* Algorithm 9 end-to-end on the engine: k-anonymity risk, the control
   closure, and the cluster propagation all run declaratively. *)
let enhanced_risk_via_engine ?(k = 2) md ~id_attr ~ownerships =
  let source = enhanced_k_anonymity_program ~k in
  let rel = Microdata.relation md in
  let pos = Schema.index_of (Microdata.schema md) id_attr in
  let ident_facts =
    List.init (Relation.cardinal rel) (fun i ->
        ("ident", [| Value.Int i; (Relation.get rel i).(pos) |]))
  in
  let own_facts =
    List.map
      (fun o ->
        ( "own",
          [|
            Value.Str o.Business.owner;
            Value.Str o.Business.owned;
            Value.Float o.Business.share;
          |] ))
      ownerships
  in
  let program =
    V.Program.union (V.Parser.parse source)
      (V.Program.make ~facts:(microdata_facts md @ ident_facts @ own_facts) [])
  in
  let engine = V.Engine.create program in
  V.Engine.run engine;
  let n = Microdata.cardinal md in
  let risks = Array.make n 0.0 in
  List.iter
    (fun fact ->
      match fact with
      | [| Value.Int i; r |] when i >= 0 && i < n ->
        (match Value.as_float r with
        | Some x -> risks.(i) <- Float.max risks.(i) x
        | None -> ())
      | _ -> ())
    (V.Engine.facts engine "enhancedrisk");
  risks

let program_of_measure measure =
  match (measure : Risk.measure) with
  | Risk.K_anonymity { k } -> k_anonymity_program ~k
  | Risk.Re_identification -> reidentification_program
  | Risk.Individual Risk.Naive -> individual_program
  | Risk.Individual Risk.Benedetti_franconi ->
    raise
      (Unsupported
         "Benedetti-Franconi closed forms are outside the logic; use the \
          native path")
  | Risk.Individual (Risk.Monte_carlo _) ->
    raise (Unsupported "Monte Carlo sampling is outside the logic")
  | Risk.Suda { max_msu_size; threshold_size } ->
    suda_program ~max_size:max_msu_size ~threshold_size
  | Risk.Custom { name; _ } ->
    raise
      (Unsupported
         ("custom measure " ^ name
        ^ " is an OCaml function; express it as Vadalog rules to run it on \
           the engine"))

let engine_for ?budget ?(domains = 1) ?pool measure md ~first_null_label =
  let source = program_of_measure measure in
  let parsed = V.Parser.parse source in
  let program =
    V.Program.union parsed (V.Program.make ~facts:(microdata_facts md) [])
  in
  let engine = V.Engine.create ~first_null_label ~domains ?pool program in
  Fun.protect
    ~finally:(fun () -> V.Engine.shutdown engine)
    (fun () -> V.Engine.run ?budget engine);
  engine

let decode_risks engine n =
  let risks = Array.make n 0.0 in
  List.iter
    (fun fact ->
      match fact with
      | [| Value.Int i; r |] when i >= 0 && i < n ->
        (match Value.as_float r with
        | Some x -> risks.(i) <- Float.max risks.(i) x
        | None -> ())
      | _ -> ())
    (V.Engine.facts engine "riskoutput");
  risks

let risk_via_engine ?budget ?domains ?pool ?threshold:_ measure md =
  let engine = engine_for ?budget ?domains ?pool measure md ~first_null_label:1 in
  decode_risks engine (Microdata.cardinal md)

let explain_risk measure md ~tuple =
  let engine = engine_for measure md ~first_null_label:1 in
  let risks = decode_risks engine (Microdata.cardinal md) in
  if tuple < 0 || tuple >= Array.length risks then None
  else
    V.Engine.facts engine "riskoutput"
    |> List.find_opt (fun fact ->
           match fact with
           | [| Value.Int i; _ |] -> i = tuple
           | _ -> false)
    |> Option.map (fun fact ->
           match V.Engine.explain engine "riskoutput" fact with
           | Some tree -> V.Provenance.to_string tree
           | None -> "(no provenance recorded)")

type reasoned_outcome = {
  anonymized : Microdata.t;
  rounds : int;
  nulls_injected : int;
  suppressed : (int * string) list;
}

(* Run Algorithm 7 on the engine for the selected (tuple, attribute)
   directives and fold the suppressed tuples back into the relation. *)
let suppress_via_engine md directives ~first_null_label =
  let parsed = V.Parser.parse (base_program ^ Suppression.program) in
  let facts =
    microdata_facts md
    @ List.map
        (fun (i, attr) ->
          ("anonymize", [| Value.Int i; Value.Str attr |]))
        directives
  in
  (* [tuple] in the suppression program is our [qset]. *)
  let rename_rule =
    V.Parser.parse "tuple(I, VS) :- qset(I, VS)."
  in
  let program =
    V.Program.union
      (V.Program.union parsed rename_rule)
      (V.Program.make ~facts [])
  in
  let engine = V.Engine.create ~first_null_label program in
  V.Engine.run engine;
  let rel = Microdata.relation md in
  let schema = Microdata.schema md in
  List.iter
    (fun fact ->
      match fact with
      | [| Value.Int i; Value.Coll pairs |] ->
        List.iter
          (function
            | Value.Pair (Value.Str attr, v) ->
              (match Schema.index_of_opt schema attr with
              | Some pos when Value.is_null v ->
                Relation.set rel i (Tuple.set (Relation.get rel i) pos v)
              | Some _ | None -> ())
            | _ -> ())
          pairs
      | _ -> ())
    (V.Engine.facts engine "tuple_s");
  V.Engine.nulls_created engine

let reasoned_cycle ?(k = 2) ?(threshold = 0.5) ?(max_rounds = 20) input =
  let md = Microdata.copy input in
  let n = Microdata.cardinal md in
  let suppressed = ref [] in
  let nulls = ref 0 in
  let rounds = ref 0 in
  let next_label = ref 1 in
  let continue = ref true in
  while !continue && !rounds < max_rounds do
    incr rounds;
    (* Null-tolerant k-anonymity: suppressed tuples must be credited with
       their maybe-matches, or the cycle would over-suppress. *)
    let source = k_anonymity_maybe_program ~k in
    let program =
      V.Program.union (V.Parser.parse source)
        (V.Program.make ~facts:(microdata_facts md) [])
    in
    let engine = V.Engine.create ~first_null_label:!next_label program in
    V.Engine.run engine;
    let risks = decode_risks engine n in
    (* The "most risky first" routing strategy (Section 4.4): suppress the
       quasi-identifier whose removal gains the most anonymity. *)
    let cache = Heuristics.build_cache md in
    let directives = ref [] in
    Array.iteri
      (fun i r ->
        if r > threshold then
          let candidates = Suppression.suppressible md ~tuple:i in
          match
            Heuristics.choose_qi Heuristics.Most_risky_qi cache md ~tuple:i
              ~candidates
          with
          | Some attr -> directives := (i, attr) :: !directives
          | None -> ())
      risks;
    match !directives with
    | [] -> continue := false
    | directives ->
      let used =
        suppress_via_engine md (List.rev directives) ~first_null_label:!next_label
      in
      next_label := !next_label + used + 1;
      nulls := !nulls + List.length directives;
      suppressed := List.rev_append directives !suppressed
  done;
  {
    anonymized = md;
    rounds = !rounds;
    nulls_injected = !nulls;
    suppressed = List.rev !suppressed;
  }
