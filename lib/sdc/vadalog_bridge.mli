(** The reasoned execution path: microdata encoded as extensional facts,
    risk measures and anonymization as Vadalog programs run by the engine.

    This is the paper's actual architecture — the native implementations in
    {!Risk} and {!Cycle} are the "compiled" fast path, and the property
    tests assert both paths agree. The reasoned path additionally yields
    {!Vadasa_vadalog.Provenance} explanations for every derived risk fact.

    Encoding: each tuple at position [i] contributes
    [val(M, i, attr, value)] facts for its quasi-identifiers and weight,
    plus the dictionary's [cat(M, attr, category)] facts (categories are
    rendered with [-] replaced by [_], e.g. [quasi_identifier], to keep
    them bare Vadalog constants). *)

val microdata_facts :
  Microdata.t -> (string * Vadasa_base.Value.t array) list

val microdata_facts_range :
  Microdata.t -> lo:int -> hi:int -> (string * Vadasa_base.Value.t array) list
(** The delta slice of the encoding: [val(M, i, attr, value)] facts for
    rows [i ∈ \[lo, hi)] only, in the same row-major order
    {!microdata_facts} emits them. No [cat] facts — those are
    schema-level and already present from the base upload. Feeds
    appended rows to an engine ahead of
    {!Vadasa_vadalog.Engine.run_incremental}. *)

val base_program : string
(** Algorithm 2, Rule 1: assemble [qset(I, QSet)] (quasi-identifier
    name–value pairs) and [wval(I, W)] from the [val]/[cat] encoding. *)

val k_anonymity_program : k:int -> string
(** Algorithm 4 over the encoding, deriving [riskoutput(I, R)]. Groups by
    exact combination equality — correct on null-free data. *)

val k_anonymity_maybe_program : k:int -> string
(** Algorithm 4 under the maybe-match semantics of Section 4.3: frequencies
    are counted over the pairwise =⊥ relation ([maybe_eq] builtin), so
    labelled nulls from earlier suppression rounds are credited. Quadratic
    in the tuple count — the faithful semantics for the reasoned cycle. *)

val reidentification_program : string
(** Algorithm 3: R = 1 / msum of weights per combination. *)

val individual_program : string
(** Algorithm 5: R = F / msum of weights (frequency over estimated
    population frequency). *)

val suda_program : max_size:int -> threshold_size:int -> string
(** Algorithm 6: combination generation, sample uniques, minimal sample
    uniques, risk 1 for tuples with an MSU smaller than the threshold.
    Exponential in the quasi-identifier count — reasoned path for small
    data only. *)

val enhanced_k_anonymity_program : k:int -> string
(** Algorithm 9 declaratively: the k-anonymity program, the company-control
    rules, the symmetric-transitive link closure, and the cluster risk
    1 − mprod(1 − ρ), deriving [enhancedrisk(I, R)]. Needs [ident(I, E)]
    (tuple → entity) and [own(X, Y, W)] facts. *)

val enhanced_risk_via_engine :
  ?k:int ->
  Microdata.t ->
  id_attr:string ->
  ownerships:Business.ownership list ->
  float array
(** Run {!enhanced_k_anonymity_program} end-to-end on the engine; the
    declarative counterpart of {!Risk.estimate} +
    {!Business.risk_transform}. *)

exception Unsupported of string

val program_of_measure : Risk.measure -> string
(** Vadalog source of a measure's program (the text
    {!risk_via_engine} executes). Raises {!Unsupported} for measures that
    live outside the logic — Benedetti–Franconi closed forms, Monte
    Carlo sampling, custom OCaml functions. Callers that cache compiled
    programs (the server) key their cache on this text. *)

val decode_risks : Vadasa_vadalog.Engine.t -> int -> float array
(** Per-tuple risks from a saturated engine's [riskoutput] facts (0 where
    no fact was derived), for [n] tuples. *)

val risk_via_engine :
  ?budget:Vadasa_base.Budget.t ->
  ?domains:int ->
  ?pool:Vadasa_base.Task_pool.t ->
  ?threshold:float ->
  Risk.measure ->
  Microdata.t ->
  float array
(** Run the measure's program and decode per-tuple risks (0 where no
    [riskoutput] fact was derived). Raises {!Unsupported} for
    [Individual (Monte_carlo _)] (sampling lives outside the logic).
    [budget] is passed to {!Vadasa_vadalog.Engine.run}; on exhaustion
    [Vadasa_vadalog.Engine.Interrupted] escapes — callers turn it into
    a degraded report. [domains]/[pool] select parallel chase evaluation
    (see {!Vadasa_vadalog.Engine.create}); the decoded risks are
    identical for any domain count. *)

val explain_risk :
  Risk.measure -> Microdata.t -> tuple:int -> string option
(** Provenance tree of the tuple's [riskoutput] fact, rendered. *)

type reasoned_outcome = {
  anonymized : Microdata.t;
  rounds : int;
  nulls_injected : int;
  suppressed : (int * string) list;  (** (tuple, attribute) chronological *)
}

val reasoned_cycle :
  ?k:int -> ?threshold:float -> ?max_rounds:int -> Microdata.t ->
  reasoned_outcome
(** The full anonymization cycle with {e both} phases on the engine:
    null-tolerant k-anonymity risk ({!k_anonymity_maybe_program}) and local
    suppression (Algorithm 7) alternate until convergence. Suppressed
    values come back as the chase's labelled nulls, with labels kept
    distinct across rounds. *)
