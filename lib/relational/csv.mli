(** Minimal CSV reader/writer for microdata interchange.

    Handles RFC-4180-style quoting (double quotes, escaped by doubling).
    Values are parsed with {!Vadasa_base.Value.of_literal}, so numeric
    columns round-trip as numbers and ["#3"] as a labelled null. *)

val parse_line : string -> string list
(** Split one CSV record into fields. *)

val render_line : string list -> string
(** Quote fields containing commas, quotes or newlines. *)

val read_string : ?header:bool -> name:string -> string -> Relation.t
(** Parse a whole CSV document. With [header] (default true) the first line
    gives the attribute names; otherwise attributes are named [c0, c1, …].
    Raises [Vadasa_base.Error.Error] (code ["csv.ragged_row"], category
    [Parse]) on ragged rows, with [line]/[column] context — [line] is the
    1-based line in the original document (blank lines count), [column]
    the 1-based index of the first extra or missing field. *)

val write_string : Relation.t -> string
(** Render with a header line. *)

val load : ?header:bool -> name:string -> string -> Relation.t
(** [load ~name path] reads the file at [path]. Parse errors carry a
    [file] context entry in addition to [line]/[column]; an unreadable
    file raises code ["io.read"] (category [Io]). *)

val save : Relation.t -> string -> unit
