module Value = Vadasa_base.Value
module Error = Vadasa_base.Error
module Telemetry = Vadasa_telemetry.Telemetry
module Faultpoint = Vadasa_resilience.Faultpoint

let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_line fields = String.concat "," (List.map render_field fields)

(* Non-empty lines paired with their original 1-based line number, so
   diagnostics stay accurate when blank lines are skipped. *)
let lines_of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l ->
         let l =
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l
         in
         (i + 1, l))
  |> List.filter (fun (_, l) -> String.length l > 0)

let ragged_row ~name ~line ~found ~expected =
  (* column = 1-based index of the first extra or missing field *)
  let column = min found expected + 1 in
  Error.fail ~code:"csv.ragged_row" Error.Parse
    (Printf.sprintf "row at line %d has %d fields, expected %d" line found
       expected)
    ~context:
      [
        ("dataset", name);
        ("line", string_of_int line);
        ("column", string_of_int column);
        ("found", string_of_int found);
        ("expected", string_of_int expected);
      ]

let read_string_body ?(header = true) ~name doc =
  match lines_of_string doc with
  | [] -> Relation.create (Schema.of_names ~name [])
  | (_, first) :: rest ->
    let first_fields = parse_line first in
    let names, data_lines =
      if header then (first_fields, rest)
      else
        ( List.mapi (fun i _ -> "c" ^ string_of_int i) first_fields,
          (1, first) :: rest )
    in
    let schema = Schema.of_names ~name names in
    let rel = Relation.create schema in
    let arity = Schema.arity schema in
    List.iter
      (fun (lineno, line) ->
        let fields = parse_line line in
        let found = List.length fields in
        if found <> arity then
          ragged_row ~name ~line:lineno ~found ~expected:arity;
        Relation.add rel (Array.of_list (List.map Value.of_literal fields)))
      data_lines;
    rel

let read_string ?header ~name doc =
  Telemetry.span "csv.read" (fun () ->
      Faultpoint.hit "csv.read";
      let rel = read_string_body ?header ~name doc in
      if Telemetry.enabled () then begin
        Telemetry.count "csv.read.rows" (Relation.cardinal rel);
        Telemetry.count "csv.read.bytes" (String.length doc)
      end;
      rel)

let write_string rel =
  Faultpoint.hit "csv.write";
  let buf = Buffer.create 1024 in
  let schema = Relation.schema rel in
  Buffer.add_string buf (render_line (Schema.attribute_names schema));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (render_line (Array.to_list (Array.map Value.to_string t)));
      Buffer.add_char buf '\n')
    rel;
  let doc = Buffer.contents buf in
  if Telemetry.enabled () then begin
    Telemetry.count "csv.write.rows" (Relation.cardinal rel);
    Telemetry.count "csv.write.bytes" (String.length doc)
  end;
  doc

let load ?header ~name path =
  Telemetry.span "csv.load" (fun () ->
      let doc =
        try
          let ic = open_in path in
          let len = in_channel_length ic in
          let doc = really_input_string ic len in
          close_in ic;
          doc
        with Sys_error msg ->
          Error.fail ~code:"io.read" Error.Io msg ~context:[ ("file", path) ]
      in
      try read_string ?header ~name doc
      with Error.Error e ->
        raise (Error.Error (Error.add_context e [ ("file", path) ])))

let save rel path =
  Telemetry.span "csv.save" (fun () ->
      let oc = open_out path in
      output_string oc (write_string rel);
      close_out oc)
