module Value = Vadasa_base.Value
module Telemetry = Vadasa_telemetry.Telemetry

let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | ',' ->
        flush_field ();
        plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then flush_field ()
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_line fields = String.concat "," (List.map render_field fields)

let lines_of_string s =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)
  |> List.filter (fun l -> String.length l > 0)

let read_string_body ?(header = true) ~name doc =
  match lines_of_string doc with
  | [] -> Relation.create (Schema.of_names ~name [])
  | first :: rest ->
    let first_fields = parse_line first in
    let names, data_lines =
      if header then (first_fields, rest)
      else
        ( List.mapi (fun i _ -> "c" ^ string_of_int i) first_fields,
          first :: rest )
    in
    let schema = Schema.of_names ~name names in
    let rel = Relation.create schema in
    let arity = Schema.arity schema in
    List.iteri
      (fun lineno line ->
        let fields = parse_line line in
        if List.length fields <> arity then
          failwith
            (Printf.sprintf "Csv.read_string: row %d has %d fields, expected %d"
               (lineno + if header then 2 else 1)
               (List.length fields) arity);
        Relation.add rel (Array.of_list (List.map Value.of_literal fields)))
      data_lines;
    rel

let read_string ?header ~name doc =
  Telemetry.span "csv.read" (fun () ->
      let rel = read_string_body ?header ~name doc in
      if Telemetry.enabled () then begin
        Telemetry.count "csv.read.rows" (Relation.cardinal rel);
        Telemetry.count "csv.read.bytes" (String.length doc)
      end;
      rel)

let write_string rel =
  let buf = Buffer.create 1024 in
  let schema = Relation.schema rel in
  Buffer.add_string buf (render_line (Schema.attribute_names schema));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (render_line (Array.to_list (Array.map Value.to_string t)));
      Buffer.add_char buf '\n')
    rel;
  let doc = Buffer.contents buf in
  if Telemetry.enabled () then begin
    Telemetry.count "csv.write.rows" (Relation.cardinal rel);
    Telemetry.count "csv.write.bytes" (String.length doc)
  end;
  doc

let load ?header ~name path =
  Telemetry.span "csv.load" (fun () ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      read_string ?header ~name doc)

let save rel path =
  Telemetry.span "csv.save" (fun () ->
      let oc = open_out path in
      output_string oc (write_string rel);
      close_out oc)
