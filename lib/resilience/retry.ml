(* Bounded retry with jittered exponential backoff.

   One policy type serves both consumers: the CLI's built-in HTTP
   client (retrying 429/503 answers, honoring the server's Retry-After)
   and async job-step re-execution after injected faults. The delay
   schedule is a pure function of (policy, attempt, jitter draw), so
   tests pin [rand] and [sleep] and assert the exact schedule; the
   retry budget caps cumulative sleep, not attempts — a server asking
   for hour-long Retry-After waits exhausts the budget immediately
   rather than stalling the caller. *)

module E = Vadasa_base.Error

type policy = {
  max_attempts : int;  (* total attempts, including the first *)
  base_delay : float;  (* seconds before the first retry *)
  max_delay : float;  (* per-wait ceiling, Retry-After included *)
  multiplier : float;
  jitter : float;  (* +/- fraction of the computed delay, in [0,1] *)
  budget : float;  (* max cumulative sleep across all retries *)
}

let default_policy =
  {
    max_attempts = 4;
    base_delay = 0.2;
    max_delay = 5.0;
    multiplier = 2.0;
    jitter = 0.25;
    budget = 30.0;
  }

(* The wait before retry number [attempt] (1-based: [attempt = 1] is
   the first retry). [retry_after] — the server-directed floor, when
   present — overrides the exponential schedule but still respects
   [max_delay]. [u] in [0, 1) supplies the jitter draw. *)
let delay policy ~attempt ~retry_after ~u =
  let backoff =
    policy.base_delay *. (policy.multiplier ** float_of_int (attempt - 1))
  in
  let jittered =
    backoff *. (1.0 +. (policy.jitter *. ((2.0 *. u) -. 1.0)))
  in
  let d = match retry_after with Some ra -> ra | None -> jittered in
  Float.max 0.0 (Float.min policy.max_delay d)

let exhausted ~attempts ~reason last =
  match last with
  | E.Error e ->
    E.Error
      (E.add_context e
         [
           ("retry_attempts", string_of_int attempts);
           ("retry_exhausted", reason);
         ])
  | e -> e

let run ?(policy = default_policy) ?(sleep = Unix.sleepf)
    ?(rand = fun () -> Random.float 1.0) ~should_retry f =
  let rec go attempt slept =
    match f () with
    | v -> v
    | exception e -> (
      if attempt >= policy.max_attempts then
        raise (exhausted ~attempts:attempt ~reason:"max_attempts" e)
      else
        match should_retry ~attempt e with
        | None -> raise e
        | Some retry_after ->
          let d = delay policy ~attempt ~retry_after ~u:(rand ()) in
          if slept +. d > policy.budget then
            raise (exhausted ~attempts:attempt ~reason:"budget" e)
          else begin
            if d > 0.0 then sleep d;
            go (attempt + 1) (slept +. d)
          end)
  in
  go 1 0.0
