module Error = Vadasa_base.Error

type action = Fail | Delay of float

let registry =
  [
    ("csv.read", "parsing a CSV document (Csv.read_string / Csv.load)");
    ("csv.write", "serializing a CSV document (Csv.write_string / Csv.save)");
    ("engine.stratum", "entering a stratum of the chase");
    ("engine.iterate", "each semi-naive fixpoint iteration of the chase");
    ("engine.chunk", "each parallel delta-chunk task of the chase");
    ("cycle.round", "each round of the anonymization cycle");
    ("pool.enqueue", "submitting a job to the server worker pool");
    ("http.write", "writing an HTTP response to the client socket");
    ("handler.dispatch", "dispatching a matched route to its handler");
    ( "dataset.append",
      "absorbing appended rows into a registered dataset (after \
       validation, before any state is committed)" );
    ( "journal.write",
      "writing a framed record batch to the on-disk journal (before \
       any bytes reach the file)" );
    ( "journal.fsync",
      "fsyncing a journal record batch (bytes written, not yet \
       durable; a failure rolls the batch back)" );
    ("job.step", "each execution attempt of an async job's work step");
  ]

let known name = List.mem_assoc name registry

type armed_point = { action : action; at : int option }

(* [enabled] is the disarmed fast path: a single atomic load per hit.
   Everything else lives behind [mu]. *)
let enabled = Atomic.make false
let mu = Mutex.create ()
let armed_tbl : (string, armed_point) Hashtbl.t = Hashtbl.create 8
let counts : (string, int) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let hit_count name = locked (fun () -> Option.value ~default:0 (Hashtbl.find_opt counts name))

let fire name = function
  | Fail ->
    Error.fail ~code:("fault." ^ name) Error.Io
      ("injected fault at " ^ name)
      ~context:[ ("fault_point", name) ]
  | Delay d -> Unix.sleepf d

let hit name =
  if Atomic.get enabled then begin
    let to_fire =
      locked (fun () ->
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counts name) in
          Hashtbl.replace counts name n;
          match Hashtbl.find_opt armed_tbl name with
          | None -> None
          | Some { action; at = None } -> Some action
          | Some { action; at = Some k } -> if n = k then Some action else None)
    in
    (* fire outside the lock: a delay must not serialize other points *)
    match to_fire with None -> () | Some action -> fire name action
  end

let arm ?at name action =
  if not (known name) then
    Result.error
      (Error.make ~code:"fault.unknown_point" Error.Parse
         ("unknown fault point: " ^ name)
         ~context:[ ("point", name) ])
  else begin
    locked (fun () -> Hashtbl.replace armed_tbl name { action; at });
    Atomic.set enabled true;
    Ok ()
  end

(* ---- spec parsing ------------------------------------------------------- *)

let spec_error spec detail =
  Error.make ~code:"fault.bad_spec" Error.Parse
    ("invalid VADASA_FAULTS spec: " ^ detail)
    ~context:[ ("spec", spec) ]

let parse_duration s =
  let num, scale =
    if Filename.check_suffix s "ms" then (Filename.chop_suffix s "ms", 0.001)
    else if Filename.check_suffix s "s" then (Filename.chop_suffix s "s", 1.0)
    else (s, 0.001) (* bare numbers are milliseconds *)
  in
  match float_of_string_opt (String.trim num) with
  | Some f when f >= 0.0 -> Some (f *. scale)
  | _ -> None

let parse_action spec s =
  (* "fail" | "fail@N" | "delay=DUR" | "delay=DUR@N" *)
  let action_s, at =
    match String.index_opt s '@' with
    | None -> (s, Ok None)
    | Some i ->
      let n = String.sub s (i + 1) (String.length s - i - 1) in
      ( String.sub s 0 i,
        match int_of_string_opt n with
        | Some k when k >= 1 -> Ok (Some k)
        | _ -> Result.error (spec_error spec ("bad hit index: " ^ n)) )
  in
  Result.bind at (fun at ->
      if action_s = "fail" then Ok (Fail, at)
      else
        match String.index_opt action_s '=' with
        | Some i when String.sub action_s 0 i = "delay" -> (
          let dur = String.sub action_s (i + 1) (String.length action_s - i - 1) in
          match parse_duration dur with
          | Some d -> Ok (Delay d, at)
          | None -> Result.error (spec_error spec ("bad duration: " ^ dur)))
        | _ -> Result.error (spec_error spec ("unknown action: " ^ action_s)))

let parse_clause spec clause =
  match String.index_opt clause ':' with
  | None -> Result.error (spec_error spec ("missing ':' in clause: " ^ clause))
  | Some i ->
    let name = String.trim (String.sub clause 0 i) in
    let rest = String.trim (String.sub clause (i + 1) (String.length clause - i - 1)) in
    if not (known name) then
      Result.error (spec_error spec ("unknown fault point: " ^ name))
    else Result.map (fun (action, at) -> (name, action, at)) (parse_action spec rest)

let arm_spec spec =
  let clauses =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  let parsed =
    List.fold_left
      (fun acc clause ->
        Result.bind acc (fun acc ->
            Result.map (fun c -> c :: acc) (parse_clause spec clause)))
      (Ok []) clauses
  in
  Result.map
    (fun clauses ->
      List.iter
        (fun (name, action, at) ->
          locked (fun () -> Hashtbl.replace armed_tbl name { action; at });
          Atomic.set enabled true)
        (List.rev clauses))
    parsed

let arm_from_env () =
  match Sys.getenv_opt "VADASA_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> arm_spec spec

let reset () =
  locked (fun () ->
      Hashtbl.reset armed_tbl;
      Hashtbl.reset counts);
  Atomic.set enabled false

let render_action = function
  | { action = Fail; at = None } -> "fail"
  | { action = Fail; at = Some k } -> Printf.sprintf "fail@%d" k
  | { action = Delay d; at = None } -> Printf.sprintf "delay=%gms" (d *. 1000.0)
  | { action = Delay d; at = Some k } ->
    Printf.sprintf "delay=%gms@%d" (d *. 1000.0) k

let armed () =
  locked (fun () ->
      Hashtbl.fold (fun name p acc -> (name, render_action p) :: acc) armed_tbl []
      |> List.sort compare)
