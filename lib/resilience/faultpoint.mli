(** Deterministic fault injection.

    The pipeline is sprinkled with named fault points — [hit "csv.read"],
    [hit "engine.iterate"], … — that are no-ops (one atomic load)
    unless armed. Arming happens either programmatically ({!arm}) or
    from the [VADASA_FAULTS] environment variable ({!arm_from_env}),
    whose spec grammar is:

    {v
    spec    ::= clause ("," clause)*
    clause  ::= point ":" action
    action  ::= "fail"              every hit raises
              | "fail@" N           only the Nth hit raises (1-based)
              | "delay=" DURATION   every hit sleeps
              | "delay=" DURATION "@" N
    DURATION ::= float ("ms" | "s")   bare numbers mean milliseconds
    v}

    e.g. [VADASA_FAULTS="engine.iterate:fail@3,http.write:delay=200ms"].

    An injected failure raises {!Vadasa_base.Error.Error} with code
    ["fault.<point>"], category [Io] — so every armed point surfaces
    as a documented, machine-readable error. Point names must come
    from {!registry}; arming an unknown point is a spec error (typos
    in a fault spec must not silently disarm a test).

    Hit counters are kept per point whether or not the point is armed
    for failure — {!hit_count} lets tests assert a code path was
    actually reached. All state is global to the process and guarded
    by a mutex; the disarmed fast path is a single atomic load. *)

type action = Fail | Delay of float  (** delay in seconds *)

val registry : (string * string) list
(** Known fault points, [(name, description)] — the authoritative
    list, mirrored in [docs/RESILIENCE.md]. *)

val hit : string -> unit
(** Mark the named point reached. No-op unless the point is armed:
    [Fail] raises [Error.Error] (code ["fault.<name>"]), [Delay d]
    sleeps [d] seconds. [@N] clauses fire on the Nth hit only. *)

val hit_count : string -> int
(** Hits recorded for this point since the last {!reset}. *)

val arm : ?at:int -> string -> action -> (unit, Vadasa_base.Error.t) result
(** Arm one point programmatically; [?at] restricts the action to the
    Nth hit (1-based). Fails on unknown point names. *)

val arm_spec : string -> (unit, Vadasa_base.Error.t) result
(** Parse and arm a [VADASA_FAULTS]-grammar spec. On error nothing is
    armed. *)

val arm_from_env : unit -> (unit, Vadasa_base.Error.t) result
(** [arm_spec] on [VADASA_FAULTS] if set; [Ok ()] if unset. *)

val reset : unit -> unit
(** Disarm every point and zero all hit counters. *)

val armed : unit -> (string * string) list
(** Currently armed points, [(name, rendered action)] — for
    [/metrics] and diagnostics. *)
