(** Bounded retry with jittered exponential backoff and a retry
    budget.

    Used by the CLI's built-in HTTP client (429/503 answers carrying
    [Retry-After]) and by async job-step re-execution after injected
    faults. The schedule is deterministic given the [rand] draw, so
    tests inject [rand]/[sleep] and assert exact delays. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** per-wait ceiling, [Retry-After] included *)
  multiplier : float;  (** exponential growth per retry *)
  jitter : float;  (** +/- fraction of the computed delay, in [0,1] *)
  budget : float;  (** max cumulative sleep across all retries *)
}

val default_policy : policy
(** 4 attempts, 0.2s base, x2, 25% jitter, 5s per-wait cap, 30s
    budget. *)

val delay :
  policy -> attempt:int -> retry_after:float option -> u:float -> float
(** The wait before retry [attempt] (1-based). [retry_after] (the
    server-directed delay, when present) replaces the exponential
    schedule but still respects [max_delay]; [u] in [0,1) is the
    jitter draw. Pure. *)

val run :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?rand:(unit -> float) ->
  should_retry:(attempt:int -> exn -> float option option) ->
  (unit -> 'a) ->
  'a
(** [run ~should_retry f] calls [f] until it returns, retrying when it
    raises. [should_retry ~attempt e] classifies the failure: [None]
    re-raises immediately (not retryable); [Some retry_after] retries
    after {!delay}, where [retry_after] is the server-directed wait if
    one was advertised. When attempts or the sleep budget run out, the
    last error is re-raised — typed errors gain [retry_attempts] and
    [retry_exhausted] context so the CLI's [error[...]] line names
    what was tried. *)
