(** Metrics and tracing for the Vada-SA stack.

    A {e registry} groups counters, gauges, histograms (with
    reservoir-sampled p50/p95/p99 summaries and fixed log-ladder
    buckets) and nestable timed spans. Library instrumentation goes
    through the {!count}/{!observe}/{!span} helpers on the implicit
    {!global} registry; these are gated behind one boolean
    ({!set_enabled}) so that a run with telemetry off pays a single
    load-and-branch per probe site. Harnesses that always want
    measurements (the bench driver) create their own registry and pass
    it explicitly — explicit registries are never gated.

    Registries are safe across OCaml 5 domains: each domain records
    into its own {e shard} (created on first use, cached in
    domain-local storage), so the hot path stays a plain unsynchronised
    field mutation. {!Report.capture} merges the shards — counters sum,
    gauges keep the process-wide last write (value and write sequence
    publish as one atomic pair, so the merge never pairs a stale value
    with a fresh sequence), histograms combine on
    count/sum/min/max/buckets and pool their reservoir samples for the
    percentiles, and per-shard dropped-span counts sum to an exact
    total. Because counter and histogram updates are plain mutations, a
    capture racing an actively-recording shard may observe an
    instrument mid-update (count bumped, sum not yet); no increment is
    ever lost, and a capture of quiesced shards is exact. Span nesting
    is per-domain (a span opened on one domain never parents a span on
    another).

    See [docs/OBSERVABILITY.md] for the metric-name and span-hierarchy
    conventions used across the stack. *)

(** The shared JSON module ({!Vadasa_base.Json}), re-exported so
    telemetry callers can keep writing [Telemetry.Json]. *)
module Json = Vadasa_base.Json

type t
(** A metrics registry. *)

type registry = t
(** Alias usable inside submodule signatures that define their own [t]. *)

val create : ?span_limit:int -> unit -> t
(** [span_limit] bounds the retained finished-span events (default
    100_000); completions beyond it are counted as dropped. *)

val set_span_limit : t -> int -> unit
(** Adjust the retained finished-span bound at run time (the CLI's
    [--span-limit]). Already-dropped spans stay dropped; raising the
    limit only affects future completions. *)

val span_limit : t -> int

val global : t
(** The registry behind the gated helpers and the CLI's [--metrics]. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Arms the gated helpers on {!global}. Off by default. *)

val reset : t -> unit

module Counter : sig
  type t

  val v : ?registry:registry -> string -> t
  (** Interned by name: same name, same counter. *)

  val incr : t -> unit

  val add : t -> int -> unit

  val set : t -> int -> unit
  (** Overwrite the value: lets producers publish absolute totals
      idempotently (re-publishing never double-counts). *)

  val value : t -> int
end

module Gauge : sig
  type t

  val v : ?registry:registry -> string -> t

  val set : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
    buckets : (float * int) list;
        (** Cumulative [(le, n)] pairs on a fixed log ladder shared by
            every histogram (1/2.5/5 per decade, 1e-5 .. 1e4):
            [n] observations were [<= le]. Observations above the top
            bound appear only in [count] (the implicit [+Inf] bucket). *)
  }

  val v : ?registry:registry -> string -> t

  val observe : t -> float -> unit

  val summary : t -> summary
  (** Percentiles come from a 512-element reservoir sample; count, sum,
      min, max, mean and the buckets are exact. *)

  val count : t -> int
end

module Span : sig
  type info = {
    sp_name : string;
    sp_path : string;  (** slash-joined ancestry, e.g. ["engine.run/engine.stratum"] *)
    sp_start : float;
    sp_duration : float;
    sp_depth : int;
  }

  val with_ : ?registry:registry -> string -> (unit -> 'a) -> 'a
  (** Times [f] as a span nested under the registry's currently open
      span; the event is recorded even when [f] raises. *)

  val timed : ?registry:registry -> string -> (unit -> 'a) -> 'a * float
  (** Like {!with_}, also returning the duration in seconds. *)

  val finished : registry -> info list
  (** Completed spans: per-shard completion order, shards concatenated
      in shard-creation order. *)

  val finished_by_shard : registry -> (int * info list) list
  (** Completed spans grouped by the recording shard (one shard per
      domain, ids in creation order starting at 0); shards that
      recorded nothing are omitted. *)

  val dropped : registry -> int
  (** Spans dropped by the retention limit, summed across shards —
      exact even under concurrent multi-domain recording. *)
end

val count : string -> int -> unit
(** [count name n] bumps counter [name] on {!global}; no-op when
    telemetry is disabled. *)

val gauge : string -> float -> unit

val observe : string -> float -> unit

val span : string -> (unit -> 'a) -> 'a
(** Gated {!Span.with_} on {!global}: runs [f] untimed when disabled. *)

val span_timed : string -> (unit -> 'a) -> 'a * float
(** Always returns a wall-clock duration; only records a span event when
    telemetry is enabled. *)

val with_local_trace : ?registry:t -> (unit -> 'a) -> 'a * Span.info list
(** [with_local_trace f] runs [f] and also returns the spans that
    completed on the {e calling domain} while it ran, oldest first —
    the per-request trace of a server worker. Spans recorded
    concurrently by other domains are excluded by design. The trace is
    collected independently of the registry's [span_limit]: spans the
    retention bound drops (and counts as dropped) still appear here, so
    sampled request traces keep working in a long-running server whose
    registry has filled up. *)

module Report : sig
  type span_agg = {
    agg_path : string;
    agg_count : int;
    agg_total : float;
    agg_max : float;
  }

  type t = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * Histogram.summary) list;
    spans : span_agg list;  (** aggregated per path, first-seen order *)
    dropped_spans : int;
  }

  val capture : registry -> t
  (** Snapshot a registry: instruments sorted by name, spans aggregated
      by path. *)

  val to_json : t -> Json.t

  val of_json : Json.t -> (t, string) result
  (** Inverse of {!to_json}; [of_json (to_json r)] is [Ok r]. *)

  val to_text : t -> string
  (** Span aggregates are printed ranked by total time (descending) with
      a self-time column (total minus direct children), so the text
      report doubles as a quick profile. *)

  val pp_text : Format.formatter -> t -> unit

  val equal : t -> t -> bool

  val self_times : t -> (string * float) list
  (** Self time per span path — the aggregate total minus the totals of
      its direct children in the slash-joined path hierarchy — in report
      order, clamped at 0. *)

  (** {2 Baseline comparison (the bench regression guard)} *)

  type span_delta = {
    d_path : string;
    d_baseline : float;  (** total seconds in the baseline report *)
    d_current : float;  (** total seconds in the current report *)
  }

  val diff_spans : baseline:t -> current:t -> span_delta list
  (** Per-path total-duration pairs for the span paths present in both
      reports, baseline order. Paths unique to either side are ignored. *)

  val default_threshold : float
  (** [0.25]: the 25% slowdown bound shared by the CLI and the bench. *)

  val regressions :
    ?threshold:float -> baseline:t -> current:t -> unit -> span_delta list
  (** The deltas of {!diff_spans} where the current total exceeds the
      baseline by more than [threshold] (a fraction, default
      {!default_threshold}). Baselines of 0 never regress. *)
end

(** {2 Prometheus text exposition} *)

val prometheus_name : string -> string
(** Sanitize a Vada-SA metric name into the Prometheus charset
    [[a-zA-Z_:][a-zA-Z0-9_:]*]: every other character (the dots of
    ["engine.facts.derived"], spaces, slashes) becomes ['_']. *)

module Prometheus : sig
  val render : ?namespace:string -> Report.t -> string
  (** Text exposition format 0.0.4 of a captured report: every metric
      family gets [# HELP]/[# TYPE] lines; counters are suffixed
      [_total]; histograms render cumulative [_bucket{le="..."}] series
      plus [+Inf], [_sum] and [_count]. Names are sanitized with
      {!prometheus_name} and prefixed with [namespace ^ "_"] (default
      ["vadasa"]); families whose sanitized names collide are dropped
      after the first so the exposition never repeats a series. Span
      aggregates are not exported (scrape the JSON report or a trace
      for those); a positive dropped-span count appears as
      [<ns>_telemetry_dropped_spans_total]. *)
end

val trace_json : t -> Json.t
(** Every finished span as a JSON list of
    [{name; path; start_s; duration_s; depth}] events. *)

(** {2 Trace exporters}

    Three interchangeable renderings of the finished spans, selected on
    the CLI with [--trace-format]; see [docs/OBSERVABILITY.md] for how
    to open each one. *)

type trace_format =
  | Events  (** the native {!trace_json} event list *)
  | Chrome  (** Chrome/Perfetto trace-event JSON ([chrome://tracing], ui.perfetto.dev) *)
  | Folded  (** folded-stacks lines for Brendan Gregg's [flamegraph.pl] *)

val trace_format_of_string : string -> (trace_format, string) result
(** Accepts [json]/[events], [chrome]/[perfetto], [folded]/[flamegraph]. *)

val trace_format_to_string : trace_format -> string

val trace_chrome : t -> Json.t
(** [{displayTimeUnit; traceEvents}] with one complete ([ph = "X"])
    event per finished span; [ts]/[dur] in microseconds, span path and
    depth under [args]. Each shard (domain) renders as its own thread
    track ([tid] = shard id + 1) so per-domain nesting survives. *)

val trace_folded : t -> string
(** One [stack self_µs] line per distinct span path, where the stack is
    the slash path re-joined with [;] and the value is the path's self
    time in integer microseconds. *)

val write_trace : t -> string -> unit
(** [write_trace registry path] dumps {!trace_json} to [path]. *)

val write_trace_as : trace_format -> t -> string -> unit
(** Like {!write_trace} with an explicit format. *)
