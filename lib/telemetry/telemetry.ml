(* Metrics and tracing for the Vada-SA stack.

   Dependency-free beyond the stdlib (and [Unix.gettimeofday] for the
   clock): counters, gauges, histograms with reservoir-sampled
   percentiles, and nestable timed spans, all grouped in a registry.
   Instrumented library code goes through the [count]/[observe]/[span]
   helpers on the implicit global registry; they are gated behind a
   single boolean so a disabled build pays one load-and-branch per
   probe site. Harnesses that always want measurements (the bench
   driver) create their own registry and talk to it explicitly. *)

let now = Unix.gettimeofday

(* ---- JSON ------------------------------------------------------------- *)

(* The shared JSON module lives in [Vadasa_base.Json]; telemetry
   re-exports it so existing [Telemetry.Json] users keep working. *)
module Json = Vadasa_base.Json

(* ---- instruments ------------------------------------------------------ *)

type counter = { mutable c_value : int }

type gauge = { mutable g_value : float }

(* Exact count/sum/min/max plus an Algorithm-R reservoir for percentile
   summaries; the LCG keeps the sample deterministic across runs. *)
type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  reservoir : float array;
  mutable h_rng : int64;
}

let reservoir_capacity = 512

type span_event = {
  sp_name : string;
  sp_path : string;
  sp_start : float;
  sp_duration : float;
  sp_depth : int;
}

type open_span = { os_path : string; os_start : float }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable span_stack : open_span list;
  mutable span_events : span_event list;  (* newest first *)
  mutable span_count : int;
  mutable dropped_spans : int;
  mutable span_limit : int;
}

type registry = t

let create ?(span_limit = 100_000) () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 32;
    span_stack = [];
    span_events = [];
    span_count = 0;
    dropped_spans = 0;
    span_limit;
  }

let global = create ()

let set_span_limit t limit = t.span_limit <- limit

let span_limit t = t.span_limit

let enabled_flag = ref false

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms;
  t.span_stack <- [];
  t.span_events <- [];
  t.span_count <- 0;
  t.dropped_spans <- 0

module Counter = struct
  type nonrec t = counter

  let v ?(registry = global) name =
    match Hashtbl.find_opt registry.counters name with
    | Some c -> c
    | None ->
      let c = { c_value = 0 } in
      Hashtbl.add registry.counters name c;
      c

  let add c n = c.c_value <- c.c_value + n

  let incr c = add c 1

  let set c n = c.c_value <- n

  let value c = c.c_value
end

module Gauge = struct
  type nonrec t = gauge

  let v ?(registry = global) name =
    match Hashtbl.find_opt registry.gauges name with
    | Some g -> g
    | None ->
      let g = { g_value = 0.0 } in
      Hashtbl.add registry.gauges name g;
      g

  let set g x = g.g_value <- x

  let value g = g.g_value
end

module Histogram = struct
  type nonrec t = histogram

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let v ?(registry = global) name =
    match Hashtbl.find_opt registry.histograms name with
    | Some h -> h
    | None ->
      let h =
        {
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          reservoir = Array.make reservoir_capacity 0.0;
          h_rng = 0x9E3779B97F4A7C15L;
        }
      in
      Hashtbl.add registry.histograms name h;
      h

  (* SplitMix64-ish step; we only need a cheap unbiased-enough index. *)
  let next_index h bound =
    h.h_rng <- Int64.add (Int64.mul h.h_rng 6364136223846793005L) 1442695040888963407L;
    let bits = Int64.to_int (Int64.shift_right_logical h.h_rng 17) in
    bits mod bound

  let observe h x =
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    if x < h.h_min then h.h_min <- x;
    if x > h.h_max then h.h_max <- x;
    if h.h_count <= reservoir_capacity then h.reservoir.(h.h_count - 1) <- x
    else begin
      let j = next_index h h.h_count in
      if j < reservoir_capacity then h.reservoir.(j) <- x
    end

  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(min (n - 1) (max 0 (rank - 1)))

  let summary h =
    if h.h_count = 0 then
      { count = 0; sum = 0.0; min = 0.0; max = 0.0; mean = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }
    else begin
      let sample = Array.sub h.reservoir 0 (min h.h_count reservoir_capacity) in
      Array.sort Float.compare sample;
      {
        count = h.h_count;
        sum = h.h_sum;
        min = h.h_min;
        max = h.h_max;
        mean = h.h_sum /. float_of_int h.h_count;
        p50 = percentile sample 0.50;
        p95 = percentile sample 0.95;
        p99 = percentile sample 0.99;
      }
    end

  let count h = h.h_count
end

module Span = struct
  type info = span_event = {
    sp_name : string;
    sp_path : string;
    sp_start : float;
    sp_duration : float;
    sp_depth : int;
  }

  let push registry name =
    let path =
      match registry.span_stack with
      | [] -> name
      | { os_path; _ } :: _ -> os_path ^ "/" ^ name
    in
    let os = { os_path = path; os_start = now () } in
    registry.span_stack <- os :: registry.span_stack;
    os

  let pop registry name os =
    let duration = now () -. os.os_start in
    let depth =
      match registry.span_stack with
      | _ :: rest ->
        registry.span_stack <- rest;
        List.length rest
      | [] -> 0
    in
    if registry.span_count < registry.span_limit then begin
      registry.span_events <-
        {
          sp_name = name;
          sp_path = os.os_path;
          sp_start = os.os_start;
          sp_duration = duration;
          sp_depth = depth;
        }
        :: registry.span_events;
      registry.span_count <- registry.span_count + 1
    end
    else registry.dropped_spans <- registry.dropped_spans + 1;
    duration

  let timed ?(registry = global) name f =
    let os = push registry name in
    match f () with
    | result -> (result, pop registry name os)
    | exception e ->
      ignore (pop registry name os);
      raise e

  let with_ ?registry name f = fst (timed ?registry name f)

  let finished registry = List.rev registry.span_events

  let dropped registry = registry.dropped_spans
end

(* ---- gated helpers on the global registry ----------------------------- *)

let count name n = if !enabled_flag then Counter.add (Counter.v name) n

let gauge name x = if !enabled_flag then Gauge.set (Gauge.v name) x

let observe name x = if !enabled_flag then Histogram.observe (Histogram.v name) x

let span name f = if !enabled_flag then Span.with_ name f else f ()

let span_timed name f =
  if !enabled_flag then Span.timed name f
  else begin
    let t0 = now () in
    let result = f () in
    (result, now () -. t0)
  end

(* ---- reports ---------------------------------------------------------- *)

module Report = struct
  type span_agg = {
    agg_path : string;
    agg_count : int;
    agg_total : float;
    agg_max : float;
  }

  type t = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * Histogram.summary) list;
    spans : span_agg list;
    dropped_spans : int;
  }

  let sorted_bindings table f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let capture registry =
    let by_path = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun ev ->
        match Hashtbl.find_opt by_path ev.sp_path with
        | Some agg ->
          Hashtbl.replace by_path ev.sp_path
            {
              agg with
              agg_count = agg.agg_count + 1;
              agg_total = agg.agg_total +. ev.sp_duration;
              agg_max = Float.max agg.agg_max ev.sp_duration;
            }
        | None ->
          order := ev.sp_path :: !order;
          Hashtbl.add by_path ev.sp_path
            {
              agg_path = ev.sp_path;
              agg_count = 1;
              agg_total = ev.sp_duration;
              agg_max = ev.sp_duration;
            })
      (Span.finished registry);
    {
      counters = sorted_bindings registry.counters (fun c -> c.c_value);
      gauges = sorted_bindings registry.gauges (fun g -> g.g_value);
      histograms = sorted_bindings registry.histograms Histogram.summary;
      spans = List.rev_map (Hashtbl.find by_path) !order;
      dropped_spans = registry.dropped_spans;
    }

  let summary_to_json (s : Histogram.summary) =
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("sum", Json.Float s.sum);
        ("min", Json.Float s.min);
        ("max", Json.Float s.max);
        ("mean", Json.Float s.mean);
        ("p50", Json.Float s.p50);
        ("p95", Json.Float s.p95);
        ("p99", Json.Float s.p99);
      ]

  let to_json t =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters));
        ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.gauges));
        ( "histograms",
          Json.Obj (List.map (fun (k, s) -> (k, summary_to_json s)) t.histograms) );
        ( "spans",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("path", Json.Str a.agg_path);
                     ("count", Json.Int a.agg_count);
                     ("total_s", Json.Float a.agg_total);
                     ("max_s", Json.Float a.agg_max);
                   ])
               t.spans) );
        ("dropped_spans", Json.Int t.dropped_spans);
      ]

  let json_error msg = Error ("Report.of_json: " ^ msg)

  let of_json json =
    let open Json in
    let obj_field name =
      match member name json with
      | Some (Obj fields) -> Ok fields
      | Some _ -> json_error (name ^ " is not an object")
      | None -> json_error ("missing " ^ name)
    in
    let float_field fields name =
      match List.assoc_opt name fields with
      | Some v ->
        (match to_float_opt v with
        | Some f -> Ok f
        | None -> json_error (name ^ " is not a number"))
      | None -> json_error ("missing " ^ name)
    in
    let int_field fields name =
      match List.assoc_opt name fields with
      | Some (Int i) -> Ok i
      | _ -> json_error ("missing int " ^ name)
    in
    let ( let* ) = Result.bind in
    let* counters = obj_field "counters" in
    let* counters =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match to_int_opt v with
          | Some i -> Ok ((k, i) :: acc)
          | None -> json_error ("counter " ^ k ^ " is not an int"))
        (Ok []) counters
    in
    let* gauges = obj_field "gauges" in
    let* gauges =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match to_float_opt v with
          | Some f -> Ok ((k, f) :: acc)
          | None -> json_error ("gauge " ^ k ^ " is not a number"))
        (Ok []) gauges
    in
    let* histograms = obj_field "histograms" in
    let* histograms =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Obj fields ->
            let* count = int_field fields "count" in
            let* sum = float_field fields "sum" in
            let* min = float_field fields "min" in
            let* max = float_field fields "max" in
            let* mean = float_field fields "mean" in
            let* p50 = float_field fields "p50" in
            let* p95 = float_field fields "p95" in
            let* p99 = float_field fields "p99" in
            Ok
              ((k, { Histogram.count; sum; min; max; mean; p50; p95; p99 })
              :: acc)
          | _ -> json_error ("histogram " ^ k ^ " is not an object"))
        (Ok []) histograms
    in
    let* spans =
      match member "spans" json with
      | Some (List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Obj fields ->
              let* path =
                match List.assoc_opt "path" fields with
                | Some (Str s) -> Ok s
                | _ -> json_error "span without path"
              in
              let* count = int_field fields "count" in
              let* total = float_field fields "total_s" in
              let* max = float_field fields "max_s" in
              Ok
                ({ agg_path = path; agg_count = count; agg_total = total; agg_max = max }
                :: acc)
            | _ -> json_error "span is not an object")
          (Ok []) items
      | Some _ -> json_error "spans is not a list"
      | None -> json_error "missing spans"
    in
    let dropped =
      match member "dropped_spans" json with Some (Int i) -> i | _ -> 0
    in
    Ok
      {
        counters = List.rev counters;
        gauges = List.rev gauges;
        histograms = List.rev histograms;
        spans = List.rev spans;
        dropped_spans = dropped;
      }

  (* Parent of a slash-joined span path, if any. *)
  let parent_path path =
    match String.rindex_opt path '/' with
    | Some i -> Some (String.sub path 0 i)
    | None -> None

  let self_times t =
    (* Self time = total minus the totals of direct children (paths one
       component deeper); clamped at 0 against clock jitter. *)
    let children = Hashtbl.create 32 in
    List.iter
      (fun a ->
        match parent_path a.agg_path with
        | Some p ->
          Hashtbl.replace children p
            ((try Hashtbl.find children p with Not_found -> 0.0)
            +. a.agg_total)
        | None -> ())
      t.spans;
    List.map
      (fun a ->
        let kids =
          try Hashtbl.find children a.agg_path with Not_found -> 0.0
        in
        (a.agg_path, Float.max 0.0 (a.agg_total -. kids)))
      t.spans

  type span_delta = {
    d_path : string;
    d_baseline : float;
    d_current : float;
  }

  let diff_spans ~baseline ~current =
    let totals = Hashtbl.create 32 in
    List.iter
      (fun a -> Hashtbl.replace totals a.agg_path a.agg_total)
      current.spans;
    List.filter_map
      (fun a ->
        match Hashtbl.find_opt totals a.agg_path with
        | Some c ->
          Some { d_path = a.agg_path; d_baseline = a.agg_total; d_current = c }
        | None -> None)
      baseline.spans

  let default_threshold = 0.25

  let regressions ?threshold ~baseline ~current () =
    let threshold = Option.value threshold ~default:default_threshold in
    List.filter
      (fun d ->
        d.d_baseline > 0.0
        && d.d_current > d.d_baseline *. (1.0 +. threshold))
      (diff_spans ~baseline ~current)

  let pp_text ppf t =
    let nonempty = ref false in
    if t.spans <> [] then begin
      nonempty := true;
      let self = self_times t in
      let spans =
        List.sort
          (fun a b ->
            match Float.compare b.agg_total a.agg_total with
            | 0 -> String.compare a.agg_path b.agg_path
            | c -> c)
          t.spans
      in
      Format.fprintf ppf "spans (path, count, total s, self s, max s):@.";
      List.iter
        (fun a ->
          let s =
            try List.assoc a.agg_path self with Not_found -> a.agg_total
          in
          Format.fprintf ppf "  %-52s %8d %10.4f %10.4f %10.4f@." a.agg_path
            a.agg_count a.agg_total s a.agg_max)
        spans
    end;
    if t.counters <> [] then begin
      nonempty := true;
      Format.fprintf ppf "counters:@.";
      List.iter
        (fun (k, v) -> Format.fprintf ppf "  %-52s %12d@." k v)
        t.counters
    end;
    if t.gauges <> [] then begin
      nonempty := true;
      Format.fprintf ppf "gauges:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-52s %12.4f@." k v) t.gauges
    end;
    if t.histograms <> [] then begin
      nonempty := true;
      Format.fprintf ppf "histograms (count, mean, p50, p95, p99, max):@.";
      List.iter
        (fun (k, s) ->
          Format.fprintf ppf "  %-44s %8d %10.4g %10.4g %10.4g %10.4g %10.4g@." k
            s.Histogram.count s.Histogram.mean s.Histogram.p50 s.Histogram.p95
            s.Histogram.p99 s.Histogram.max)
        t.histograms
    end;
    if t.dropped_spans > 0 then
      Format.fprintf ppf "dropped spans: %d@." t.dropped_spans;
    if not !nonempty then Format.fprintf ppf "telemetry: no measurements recorded@."

  let to_text t = Format.asprintf "%a" pp_text t

  let equal a b = a = b
end

let trace_json registry =
  Json.List
    (List.map
       (fun ev ->
         Json.Obj
           [
             ("name", Json.Str ev.sp_name);
             ("path", Json.Str ev.sp_path);
             ("start_s", Json.Float ev.sp_start);
             ("duration_s", Json.Float ev.sp_duration);
             ("depth", Json.Int ev.sp_depth);
           ])
       (Span.finished registry))

(* ---- trace exporters --------------------------------------------------- *)

type trace_format = Events | Chrome | Folded

let trace_format_of_string = function
  | "json" | "events" -> Ok Events
  | "chrome" | "perfetto" -> Ok Chrome
  | "folded" | "flamegraph" -> Ok Folded
  | other ->
    Error
      (Printf.sprintf "unknown trace format %s (use json, chrome or folded)"
         other)

let trace_format_to_string = function
  | Events -> "json"
  | Chrome -> "chrome"
  | Folded -> "folded"

(* Chrome/Perfetto trace-event JSON: one complete ("ph":"X") event per
   finished span, timestamps and durations in microseconds. All spans
   come from one thread of control, so a single pid/tid pair lets the
   viewers reconstruct nesting from interval containment. *)
let trace_chrome registry =
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ( "traceEvents",
        Json.List
          (List.map
             (fun ev ->
               Json.Obj
                 [
                   ("name", Json.Str ev.sp_name);
                   ("cat", Json.Str "span");
                   ("ph", Json.Str "X");
                   ("ts", Json.Float (ev.sp_start *. 1e6));
                   ("dur", Json.Float (ev.sp_duration *. 1e6));
                   ("pid", Json.Int 1);
                   ("tid", Json.Int 1);
                   ( "args",
                     Json.Obj
                       [
                         ("path", Json.Str ev.sp_path);
                         ("depth", Json.Int ev.sp_depth);
                       ] );
                 ])
             (Span.finished registry)) );
    ]

(* Folded-stacks lines for flamegraph.pl: "root;child;leaf <self µs>",
   one line per distinct span path (first-seen order), values are self
   time so the flamegraph's widths add up correctly. *)
let trace_folded registry =
  let totals = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match Hashtbl.find_opt totals ev.sp_path with
      | Some t -> Hashtbl.replace totals ev.sp_path (t +. ev.sp_duration)
      | None ->
        order := ev.sp_path :: !order;
        Hashtbl.add totals ev.sp_path ev.sp_duration)
    (Span.finished registry);
  let children = Hashtbl.create 32 in
  Hashtbl.iter
    (fun path total ->
      match String.rindex_opt path '/' with
      | Some i ->
        let parent = String.sub path 0 i in
        Hashtbl.replace children parent
          ((try Hashtbl.find children parent with Not_found -> 0.0) +. total)
      | None -> ())
    totals;
  let buf = Buffer.create 256 in
  List.iter
    (fun path ->
      let total = Hashtbl.find totals path in
      let kids = try Hashtbl.find children path with Not_found -> 0.0 in
      let self_us =
        int_of_float (Float.max 0.0 (total -. kids) *. 1e6 +. 0.5)
      in
      let stack =
        String.concat ";" (String.split_on_char '/' path)
      in
      Buffer.add_string buf (Printf.sprintf "%s %d\n" stack self_us))
    (List.rev !order);
  Buffer.contents buf

let write_trace_as format registry path =
  let oc = open_out path in
  (match format with
  | Events ->
    output_string oc (Json.to_string ~indent:true (trace_json registry));
    output_char oc '\n'
  | Chrome ->
    output_string oc (Json.to_string ~indent:true (trace_chrome registry));
    output_char oc '\n'
  | Folded -> output_string oc (trace_folded registry));
  close_out oc

let write_trace registry path = write_trace_as Events registry path
