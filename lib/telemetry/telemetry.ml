(* Metrics and tracing for the Vada-SA stack.

   Dependency-free beyond the stdlib (and [Unix.gettimeofday] for the
   clock): counters, gauges, histograms with reservoir-sampled
   percentiles plus fixed log-ladder buckets, and nestable timed spans,
   all grouped in a registry. Instrumented library code goes through the
   [count]/[observe]/[span] helpers on the implicit global registry;
   they are gated behind a single boolean so a disabled build pays one
   load-and-branch per probe site.

   Domain safety: a registry is a collection of per-domain *shards*.
   The first probe a domain fires against a registry creates that
   domain's shard (registered under the registry lock, cached in
   domain-local storage); every later probe is a domain-local hashtable
   lookup plus a plain field mutation — no locks, no atomics on the
   increment path. [Report.capture] merges the shards under short
   per-shard mutexes: counters sum, gauges keep the last write (each
   gauge publishes its value and a global write sequence as one atomic
   pair, so the merge never pairs a stale value with a fresh sequence),
   histograms combine on count/sum/min/max/buckets and pool their
   reservoir samples for the percentiles. Counter and histogram fields
   are plain (unsynchronised) mutations, so a capture that races an
   actively-recording shard may catch an instrument mid-update (a count
   already bumped, its sum not yet); no increment is ever lost, and a
   capture of quiesced shards is exact. Span stacks are inherently
   per-domain, so nesting never crosses shards; the retained-span bound
   is enforced with one compare-and-set on a registry-wide count, and
   overflow is counted per shard and summed at capture, so the dropped
   figure is exact even under concurrent multi-domain recording. *)

let now = Unix.gettimeofday

(* ---- JSON ------------------------------------------------------------- *)

(* The shared JSON module lives in [Vadasa_base.Json]; telemetry
   re-exports it so existing [Telemetry.Json] users keep working. *)
module Json = Vadasa_base.Json

(* ---- instruments ------------------------------------------------------ *)

type counter = { mutable c_value : int }

(* A gauge is its (value, write-sequence) pair published as one atomic
   immutable record, so a concurrent capture can never tear the two
   apart. The sequence orders writes across shards: the merge keeps the
   value with the highest sequence ("last write wins" process-wide). *)
type gauge = (float * int) Atomic.t

let gauge_seq = Atomic.make 0

(* Cumulative-style buckets on a fixed log ladder (1/2.5/5 per decade,
   10µs .. 10ks when observations are seconds). One ladder serves every
   histogram so shards merge by summing per-index counts; observations
   above the top bound land only in the implicit +Inf bucket (the exact
   [h_count]). *)
let bucket_bounds =
  [|
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 0.01; 0.025;
    0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
    1000.; 2500.; 5000.; 10000.;
  |]

let n_buckets = Array.length bucket_bounds

(* First ladder index with [x <= bound], or [n_buckets] when [x]
   overflows the ladder. *)
let bucket_index x =
  if x > bucket_bounds.(n_buckets - 1) then n_buckets
  else begin
    let lo = ref 0 and hi = ref (n_buckets - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if x <= bucket_bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo
  end

(* Exact count/sum/min/max plus an Algorithm-R reservoir for percentile
   summaries; the LCG keeps the sample deterministic across runs.
   [h_buckets] holds per-bound (non-cumulative) counts. *)
type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  reservoir : float array;
  mutable h_rng : int64;
  h_buckets : int array;
}

let reservoir_capacity = 512

type span_event = {
  sp_name : string;
  sp_path : string;
  sp_start : float;
  sp_duration : float;
  sp_depth : int;
}

type open_span = { os_path : string; os_start : float }

(* One domain's slice of a registry. The owning domain mutates
   instrument fields without the lock (it is the only writer);
   [sh_lock] serializes instrument-table *structure* changes (interning
   a new name) against concurrent capture/reset from other domains. *)
type shard = {
  sh_id : int;  (* creation order; doubles as the trace tid *)
  sh_lock : Mutex.t;
  sh_counters : (string, counter) Hashtbl.t;
  sh_gauges : (string, gauge) Hashtbl.t;
  sh_histograms : (string, histogram) Hashtbl.t;
  mutable sh_span_stack : open_span list;
  mutable sh_span_events : span_event list;  (* newest first *)
  mutable sh_dropped : int;
  mutable sh_trace : span_event list option;
      (* local trace collector (newest first): when [Some], every span
         completed on this domain is also appended here, *independent*
         of the registry retention limit — a long-running server's
         sampled request traces keep working after the registry fills.
         Owner-domain only; never touched by capture/reset. *)
}

type t = {
  reg_id : int;
  reg_lock : Mutex.t;  (* guards [reg_shards]/[reg_next_shard] *)
  mutable reg_shards : shard list;  (* newest first *)
  mutable reg_next_shard : int;
  reg_span_count : int Atomic.t;  (* retained spans across all shards *)
  reg_span_limit : int Atomic.t;
}

type registry = t

let next_reg_id = Atomic.make 0

let create ?(span_limit = 100_000) () =
  {
    reg_id = Atomic.fetch_and_add next_reg_id 1;
    reg_lock = Mutex.create ();
    reg_shards = [];
    reg_next_shard = 0;
    reg_span_count = Atomic.make 0;
    reg_span_limit = Atomic.make span_limit;
  }

let global = create ()

let set_span_limit t limit = Atomic.set t.reg_span_limit limit

let span_limit t = Atomic.get t.reg_span_limit

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

(* Domain-local: registry id -> this domain's shard of that registry. *)
let shard_table_key : (int, shard) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let shard_of t =
  let table = Domain.DLS.get shard_table_key in
  match Hashtbl.find_opt table t.reg_id with
  | Some s -> s
  | None ->
    Mutex.lock t.reg_lock;
    let s =
      {
        sh_id = t.reg_next_shard;
        sh_lock = Mutex.create ();
        sh_counters = Hashtbl.create 32;
        sh_gauges = Hashtbl.create 16;
        sh_histograms = Hashtbl.create 32;
        sh_span_stack = [];
        sh_span_events = [];
        sh_dropped = 0;
        sh_trace = None;
      }
    in
    t.reg_next_shard <- t.reg_next_shard + 1;
    t.reg_shards <- s :: t.reg_shards;
    Mutex.unlock t.reg_lock;
    Hashtbl.add table t.reg_id s;
    s

(* Shards in creation order, snapshotted under the registry lock. *)
let shards t =
  Mutex.lock t.reg_lock;
  let l = List.rev t.reg_shards in
  Mutex.unlock t.reg_lock;
  l

let reset t =
  List.iter
    (fun s ->
      Mutex.lock s.sh_lock;
      Hashtbl.reset s.sh_counters;
      Hashtbl.reset s.sh_gauges;
      Hashtbl.reset s.sh_histograms;
      s.sh_span_stack <- [];
      s.sh_span_events <- [];
      s.sh_dropped <- 0;
      Mutex.unlock s.sh_lock)
    (shards t);
  Atomic.set t.reg_span_count 0

(* Intern an instrument in the calling domain's shard. Only the owner
   adds to its shard's tables, so the lock is solely about making the
   table safe to fold from a concurrent capture. *)
let intern table lock name make =
  match Hashtbl.find_opt table name with
  | Some v -> v
  | None ->
    let v = make () in
    Mutex.lock lock;
    Hashtbl.add table name v;
    Mutex.unlock lock;
    v

module Counter = struct
  type nonrec t = counter

  let v ?(registry = global) name =
    let s = shard_of registry in
    intern s.sh_counters s.sh_lock name (fun () -> { c_value = 0 })

  let add c n = c.c_value <- c.c_value + n

  let incr c = add c 1

  let set c n = c.c_value <- n

  let value c = c.c_value
end

module Gauge = struct
  type nonrec t = gauge

  let v ?(registry = global) name =
    let s = shard_of registry in
    intern s.sh_gauges s.sh_lock name (fun () -> Atomic.make (0.0, -1))

  let set g x = Atomic.set g (x, Atomic.fetch_and_add gauge_seq 1)

  let value g = fst (Atomic.get g)
end

module Histogram = struct
  type nonrec t = histogram

  type summary = {
    count : int;
    sum : float;
    min : float;
    max : float;
    mean : float;
    p50 : float;
    p95 : float;
    p99 : float;
    buckets : (float * int) list;
  }

  let v ?(registry = global) name =
    let s = shard_of registry in
    intern s.sh_histograms s.sh_lock name (fun () ->
        {
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          reservoir = Array.make reservoir_capacity 0.0;
          h_rng = 0x9E3779B97F4A7C15L;
          h_buckets = Array.make n_buckets 0;
        })

  (* SplitMix64-ish step; we only need a cheap unbiased-enough index. *)
  let next_index h bound =
    h.h_rng <- Int64.add (Int64.mul h.h_rng 6364136223846793005L) 1442695040888963407L;
    let bits = Int64.to_int (Int64.shift_right_logical h.h_rng 17) in
    bits mod bound

  let observe h x =
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. x;
    if x < h.h_min then h.h_min <- x;
    if x > h.h_max then h.h_max <- x;
    let b = bucket_index x in
    if b < n_buckets then h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    if h.h_count <= reservoir_capacity then h.reservoir.(h.h_count - 1) <- x
    else begin
      let j = next_index h h.h_count in
      if j < reservoir_capacity then h.reservoir.(j) <- x
    end

  let percentile sorted q =
    let n = Array.length sorted in
    if n = 0 then 0.0
    else
      let rank = int_of_float (ceil (q *. float_of_int n)) in
      sorted.(min (n - 1) (max 0 (rank - 1)))

  (* Cumulate the per-bound counts into exposition-style (le, n<=le)
     pairs; the implicit +Inf bucket is the exact count. *)
  let cumulate per_bound =
    let acc = ref 0 in
    List.init n_buckets (fun i ->
        acc := !acc + per_bound.(i);
        (bucket_bounds.(i), !acc))

  let summary_of ~count ~sum ~min:mn ~max:mx ~samples ~per_bound =
    if count = 0 then
      {
        count = 0;
        sum = 0.0;
        min = 0.0;
        max = 0.0;
        mean = 0.0;
        p50 = 0.0;
        p95 = 0.0;
        p99 = 0.0;
        buckets = cumulate per_bound;
      }
    else begin
      Array.sort Float.compare samples;
      {
        count;
        sum;
        min = mn;
        max = mx;
        mean = sum /. float_of_int count;
        p50 = percentile samples 0.50;
        p95 = percentile samples 0.95;
        p99 = percentile samples 0.99;
        buckets = cumulate per_bound;
      }
    end

  let summary h =
    summary_of ~count:h.h_count ~sum:h.h_sum ~min:h.h_min ~max:h.h_max
      ~samples:(Array.sub h.reservoir 0 (min h.h_count reservoir_capacity))
      ~per_bound:h.h_buckets

  let count h = h.h_count
end

module Span = struct
  type info = span_event = {
    sp_name : string;
    sp_path : string;
    sp_start : float;
    sp_duration : float;
    sp_depth : int;
  }

  let push shard name =
    let path =
      match shard.sh_span_stack with
      | [] -> name
      | { os_path; _ } :: _ -> os_path ^ "/" ^ name
    in
    let os = { os_path = path; os_start = now () } in
    shard.sh_span_stack <- os :: shard.sh_span_stack;
    os

  (* Reserve a retention slot: succeeds iff the registry-wide retained
     count is still under the limit. CAS keeps the bound exact when
     several domains complete spans concurrently. *)
  let rec reserve registry =
    let n = Atomic.get registry.reg_span_count in
    if n >= Atomic.get registry.reg_span_limit then false
    else if Atomic.compare_and_set registry.reg_span_count n (n + 1) then true
    else reserve registry

  let pop registry shard name os =
    let duration = now () -. os.os_start in
    let depth =
      match shard.sh_span_stack with
      | _ :: rest ->
        shard.sh_span_stack <- rest;
        List.length rest
      | [] -> 0
    in
    let ev =
      {
        sp_name = name;
        sp_path = os.os_path;
        sp_start = os.os_start;
        sp_duration = duration;
        sp_depth = depth;
      }
    in
    (* The local trace collector is not subject to the retention limit:
       a span dropped from the registry still reaches an active
       [with_local_trace]. *)
    (match shard.sh_trace with
    | Some l -> shard.sh_trace <- Some (ev :: l)
    | None -> ());
    if reserve registry then shard.sh_span_events <- ev :: shard.sh_span_events
    else shard.sh_dropped <- shard.sh_dropped + 1;
    duration

  let timed ?(registry = global) name f =
    let shard = shard_of registry in
    let os = push shard name in
    match f () with
    | result -> (result, pop registry shard name os)
    | exception e ->
      ignore (pop registry shard name os);
      raise e

  let with_ ?registry name f = fst (timed ?registry name f)

  let finished_by_shard registry =
    List.filter_map
      (fun s ->
        match List.rev s.sh_span_events with
        | [] -> None
        | events -> Some (s.sh_id, events))
      (shards registry)

  let finished registry =
    List.concat_map snd (finished_by_shard registry)

  let dropped registry =
    List.fold_left (fun acc s -> acc + s.sh_dropped) 0 (shards registry)
end

(* ---- gated helpers on the global registry ----------------------------- *)

let count name n = if Atomic.get enabled_flag then Counter.add (Counter.v name) n

let gauge name x = if Atomic.get enabled_flag then Gauge.set (Gauge.v name) x

let observe name x =
  if Atomic.get enabled_flag then Histogram.observe (Histogram.v name) x

let span name f = if Atomic.get enabled_flag then Span.with_ name f else f ()

let span_timed name f =
  if Atomic.get enabled_flag then Span.timed name f
  else begin
    let t0 = now () in
    let result = f () in
    (result, now () -. t0)
  end

(* Spans completed on the *calling domain* while [f] ran, oldest first —
   the per-request trace of a server worker. The collector rides on the
   shard instead of reading [sh_span_events], so the trace stays
   complete even after the registry's retention limit fills up (a
   long-running server must never lose its sampled traces). Events
   other domains record concurrently are invisible by design; nested
   collections see only their own window (the outer collection keeps
   the inner one's events too). *)
let with_local_trace ?(registry = global) f =
  let shard = shard_of registry in
  let saved = shard.sh_trace in
  shard.sh_trace <- Some [];
  match f () with
  | result ->
    (* [inner] is newest-first, like every event list on the shard. *)
    let inner = match shard.sh_trace with Some l -> l | None -> [] in
    shard.sh_trace <-
      (match saved with Some outer -> Some (inner @ outer) | None -> None);
    (result, List.rev inner)
  | exception e ->
    shard.sh_trace <- saved;
    raise e

(* ---- reports ---------------------------------------------------------- *)

module Report = struct
  type span_agg = {
    agg_path : string;
    agg_count : int;
    agg_total : float;
    agg_max : float;
  }

  type t = {
    counters : (string * int) list;
    gauges : (string * float) list;
    histograms : (string * Histogram.summary) list;
    spans : span_agg list;
    dropped_spans : int;
  }

  (* Merged histogram accumulator across shards: exact moments plus the
     pooled reservoir samples for the percentile estimate. *)
  type hist_acc = {
    mutable a_count : int;
    mutable a_sum : float;
    mutable a_min : float;
    mutable a_max : float;
    mutable a_samples : float array list;
    a_buckets : int array;
  }

  let capture registry =
    let counters = Hashtbl.create 32 in
    let gauges = Hashtbl.create 16 in
    let hists = Hashtbl.create 32 in
    let events = ref [] (* per-shard event lists, shard order *) in
    let dropped = ref 0 in
    List.iter
      (fun s ->
        Mutex.lock s.sh_lock;
        Hashtbl.iter
          (fun name c ->
            let prev = Option.value ~default:0 (Hashtbl.find_opt counters name) in
            Hashtbl.replace counters name (prev + c.c_value))
          s.sh_counters;
        Hashtbl.iter
          (fun name g ->
            let value, seq = Atomic.get g in
            match Hashtbl.find_opt gauges name with
            | Some (_, prev) when prev >= seq -> ()
            | _ -> Hashtbl.replace gauges name (value, seq))
          s.sh_gauges;
        Hashtbl.iter
          (fun name h ->
            let acc =
              match Hashtbl.find_opt hists name with
              | Some acc -> acc
              | None ->
                let acc =
                  {
                    a_count = 0;
                    a_sum = 0.0;
                    a_min = infinity;
                    a_max = neg_infinity;
                    a_samples = [];
                    a_buckets = Array.make n_buckets 0;
                  }
                in
                Hashtbl.add hists name acc;
                acc
            in
            acc.a_count <- acc.a_count + h.h_count;
            acc.a_sum <- acc.a_sum +. h.h_sum;
            if h.h_min < acc.a_min then acc.a_min <- h.h_min;
            if h.h_max > acc.a_max then acc.a_max <- h.h_max;
            acc.a_samples <-
              Array.sub h.reservoir 0 (min h.h_count reservoir_capacity)
              :: acc.a_samples;
            Array.iteri
              (fun i n -> acc.a_buckets.(i) <- acc.a_buckets.(i) + n)
              h.h_buckets)
          s.sh_histograms;
        (match List.rev s.sh_span_events with
        | [] -> ()
        | evs -> events := evs :: !events);
        dropped := !dropped + s.sh_dropped;
        Mutex.unlock s.sh_lock)
      (shards registry);
    let sorted table f =
      Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let by_path = Hashtbl.create 32 in
    let order = ref [] in
    List.iter
      (fun ev ->
        match Hashtbl.find_opt by_path ev.sp_path with
        | Some agg ->
          Hashtbl.replace by_path ev.sp_path
            {
              agg with
              agg_count = agg.agg_count + 1;
              agg_total = agg.agg_total +. ev.sp_duration;
              agg_max = Float.max agg.agg_max ev.sp_duration;
            }
        | None ->
          order := ev.sp_path :: !order;
          Hashtbl.add by_path ev.sp_path
            {
              agg_path = ev.sp_path;
              agg_count = 1;
              agg_total = ev.sp_duration;
              agg_max = ev.sp_duration;
            })
      (List.concat (List.rev !events));
    {
      counters = sorted counters (fun v -> v);
      gauges = sorted gauges fst;
      histograms =
        sorted hists (fun acc ->
            Histogram.summary_of ~count:acc.a_count ~sum:acc.a_sum
              ~min:acc.a_min ~max:acc.a_max
              ~samples:(Array.concat acc.a_samples)
              ~per_bound:acc.a_buckets);
      spans = List.rev_map (Hashtbl.find by_path) !order;
      dropped_spans = !dropped;
    }

  let summary_to_json (s : Histogram.summary) =
    Json.Obj
      [
        ("count", Json.Int s.count);
        ("sum", Json.Float s.sum);
        ("min", Json.Float s.min);
        ("max", Json.Float s.max);
        ("mean", Json.Float s.mean);
        ("p50", Json.Float s.p50);
        ("p95", Json.Float s.p95);
        ("p99", Json.Float s.p99);
        ( "buckets",
          Json.List
            (List.map
               (fun (le, n) -> Json.Obj [ ("le", Json.Float le); ("n", Json.Int n) ])
               s.buckets) );
      ]

  let to_json t =
    Json.Obj
      [
        ("version", Json.Int 1);
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters));
        ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.gauges));
        ( "histograms",
          Json.Obj (List.map (fun (k, s) -> (k, summary_to_json s)) t.histograms) );
        ( "spans",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("path", Json.Str a.agg_path);
                     ("count", Json.Int a.agg_count);
                     ("total_s", Json.Float a.agg_total);
                     ("max_s", Json.Float a.agg_max);
                   ])
               t.spans) );
        ("dropped_spans", Json.Int t.dropped_spans);
      ]

  let json_error msg = Error ("Report.of_json: " ^ msg)

  let of_json json =
    let open Json in
    let obj_field name =
      match member name json with
      | Some (Obj fields) -> Ok fields
      | Some _ -> json_error (name ^ " is not an object")
      | None -> json_error ("missing " ^ name)
    in
    let float_field fields name =
      match List.assoc_opt name fields with
      | Some v ->
        (match to_float_opt v with
        | Some f -> Ok f
        | None -> json_error (name ^ " is not a number"))
      | None -> json_error ("missing " ^ name)
    in
    let int_field fields name =
      match List.assoc_opt name fields with
      | Some (Int i) -> Ok i
      | _ -> json_error ("missing int " ^ name)
    in
    let ( let* ) = Result.bind in
    let* counters = obj_field "counters" in
    let* counters =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match to_int_opt v with
          | Some i -> Ok ((k, i) :: acc)
          | None -> json_error ("counter " ^ k ^ " is not an int"))
        (Ok []) counters
    in
    let* gauges = obj_field "gauges" in
    let* gauges =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match to_float_opt v with
          | Some f -> Ok ((k, f) :: acc)
          | None -> json_error ("gauge " ^ k ^ " is not a number"))
        (Ok []) gauges
    in
    let* histograms = obj_field "histograms" in
    let* histograms =
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match v with
          | Obj fields ->
            let* count = int_field fields "count" in
            let* sum = float_field fields "sum" in
            let* min = float_field fields "min" in
            let* max = float_field fields "max" in
            let* mean = float_field fields "mean" in
            let* p50 = float_field fields "p50" in
            let* p95 = float_field fields "p95" in
            let* p99 = float_field fields "p99" in
            (* Reports written before the bucketed-histogram schema have
               no "buckets"; parse them with an empty ladder. *)
            let* buckets =
              match List.assoc_opt "buckets" fields with
              | None -> Ok []
              | Some (List items) ->
                List.fold_left
                  (fun acc item ->
                    let* acc = acc in
                    match item with
                    | Obj bf ->
                      let* le = float_field bf "le" in
                      let* n = int_field bf "n" in
                      Ok ((le, n) :: acc)
                    | _ -> json_error ("bucket of " ^ k ^ " is not an object"))
                  (Ok []) items
                |> Result.map List.rev
              | Some _ -> json_error ("buckets of " ^ k ^ " is not a list")
            in
            Ok
              (( k,
                 { Histogram.count; sum; min; max; mean; p50; p95; p99; buckets }
               )
              :: acc)
          | _ -> json_error ("histogram " ^ k ^ " is not an object"))
        (Ok []) histograms
    in
    let* spans =
      match member "spans" json with
      | Some (List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Obj fields ->
              let* path =
                match List.assoc_opt "path" fields with
                | Some (Str s) -> Ok s
                | _ -> json_error "span without path"
              in
              let* count = int_field fields "count" in
              let* total = float_field fields "total_s" in
              let* max = float_field fields "max_s" in
              Ok
                ({ agg_path = path; agg_count = count; agg_total = total; agg_max = max }
                :: acc)
            | _ -> json_error "span is not an object")
          (Ok []) items
      | Some _ -> json_error "spans is not a list"
      | None -> json_error "missing spans"
    in
    let dropped =
      match member "dropped_spans" json with Some (Int i) -> i | _ -> 0
    in
    Ok
      {
        counters = List.rev counters;
        gauges = List.rev gauges;
        histograms = List.rev histograms;
        spans = List.rev spans;
        dropped_spans = dropped;
      }

  (* Parent of a slash-joined span path, if any. *)
  let parent_path path =
    match String.rindex_opt path '/' with
    | Some i -> Some (String.sub path 0 i)
    | None -> None

  let self_times t =
    (* Self time = total minus the totals of direct children (paths one
       component deeper); clamped at 0 against clock jitter. *)
    let children = Hashtbl.create 32 in
    List.iter
      (fun a ->
        match parent_path a.agg_path with
        | Some p ->
          Hashtbl.replace children p
            ((try Hashtbl.find children p with Not_found -> 0.0)
            +. a.agg_total)
        | None -> ())
      t.spans;
    List.map
      (fun a ->
        let kids =
          try Hashtbl.find children a.agg_path with Not_found -> 0.0
        in
        (a.agg_path, Float.max 0.0 (a.agg_total -. kids)))
      t.spans

  type span_delta = {
    d_path : string;
    d_baseline : float;
    d_current : float;
  }

  let diff_spans ~baseline ~current =
    let totals = Hashtbl.create 32 in
    List.iter
      (fun a -> Hashtbl.replace totals a.agg_path a.agg_total)
      current.spans;
    List.filter_map
      (fun a ->
        match Hashtbl.find_opt totals a.agg_path with
        | Some c ->
          Some { d_path = a.agg_path; d_baseline = a.agg_total; d_current = c }
        | None -> None)
      baseline.spans

  let default_threshold = 0.25

  let regressions ?threshold ~baseline ~current () =
    let threshold = Option.value threshold ~default:default_threshold in
    List.filter
      (fun d ->
        d.d_baseline > 0.0
        && d.d_current > d.d_baseline *. (1.0 +. threshold))
      (diff_spans ~baseline ~current)

  let pp_text ppf t =
    let nonempty = ref false in
    if t.spans <> [] then begin
      nonempty := true;
      let self = self_times t in
      let spans =
        List.sort
          (fun a b ->
            match Float.compare b.agg_total a.agg_total with
            | 0 -> String.compare a.agg_path b.agg_path
            | c -> c)
          t.spans
      in
      Format.fprintf ppf "spans (path, count, total s, self s, max s):@.";
      List.iter
        (fun a ->
          let s =
            try List.assoc a.agg_path self with Not_found -> a.agg_total
          in
          Format.fprintf ppf "  %-52s %8d %10.4f %10.4f %10.4f@." a.agg_path
            a.agg_count a.agg_total s a.agg_max)
        spans
    end;
    if t.counters <> [] then begin
      nonempty := true;
      Format.fprintf ppf "counters:@.";
      List.iter
        (fun (k, v) -> Format.fprintf ppf "  %-52s %12d@." k v)
        t.counters
    end;
    if t.gauges <> [] then begin
      nonempty := true;
      Format.fprintf ppf "gauges:@.";
      List.iter (fun (k, v) -> Format.fprintf ppf "  %-52s %12.4f@." k v) t.gauges
    end;
    if t.histograms <> [] then begin
      nonempty := true;
      Format.fprintf ppf "histograms (count, mean, p50, p95, p99, max):@.";
      List.iter
        (fun (k, s) ->
          Format.fprintf ppf "  %-44s %8d %10.4g %10.4g %10.4g %10.4g %10.4g@." k
            s.Histogram.count s.Histogram.mean s.Histogram.p50 s.Histogram.p95
            s.Histogram.p99 s.Histogram.max)
        t.histograms
    end;
    if t.dropped_spans > 0 then
      Format.fprintf ppf "dropped spans: %d@." t.dropped_spans;
    if not !nonempty then Format.fprintf ppf "telemetry: no measurements recorded@."

  let to_text t = Format.asprintf "%a" pp_text t

  let equal a b = a = b
end

(* ---- Prometheus text exposition (format 0.0.4) ------------------------- *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
   (the dots of "engine.facts.derived", the spaces and slashes of
   endpoint names) becomes '_'. *)
let prometheus_name name =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  in
  let ok c = ok_first c || (c >= '0' && c <= '9') in
  if name = "" then "_"
  else
    String.mapi
      (fun i c -> if (if i = 0 then ok_first c else ok c) then c else '_')
      name

let prom_escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Sample values and bucket bounds: integers render bare, the rest in
   shortest-form scientific — Prometheus parses both. *)
let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

module Prometheus = struct
  (* Each family renders HELP + TYPE + its samples; families whose
     sanitized names collide are dropped after the first so the
     exposition never contains duplicate series. *)
  let render ?(namespace = "vadasa") (report : Report.t) =
    let buf = Buffer.create 2048 in
    let seen = Hashtbl.create 32 in
    let family name help typ emit =
      let full = namespace ^ "_" ^ prometheus_name name in
      if not (Hashtbl.mem seen full) then begin
        Hashtbl.add seen full ();
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" full (prom_escape_help help));
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" full typ);
        emit full
      end
    in
    List.iter
      (fun (name, v) ->
        family (name ^ "_total") ("Vada-SA counter " ^ name) "counter"
          (fun full -> Buffer.add_string buf (Printf.sprintf "%s %d\n" full v)))
      report.Report.counters;
    List.iter
      (fun (name, v) ->
        family name ("Vada-SA gauge " ^ name) "gauge" (fun full ->
            Buffer.add_string buf (Printf.sprintf "%s %s\n" full (prom_float v))))
      report.Report.gauges;
    List.iter
      (fun (name, (s : Histogram.summary)) ->
        family name ("Vada-SA histogram " ^ name) "histogram" (fun full ->
            List.iter
              (fun (le, n) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" full
                     (prom_float le) n))
              s.Histogram.buckets;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" full
                 s.Histogram.count);
            Buffer.add_string buf
              (Printf.sprintf "%s_sum %s\n" full (prom_float s.Histogram.sum));
            Buffer.add_string buf
              (Printf.sprintf "%s_count %d\n" full s.Histogram.count)))
      report.Report.histograms;
    if report.Report.dropped_spans > 0 then
      family "telemetry_dropped_spans_total"
        "Telemetry spans dropped by the retention limit" "counter" (fun full ->
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" full report.Report.dropped_spans));
    Buffer.contents buf
end

let trace_json registry =
  Json.List
    (List.map
       (fun ev ->
         Json.Obj
           [
             ("name", Json.Str ev.sp_name);
             ("path", Json.Str ev.sp_path);
             ("start_s", Json.Float ev.sp_start);
             ("duration_s", Json.Float ev.sp_duration);
             ("depth", Json.Int ev.sp_depth);
           ])
       (Span.finished registry))

(* ---- trace exporters --------------------------------------------------- *)

type trace_format = Events | Chrome | Folded

let trace_format_of_string = function
  | "json" | "events" -> Ok Events
  | "chrome" | "perfetto" -> Ok Chrome
  | "folded" | "flamegraph" -> Ok Folded
  | other ->
    Error
      (Printf.sprintf "unknown trace format %s (use json, chrome or folded)"
         other)

let trace_format_to_string = function
  | Events -> "json"
  | Chrome -> "chrome"
  | Folded -> "folded"

(* Chrome/Perfetto trace-event JSON: one complete ("ph":"X") event per
   finished span, timestamps and durations in microseconds. Each
   registry shard is one thread of control, so the shard id becomes the
   tid and the viewers reconstruct per-domain nesting from interval
   containment within each track. *)
let trace_chrome registry =
  Json.Obj
    [
      ("displayTimeUnit", Json.Str "ms");
      ( "traceEvents",
        Json.List
          (List.concat_map
             (fun (shard_id, events) ->
               List.map
                 (fun ev ->
                   Json.Obj
                     [
                       ("name", Json.Str ev.sp_name);
                       ("cat", Json.Str "span");
                       ("ph", Json.Str "X");
                       ("ts", Json.Float (ev.sp_start *. 1e6));
                       ("dur", Json.Float (ev.sp_duration *. 1e6));
                       ("pid", Json.Int 1);
                       ("tid", Json.Int (shard_id + 1));
                       ( "args",
                         Json.Obj
                           [
                             ("path", Json.Str ev.sp_path);
                             ("depth", Json.Int ev.sp_depth);
                           ] );
                     ])
                 events)
             (Span.finished_by_shard registry)) );
    ]

(* Folded-stacks lines for flamegraph.pl: "root;child;leaf <self µs>",
   one line per distinct span path (first-seen order), values are self
   time so the flamegraph's widths add up correctly. *)
let trace_folded registry =
  let totals = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match Hashtbl.find_opt totals ev.sp_path with
      | Some t -> Hashtbl.replace totals ev.sp_path (t +. ev.sp_duration)
      | None ->
        order := ev.sp_path :: !order;
        Hashtbl.add totals ev.sp_path ev.sp_duration)
    (Span.finished registry);
  let children = Hashtbl.create 32 in
  Hashtbl.iter
    (fun path total ->
      match String.rindex_opt path '/' with
      | Some i ->
        let parent = String.sub path 0 i in
        Hashtbl.replace children parent
          ((try Hashtbl.find children parent with Not_found -> 0.0) +. total)
      | None -> ())
    totals;
  let buf = Buffer.create 256 in
  List.iter
    (fun path ->
      let total = Hashtbl.find totals path in
      let kids = try Hashtbl.find children path with Not_found -> 0.0 in
      let self_us =
        int_of_float (Float.max 0.0 (total -. kids) *. 1e6 +. 0.5)
      in
      let stack =
        String.concat ";" (String.split_on_char '/' path)
      in
      Buffer.add_string buf (Printf.sprintf "%s %d\n" stack self_us))
    (List.rev !order);
  Buffer.contents buf

let write_trace_as format registry path =
  let oc = open_out path in
  (match format with
  | Events ->
    output_string oc (Json.to_string ~indent:true (trace_json registry));
    output_char oc '\n'
  | Chrome ->
    output_string oc (Json.to_string ~indent:true (trace_chrome registry));
    output_char oc '\n'
  | Folded -> output_string oc (trace_folded registry));
  close_out oc

let write_trace registry path = write_trace_as Events registry path
