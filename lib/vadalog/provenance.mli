(** Explanations: why is a fact in the result?

    Full explainability is one of the paper's central desiderata (vi): every
    anonymization decision must be traceable to the rule and the facts that
    motivated it. The engine records, for each derived fact, the rule and
    the parent facts of its first derivation; this module unfolds that
    record into a tree and renders it. *)

type t = {
  pred : string;
  args : Vadasa_base.Value.t array;
  how : how;
}

and how =
  | Input  (** extensional fact *)
  | By_rule of { label : string; parents : t list }
  | Unknown  (** provenance tracking was disabled *)

val explain :
  ?max_depth:int -> Database.t -> string -> Vadasa_base.Value.t array -> t option
(** [None] when the fact is not in the database. Subtrees deeper than
    [max_depth] (default 12) are cut with [Unknown]. *)

val pp : Format.formatter -> t -> unit
(** Indented derivation tree. *)

val to_string : t -> string

val to_json : t -> Vadasa_base.Json.t
(** Deterministic rendering of the tree:
    [{"fact"; "pred"; "args"; "how"}] with ["how"] one of ["input"],
    ["unknown"] or ["rule"] (adding ["rule"] and recursive ["parents"]).
    This is the canonical encoding behind both [vadasa explain --json]
    and the server's [POST /v1/explain] — the two are byte-identical
    because they both render through it. *)
