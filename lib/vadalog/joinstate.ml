(* A lock-free bank of reusable scratch values (Treiber stack).

   The stack is an [Atomic.t] holding an immutable list; push/pop are
   compare-and-set loops. Contention is bounded by the number of pool
   domains (a few), so CAS retry storms are not a concern, and the
   immutable-list representation makes the empty/non-empty transition
   trivially safe under the OCaml 5 memory model: a successful CAS
   publishes the whole node. *)

type 'a t = {
  make : unit -> 'a;
  reset : 'a -> unit;
  free : 'a list Atomic.t;
}

let create ~make ~reset = { make; reset; free = Atomic.make [] }

let rec acquire t =
  match Atomic.get t.free with
  | [] -> t.make ()
  | x :: rest as old ->
    if Atomic.compare_and_set t.free old rest then x else acquire t

let release t x =
  t.reset x;
  let rec push () =
    let old = Atomic.get t.free in
    if not (Atomic.compare_and_set t.free old (x :: old)) then push ()
  in
  push ()

let with_scratch t f =
  let x = acquire t in
  Fun.protect ~finally:(fun () -> release t x) (fun () -> f x)

let parked t = List.length (Atomic.get t.free)
