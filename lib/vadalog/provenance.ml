module Value = Vadasa_base.Value

type t = {
  pred : string;
  args : Value.t array;
  how : how;
}

and how =
  | Input
  | By_rule of { label : string; parents : t list }
  | Unknown

let rec build db depth pred args =
  if depth <= 0 then { pred; args; how = Unknown }
  else
    match Database.provenance_of db pred args with
    | None -> { pred; args; how = Unknown }
    | Some Database.Edb -> { pred; args; how = Input }
    | Some (Database.Derived { rule_label; parents; _ }) ->
      let parents =
        List.map (fun (p, a) -> build db (depth - 1) p a) parents
      in
      { pred; args; how = By_rule { label = rule_label; parents } }

let explain ?(max_depth = 12) db pred args =
  if Database.mem db pred args then Some (build db max_depth pred args)
  else None

let fact_to_string pred args =
  pred ^ "("
  ^ String.concat ", " (Array.to_list (Array.map Value.to_string args))
  ^ ")"

let rec pp_indented ppf indent node =
  let pad = String.make indent ' ' in
  (match node.how with
  | Input ->
    Format.fprintf ppf "%s%s  [input]@." pad (fact_to_string node.pred node.args)
  | Unknown ->
    Format.fprintf ppf "%s%s  [unknown]@." pad (fact_to_string node.pred node.args)
  | By_rule { label; parents } ->
    Format.fprintf ppf "%s%s  [by %s]@." pad
      (fact_to_string node.pred node.args)
      label;
    List.iter (pp_indented ppf (indent + 2)) parents)

let pp ppf node = pp_indented ppf 0 node

let to_string node = Format.asprintf "%a" pp node

(* The canonical JSON rendering shared by [vadasa explain --json] and
   the server's [POST /v1/explain] — both must stay byte-identical, so
   field order here is the contract. *)
let rec to_json node =
  let module Json = Vadasa_base.Json in
  let base =
    [
      ("fact", Json.Str (fact_to_string node.pred node.args));
      ("pred", Json.Str node.pred);
      ( "args",
        Json.List
          (Array.to_list
             (Array.map (fun v -> Json.Str (Value.to_string v)) node.args)) );
    ]
  in
  Json.Obj
    (base
    @
    match node.how with
    | Input -> [ ("how", Json.Str "input") ]
    | Unknown -> [ ("how", Json.Str "unknown") ]
    | By_rule { label; parents } ->
      [
        ("how", Json.Str "rule");
        ("rule", Json.Str label);
        ("parents", Json.List (List.map to_json parents));
      ])
