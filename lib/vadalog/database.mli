(** The fact store: facts per predicate, in insertion order, with duplicate
    elimination, lazily-built positional indexes and optional provenance.

    Insertion order is what the semi-naive evaluator's deltas are defined
    over: facts with index ≥ a watermark are "new".

    {b Thread-safety contract.} A database is {e single-writer}: {!add}
    (and anything that calls it) must come from at most one domain at a
    time, with no concurrent readers. Once the store is {e quiescent} —
    no further {!add} calls — any number of domains may concurrently
    call the read-side operations ({!mem}, {!facts}, {!nth},
    {!iter_pred}, {!lookup}, {!provenance_of}, …). {!lookup} stays safe
    even though it builds positional indexes lazily: each index table is
    fully built before being published through an atomic compare-and-set
    of an immutable position → index map, so a concurrent reader sees
    either no index (and builds its own candidate; CAS losers are
    discarded) or a complete one, never a partially-built table. *)

type provenance =
  | Edb  (** asserted input fact *)
  | Derived of {
      rule_id : int;
      rule_label : string;
      parents : (string * Vadasa_base.Value.t array) list;
    }

type t

val create : ?track_provenance:bool -> unit -> t
(** An empty store. [track_provenance] (default [false]) keeps the
    {!provenance} of every fact; the engine turns it on so
    explanations ({!provenance_of}) work. *)

val add : t -> ?prov:provenance -> string -> Vadasa_base.Value.t array -> bool
(** [true] when the fact was new. Default provenance is [Edb].
    Write-side: subject to the single-writer contract above. *)

val add_prekeyed :
  t -> ?prov:provenance -> key:string -> string ->
  Vadasa_base.Value.t array -> bool
(** {!add} with the dedup key supplied by the caller. [key] {e must}
    equal [{!args_key} args] — this is unchecked. The parallel chase's
    workers compute keys off the writer domain during their read-only
    join phase, so the single-threaded merge replay skips the key
    construction; any other caller should use {!add}. Write-side. *)

val mem : t -> string -> Vadasa_base.Value.t array -> bool
(** Membership under standard equality (labelled nulls compare by
    label). Read-side: safe from any domain on a quiescent store. *)

val mem_key : t -> string -> key:string -> bool
(** {!mem} by precomputed {!args_key}. Read-side: safe from any domain
    on a quiescent store — the parallel merge's sharded dedup probes
    this concurrently before any insertion of the batch happens. *)

val pred_size : t -> string -> int
(** Number of facts of a predicate (0 for unknown predicates). *)

val nth : t -> string -> int -> Vadasa_base.Value.t array
(** Fact by insertion index. *)

val facts : t -> string -> Vadasa_base.Value.t array list
(** All facts of a predicate, in insertion order. *)

val iter_pred : t -> string -> (Vadasa_base.Value.t array -> unit) -> unit
(** Iterate a predicate's facts in insertion order without building the
    intermediate list of {!facts}. This is the scan the semi-naive
    evaluator's delta ranges are defined over — and what the parallel
    evaluator's workers run concurrently on a quiescent store. *)

val lookup : t -> string -> pos:int -> Vadasa_base.Value.t -> int list
(** Insertion indexes of facts whose argument at [pos] equals the value
    (standard equality); builds the positional index on first use and
    maintains it afterwards. Safe to call from multiple domains on a
    quiescent store (see the thread-safety contract above). *)

val build_all_indexes : ?pool:Vadasa_base.Task_pool.t -> t -> string -> unit
(** Eagerly build the positional index of every argument position of a
    predicate (no-op for unknown predicates and already-indexed
    positions). Callers that publish a quiescent store to concurrent
    readers can use this to pre-pay index construction. With [pool],
    the missing positions build as parallel tasks — index construction
    is read-only until each table's atomic publication, so concurrent
    builders are safe (CAS losers are discarded, as under {!lookup}). *)

val total : t -> int
(** Facts across all predicates — the number the engine's fact-ceiling
    budget counts against. *)

val predicates : t -> string list
(** Every predicate with at least one fact, sorted. *)

val provenance_of : t -> string -> Vadasa_base.Value.t array -> provenance option
(** [None] when the fact is absent or provenance tracking is off. *)

val value_key : Vadasa_base.Value.t -> string
(** Canonical, type-tagged key — distinguishes [Int 1] from [Str "1"]. *)

val args_key : Vadasa_base.Value.t array -> string
(** {!value_key} over a fact's arguments, comma-joined — the store's
    internal dedup key, exposed for canonical renderings of facts. *)
