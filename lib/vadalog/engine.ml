module Value = Vadasa_base.Value
module Ids = Vadasa_base.Ids
module Budget = Vadasa_base.Budget
module Task_pool = Vadasa_base.Task_pool
module Telemetry = Vadasa_telemetry.Telemetry
module Faultpoint = Vadasa_resilience.Faultpoint

let log_src = Logs.Src.create "vadasa.engine" ~doc:"chase evaluation"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  track_provenance : bool;
  max_iterations : int;
  max_facts : int;
}

let default_config =
  { track_provenance = true; max_iterations = 100_000; max_facts = 10_000_000 }

exception Limit of string

(* ---- parallel-evaluation tuning constants ----------------------------- *)

(* Chunks are sized by estimated join work (scanned facts), not fact
   counts: a delta fact of a band self-join costs a full inner scan
   while a delta fact of an indexed closure step costs a handful of
   probes, and fixed-count chunks made the latter pay fork-join
   overhead for microseconds of work. The estimate is a per-rule EWMA
   of scanned-facts-per-delta-fact ([c_spd]) fed back from completed
   evaluations. *)
let target_chunk_scans = 16_384
(* Estimated scans per chunk a worker should receive: big enough to
   amortize task dispatch + scratch acquisition, small enough to keep
   [domains * 4] chunks available for load balancing. *)

let min_parallel_scans = 2 * target_chunk_scans
(* A batch whose total estimated work is below this evaluates
   sequentially — the fork-join + merge machinery costs more than the
   join itself (the old fixed-count policy made tiny strata slower at
   4 domains than at 1). *)

let min_chunk_facts = 64
(* Floor on chunk granularity in facts, so the capture/replay overhead
   per fact stays bounded even when [c_spd] estimates huge per-fact
   cost. *)

let spd_init = 64.0
(* Scanned-per-delta-fact estimate for a rule that has never been
   measured: assume moderately expensive, so first iterations of big
   deltas parallelize and the measured rate takes over from there. *)

let dedup_shards = 16
(* Fact-hash shards for the phase-2 dedup classification. *)

let dedup_parallel_floor = 1024
(* Below this many candidate head facts the sharded classification
   runs inline — spawning tasks to probe a few hundred hashtable keys
   is slower than just probing them. *)

type interrupt = {
  reason : Budget.reason;
  stratum : int;  (* stratum being evaluated when the budget ran out *)
  iteration : int;  (* fixpoint iteration within that stratum *)
  facts_derived : int;  (* facts derived so far, = [stats.facts_derived] *)
}

exception Interrupted of interrupt

(* The per-stratum fixpoint state an incremental re-run resumes from:
   the semi-naive watermarks ([seen]) each stratum ended with, plus the
   sizes of the predicates whose growth falsifies the stratum's previous
   fixpoint (negated atoms, aggregate-binding inputs). All sizes are
   captured once the run is saturated — every producer of a predicate
   lives at that predicate's own stratum, so the saturated size equals
   the size the stratum observed at its fixpoint. *)
module Snapshot = struct
  type stratum = {
    sn_seen : (string * int) list;
        (* predicates the stratum's semi-naive loop scans -> watermark *)
    sn_guards : (string * int) list;
        (* predicates whose growth invalidates the stratum -> size *)
  }

  type t = {
    sn_strata : stratum array;  (* one entry per stratification stratum *)
    sn_total : int;  (* Database.total at capture time *)
  }

  let total t = t.sn_total
end

exception Invalidated of string

(* A compiled body literal. Atom terms are pre-extracted. *)
type step =
  | S_atom of { pred : string; terms : Term.t array }
  | S_neg of { pred : string; terms : Term.t array }
  | S_guard of Expr.t
  | S_assign of string * Expr.t

type compiled_rule = {
  rule : Rule.t;
  pos_atoms : (string * Term.t array) array;  (* in source order *)
  agg : Rule.agg option;
  frontier : string list;
  existentials : string list;
  group_vars : string list;
      (* for aggregate rules: head variables bound during the join phase —
         the aggregation group key *)
  post : step array;
      (* assignments/guards that depend on the aggregate's bound result,
         evaluated per group after aggregation *)
  (* plans.(k) = literal schedule with positive atom [k] first (the delta
     atom); plans.(n) = schedule for "no delta restriction". *)
  plans : step array array;
  c_prof : Profile.rule;  (* hot-path cost accumulator (see Profile) *)
  c_span : string;  (* "engine.rule.<label>" *)
  c_preds : string list;  (* distinct positive body predicates *)
  c_heads : string list;  (* distinct head predicates *)
  c_plan_reads : string list array;
      (* c_plan_reads.(k) = predicates plan k reads outside its delta atom
         (inner positive atoms + negated atoms). A (rule, plan) pair whose
         heads intersect these reads is not snapshot-safe: its inner scans
         must see its own emissions live, so it evaluates sequentially. *)
  c_capture : string array;
      (* variables a parallel worker must capture per body binding to
         replay head emission later: frontier ∪ head-argument variables,
         minus existentials (those are invented at merge time) *)
  c_head_atoms : Atom.t array;
      (* head atoms in source order. Workers of existential-free rules
         evaluate these during phase 1 — head args and dedup keys are
         pure functions of the body binding, so precomputing them moves
         that work off the serial merge (see [run_parallel_batch]). *)
  c_spd : float array;
      (* c_spd.(k): EWMA of scanned facts per delta fact of plan k —
         the cost model behind adaptive chunk sizing. Per plan, not per
         rule: the delta-on-path plan of a closure rule costs a few
         probes per delta fact while its delta-on-edge plan replays
         whole join subtrees, and one shared estimate would let the
         expensive plan poison the cheap one's. Coordinator-only
         state: updated after each completed evaluation, read when
         planning the next batch. It steers granularity, never
         results, so byte-identity is unaffected by its value. *)
}

type group = {
  state : Aggregate.state;
  snapshot : (string * Value.t) list;  (* frontier bindings of the group *)
}

type stats = {
  strata_run : int;
  iterations : int;
  facts_derived : int;
  duplicates_suppressed : int;
  agg_groups_created : int;
  nulls_created : int;
}

(* Where a labelled null came from: the Skolem term sk(rule, var,
   frontier binding) it stands for. Recorded for every null the chase
   invents, so two runs that invent "the same" null under different
   labels (an incremental continuation vs. a from-scratch chase) can be
   compared modulo label renaming — see [Canonical]. *)
type null_origin = {
  origin_rule : int;  (* rule id that introduced the null *)
  origin_var : string;  (* the existential variable *)
  origin_frontier : (string * Value.t) list;
      (* frontier variable bindings, in frontier order; values may
         themselves be labelled nulls (nested Skolem terms) *)
}

type binding_ctx = {
  env : (string, Value.t) Hashtbl.t;
  mutable parents : (string * Value.t array) list;
}

(* ---- parallel-evaluation worker scratch ------------------------------- *)

(* A head fact a worker precomputed during phase 1: argument values and
   the store's dedup key, both pure functions of the body binding. *)
type head_fact = {
  h_pred : string;
  h_args : Value.t array;
  h_key : string;  (* = Database.args_key h_args *)
}

type emission = {
  e_vals : Value.t array;
      (* values of [c_capture], same order; [||] when heads were
         precomputed (existential-free rules need no replay env) *)
  e_parents : (string * Value.t array) list;
      (* as ctx.parents: reverse match order *)
  e_heads : head_fact array;
      (* precomputed heads; [||] for rules with existentials, whose
         Skolem terms must be invented at merge time *)
}

let no_emission = { e_vals = [||]; e_parents = []; e_heads = [||] }

(* Worker-local profiler counters: summed into the rule's shared
   accumulator at merge time, keeping the shared record single-writer. *)
let scratch_prof () =
  {
    Profile.r_label = "";
    r_stratum = 0;
    r_evals = 0;
    r_time = 0.0;
    r_scanned = 0;
    r_matched = 0;
    r_bindings = 0;
    r_derived = 0;
    r_duplicates = 0;
    r_nulls = 0;
    r_groups = 0;
  }

(* Reusable per-worker join state, banked in a [Joinstate.t] so chunks
   stop allocating (and minor-GC-syncing every domain over) a fresh
   environment, buffer and profiler shard each. *)
type wscratch = {
  ws_ctx : binding_ctx;
  ws_prof : Profile.rule;
  mutable ws_emits : emission array;  (* grow-only emission buffer *)
  mutable ws_n : int;  (* live prefix of [ws_emits] *)
}

let ws_make () =
  {
    ws_ctx = { env = Hashtbl.create 64; parents = [] };
    ws_prof = scratch_prof ();
    ws_emits = Array.make 64 no_emission;
    ws_n = 0;
  }

(* Restore a scratch to a state indistinguishable from [ws_make ()]:
   byte-identity of parallel runs relies on reuse carrying nothing
   across chunks (see Joinstate's contract). The buffer's capacity is
   kept — that is the point — but its live prefix is cleared so parked
   scratch doesn't pin dead facts against the GC. *)
let ws_reset ws =
  Hashtbl.reset ws.ws_ctx.env;
  ws.ws_ctx.parents <- [];
  Array.fill ws.ws_emits 0 ws.ws_n no_emission;
  ws.ws_n <- 0;
  let p = ws.ws_prof in
  p.Profile.r_evals <- 0;
  p.Profile.r_time <- 0.0;
  p.Profile.r_scanned <- 0;
  p.Profile.r_matched <- 0;
  p.Profile.r_bindings <- 0;
  p.Profile.r_derived <- 0;
  p.Profile.r_duplicates <- 0;
  p.Profile.r_nulls <- 0;
  p.Profile.r_groups <- 0

let ws_push ws e =
  let cap = Array.length ws.ws_emits in
  if ws.ws_n >= cap then begin
    let grown = Array.make (2 * cap) no_emission in
    Array.blit ws.ws_emits 0 grown 0 ws.ws_n;
    ws.ws_emits <- grown
  end;
  ws.ws_emits.(ws.ws_n) <- e;
  ws.ws_n <- ws.ws_n + 1

type t = {
  program : Program.t;
  config : config;
  db : Database.t;
  strat : Stratify.t;
  ids : Ids.t;
  skolem : (string, (string * Value.t) list) Hashtbl.t;
  null_origins : (int, null_origin) Hashtbl.t;  (* null label -> Skolem term *)
  agg_groups : (int, (string, group) Hashtbl.t) Hashtbl.t;
  compiled : (int, compiled_rule) Hashtbl.t;
  (* Always-on chase statistics: cheap enough to keep unconditionally,
     they make Limit errors diagnosable and feed the telemetry report. *)
  pred_derived : (string, int ref) Hashtbl.t;
  prof : Profile.t;
  pool : Task_pool.t option;  (* None = fully sequential evaluation *)
  pool_owned : bool;  (* created by us (shutdown stops it) vs borrowed *)
  scratch : wscratch Joinstate.t;  (* reusable worker join state *)
  mutable s_stratum : int;  (* stratum currently evaluating *)
  mutable s_iteration : int;  (* fixpoint iteration within it *)
  mutable s_strata_run : int;
  mutable s_iterations : int;
  mutable s_derived : int;
  mutable s_duplicates : int;
  mutable s_agg_groups : int;
}

(* ---- compilation ------------------------------------------------------ *)

let literal_steps body =
  List.filter_map
    (function
      | Rule.Pos atom ->
        (match Atom.as_terms atom with
        | Some terms -> Some (`Pos (atom.Atom.pred, terms))
        | None -> invalid_arg "Engine: non-term body atom (validate first)")
      | Rule.Neg atom ->
        (match Atom.as_terms atom with
        | Some terms -> Some (`Neg (atom.Atom.pred, terms))
        | None -> invalid_arg "Engine: non-term negated atom")
      | Rule.Guard e -> Some (`Guard e)
      | Rule.Assign (x, e) -> Some (`Assign (x, e))
      | Rule.Agg _ -> None)
    body

let term_vars terms =
  Array.to_list terms
  |> List.filter_map (function Term.Var v -> Some v | Term.Const _ -> None)

(* Greedy left-deep schedule. [first] is the index of the delta atom among
   the positive atoms, or none for an unrestricted schedule. Returns the
   scheduled steps plus the guard/assignment literals that could not be
   placed (they depend on an aggregate's bound result and run post-group). *)
let schedule literals ~first =
  let items = Array.of_list literals in
  let n = Array.length items in
  let used = Array.make n false in
  let bound = Hashtbl.create 16 in
  let bind_vars vars = List.iter (fun v -> Hashtbl.replace bound v ()) vars in
  let all_bound vars = List.for_all (Hashtbl.mem bound) vars in
  let out = ref [] in
  let take i =
    used.(i) <- true;
    (match items.(i) with
    | `Pos (pred, terms) ->
      bind_vars (term_vars terms);
      out := S_atom { pred; terms } :: !out
    | `Neg (pred, terms) -> out := S_neg { pred; terms } :: !out
    | `Guard e -> out := S_guard e :: !out
    | `Assign (x, e) ->
      Hashtbl.replace bound x ();
      out := S_assign (x, e) :: !out)
  in
  (* Position of the k-th positive atom in the literal array. *)
  let pos_positions =
    Array.of_list
      (List.filteri (fun _ _ -> true)
         (List.concat
            (List.mapi
               (fun i item ->
                 match item with `Pos _ -> [ i ] | _ -> [])
               (Array.to_list items))))
  in
  (match first with
  | Some k when k < Array.length pos_positions -> take pos_positions.(k)
  | Some _ | None -> ());
  let remaining () = Array.exists (fun u -> not u) used in
  while remaining () do
    (* 1. Cheap literals whose dependencies are satisfied. *)
    let progressed = ref false in
    Array.iteri
      (fun i item ->
        if not used.(i) then
          match item with
          | `Assign (_, e) when all_bound (Expr.vars e) ->
            take i;
            progressed := true
          | `Guard e when all_bound (Expr.vars e) ->
            take i;
            progressed := true
          | `Neg (_, terms) when all_bound (term_vars terms) ->
            take i;
            progressed := true
          | _ -> ())
      items;
    if not !progressed then begin
      (* 2. The positive atom sharing the most bound variables. *)
      let best = ref (-1) in
      let best_score = ref (-1) in
      Array.iteri
        (fun i item ->
          if not used.(i) then
            match item with
            | `Pos (_, terms) ->
              let vars = term_vars terms in
              let score =
                List.length (List.filter (Hashtbl.mem bound) vars)
              in
              if score > !best_score then begin
                best := i;
                best_score := score
              end
            | _ -> ())
        items;
      if !best >= 0 then take !best
      else
        invalid_arg
          "Engine: cannot schedule rule body (unbound guard or negation)"
    end
  done;
  Array.of_list (List.rev !out)

let compile_rule prof rule =
  let literals = literal_steps rule.Rule.body in
  let agg = Rule.the_agg rule in
  (* Split off guard/assignment literals that cannot be evaluated before the
     aggregate binds its result variable: they form the post-group phase. *)
  let pre_bound = Hashtbl.create 16 in
  List.iter
    (function
      | `Pos (_, terms) ->
        List.iter (fun v -> Hashtbl.replace pre_bound v ()) (term_vars terms)
      | _ -> ())
    literals;
  let assigns =
    List.filter_map (function `Assign (x, e) -> Some (x, e) | _ -> None) literals
  in
  let fixpoint () =
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun (x, e) ->
          if
            (not (Hashtbl.mem pre_bound x))
            && List.for_all (Hashtbl.mem pre_bound) (Expr.vars e)
          then begin
            Hashtbl.replace pre_bound x ();
            progress := true
          end)
        assigns
    done
  in
  fixpoint ();
  let placeable_pre = Hashtbl.copy pre_bound in
  let is_pre = function
    | `Pos _ | `Neg _ -> true
    | `Guard e -> List.for_all (Hashtbl.mem placeable_pre) (Expr.vars e)
    | `Assign (x, _) -> Hashtbl.mem placeable_pre x
  in
  let pre_literals, post_literals =
    match agg with
    | Some { Rule.agg_result = Rule.Bind x; _ } ->
      let pre, post = List.partition is_pre literals in
      Hashtbl.replace pre_bound x ();
      fixpoint ();
      (pre, post)
    | Some { Rule.agg_result = Rule.Test _; _ } | None -> (literals, [])
  in
  (* Order the post phase by assignment dependencies. *)
  let post_steps =
    let remaining = ref post_literals in
    let placed = ref [] in
    let bound = Hashtbl.copy placeable_pre in
    (match agg with
    | Some { Rule.agg_result = Rule.Bind x; _ } -> Hashtbl.replace bound x ()
    | _ -> ());
    let guard_budget = ref (List.length post_literals + 1) in
    while !remaining <> [] && !guard_budget > 0 do
      decr guard_budget;
      let ready, blocked =
        List.partition
          (function
            | `Guard e -> List.for_all (Hashtbl.mem bound) (Expr.vars e)
            | `Assign (_, e) -> List.for_all (Hashtbl.mem bound) (Expr.vars e)
            | `Pos _ | `Neg _ -> false)
          !remaining
      in
      List.iter
        (function
          | `Guard e -> placed := S_guard e :: !placed
          | `Assign (x, e) ->
            Hashtbl.replace bound x ();
            placed := S_assign (x, e) :: !placed
          | `Pos _ | `Neg _ -> ())
        ready;
      remaining := blocked;
      if ready = [] && blocked <> [] then
        invalid_arg
          ("Engine: cannot schedule post-aggregation literals of rule "
          ^ rule.Rule.label)
    done;
    Array.of_list (List.rev !placed)
  in
  let pos_atoms =
    Array.of_list
      (List.filter_map
         (function `Pos (p, ts) -> Some (p, ts) | _ -> None)
         pre_literals)
  in
  let n = Array.length pos_atoms in
  let plans =
    Array.init (n + 1) (fun k ->
        schedule pre_literals ~first:(if k < n then Some k else None))
  in
  let group_vars =
    match agg with
    | Some _ ->
      List.filter (Hashtbl.mem placeable_pre) (Rule.head_vars rule)
    | None -> []
  in
  let frontier = Rule.frontier_vars rule in
  let existentials = Rule.existential_vars rule in
  let plan_reads =
    Array.map
      (fun plan ->
        let acc = ref [] in
        Array.iteri
          (fun i step ->
            match step with
            | S_atom { pred; _ } when i > 0 -> acc := pred :: !acc
            | S_neg { pred; _ } -> acc := pred :: !acc
            | S_atom _ | S_guard _ | S_assign _ -> ())
          plan;
        List.sort_uniq compare !acc)
      plans
  in
  let head_arg_vars =
    List.concat_map
      (fun atom ->
        Array.to_list atom.Atom.args |> List.concat_map Expr.vars)
      rule.Rule.head
  in
  let capture =
    List.sort_uniq compare (frontier @ head_arg_vars)
    |> List.filter (fun v -> not (List.mem v existentials))
    |> Array.of_list
  in
  {
    rule;
    pos_atoms;
    agg;
    frontier;
    existentials;
    group_vars;
    post = post_steps;
    plans;
    c_prof = Profile.register prof ~label:rule.Rule.label;
    c_span = "engine.rule." ^ rule.Rule.label;
    c_preds =
      Array.to_list (Array.map fst pos_atoms) |> List.sort_uniq compare;
    c_heads =
      List.map (fun atom -> atom.Atom.pred) rule.Rule.head
      |> List.sort_uniq compare;
    c_plan_reads = plan_reads;
    c_capture = capture;
    c_head_atoms = Array.of_list rule.Rule.head;
    c_spd = Array.make (Array.length plans) spd_init;
  }

(* ---- construction ----------------------------------------------------- *)

let create ?(config = default_config) ?(first_null_label = 1) ?strat
    ?(domains = 1) ?(cap_domains = true) ?pool program =
  (match Program.validate program with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Engine.create: " ^ String.concat "; " errors));
  if domains < 1 then invalid_arg "Engine.create: domains must be >= 1";
  (* Oversubscribing a host costs real time under OCaml 5 (every minor
     collection synchronizes all running domains), so by default the
     requested parallelism is clamped to what the host can actually run
     — [Task_pool.recommended] honors cgroup/affinity limits, so a
     container pinned to one core evaluates sequentially no matter what
     [~domains] asks for. Callers that must exercise the parallel
     machinery regardless (tests, experiments) pass
     [~cap_domains:false]; an explicit [~pool] is never clamped. *)
  let domains =
    if cap_domains then Task_pool.effective ~requested:domains else domains
  in
  let pool, pool_owned =
    match pool with
    | Some p -> (Some p, false)
    | None when domains > 1 ->
      ( Some
          (Task_pool.create ~name:"engine"
             ~on_wait:(fun dt -> Telemetry.observe "pool.wait" dt)
             ~domains ()),
        true )
    | None -> (None, false)
  in
  let strat =
    match strat with Some s -> s | None -> Stratify.compute program
  in
  let db = Database.create ~track_provenance:config.track_provenance () in
  List.iter
    (fun (pred, args) -> ignore (Database.add db pred args))
    program.Program.facts;
  let prof = Profile.create () in
  let compiled = Hashtbl.create 64 in
  List.iter
    (fun rule -> Hashtbl.replace compiled rule.Rule.id (compile_rule prof rule))
    program.Program.rules;
  {
    program;
    config;
    db;
    strat;
    ids = Ids.create ~start:first_null_label ();
    skolem = Hashtbl.create 256;
    null_origins = Hashtbl.create 256;
    agg_groups = Hashtbl.create 16;
    compiled;
    pred_derived = Hashtbl.create 32;
    prof;
    pool;
    pool_owned;
    scratch = Joinstate.create ~make:ws_make ~reset:ws_reset;
    s_stratum = 0;
    s_iteration = 0;
    s_strata_run = 0;
    s_iterations = 0;
    s_derived = 0;
    s_duplicates = 0;
    s_agg_groups = 0;
  }

let add_fact_array t pred args = ignore (Database.add t.db pred args)

let add_fact t pred args = add_fact_array t pred (Array.of_list args)

let parallelism t =
  match t.pool with None -> 1 | Some pool -> Task_pool.domains pool

let shutdown t = if t.pool_owned then Option.iter Task_pool.stop t.pool

(* ---- evaluation ------------------------------------------------------- *)

let env_key env vars =
  let buf = Buffer.create 32 in
  List.iter
    (fun v ->
      let value =
        match Hashtbl.find_opt env v with
        | Some value -> value
        | None -> invalid_arg ("Engine: unbound frontier variable " ^ v)
      in
      let s = Database.value_key value in
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s)
    vars;
  Buffer.contents buf

(* Match [fact] against [terms] under the context's environment; on success
   call [k] and undo trail afterwards; returns unit. *)
let match_terms ctx terms fact k =
  if Array.length fact <> Array.length terms then ()
  else begin
    let trail = ref [] in
    let ok = ref true in
    (try
       Array.iteri
         (fun i term ->
           match term with
           | Term.Const c ->
             if not (Value.equal c fact.(i)) then raise Exit
           | Term.Var v ->
             (match Hashtbl.find_opt ctx.env v with
             | Some bound -> if not (Value.equal bound fact.(i)) then raise Exit
             | None ->
               Hashtbl.replace ctx.env v fact.(i);
               trail := v :: !trail))
         terms
     with Exit -> ok := false);
    if !ok then k ();
    List.iter (Hashtbl.remove ctx.env) !trail
  end

(* Candidate fact indexes for an atom: delta range for the first step when
   given, otherwise an index lookup on some bound position, otherwise a
   scan. *)
let candidates t ctx pred terms ~delta =
  match delta with
  | Some (lo, hi) -> `Range (lo, hi)
  | None ->
    let bound_pos = ref None in
    Array.iteri
      (fun i term ->
        if !bound_pos = None then
          match term with
          | Term.Const c -> bound_pos := Some (i, c)
          | Term.Var v ->
            (match Hashtbl.find_opt ctx.env v with
            | Some value -> bound_pos := Some (i, value)
            | None -> ()))
      terms;
    (match !bound_pos with
    | Some (pos, value) -> `List (Database.lookup t.db pred ~pos value)
    | None -> `Range (0, Database.pred_size t.db pred))

let run_plan ?(poll = ignore) t plan ~delta_range ~prof ctx ~on_binding =
  let steps = plan in
  let n = Array.length steps in
  let rec exec i =
    if i >= n then begin
      prof.Profile.r_bindings <- prof.Profile.r_bindings + 1;
      on_binding ()
    end
    else
      match steps.(i) with
      | S_atom { pred; terms } ->
        let delta = if i = 0 then delta_range else None in
        let visit idx =
          prof.Profile.r_scanned <- prof.Profile.r_scanned + 1;
          if prof.Profile.r_scanned land 4095 = 0 then poll ();
          let fact = Database.nth t.db pred idx in
          match_terms ctx terms fact (fun () ->
              prof.Profile.r_matched <- prof.Profile.r_matched + 1;
              if t.config.track_provenance then begin
                let saved = ctx.parents in
                ctx.parents <- (pred, fact) :: saved;
                exec (i + 1);
                ctx.parents <- saved
              end
              else exec (i + 1))
        in
        (match candidates t ctx pred terms ~delta with
        | `Range (lo, hi) ->
          for idx = lo to hi - 1 do
            visit idx
          done
        | `List idxs -> List.iter visit idxs)
      | S_neg { pred; terms } ->
        let args =
          Array.map
            (fun term ->
              match term with
              | Term.Const c -> c
              | Term.Var v ->
                (match Hashtbl.find_opt ctx.env v with
                | Some value -> value
                | None ->
                  invalid_arg "Engine: unbound variable in negated atom"))
            terms
        in
        if not (Database.mem t.db pred args) then exec (i + 1)
      | S_guard e -> if Expr.eval_bool ctx.env e then exec (i + 1)
      | S_assign (x, e) ->
        let value = Expr.eval ctx.env e in
        (match Hashtbl.find_opt ctx.env x with
        | Some bound -> if Value.equal bound value then exec (i + 1)
        | None ->
          Hashtbl.replace ctx.env x value;
          exec (i + 1);
          Hashtbl.remove ctx.env x)
  in
  exec 0

(* Book-keeping for every head emission: per-rule and per-predicate
   derivation counts plus the duplicate-suppression tally. *)
let record_derivation t cr pred added =
  let p = cr.c_prof in
  if added then begin
    t.s_derived <- t.s_derived + 1;
    p.Profile.r_derived <- p.Profile.r_derived + 1;
    match Hashtbl.find_opt t.pred_derived pred with
    | Some r -> incr r
    | None -> Hashtbl.add t.pred_derived pred (ref 1)
  end
  else begin
    t.s_duplicates <- t.s_duplicates + 1;
    p.Profile.r_duplicates <- p.Profile.r_duplicates + 1
  end

let top_producers ?(limit = 3) t =
  Hashtbl.fold (fun p r acc -> (p, !r) :: acc) t.pred_derived []
  |> List.sort (fun (pa, a) (pb, b) ->
         match compare b a with 0 -> String.compare pa pb | c -> c)
  |> List.filteri (fun i _ -> i < limit)

let limit_message t message =
  Printf.sprintf "%s at stratum %d, iteration %d%s" message t.s_stratum
    t.s_iteration
    (match top_producers t with
    | [] -> ""
    | top ->
      "; top producers: "
      ^ String.concat ", "
          (List.map (fun (p, n) -> Printf.sprintf "%s (%d new facts)" p n) top))

let check_fact_limit t =
  if Database.total t.db > t.config.max_facts then
    raise
      (Limit
         (limit_message t
            (Printf.sprintf "fact limit exceeded (%d facts)" t.config.max_facts)))

(* Cooperative cancellation: polled at stratum entry and at every
   fixpoint iteration boundary. The partial-progress snapshot is taken
   at raise time, so [facts_derived] always equals [stats.facts_derived]
   observed right after the interrupt. *)
let check_budget t budget =
  match budget with
  | None -> ()
  | Some b -> (
    match Budget.check b ~facts:t.s_derived with
    | None -> ()
    | Some reason ->
      Log.debug (fun m ->
          m "chase interrupted (%s) at stratum %d, iteration %d, %d facts"
            (Budget.reason_to_string reason)
            t.s_stratum t.s_iteration t.s_derived);
      raise
        (Interrupted
           {
             reason;
             stratum = t.s_stratum;
             iteration = t.s_iteration;
             facts_derived = t.s_derived;
           }))

(* Emit the heads of a plain (non-aggregate) rule under a complete body
   binding. Returns true when at least one fact was new. *)
let emit_plain t cr ctx =
  let rule = cr.rule in
  (* Existential variables: one null per (rule, frontier binding). *)
  let introduced =
    match cr.existentials with
    | [] -> []
    | existentials ->
      let key =
        string_of_int rule.Rule.id ^ "|" ^ env_key ctx.env cr.frontier
      in
      let assignment =
        match Hashtbl.find_opt t.skolem key with
        | Some assignment -> assignment
        | None ->
          let assignment =
            List.map (fun v -> (v, Ids.fresh_null t.ids)) existentials
          in
          Hashtbl.add t.skolem key assignment;
          (* The frontier binding is complete here (env_key above would
             have raised otherwise); remembering it per invented null
             gives every null a label-independent Skolem identity. *)
          let frontier_binding =
            List.map (fun fv -> (fv, Hashtbl.find ctx.env fv)) cr.frontier
          in
          List.iter
            (fun (v, value) ->
              match value with
              | Value.Null n ->
                Hashtbl.replace t.null_origins n
                  {
                    origin_rule = rule.Rule.id;
                    origin_var = v;
                    origin_frontier = frontier_binding;
                  }
              | _ -> ())
            assignment;
          cr.c_prof.Profile.r_nulls <-
            cr.c_prof.Profile.r_nulls + List.length assignment;
          assignment
      in
      assignment
  in
  List.iter (fun (v, value) -> Hashtbl.replace ctx.env v value) introduced;
  let prov =
    if t.config.track_provenance then
      Database.Derived
        {
          rule_id = rule.Rule.id;
          rule_label = rule.Rule.label;
          parents = List.rev ctx.parents;
        }
    else Database.Edb
  in
  let any_new = ref false in
  List.iter
    (fun atom ->
      let args = Array.map (Expr.eval ctx.env) atom.Atom.args in
      let added = Database.add t.db ~prov atom.Atom.pred args in
      record_derivation t cr atom.Atom.pred added;
      if added then any_new := true)
    rule.Rule.head;
  List.iter (fun (v, _) -> Hashtbl.remove ctx.env v) introduced;
  check_fact_limit t;
  !any_new

let contributor_key ctx contributors =
  let buf = Buffer.create 16 in
  List.iter
    (fun term ->
      let value =
        match term with
        | Term.Const c -> c
        | Term.Var v ->
          (match Hashtbl.find_opt ctx.env v with
          | Some value -> value
          | None -> invalid_arg "Engine: unbound contributor variable")
      in
      let s = Database.value_key value in
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s)
    contributors;
  Buffer.contents buf

let groups_of_rule t rule_id =
  match Hashtbl.find_opt t.agg_groups rule_id with
  | Some groups -> groups
  | None ->
    let groups = Hashtbl.create 64 in
    Hashtbl.add t.agg_groups rule_id groups;
    groups

(* Evaluate the post-aggregation phase (assignments and guards over the
   bound aggregate result) and, if every guard holds, emit the heads.
   [bindings] seeds the environment with the group's variables. *)
let emit_agg_head t cr bindings =
  let rule = cr.rule in
  let env = Hashtbl.create 16 in
  List.iter (fun (v, value) -> Hashtbl.replace env v value) bindings;
  let passes =
    Array.for_all
      (function
        | S_assign (x, e) ->
          Hashtbl.replace env x (Expr.eval env e);
          true
        | S_guard e -> Expr.eval_bool env e
        | S_atom _ | S_neg _ -> true)
      cr.post
  in
  if not passes then false
  else begin
    let prov =
      if t.config.track_provenance then
        Database.Derived
          { rule_id = rule.Rule.id; rule_label = rule.Rule.label; parents = [] }
      else Database.Edb
    in
    let any_new = ref false in
    List.iter
      (fun atom ->
        let args = Array.map (Expr.eval env) atom.Atom.args in
        let added = Database.add t.db ~prov atom.Atom.pred args in
        record_derivation t cr atom.Atom.pred added;
        if added then any_new := true)
      rule.Rule.head;
    check_fact_limit t;
    !any_new
  end

(* One full evaluation of an aggregate rule. For Bind rules, [finalize]
   emits every group at the end; for Test rules, groups that pass emit as
   soon as they pass. Returns true when new facts appeared. *)
let eval_agg_rule t cr ~delta_range ~plan_idx =
  let agg = Option.get cr.agg in
  let groups = groups_of_rule t cr.rule.Rule.id in
  let group_vars = cr.group_vars in
  let ctx = { env = Hashtbl.create 16; parents = [] } in
  let any_new = ref false in
  let on_binding () =
    let gkey = env_key ctx.env group_vars in
    let group =
      match Hashtbl.find_opt groups gkey with
      | Some group -> group
      | None ->
        let snapshot =
          List.map (fun v -> (v, Hashtbl.find ctx.env v)) group_vars
        in
        let group = { state = Aggregate.create agg.Rule.agg_op; snapshot } in
        Hashtbl.add groups gkey group;
        t.s_agg_groups <- t.s_agg_groups + 1;
        cr.c_prof.Profile.r_groups <- cr.c_prof.Profile.r_groups + 1;
        group
    in
    let ckey = contributor_key ctx agg.Rule.agg_contributors in
    let contribution = Expr.eval ctx.env agg.Rule.agg_arg in
    ignore (Aggregate.contribute group.state ~contributor:ckey contribution);
    (match agg.Rule.agg_result with
    | Rule.Test (op, rhs) ->
      let current = Aggregate.current group.state in
      let passes =
        Expr.eval_bool ctx.env
          (Expr.Binop (op, Expr.Const current, rhs))
      in
      if passes && emit_agg_head t cr group.snapshot then any_new := true
    | Rule.Bind _ -> ())
  in
  run_plan t cr.plans.(plan_idx) ~delta_range ~prof:cr.c_prof ctx ~on_binding;
  (match agg.Rule.agg_result with
  | Rule.Bind x ->
    Hashtbl.iter
      (fun _ group ->
        if Aggregate.contributors group.state > 0 then begin
          let bindings = (x, Aggregate.current group.state) :: group.snapshot in
          if emit_agg_head t cr bindings then any_new := true
        end)
      groups
  | Rule.Test _ -> ());
  !any_new

let eval_plain_rule t cr ~delta_range ~plan_idx =
  let ctx = { env = Hashtbl.create 16; parents = [] } in
  let any_new = ref false in
  run_plan t cr.plans.(plan_idx) ~delta_range ~prof:cr.c_prof ctx
    ~on_binding:(fun () -> if emit_plain t cr ctx then any_new := true);
  !any_new

(* Every rule evaluation goes through here: the profiler's per-rule self
   time and evaluation count come from this wrapper (plus the optional
   telemetry span when the global registry is armed). Rule evaluations
   never nest, so the measured wall time is pure self time. *)
let eval_timed cr f =
  let p = cr.c_prof in
  p.Profile.r_evals <- p.Profile.r_evals + 1;
  let t0 = Profile.now () in
  Fun.protect
    ~finally:(fun () -> p.Profile.r_time <- p.Profile.r_time +. (Profile.now () -. t0))
    (fun () -> Telemetry.span cr.c_span f)

(* ---- parallel evaluation ---------------------------------------------- *)

(* Parallel evaluation of a plain rule is split into phases so the
   result stays byte-identical to sequential evaluation (the full
   design and correctness argument live in docs/PARALLELISM.md):

   - phase 1 (parallel, read-only): the delta range is cut into
     contiguous chunks sized by the rule's cost model; each worker runs
     the join plan over its chunk against the frozen database into a
     reused [wscratch]. For existential-free rules the worker also
     evaluates the head atoms and their dedup keys — pure functions of
     the body binding — so the merge doesn't have to. Nothing is
     written to the database, the skolem memo, or the shared profiler.
   - phase 2a (parallel, read-only): precomputed head facts are sharded
     by key hash and classified against the frozen store: a candidate
     whose key is already present, or appears earlier in replay order,
     is a definitive duplicate. Duplicate verdicts are sound under
     merge interleaving because the store only ever gains keys.
   - phase 2b (single-threaded merge): the coordinator replays the
     buffered bindings in job order, then chunk order, then binding
     order — exactly the order sequential evaluation would have emitted
     them. Classified duplicates reduce to a counter bump; the rest
     insert via their precomputed key (still probing, so the
     classification only ever skips work, never changes outcomes).
     Rules with existentials replay through [emit_plain] as before, so
     skolemization stays sequential and deterministic. Insertion order,
     labelled null names, dedup outcomes and provenance are therefore
     identical to a sequential run.

   A (rule, plan) job is eligible only when it is {e snapshot-safe}:
   its head predicates do not intersect the predicates the plan reads
   outside its delta atom ([c_plan_reads]), because sequential
   evaluation lets a rule's inner scans see its own emissions live.
   Consecutive eligible jobs are batched greedily while no job reads a
   predicate an earlier job of the batch writes; aggregate rules and
   zero-atom rules always evaluate sequentially, as do batches whose
   estimated total work is below [min_parallel_scans]. *)

type par_job = { j_cr : compiled_rule; j_plan : int; j_lo : int; j_hi : int }

(* Cost-model feedback: observed scanned-facts-per-delta-fact of a
   completed evaluation, folded into the rule's EWMA with equal weight
   so the estimate tracks phase changes (an index appearing, a
   predicate saturating) within a couple of iterations. *)
let spd_update cr ~plan ~delta ~scanned =
  if delta > 0 then begin
    let observed = float_of_int scanned /. float_of_int delta in
    cr.c_spd.(plan) <- (0.5 *. cr.c_spd.(plan)) +. (0.5 *. observed)
  end

let job_est_scans j =
  float_of_int (j.j_hi - j.j_lo) *. j.j_cr.c_spd.(j.j_plan)

(* Per-worker budget poll (every 4096 scanned facts, via [run_plan]'s
   [poll] hook). The partial-progress snapshot reads only coordinator
   counters, which are frozen during phase 1, so concurrent workers
   raise identical interrupts. *)
let worker_poll t budget () =
  match budget with
  | None -> ()
  | Some b -> (
    match Budget.check b ~facts:t.s_derived with
    | None -> ()
    | Some reason ->
      raise
        (Interrupted
           {
             reason;
             stratum = t.s_stratum;
             iteration = t.s_iteration;
             facts_derived = t.s_derived;
           }))

(* Cut [lo, hi) into contiguous chunks sized by estimated join work:
   enough chunks that each carries ~[target_chunk_scans] scanned facts
   under the rule's cost model, floored at [min_chunk_facts] facts and
   capped at [domains * 4] chunks for load balancing. Chunk boundaries
   affect only scheduling — the merge replays chunks in range order, so
   any cut of the same delta yields byte-identical results. *)
let adaptive_chunks ~domains ~spd lo hi =
  let size = hi - lo in
  let by_cost =
    int_of_float
      (Float.ceil (float_of_int size *. spd /. float_of_int target_chunk_scans))
  in
  let by_floor = (size + min_chunk_facts - 1) / min_chunk_facts in
  let n = max 1 (min (min by_cost by_floor) (domains * 4)) in
  let base = size / n and rem = size mod n in
  List.init n (fun i ->
      let start = lo + (i * base) + min i rem in
      (start, start + base + if i < rem then 1 else 0))

let parallel_safe cr k =
  not (List.exists (fun p -> List.mem p cr.c_heads) cr.c_plan_reads.(k))

(* Phase 2a: classify every precomputed head fact of the batch as a
   definitive duplicate or a possible insert, before the merge touches
   the database. Candidates are flattened in replay order; verdicts go
   into a bytes array indexed by that order (the merge walks it with a
   cursor). The work is sharded by key hash so shards share nothing:
   each shard sees every candidate of its keys in replay order and
   marks a candidate [Dup] when its key is in the frozen store or an
   earlier same-shard candidate carries the same (pred, key).

   Soundness of a [Dup] verdict under merge interleaving: the store
   only ever gains keys, so "present before the merge" implies
   "present at replay time"; and an earlier same-key candidate has, by
   replay time, either inserted the key or been a duplicate of it —
   either way the key is present. Non-[Dup] candidates are merely
   *maybe* new: a skolem-rule emission replayed in between may have
   inserted the same fact, which is why the merge still probes them
   (via [Database.add_prekeyed]). Classification skips work; it never
   decides an insert. *)
let classify_batch t pool results =
  let total = ref 0 in
  Array.iter
    (function
      | Ok (ws, _) ->
        for k = 0 to ws.ws_n - 1 do
          total := !total + Array.length ws.ws_emits.(k).e_heads
        done
      | Error _ -> ())
    results;
  let n = !total in
  if n = 0 then Bytes.empty
  else begin
    let preds = Array.make n "" and keys = Array.make n "" in
    let i = ref 0 in
    Array.iter
      (function
        | Ok (ws, _) ->
          for k = 0 to ws.ws_n - 1 do
            Array.iter
              (fun h ->
                preds.(!i) <- h.h_pred;
                keys.(!i) <- h.h_key;
                incr i)
              ws.ws_emits.(k).e_heads
          done
        | Error _ -> ())
      results;
    let verdicts = Bytes.make n '\000' in
    (* '\001' = definitive duplicate, '\000' = maybe new *)
    let classify seen idx =
      let key = keys.(idx) in
      let pk = (preds.(idx), key) in
      if Hashtbl.mem seen pk || Database.mem_key t.db preds.(idx) ~key then
        Bytes.set verdicts idx '\001'
      else Hashtbl.add seen pk ()
    in
    if n >= dedup_parallel_floor && Task_pool.domains pool > 1 then begin
      (* Shard by key hash only (not pred): two preds sharing a key land
         in the same shard, where the (pred, key) table tells them
         apart. Built back-to-front so each bucket lists its candidate
         indexes in increasing replay order. *)
      let buckets = Array.make dedup_shards [] in
      for idx = n - 1 downto 0 do
        let s = Hashtbl.hash keys.(idx) land (dedup_shards - 1) in
        buckets.(s) <- idx :: buckets.(s)
      done;
      let tasks =
        Array.to_list buckets
        |> List.filter_map (fun idxs ->
               if idxs = [] then None
               else
                 Some
                   (fun () ->
                     let seen = Hashtbl.create 256 in
                     List.iter (classify seen) idxs))
        |> Array.of_list
      in
      (* run_all's completion latch publishes the disjoint [verdicts]
         writes to the coordinator. *)
      Array.iter
        (function Error e -> raise e | Ok () -> ())
        (Task_pool.run_all pool tasks)
    end
    else begin
      let seen = Hashtbl.create 256 in
      for idx = 0 to n - 1 do
        classify seen idx
      done
    end;
    verdicts
  end

let run_parallel_batch t pool ~budget jobs =
  (* One evaluation per job, accounted up front so [r_evals] matches the
     sequential count deterministically. *)
  List.iter
    (fun j ->
      let p = j.j_cr.c_prof in
      p.Profile.r_evals <- p.Profile.r_evals + 1)
    jobs;
  let domains = Task_pool.domains pool in
  let chunks =
    List.concat_map
      (fun j ->
        List.map
          (fun (lo, hi) -> (j, lo, hi))
          (adaptive_chunks ~domains ~spd:j.j_cr.c_spd.(j.j_plan) j.j_lo j.j_hi))
      jobs
  in
  let tasks =
    Array.of_list
      (List.map
         (fun (j, lo, hi) () ->
           Faultpoint.hit "engine.chunk";
           worker_poll t budget ();
           let t0 = Profile.now () in
           let cr = j.j_cr in
           let ws = Joinstate.acquire t.scratch in
           try
             let ctx = ws.ws_ctx in
             let precompute = cr.existentials = [] in
             run_plan t cr.plans.(j.j_plan) ~delta_range:(Some (lo, hi))
               ~prof:ws.ws_prof ~poll:(worker_poll t budget) ctx
               ~on_binding:(fun () ->
                 let heads =
                   if not precompute then [||]
                   else
                     Array.map
                       (fun atom ->
                         let args =
                           Array.map (Expr.eval ctx.env) atom.Atom.args
                         in
                         {
                           h_pred = atom.Atom.pred;
                           h_args = args;
                           h_key = Database.args_key args;
                         })
                       cr.c_head_atoms
                 in
                 let vals =
                   if precompute then [||]
                   else
                     Array.map (fun v -> Hashtbl.find ctx.env v) cr.c_capture
                 in
                 ws_push ws
                   { e_vals = vals; e_parents = ctx.parents; e_heads = heads });
             let elapsed = Profile.now () -. t0 in
             (* Recorded on the worker domain into its registry shard. *)
             Telemetry.observe "engine.chunk.size" (float_of_int (hi - lo));
             Telemetry.observe "engine.chunk.scanned"
               (float_of_int ws.ws_prof.Profile.r_scanned);
             Telemetry.observe "engine.chunk.join" elapsed;
             (ws, elapsed)
           with e ->
             Joinstate.release t.scratch ws;
             raise e)
         chunks)
  in
  let results = Task_pool.run_all pool tasks in
  (* Fail before any merge: a worker error (typed fault, budget
     interrupt) leaves the database untouched by this batch, and the
     first task in submission order wins deterministically. Successful
     tasks' scratch goes back to the bank first. *)
  if Array.exists (function Error _ -> true | Ok _ -> false) results then begin
    Array.iter
      (function Ok (ws, _) -> Joinstate.release t.scratch ws | Error _ -> ())
      results;
    Array.iter (function Error e -> raise e | Ok _ -> ()) results
  end;
  let chunks = Array.of_list chunks in
  (* Phase 2: the serial tail that caps parallel speedup, so it gets
     its own span and histogram. Classification (2a) runs before the
     first insertion so every [Dup] verdict is sound at replay time. *)
  Telemetry.span "engine.merge" (fun () ->
      let t0 = Profile.now () in
      let verdicts = classify_batch t pool results in
      let cursor = ref 0 in
      let merge_ctx = { env = Hashtbl.create 16; parents = [] } in
      Array.iteri
        (fun i (j, lo, hi) ->
          match results.(i) with
          | Error _ -> assert false
          | Ok (ws, elapsed) ->
            let cr = j.j_cr in
            let p = cr.c_prof in
            let wp = ws.ws_prof in
            p.Profile.r_time <- p.Profile.r_time +. elapsed;
            p.Profile.r_scanned <- p.Profile.r_scanned + wp.Profile.r_scanned;
            p.Profile.r_matched <- p.Profile.r_matched + wp.Profile.r_matched;
            p.Profile.r_bindings <-
              p.Profile.r_bindings + wp.Profile.r_bindings;
            spd_update cr ~plan:j.j_plan ~delta:(hi - lo)
              ~scanned:wp.Profile.r_scanned;
            if cr.existentials = [] then
              for k = 0 to ws.ws_n - 1 do
                let e = ws.ws_emits.(k) in
                let prov =
                  if t.config.track_provenance then
                    Database.Derived
                      {
                        rule_id = cr.rule.Rule.id;
                        rule_label = cr.rule.Rule.label;
                        parents = List.rev e.e_parents;
                      }
                  else Database.Edb
                in
                Array.iter
                  (fun h ->
                    let added =
                      Bytes.get verdicts !cursor = '\000'
                      && Database.add_prekeyed t.db ~prov ~key:h.h_key
                           h.h_pred h.h_args
                    in
                    incr cursor;
                    record_derivation t cr h.h_pred added)
                  e.e_heads;
                check_fact_limit t
              done
            else
              for k = 0 to ws.ws_n - 1 do
                let e = ws.ws_emits.(k) in
                Hashtbl.reset merge_ctx.env;
                Array.iteri
                  (fun vi v ->
                    Hashtbl.replace merge_ctx.env cr.c_capture.(vi) v)
                  e.e_vals;
                merge_ctx.parents <- e.e_parents;
                ignore (emit_plain t cr merge_ctx)
              done;
            Joinstate.release t.scratch ws)
        chunks;
      Telemetry.observe "engine.merge.replay" (Profile.now () -. t0))

(* The parallel counterpart of the sequential plain-rule pass of
   [run_stratum]: walk the same (rule, delta plan) jobs in the same
   order, batching consecutive snapshot-safe jobs and flushing a batch
   whenever the next job must observe its predecessors' emissions. *)
let run_plain_rules_parallel t pool ~budget ~iteration ~watermark ~snap
    plain_rules =
  let seq_eval cr ~delta_range ~plan_idx =
    let scanned_before = cr.c_prof.Profile.r_scanned in
    eval_timed cr (fun () ->
        ignore (eval_plain_rule t cr ~delta_range ~plan_idx));
    (* Sequential evaluations feed the cost model too, so a rule that
       never parallelizes still has a current estimate when its delta
       finally grows. *)
    match delta_range with
    | Some (lo, hi) ->
      spd_update cr ~plan:plan_idx ~delta:(hi - lo)
        ~scanned:(cr.c_prof.Profile.r_scanned - scanned_before)
    | None -> ()
  in
  let batch = ref [] (* reversed *) in
  let batch_heads = ref [] in
  let flush () =
    let jobs = List.rev !batch in
    batch := [];
    batch_heads := [];
    match jobs with
    | [] -> ()
    | jobs ->
      (* Estimated total join work decides whether the batch is worth
         the fork-join + capture/replay machinery at all: tiny batches
         (the long tail of most fixpoints) run sequentially and dodge
         the constant factors entirely. *)
      let est = List.fold_left (fun acc j -> acc +. job_est_scans j) 0.0 jobs in
      if est < float_of_int min_parallel_scans then
        List.iter
          (fun j ->
            seq_eval j.j_cr
              ~delta_range:(Some (j.j_lo, j.j_hi))
              ~plan_idx:j.j_plan)
          jobs
      else run_parallel_batch t pool ~budget jobs
  in
  List.iter
    (fun cr ->
      let n = Array.length cr.pos_atoms in
      if n = 0 then begin
        if iteration = 1 then begin
          flush ();
          seq_eval cr ~delta_range:None ~plan_idx:n
        end
      end
      else
        for k = 0 to n - 1 do
          let pred = fst cr.pos_atoms.(k) in
          let lo = watermark pred and hi = snap pred in
          if lo < hi then begin
            Telemetry.observe "engine.iteration.delta" (float_of_int (hi - lo));
            if parallel_safe cr k then begin
              if
                List.exists
                  (fun p -> List.mem p !batch_heads)
                  cr.c_plan_reads.(k)
              then flush ();
              batch := { j_cr = cr; j_plan = k; j_lo = lo; j_hi = hi } :: !batch;
              batch_heads := cr.c_heads @ !batch_heads
            end
            else begin
              flush ();
              seq_eval cr ~delta_range:(Some (lo, hi)) ~plan_idx:k
            end
          end
        done)
    plain_rules;
  flush ()

let is_bind_rule cr =
  match cr.agg with
  | Some { agg_result = Rule.Bind _; _ } -> true
  | Some { agg_result = Rule.Test _; _ } | None -> false

let is_test_rule cr =
  match cr.agg with
  | Some { agg_result = Rule.Test _; _ } -> true
  | Some { agg_result = Rule.Bind _; _ } | None -> false

let run_stratum ?budget ?seed t index rules =
  t.s_stratum <- index;
  t.s_iteration <- 0;
  t.s_strata_run <- t.s_strata_run + 1;
  Faultpoint.hit "engine.stratum";
  check_budget t budget;
  (* Incremental continuation: with a [seed], the stratum resumes the
     previous run's fixpoint. That is only sound while every
     non-monotone input is exactly as the previous run left it — a
     grown guard predicate means facts derived through [not p(..)] or a
     saturated aggregate binding may no longer hold, so the whole
     continuation is abandoned (the caller falls back to a from-scratch
     chase; this engine's database may hold partial results from
     already-continued strata and must be discarded). *)
  (match seed with
  | None -> ()
  | Some s ->
    List.iter
      (fun (p, size) ->
        let cur = Database.pred_size t.db p in
        if cur <> size then
          raise
            (Invalidated
               (Printf.sprintf
                  "stratum %d: predicate %s has %d facts, snapshot expects %d \
                   (negated or aggregated input changed)"
                  index p cur size)))
      s.Snapshot.sn_guards);
  let incremental = seed <> None in
  let facts_at_entry = Database.total t.db in
  let duplicates_at_entry = t.s_duplicates in
  let compiled = List.map (fun r -> Hashtbl.find t.compiled r.Rule.id) rules in
  List.iter (fun cr -> cr.c_prof.Profile.r_stratum <- index) compiled;
  (* A continued stratum skips aggregate-binding rules (their inputs are
     unchanged by the guard check, so their output is already in the
     database) and zero-atom rules (no positive atoms — their heads were
     emitted by the previous run and would only come back as
     duplicates). *)
  let bind_rules = if incremental then [] else List.filter is_bind_rule compiled in
  let test_rules = List.filter is_test_rule compiled in
  let plain_rules =
    List.filter (fun cr -> not (is_bind_rule cr || is_test_rule cr)) compiled
  in
  let plain_rules =
    if incremental then
      List.filter (fun cr -> Array.length cr.pos_atoms > 0) plain_rules
    else plain_rules
  in
  let iteration = ref 0 in
  let stratum_start = Profile.now () in
  Fun.protect ~finally:(fun () ->
      Profile.stratum_add t.prof index
        ~time:(Profile.now () -. stratum_start)
        ~iterations:!iteration)
  @@ fun () ->
  (* Aggregate-binding rules: inputs are saturated, evaluate once. *)
  List.iter
    (fun cr ->
      let n = Array.length cr.pos_atoms in
      eval_timed cr (fun () ->
          ignore (eval_agg_rule t cr ~delta_range:None ~plan_idx:n)))
    bind_rules;
  (* Fixpoint for the rest. A seeded [seen] table makes the first
     iteration's deltas exactly the facts that appeared since the
     previous run's fixpoint. *)
  let seen = Hashtbl.create 16 in
  (match seed with
  | None -> ()
  | Some s ->
    List.iter (fun (p, w) -> Hashtbl.replace seen p w) s.Snapshot.sn_seen);
  let watermark pred =
    match Hashtbl.find_opt seen pred with Some w -> w | None -> 0
  in
  let continue = ref (plain_rules <> [] || test_rules <> []) in
  while !continue do
    incr iteration;
    t.s_iteration <- !iteration;
    t.s_iterations <- t.s_iterations + 1;
    Faultpoint.hit "engine.iterate";
    check_budget t budget;
    if !iteration > t.config.max_iterations then
      raise
        (Limit
           (limit_message t
              (Printf.sprintf "iteration limit exceeded (%d)"
                 t.config.max_iterations)));
    let derived_before = t.s_derived in
    let duplicates_before = t.s_duplicates in
    let before = Database.total t.db in
    (* Snapshot the frontier: facts in [watermark, snapshot) are the delta. *)
    let snapshot = Hashtbl.create 16 in
    let preds_of cr = cr.c_preds in
    Telemetry.span "engine.snapshot" (fun () ->
        List.iter
          (fun cr ->
            List.iter
              (fun p ->
                if not (Hashtbl.mem snapshot p) then
                  Hashtbl.add snapshot p (Database.pred_size t.db p))
              (preds_of cr))
          (plain_rules @ test_rules));
    let snap pred =
      match Hashtbl.find_opt snapshot pred with Some s -> s | None -> 0
    in
    (match t.pool with
    | Some pool ->
      run_plain_rules_parallel t pool ~budget ~iteration:!iteration ~watermark
        ~snap plain_rules
    | None ->
      List.iter
        (fun cr ->
          let n = Array.length cr.pos_atoms in
          if n = 0 then begin
            if !iteration = 1 then
              eval_timed cr (fun () ->
                  ignore (eval_plain_rule t cr ~delta_range:None ~plan_idx:n))
          end
          else
            for k = 0 to n - 1 do
              let pred = fst cr.pos_atoms.(k) in
              let lo = watermark pred and hi = snap pred in
              if lo < hi then begin
                Telemetry.observe "engine.iteration.delta"
                  (float_of_int (hi - lo));
                eval_timed cr (fun () ->
                    ignore
                      (eval_plain_rule t cr ~delta_range:(Some (lo, hi))
                         ~plan_idx:k))
              end
            done)
        plain_rules);
    List.iter
      (fun cr ->
        (* The unconditional first evaluation only matters for a cold
           start (empty [seen]); a continued stratum re-tests only on a
           real delta — its persistent contributor tables already hold
           every previous contribution. *)
        let dirty =
          ((not incremental) && !iteration = 1)
          || List.exists (fun p -> watermark p < snap p) (preds_of cr)
        in
        if dirty then
          let n = Array.length cr.pos_atoms in
          eval_timed cr (fun () ->
              ignore (eval_agg_rule t cr ~delta_range:None ~plan_idx:n)))
      test_rules;
    Hashtbl.iter (fun pred s -> Hashtbl.replace seen pred s) snapshot;
    Telemetry.observe "engine.iteration.derived"
      (float_of_int (t.s_derived - derived_before));
    Telemetry.observe "engine.iteration.duplicates"
      (float_of_int (t.s_duplicates - duplicates_before));
    let after = Database.total t.db in
    (* Stop when this pass derived nothing new and every delta was consumed:
       any fact born during the pass is above the stored watermark and will
       be someone's delta next pass. *)
    let frontier_pending =
      List.exists
        (fun cr ->
          List.exists
            (fun p -> watermark p < Database.pred_size t.db p)
            (preds_of cr))
        (plain_rules @ test_rules)
    in
    continue := after > before || frontier_pending
  done;
  Log.debug (fun m ->
      m "stratum %d: %d rules, fixpoint in %d iterations, %d facts (+%d new, %d duplicates suppressed)"
        index (List.length rules) !iteration (Database.total t.db)
        (Database.total t.db - facts_at_entry)
        (t.s_duplicates - duplicates_at_entry))

let rule_derivations t =
  let acc = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ cr ->
      let label = cr.rule.Rule.label in
      let cur = try Hashtbl.find acc label with Not_found -> (0, 0) in
      Hashtbl.replace acc label
        ( fst cur + cr.c_prof.Profile.r_derived,
          snd cur + cr.c_prof.Profile.r_duplicates ))
    t.compiled;
  Hashtbl.fold (fun label (d, _) acc -> (label, d) :: acc) acc []
  |> List.sort (fun (la, a) (lb, b) ->
         match compare b a with 0 -> String.compare la lb | c -> c)

let pred_derivations t =
  Hashtbl.fold (fun p r acc -> (p, !r) :: acc) t.pred_derived []
  |> List.sort (fun (pa, a) (pb, b) ->
         match compare b a with 0 -> String.compare pa pb | c -> c)

let stats t =
  {
    strata_run = t.s_strata_run;
    iterations = t.s_iterations;
    facts_derived = t.s_derived;
    duplicates_suppressed = t.s_duplicates;
    agg_groups_created = t.s_agg_groups;
    nulls_created = Ids.count t.ids;
  }

(* Mirror the always-on chase statistics into the global telemetry
   registry. Counters are {e set} to their absolute values, so re-running
   an engine (or several engines in one process) never double-counts its
   own totals — the last run's numbers win per counter name. *)
let publish_telemetry t =
  if Telemetry.enabled () then begin
    let set name v = Telemetry.Counter.set (Telemetry.Counter.v name) v in
    set "engine.facts.derived" t.s_derived;
    set "engine.facts.duplicate" t.s_duplicates;
    set "engine.facts.total" (Database.total t.db);
    set "engine.nulls.created" (Ids.count t.ids);
    set "engine.agg.groups" t.s_agg_groups;
    set "engine.iterations" t.s_iterations;
    set "engine.strata" (Array.length t.strat.Stratify.strata);
    if t.config.track_provenance then set "engine.provenance.nodes" t.s_derived;
    let by_label = Hashtbl.create 16 in
    Hashtbl.iter
      (fun _ cr ->
        let cur =
          try Hashtbl.find by_label cr.c_span with Not_found -> (0, 0)
        in
        Hashtbl.replace by_label cr.c_span
          ( fst cur + cr.c_prof.Profile.r_derived,
            snd cur + cr.c_prof.Profile.r_duplicates ))
      t.compiled;
    Hashtbl.iter
      (fun name (d, dup) ->
        set (name ^ ".derived") d;
        set (name ^ ".duplicates") dup)
      by_label;
    Hashtbl.iter
      (fun pred r -> set ("engine.pred." ^ pred ^ ".derived") !r)
      t.pred_derived
  end

let run ?budget t =
  let t0 = Profile.now () in
  Fun.protect
    ~finally:(fun () ->
      Profile.add_run_time t.prof (Profile.now () -. t0);
      (* publish whatever was derived even when the run is interrupted:
         degraded reports are built from these partial counters *)
      publish_telemetry t)
    (fun () ->
      Telemetry.span "engine.run" (fun () ->
          Array.iteri
            (fun i rules ->
              Telemetry.span ("engine.stratum." ^ string_of_int i) (fun () ->
                  run_stratum ?budget t i rules))
            t.strat.Stratify.strata))

(* ---- incremental re-evaluation ---------------------------------------- *)

let snapshot t =
  let sizes preds = List.map (fun p -> (p, Database.pred_size t.db p)) preds in
  let strata =
    Array.map
      (fun rules ->
        let compiled =
          List.map (fun r -> Hashtbl.find t.compiled r.Rule.id) rules
        in
        (* Watermarks for every predicate the fixpoint loop scans
           semi-naively (positive atoms of plain and aggregate-test
           rules); guard sizes for every predicate whose growth breaks
           the stratum's fixpoint: negated atoms anywhere, and the
           positive inputs of aggregate-binding rules (those evaluate
           once, over saturated inputs). *)
        let seen_preds =
          List.concat_map
            (fun cr -> if is_bind_rule cr then [] else cr.c_preds)
            compiled
          |> List.sort_uniq compare
        in
        let guard_preds =
          List.concat_map
            (fun cr ->
              let negated =
                List.filter_map
                  (function p, `Neg -> Some p | _, `Pos -> None)
                  (Rule.body_predicates cr.rule)
              in
              if is_bind_rule cr then cr.c_preds @ negated else negated)
            compiled
          |> List.sort_uniq compare
        in
        { Snapshot.sn_seen = sizes seen_preds; sn_guards = sizes guard_preds })
      t.strat.Stratify.strata
  in
  { Snapshot.sn_strata = strata; sn_total = Database.total t.db }

let run_incremental ?budget ~snapshot:(snap : Snapshot.t) t =
  if
    Array.length snap.Snapshot.sn_strata
    <> Array.length t.strat.Stratify.strata
  then
    raise
      (Invalidated
         (Printf.sprintf "snapshot covers %d strata, the program has %d"
            (Array.length snap.Snapshot.sn_strata)
            (Array.length t.strat.Stratify.strata)));
  let t0 = Profile.now () in
  Fun.protect
    ~finally:(fun () ->
      Profile.add_run_time t.prof (Profile.now () -. t0);
      publish_telemetry t)
    (fun () ->
      Telemetry.span "engine.run_incremental" (fun () ->
          Array.iteri
            (fun i rules ->
              Telemetry.span ("engine.stratum." ^ string_of_int i) (fun () ->
                  run_stratum ?budget ~seed:snap.Snapshot.sn_strata.(i) t i
                    rules))
            t.strat.Stratify.strata));
  snapshot t

let null_origin t label = Hashtbl.find_opt t.null_origins label

let profile t = t.prof

let profile_report t = Profile.report t.prof

let facts t pred = Database.facts t.db pred

let database t = t.db

let explain ?max_depth t pred args = Provenance.explain ?max_depth t.db pred args

let nulls_created t = Ids.count t.ids
