(** Canonical chase output: the database rendered modulo labelled-null
    renaming and insertion order.

    An incremental continuation ({!Engine.run_incremental}) derives the
    same {e set} of facts as a from-scratch chase over the unioned
    input, but may insert them in a different order and under different
    null labels. {!of_engine} renders every invented null as the Skolem
    term recorded by {!Engine.null_origin} — [sk(rule, var, frontier)],
    recursively — and sorts the fact lines, so byte-equality of two
    canonical forms is exactly fact-set equality modulo null renaming.
    Input nulls (labels present in the data) render as [#n]: their
    labels are data, not chase bookkeeping. *)

val of_engine : Engine.t -> string
(** One sorted line per fact, [pred(type:value,...)], newline-terminated.
    Scalars are type-tagged (like {!Database.value_key}), collections
    re-sorted under the canonical null naming. Intended for saturated,
    quiescent engines. *)
