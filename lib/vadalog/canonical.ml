(* Canonical rendering of a saturated engine's database, modulo
   labelled-null renaming.

   Two chases that derive the same facts can assign different labels to
   "the same" invented null — an incremental continuation numbers its
   new nulls after the previous run's counter, a from-scratch chase over
   the unioned facts numbers them in its own derivation order — and can
   insert facts in different orders. The canonical form erases both
   differences: every invented null renders as the Skolem term it stands
   for (recursively, since frontier values may be nulls themselves), and
   the fact lines are sorted. Byte-equality of two canonical forms is
   therefore exactly "same fact set modulo null renaming", which is the
   equivalence the incremental evaluator guarantees. *)

module Value = Vadasa_base.Value

let rec render_value buf origin memo (v : Value.t) =
  match v with
  | Value.Null n -> Buffer.add_string buf (null_name origin memo n)
  | Value.Pair (a, b) ->
    Buffer.add_char buf '(';
    render_value buf origin memo a;
    Buffer.add_char buf ',';
    render_value buf origin memo b;
    Buffer.add_char buf ')'
  | Value.Coll elements ->
    (* Collections are kept canonical by [Value.compare], which orders
       nulls by label — a renaming could reorder them. Sorting the
       rendered elements restores a label-independent order. *)
    let rendered =
      List.map
        (fun e ->
          let b = Buffer.create 16 in
          render_value b origin memo e;
          Buffer.contents b)
        elements
      |> List.sort String.compare
    in
    Buffer.add_char buf '{';
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buf ';';
        Buffer.add_string buf s)
      rendered;
    Buffer.add_char buf '}'
  | scalar ->
    (* Type-tagged like [Database.value_key], so int 1, float 1. and
       string "1" stay distinct. *)
    Buffer.add_string buf (Value.type_name scalar);
    Buffer.add_char buf ':';
    Buffer.add_string buf (Value.to_string scalar)

and null_name origin memo n =
  match Hashtbl.find_opt memo n with
  | Some s -> s
  | None ->
    let s =
      match (origin n : Engine.null_origin option) with
      | None ->
        (* A null the chase did not invent arrived in the input; its
           label is data and renders as-is. *)
        "#" ^ string_of_int n
      | Some { Engine.origin_rule; origin_var; origin_frontier } ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf "sk(";
        Buffer.add_string buf (string_of_int origin_rule);
        Buffer.add_char buf ',';
        Buffer.add_string buf origin_var;
        List.iter
          (fun (fv, fval) ->
            Buffer.add_char buf ',';
            Buffer.add_string buf fv;
            Buffer.add_char buf '=';
            render_value buf origin memo fval)
          origin_frontier;
        Buffer.add_char buf ')';
        Buffer.contents buf
    in
    Hashtbl.add memo n s;
    s

let of_engine engine =
  let db = Engine.database engine in
  let origin n = Engine.null_origin engine n in
  let memo = Hashtbl.create 64 in
  let lines = ref [] in
  List.iter
    (fun pred ->
      Database.iter_pred db pred (fun fact ->
          let buf = Buffer.create 64 in
          Buffer.add_string buf pred;
          Buffer.add_char buf '(';
          Array.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf ',';
              render_value buf origin memo v)
            fact;
          Buffer.add_char buf ')';
          lines := Buffer.contents buf :: !lines))
    (Database.predicates db);
  let sorted = List.sort String.compare !lines in
  String.concat "\n" sorted ^ "\n"
