module Value = Vadasa_base.Value

type provenance =
  | Edb
  | Derived of {
      rule_id : int;
      rule_label : string;
      parents : (string * Value.t array) list;
    }

let value_key v = Value.type_name v ^ "\x01" ^ Value.to_string v

let args_key args =
  let buf = Buffer.create 32 in
  Array.iter
    (fun v ->
      let s = value_key v in
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s)
    args;
  Buffer.contents buf

(* Positional indexes are built lazily on the first [lookup] over a
   position. Publication must be safe under concurrent readers (the
   server shares quiescent databases across domains): each index table
   is built fully before it becomes reachable, and the position → table
   map is an immutable value swapped in with a compare-and-set, so a
   reader either sees no index (and builds its own candidate) or a
   complete one — never a half-built table. See the thread-safety
   contract in [database.mli]/[engine.mli]. *)
module Index_map = Map.Make (Int)

type index = (string, int list ref) Hashtbl.t

type pred_store = {
  mutable data : Value.t array array;
  mutable size : int;
  keys : (string, int) Hashtbl.t;  (* fact key -> insertion index *)
  mutable prov : provenance array;
  indexes : index Index_map.t Atomic.t;
}

type t = {
  preds : (string, pred_store) Hashtbl.t;
  mutable total : int;
  track_provenance : bool;
}

let create ?(track_provenance = true) () =
  { preds = Hashtbl.create 64; total = 0; track_provenance }

let store t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some s -> s
  | None ->
    let s =
      {
        data = [||];
        size = 0;
        keys = Hashtbl.create 256;
        prov = [||];
        indexes = Atomic.make Index_map.empty;
      }
    in
    Hashtbl.add t.preds pred s;
    s

let grow s =
  let cap = Array.length s.data in
  if s.size >= cap then begin
    let cap' = max 16 (2 * cap) in
    let data' = Array.make cap' [||] in
    Array.blit s.data 0 data' 0 s.size;
    s.data <- data';
    let prov' = Array.make cap' Edb in
    Array.blit s.prov 0 prov' 0 s.size;
    s.prov <- prov'
  end

(* Maintaining existing indexes on insert is writer-side work: [add] is
   only legal from the single mutating domain (see the contract). *)
let index_insert s pos v idx =
  match Index_map.find_opt pos (Atomic.get s.indexes) with
  | None -> ()
  | Some table ->
    let k = value_key v in
    (match Hashtbl.find_opt table k with
    | Some cell -> cell := idx :: !cell
    | None -> Hashtbl.add table k (ref [ idx ]))

(* [key] must equal [args_key args]; the parallel chase's workers
   compute it off the writer domain so the merge replay doesn't. *)
let add_prekeyed t ?(prov = Edb) ~key pred args =
  let s = store t pred in
  if Hashtbl.mem s.keys key then false
  else begin
    grow s;
    let idx = s.size in
    s.data.(idx) <- args;
    if t.track_provenance then s.prov.(idx) <- prov;
    Hashtbl.add s.keys key idx;
    s.size <- idx + 1;
    t.total <- t.total + 1;
    Array.iteri (fun pos v -> index_insert s pos v idx) args;
    true
  end

let add t ?prov pred args = add_prekeyed t ?prov ~key:(args_key args) pred args

let mem t pred args =
  match Hashtbl.find_opt t.preds pred with
  | None -> false
  | Some s -> Hashtbl.mem s.keys (args_key args)

let mem_key t pred ~key =
  match Hashtbl.find_opt t.preds pred with
  | None -> false
  | Some s -> Hashtbl.mem s.keys key

let pred_size t pred =
  match Hashtbl.find_opt t.preds pred with None -> 0 | Some s -> s.size

let nth t pred i =
  let s = store t pred in
  if i < 0 || i >= s.size then invalid_arg "Database.nth: out of bounds";
  s.data.(i)

let facts t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s -> List.init s.size (fun i -> s.data.(i))

let iter_pred t pred f =
  match Hashtbl.find_opt t.preds pred with
  | None -> ()
  | Some s ->
    for i = 0 to s.size - 1 do
      f s.data.(i)
    done

let build_index s pos =
  let table = Hashtbl.create (max 16 s.size) in
  for i = 0 to s.size - 1 do
    let args = s.data.(i) in
    if pos < Array.length args then begin
      let k = value_key args.(pos) in
      match Hashtbl.find_opt table k with
      | Some cell -> cell := i :: !cell
      | None -> Hashtbl.add table k (ref [ i ])
    end
  done;
  table

(* Publish a fully-built candidate table. On a CAS race the loser
   re-reads: if another domain published the position first its table
   wins (ours is discarded), keeping exactly one live index per
   position. *)
let rec publish_index s pos table =
  let m = Atomic.get s.indexes in
  match Index_map.find_opt pos m with
  | Some existing -> existing
  | None ->
    if Atomic.compare_and_set s.indexes m (Index_map.add pos table m) then table
    else publish_index s pos table

let lookup t pred ~pos v =
  match Hashtbl.find_opt t.preds pred with
  | None -> []
  | Some s ->
    let table =
      match Index_map.find_opt pos (Atomic.get s.indexes) with
      | Some table -> table
      | None -> publish_index s pos (build_index s pos)
    in
    (match Hashtbl.find_opt table (value_key v) with
    | Some cell -> List.rev !cell
    | None -> [])

(* With a pool, each missing position's index is built as its own task
   — index construction over a quiescent store is read-only until the
   CAS publication, which tolerates concurrent builders by design. *)
let build_all_indexes ?pool t pred =
  match Hashtbl.find_opt t.preds pred with
  | None -> ()
  | Some s ->
    let arity = if s.size = 0 then 0 else Array.length s.data.(0) in
    let missing = ref [] in
    for pos = arity - 1 downto 0 do
      if not (Index_map.mem pos (Atomic.get s.indexes)) then
        missing := pos :: !missing
    done;
    let build pos = ignore (publish_index s pos (build_index s pos)) in
    (match (pool, !missing) with
    | Some pool, (_ :: _ :: _ as positions)
      when Vadasa_base.Task_pool.domains pool > 1 ->
      let tasks =
        Array.of_list (List.map (fun pos () -> build pos) positions)
      in
      Array.iter
        (function Error e -> raise e | Ok () -> ())
        (Vadasa_base.Task_pool.run_all pool tasks)
    | _, positions -> List.iter build positions)

let total t = t.total

let predicates t =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.preds [])

let provenance_of t pred args =
  if not t.track_provenance then None
  else
    match Hashtbl.find_opt t.preds pred with
    | None -> None
    | Some s ->
      (match Hashtbl.find_opt s.keys (args_key args) with
      | None -> None
      | Some idx -> Some s.prov.(idx))
