(** Chase profiler: per-rule and per-stratum cost attribution.

    The engine owns one {!t} per instance and bumps the mutable fields
    of each rule's {!rule} accumulator directly on the hot path — plain
    field writes, no hashing — so profiling is always on and costs two
    clock reads per rule evaluation plus integer bumps. {!report}
    snapshots the accumulators into a hotspot report ranked by self
    time, renderable as text ({!to_text}) or JSON ({!to_json}).

    Self time is exact by construction: rule evaluations never nest
    (one rule's plan never invokes another rule), so the time measured
    around each evaluation is the rule's own. Whatever the run spends
    outside rule evaluations (delta snapshots, watermark upkeep,
    stratification glue) appears as [other_time].

    See [docs/OBSERVABILITY.md] for the counter definitions and the
    [vadasa profile] subcommand built on this module. *)

type rule = {
  r_label : string;
  mutable r_stratum : int;  (** stratum the rule last evaluated in *)
  mutable r_evals : int;  (** plan executions (per delta atom per iteration) *)
  mutable r_time : float;  (** self seconds across all evaluations *)
  mutable r_scanned : int;  (** candidate facts visited by body atoms *)
  mutable r_matched : int;  (** candidates that unified with their atom *)
  mutable r_bindings : int;  (** complete body bindings reached *)
  mutable r_derived : int;  (** new facts added by the head *)
  mutable r_duplicates : int;  (** head emissions already in the store *)
  mutable r_nulls : int;  (** labelled nulls invented for existentials *)
  mutable r_groups : int;  (** aggregate groups created (group churn) *)
}
(** Engine-facing accumulator. The fields are exposed mutable so the
    engine's inner loops can bump them without a function call. *)

type t

val create : unit -> t

val register : t -> label:string -> rule
(** New accumulator for a rule, remembered by the profile. Labels are
    not required to be unique; each registration gets its own row. *)

val now : unit -> float
(** The profiler's clock (wall seconds), shared with the engine so rule
    and run timings are commensurable. *)

val stratum_add : t -> int -> time:float -> iterations:int -> unit
(** Accumulate one stratum evaluation (wall time and fixpoint
    iterations) under the stratum index. *)

val add_run_time : t -> float -> unit
(** Accumulate the wall time of one full {!Engine.run}. *)

val rules : t -> rule list
(** Registered accumulators, registration order. *)

(** {2 Reports} *)

type row = {
  row_label : string;
  row_stratum : int;
  row_evals : int;
  row_time : float;  (** self seconds *)
  row_share : float;  (** [row_time /. run_time] (0 when no run time) *)
  row_scanned : int;
  row_matched : int;
  row_selectivity : float;  (** [matched /. scanned] (0 when nothing scanned) *)
  row_bindings : int;
  row_derived : int;
  row_duplicates : int;
  row_emitted : int;  (** [derived + duplicates] *)
  row_nulls : int;
  row_groups : int;
}

type stratum_row = {
  st_index : int;
  st_time : float;
  st_iterations : int;
  st_rule_time : float;  (** Σ self time of rules evaluated in it *)
}

type report = {
  rows : row list;  (** ranked by self time, descending *)
  strata : stratum_row list;  (** by index, ascending *)
  run_time : float;  (** wall seconds of the enclosing run(s) *)
  rule_time : float;  (** Σ row self times *)
  other_time : float;  (** [run_time -. rule_time], clamped at 0 *)
}

val report : t -> report

val to_text : ?top:int -> report -> string
(** Hotspot table. [top] bounds the number of rule rows printed
    (default: all); the footer always accounts for every rule. *)

val to_json : report -> Vadasa_telemetry.Telemetry.Json.t
(** Versioned object: [{version; run_s; rule_s; other_s; rules; strata}]
    with one object per rule row (keys mirror the {!row} fields). *)
