(** Reusable per-worker join scratch for the parallel chase.

    Phase 1 of parallel evaluation ([Engine.run]) ships every delta
    chunk to a worker as an independent task. Before this module each
    task allocated its join state from scratch — a fresh binding
    environment, a fresh emission buffer, a fresh profiler shard — and
    dropped it all on the floor at merge time. On allocation-bound
    workloads that garbage is pure constant-factor overhead, and under
    OCaml 5 it is worse than it looks: every minor collection
    synchronizes {e all} running domains, so per-chunk allocation in one
    worker taxes every other worker too.

    A {!t} is a {e bank} of scratch values. Tasks {!acquire} a scratch
    at start (reusing a parked one when available, building a fresh one
    otherwise) and the coordinator {!release}s it once the merge has
    consumed its buffers — [release] runs the bank's [reset] function
    and parks the value for the next batch. The free list is a lock-free
    Treiber stack, so acquisition never takes the pool mutex and never
    blocks a worker.

    The bank is generic: the engine owns the concrete scratch record
    (binding environment, emission buffer, profiler shard) and passes
    [make]/[reset] closures, which keeps this module free of engine
    internals and independently testable.

    {b Safety.} A scratch value is owned by exactly one task between
    {!acquire} and {!release}; the bank only guarantees that a value is
    never handed to two owners at once. Releasing a value twice, or
    using it after release, is an ownership bug in the caller. [reset]
    must return the value to a state indistinguishable from a freshly
    [make]d one — byte-identity of parallel evaluation relies on reused
    scratch carrying no state across chunks. *)

type 'a t

val create : make:(unit -> 'a) -> reset:('a -> unit) -> 'a t
(** A bank that builds values with [make] on demand and restores them
    with [reset] on {!release}. No values are pre-allocated: a
    sequential engine that never enters the parallel path pays
    nothing. *)

val acquire : 'a t -> 'a
(** Pop a parked scratch value, or [make] a fresh one when the bank is
    empty. Lock-free; safe to call from any domain. *)

val release : 'a t -> 'a -> unit
(** [reset] the value and park it for reuse. Lock-free; safe to call
    from any domain. The caller must not touch the value afterwards. *)

val with_scratch : 'a t -> ('a -> 'b) -> 'b
(** [acquire], run, [release] — including on exceptions. For callers
    whose scratch lifetime matches one closure; the engine's phase-1
    tasks instead hold their scratch across the merge and release
    manually. *)

val parked : 'a t -> int
(** Number of values currently parked (acquired values are not
    counted). Monitoring/testing only; racy by nature. *)
